// A2 — clique-cover size C vs measured regret at fixed density. Disjoint-
// clique graphs let us fix K and dial C exactly: K arms in C cliques of
// K/C arms each. Theorem 1's second term is 0.74·C·sqrt(n/K), so regret
// should grow (mildly) with C while the sqrt(nK) term dominates.
#include <iostream>

#include "bench_common.hpp"
#include "sim/thread_pool.hpp"
#include "theory/bounds.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  CommonFlags flags = parse_common(argc, argv);
  if (!flags.quick && flags.horizon > 5000) flags.horizon = 5000;

  std::cout << "==========================================================\n"
               "Ablation A2: exact clique count C vs DFL-SSO regret (K=48)\n"
               "==========================================================\n"
               "num_cliques_C,clique_size,final_cumulative_regret,ci95,"
               "theorem1_bound\n";

  ThreadPool pool;
  std::vector<double> series;
  for (const std::size_t c : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 48u}) {
    ExperimentConfig config;
    config.name = "clique-cover-ablation";
    config.graph_family = GraphFamily::kDisjointCliques;
    config.num_arms = 48;
    config.family_param = c;
    apply_flags(config, flags);
    config.num_arms = 48;  // keep K fixed regardless of --arms
    const auto result =
        run_single_experiment(config, "dfl-sso", Scenario::kSso, &pool);
    std::cout << c << ',' << 48 / c << ','
              << result.final_cumulative.mean() << ','
              << result.final_cumulative.ci95_halfwidth() << ','
              << theorem1_bound(config.horizon, 48, c) << '\n';
    series.push_back(result.final_cumulative.mean());
  }
  PlotOptions opts;
  opts.title = "final regret vs clique count (x = index in C list)";
  opts.y_zero = true;
  opts.height = 12;
  std::cout << render_plot(series, opts);
  return 0;
}
