// A4 — DFL-CSR oracle ablation: exact enumeration (the paper's §VI
// assumption) vs lazy-greedy (1−1/e coverage approximation). Greedy scales
// to families too large to enumerate per step; the ablation measures the
// approximation's regret cost on an enumerable instance.
#include <iostream>

#include "bench_common.hpp"
#include "sim/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  CommonFlags flags = parse_common(argc, argv);
  if (flags.reps > 10 && !flags.quick) flags.reps = 10;

  ExperimentConfig config = fig6_config();
  apply_flags(config, flags);
  if (flags.arms == 0) config.num_arms = 16;
  config.strategy_size = flags.m;

  print_header("Ablation A4: DFL-CSR exact vs lazy-greedy oracle",
               "Greedy is (1-1/e)-approximate on the submodular coverage "
               "objective; measures the regret cost of approximation.",
               config);

  ThreadPool pool;
  const auto exact =
      run_combinatorial_experiment(config, "dfl-csr", Scenario::kCsr, &pool);
  const auto greedy = run_combinatorial_experiment(config, "dfl-csr-greedy",
                                                   Scenario::kCsr, &pool);

  std::cout << "series,t,accumulated_regret\n";
  print_series_csv("exact", exact.accumulated_regret(), flags.csv_points);
  print_series_csv("greedy", greedy.accumulated_regret(), flags.csv_points);
  print_figure("A4 accumulated regret: exact vs greedy oracle",
               {{"exact", exact.accumulated_regret()},
                {"greedy", greedy.accumulated_regret()}},
               "R_t", 1.0);
  std::cout << "\nfinal cumulative regret: exact="
            << exact.final_cumulative.mean() << " (+/-"
            << exact.final_cumulative.ci95_halfwidth()
            << ")  greedy=" << greedy.final_cumulative.mean() << " (+/-"
            << greedy.final_cumulative.ci95_halfwidth() << ")\n"
            << "(regret is against the exact optimum in both cases)\n";
  return 0;
}
