// A1 — DFL-SSO regret vs relation-graph density p. Theorem 1 predicts the
// clique-cover term shrinks as the graph densifies; the sweep shows final
// cumulative regret decreasing monotonically (up to noise) in p.
#include <iostream>

#include "bench_common.hpp"
#include "graph/clique_cover.hpp"
#include "sim/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  CommonFlags flags = parse_common(argc, argv);
  if (!flags.quick && flags.horizon > 5000) flags.horizon = 5000;

  std::cout << "==========================================================\n"
               "Ablation A1: DFL-SSO final regret vs graph density p\n"
               "==========================================================\n"
               "p,clique_cover_C,final_cumulative_regret,ci95,final_avg_regret\n";

  ThreadPool pool;
  std::vector<double> series;
  for (const double p : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    ExperimentConfig config = fig3_config();
    apply_flags(config, flags);
    if (flags.arms == 0) config.num_arms = 50;
    config.edge_probability = p;
    config.name = "density-sweep";
    const auto result =
        run_single_experiment(config, "dfl-sso", Scenario::kSso, &pool);
    const auto cover = greedy_clique_cover(build_graph(config));
    std::cout << p << ',' << cover.size() << ','
              << result.final_cumulative.mean() << ','
              << result.final_cumulative.ci95_halfwidth() << ','
              << result.final_cumulative.mean() /
                     static_cast<double>(config.horizon)
              << '\n';
    series.push_back(result.final_cumulative.mean());
  }

  PlotOptions opts;
  opts.title = "final cumulative regret vs density p (x = p*10)";
  opts.y_zero = true;
  opts.height = 12;
  opts.x_step = 0.1;
  std::cout << render_plot(series, opts);
  return 0;
}
