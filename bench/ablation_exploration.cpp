// A-η — exploration-scale sensitivity of DFL-SSO: index = X̄ + η·width.
// η = 1 is Algorithm 1; the sweep shows the regret cost of over- and
// under-exploration given side observations (side information makes small
// η safer than in the no-side setting, since free samples keep estimates
// honest even with little deliberate exploration).
#include <iostream>

#include "bench_common.hpp"
#include "core/dfl_sso.hpp"
#include "sim/replication.hpp"
#include "sim/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  CommonFlags flags = parse_common(argc, argv);
  if (!flags.quick && flags.horizon > 5000) flags.horizon = 5000;

  ExperimentConfig config = fig3_config();
  apply_flags(config, flags);
  if (flags.arms == 0) config.num_arms = 50;
  config.edge_probability = flags.p;

  print_header("Ablation A-eta: DFL-SSO exploration scale",
               "index = mean + eta*width; eta = 1 is Algorithm 1.", config);

  const auto instance = build_instance(config);
  ThreadPool pool;
  ReplicationOptions options;
  options.replications = config.replications;
  options.master_seed = config.seed;
  options.runner.horizon = config.horizon;
  options.pool = &pool;

  std::cout << "eta,final_cumulative_regret,ci95\n";
  std::vector<double> series;
  for (const double eta : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0}) {
    const auto result = run_replicated_single(
        [eta](std::uint64_t seed) -> std::unique_ptr<SinglePlayPolicy> {
          DflSsoOptions opts;
          opts.exploration_scale = eta;
          opts.seed = seed;
          return std::make_unique<DflSso>(opts);
        },
        instance, Scenario::kSso, options);
    std::cout << eta << ',' << result.final_cumulative.mean() << ','
              << result.final_cumulative.ci95_halfwidth() << '\n';
    series.push_back(result.final_cumulative.mean());
  }
  PlotOptions opts;
  opts.title = "final regret vs eta (x = index in eta list)";
  opts.y_zero = true;
  opts.height = 12;
  std::cout << render_plot(series, opts);
  return 0;
}
