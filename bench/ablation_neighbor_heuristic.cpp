// A6 — the paper's §IX future-work heuristic: instead of playing the
// argmax-index arm I_t, play the arm with the best empirical mean inside
// N_{I_t}. Compared against plain DFL-SSO and the analogous UCB-MaxN.
#include <iostream>

#include "bench_common.hpp"
#include "sim/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  const CommonFlags flags = parse_common(argc, argv);

  ExperimentConfig config = fig3_config();
  apply_flags(config, flags);
  config.edge_probability = flags.p;

  print_header("Ablation A6: §IX neighbor-greedy heuristic",
               "Play the empirically-best neighbor of the argmax-index arm "
               "(the paper's proposed future-work refinement).",
               config);

  ThreadPool pool;
  const auto plain =
      run_single_experiment(config, "dfl-sso", Scenario::kSso, &pool);
  const auto greedy =
      run_single_experiment(config, "dfl-sso-greedy", Scenario::kSso, &pool);
  const auto maxn =
      run_single_experiment(config, "ucb-maxn", Scenario::kSso, &pool);

  std::cout << "series,t,accumulated_regret\n";
  print_series_csv("DFL-SSO", plain.accumulated_regret(), flags.csv_points);
  print_series_csv("DFL-SSO+greedy", greedy.accumulated_regret(),
                   flags.csv_points);
  print_series_csv("UCB-MaxN", maxn.accumulated_regret(), flags.csv_points);
  print_figure("A6 accumulated regret",
               {{"DFL-SSO", plain.accumulated_regret()},
                {"DFL-SSO+greedy", greedy.accumulated_regret()},
                {"UCB-MaxN", maxn.accumulated_regret()}},
               "R_t", 1.0);
  std::cout << "\nfinal cumulative regret: DFL-SSO="
            << plain.final_cumulative.mean()
            << "  DFL-SSO+greedy=" << greedy.final_cumulative.mean()
            << "  UCB-MaxN=" << maxn.final_cumulative.mean() << '\n';
  return 0;
}
