// A3 — DFL-SSR estimator ablation: the pseudocode-faithful paired
// estimator (per-arm observation histories, Ob = min over N_i) vs the O(K)
// mean-sum estimator (B̄_i = Σ X̄_j). Both unbiased; the ablation checks
// whether fidelity costs or buys anything empirically.
#include <iostream>

#include "bench_common.hpp"
#include "sim/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  const CommonFlags flags = parse_common(argc, argv);

  ExperimentConfig config = fig5_config();
  apply_flags(config, flags);
  config.edge_probability = flags.p;

  print_header("Ablation A3: DFL-SSR paired vs mean-sum estimator",
               "Both estimators are unbiased for u_i; paired matches "
               "Algorithm 3's Ob-counter exactly.",
               config);

  ThreadPool pool;
  const auto paired =
      run_single_experiment(config, "dfl-ssr", Scenario::kSsr, &pool);
  const auto meansum =
      run_single_experiment(config, "dfl-ssr-meansum", Scenario::kSsr, &pool);

  std::cout << "series,t,accumulated_regret\n";
  print_series_csv("paired", paired.accumulated_regret(), flags.csv_points);
  print_series_csv("mean-sum", meansum.accumulated_regret(), flags.csv_points);
  print_figure("A3 accumulated regret: paired vs mean-sum",
               {{"paired", paired.accumulated_regret()},
                {"mean-sum", meansum.accumulated_regret()}},
               "R_t", 1.0);
  std::cout << "\nfinal cumulative regret: paired="
            << paired.final_cumulative.mean() << " (+/-"
            << paired.final_cumulative.ci95_halfwidth()
            << ")  mean-sum=" << meansum.final_cumulative.mean() << " (+/-"
            << meansum.final_cumulative.ci95_halfwidth() << ")\n";
  return 0;
}
