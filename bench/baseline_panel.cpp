// A8 — baseline panel: every single-play policy on the Fig. 3 instance
// under SSO semantics. Shows where DFL-SSO lands among classical
// (UCB1/MOSS/Thompson/eps-greedy/Exp3), side-observation
// (UCB-N/UCB-MaxN/+side variants), and floor (random) baselines.
#include <iomanip>
#include <iostream>

#include "bench_common.hpp"
#include "core/policy_factory.hpp"
#include "sim/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  CommonFlags flags = parse_common(argc, argv);
  if (!flags.quick && flags.horizon > 5000) flags.horizon = 5000;
  if (flags.reps > 10) flags.reps = 10;

  ExperimentConfig config = fig3_config();
  apply_flags(config, flags);
  config.edge_probability = flags.p;
  if (flags.arms == 0) config.num_arms = 50;

  print_header("Ablation A8: baseline panel (SSO semantics)",
               "All single-play policies on one instance; lower is better.",
               config);

  ThreadPool pool;
  std::cout << "policy,final_cumulative_regret,ci95,final_avg_regret\n";
  struct Row {
    std::string name;
    double regret;
  };
  std::vector<Row> rows;
  for (const auto& name : single_play_policy_names()) {
    const auto result =
        run_single_experiment(config, name, Scenario::kSso, &pool);
    std::cout << name << ',' << result.final_cumulative.mean() << ','
              << result.final_cumulative.ci95_halfwidth() << ','
              << result.final_cumulative.mean() /
                     static_cast<double>(config.horizon)
              << '\n';
    rows.push_back({name, result.final_cumulative.mean()});
  }

  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.regret < b.regret; });
  std::cout << "\nranking (best first):\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::cout << "  " << std::setw(2) << i + 1 << ". " << std::setw(18)
              << std::left << rows[i].name << std::right << "  R_n = "
              << rows[i].regret << '\n';
  }
  return 0;
}
