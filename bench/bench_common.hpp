// Shared plumbing for the figure-reproduction benches.
//
// Every fig*_ binary prints (a) the experiment header, (b) CSV rows of the
// series the paper plots, and (c) an ASCII rendering of the figure, so
// `for b in build/bench/*; do $b; done` regenerates the whole evaluation.
// Common flags: --horizon, --reps, --arms, --p, --m, --seed, --quick,
// --csv-points (series downsampling for the CSV block), and
// --list-policies (print the policy registry and exit 0).
#pragma once

#include <cstdlib>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/policy_registry.hpp"
#include "sim/experiment.hpp"
#include "util/arg_parse.hpp"
#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/svg_plot.hpp"
#include "util/timer.hpp"

namespace ncb::bench {

struct CommonFlags {
  TimeSlot horizon = 10000;
  std::size_t reps = 20;
  std::size_t arms = 100;
  double p = 0.3;
  std::size_t m = 3;
  std::uint64_t seed = 20170605;
  std::size_t csv_points = 25;
  bool quick = false;
  std::string svg_dir;  ///< When non-empty, figures are also written as SVG.
};

inline CommonFlags parse_common(int argc, char** argv) {
  try {
    const ArgParse args(argc, argv);
    if (args.has("list-policies")) {
      std::cout << PolicyRegistry::instance().render_listing();
      std::exit(0);
    }
    const auto positive = [&](const char* name, std::int64_t v) {
      if (v <= 0) {
        throw std::invalid_argument(std::string("--") + name +
                                    ": must be positive");
      }
      return static_cast<std::size_t>(v);
    };
    const auto non_negative = [&](const char* name, std::int64_t v) {
      if (v < 0) {
        throw std::invalid_argument(std::string("--") + name +
                                    ": must be non-negative");
      }
      return static_cast<std::size_t>(v);
    };
    CommonFlags f;
    f.quick = args.get_bool("quick", false);
    f.horizon = args.get_int("horizon", f.quick ? 2000 : 10000);
    if (f.horizon <= 0) {
      throw std::invalid_argument("--horizon: must be positive");
    }
    f.reps = positive("reps", args.get_int("reps", f.quick ? 5 : 20));
    f.arms = non_negative("arms", args.get_int("arms", 0));  // 0 = default
    f.p = args.get_double("p", 0.3);
    f.m = positive("m", args.get_int("m", 3));
    f.seed = static_cast<std::uint64_t>(
        non_negative("seed", args.get_int("seed", 20170605)));
    f.csv_points = positive("csv-points", args.get_int("csv-points", 25));
    f.svg_dir = args.get_string("svg-dir", "");
    return f;
  } catch (const std::invalid_argument& e) {
    std::cerr << (argc > 0 ? argv[0] : "bench") << ": error: " << e.what()
              << '\n';
    std::exit(2);
  }
}

/// Writes the figure to <svg_dir>/<file>.svg when --svg-dir is set.
inline void maybe_write_svg(const CommonFlags& flags, const std::string& file,
                            const std::string& title,
                            const std::vector<PlotSeries>& series,
                            const std::string& y_label) {
  if (flags.svg_dir.empty()) return;
  SvgOptions opts;
  opts.title = title;
  opts.y_label = y_label;
  opts.y_zero = true;
  const std::string path = flags.svg_dir + "/" + file + ".svg";
  if (write_svg(path, series, opts)) {
    std::cout << "(svg written: " << path << ")\n";
  } else {
    std::cout << "(svg write FAILED: " << path << ")\n";
  }
}

/// Applies common flag overrides onto a figure's default config.
inline void apply_flags(ExperimentConfig& config, const CommonFlags& f) {
  config.horizon = f.horizon;
  config.replications = f.reps;
  if (f.arms > 0) config.num_arms = f.arms;
  config.seed = f.seed;
}

/// Prints one named series as CSV rows "series,t,value" downsampled to
/// `points` checkpoints (always including the final slot).
inline void print_series_csv(const std::string& series_name,
                             const std::vector<double>& values,
                             std::size_t points) {
  CsvWriter csv(std::cout);
  if (values.empty()) return;
  const std::size_t stride = std::max<std::size_t>(1, values.size() / points);
  for (std::size_t i = stride - 1; i < values.size(); i += stride) {
    csv.row(series_name, {static_cast<double>(i + 1), values[i]});
  }
  if ((values.size() - 1) % stride != stride - 1) {
    csv.row(series_name,
            {static_cast<double>(values.size()), values.back()});
  }
}

/// Prints the ASCII figure for one or more named series.
inline void print_figure(const std::string& title,
                         const std::vector<PlotSeries>& series,
                         const std::string& y_label, double x_step) {
  PlotOptions opts;
  opts.title = title;
  opts.y_label = y_label;
  opts.x_step = x_step;
  opts.y_zero = true;
  opts.height = 16;
  std::vector<PlotSeries> down;
  for (const auto& s : series) {
    down.push_back({s.name, downsample(s.values, 72)});
  }
  if (!down.empty() && !down[0].values.empty()) {
    opts.x_step = x_step * static_cast<double>(series[0].values.size()) /
                  static_cast<double>(down[0].values.size());
  }
  std::cout << render_plot(down, opts);
}

inline void print_header(const std::string& figure,
                         const std::string& claim,
                         const ExperimentConfig& config) {
  std::cout << "==========================================================\n"
            << figure << '\n' << claim << '\n'
            << "config: " << config.describe() << '\n'
            << "==========================================================\n";
}

}  // namespace ncb::bench
