// Figure 1 — the Theorem 1 proof construction: threshold-partition the
// relation graph G into near-optimal arms K1 and clearly-suboptimal arms
// K2, induce the subgraph H on K2, and clique-cover H. This binary prints
// the construction on a small instance (mirroring the paper's illustration)
// and on the Fig. 3 instance.
#include <iostream>

#include "bench_common.hpp"
#include "graph/clique_cover.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "graph/partition.hpp"

namespace {

void show_partition(const ncb::Graph& g, const std::vector<double>& means,
                    std::int64_t horizon) {
  using namespace ncb;
  const auto gaps = gaps_from_means(means);
  const double delta0 = default_delta0(g.num_vertices(), horizon);
  const auto part = threshold_partition(g, gaps, delta0);
  std::cout << "delta0 = e*sqrt(K/n) = " << delta0 << '\n'
            << "K1 (gap <= delta0): " << part.k1.size() << " arms {";
  for (std::size_t i = 0; i < part.k1.size() && i < 12; ++i) {
    if (i) std::cout << ',';
    std::cout << part.k1[i];
  }
  if (part.k1.size() > 12) std::cout << ",...";
  std::cout << "}\n"
            << "K2 (gap >  delta0): " << part.k2.size() << " arms\n"
            << "subgraph H: " << compute_metrics(part.subgraph_h).to_string()
            << '\n'
            << "greedy clique cover of H: C = " << part.cover.size() << '\n';
  if (part.cover.size() <= 12) {
    for (std::size_t c = 0; c < part.cover.size(); ++c) {
      std::cout << "  clique " << c << " (H-local ids -> G ids):";
      for (const ArmId v : part.cover[c]) {
        std::cout << ' ' << part.h_to_original[static_cast<std::size_t>(v)];
      }
      std::cout << '\n';
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  const CommonFlags flags = parse_common(argc, argv);

  std::cout << "==========================================================\n"
               "Figure 1: graph partition + clique cover (Theorem 1 proof)\n"
               "==========================================================\n";

  // Small illustrative instance, like the paper's cartoon: 12 arms, one
  // tight cluster of near-optimal arms.
  {
    std::cout << "\n-- illustrative 12-arm instance --\n";
    Xoshiro256 rng(flags.seed);
    const Graph g = erdos_renyi(12, 0.45, rng);
    std::vector<double> means(12);
    for (std::size_t i = 0; i < 12; ++i) {
      // Three near-optimal arms; the rest clearly suboptimal.
      means[i] = i < 3 ? 0.9 - 0.001 * static_cast<double>(i)
                       : rng.uniform(0.1, 0.6);
    }
    show_partition(g, means, 1000);
  }

  // The Fig. 3 instance (K = 100, n = 10000).
  {
    std::cout << "\n-- the Fig. 3 instance --\n";
    ExperimentConfig config = fig3_config();
    apply_flags(config, flags);
    const auto instance = build_instance(config);
    show_partition(instance.graph(), instance.means(), config.horizon);
  }
  return 0;
}
