// Figure 2 — constructing the strategy relation graph SG(F, L) from the
// arm relation graph G (paper §IV). Reproduces the paper's exact 4-arm
// path example: 7 independent-set strategies, their observed sets Y, and
// the SG links implied by the mutual-containment rule.
#include <iostream>

#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "strategy/strategy_graph.hpp"

int main() {
  using namespace ncb;

  std::cout
      << "==========================================================\n"
         "Figure 2: arm relation graph G -> strategy relation graph SG\n"
         "Paper example: 4-arm path, F = independent sets (7 strategies)\n"
         "==========================================================\n";

  const auto graph = std::make_shared<const Graph>(path_graph(4));
  std::cout << "\nrelation graph G (arms 0-3, paper uses 1-4):\n"
            << graph->to_string();
  for (ArmId i = 0; i < 4; ++i) {
    std::cout << "N_" << i << " = {";
    const ArmSpan closed = graph->closed_neighborhood(i);
    for (std::size_t j = 0; j < closed.size(); ++j) {
      if (j) std::cout << ',';
      std::cout << closed[j];
    }
    std::cout << "}\n";
  }

  const FeasibleSet family = make_independent_set_family(graph);
  std::cout << '\n' << family.to_string();

  const Graph sg = build_strategy_graph(family);
  std::cout << "\nstrategy relation graph SG(F, L):\n" << sg.to_string();
  std::cout << "SG metrics: " << compute_metrics(sg).to_string() << '\n';

  std::cout << "\npaper's worked pair: s2={2} (id 1) ~ s5={1,3} (id 4): "
            << (sg.has_edge(1, 4) ? "linked" : "NOT linked") << '\n';

  std::cout << "\nobservable strategies per play (s_y contained in Y_x):\n";
  for (StrategyId x = 0; x < static_cast<StrategyId>(family.size()); ++x) {
    std::cout << "  play s" << x << " -> observe {";
    const auto obs = observable_strategies(family, x);
    for (std::size_t i = 0; i < obs.size(); ++i) {
      if (i) std::cout << ',';
      std::cout << 's' << obs[i];
    }
    std::cout << "}\n";
  }
  return 0;
}
