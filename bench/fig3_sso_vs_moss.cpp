// Figure 3 — MOSS vs DFL-SSO (paper §VII, Fig. 3(a) expected regret and
// Fig. 3(b) accumulated regret). K = 100 arms on a random relation graph,
// means uniform in [0,1], n = 10000.
//
// A thin client of the sweep engine (src/exp/): the two policies form a
// 2-job SweepSpec whose replications run as fine-grained shards, and the
// plotted series come from the jobs' dense checkpoint aggregates.
//
// Shape criterion: DFL-SSO's accumulated regret grows far slower than
// MOSS's, and its per-slot expected regret converges to ~0 sooner.
#include <iostream>

#include "bench_common.hpp"
#include "exp/sweep_runner.hpp"
#include "sim/thread_pool.hpp"
#include "theory/bounds.hpp"
#include "graph/clique_cover.hpp"
#include "graph/partition.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;

  const CommonFlags flags = parse_common(argc, argv);
  ExperimentConfig config = fig3_config();
  apply_flags(config, flags);
  config.edge_probability = flags.p;

  print_header("Figure 3: MOSS vs DFL-SSO (single-play, side observation)",
               "Claim: side observations let DFL-SSO converge far faster; "
               "MOSS's accumulated regret keeps climbing.",
               config);

  exp::SweepSpec spec;
  spec.name = "fig3";
  spec.scenario = Scenario::kSso;
  spec.policies = {"moss", "dfl-sso"};
  spec.graphs = {config.graph_family};
  spec.arms = {config.num_arms};
  spec.edge_probabilities = {config.edge_probability};
  spec.horizons = {config.horizon};
  spec.replications = config.replications;
  spec.seed = config.seed;
  spec.checkpoints = 0;  // dense grid: the figures plot every slot

  ThreadPool pool;
  Timer timer;
  exp::SweepRunOptions options;
  options.pool = &pool;
  const auto result = exp::run_sweep(spec, options);
  const exp::JobAggregate& moss = result.outcomes[0].aggregate;
  const exp::JobAggregate& sso = result.outcomes[1].aggregate;

  // Fig. 3(a): per-slot expected regret (mean over replications).
  std::cout << "\n-- Fig 3(a): expected (per-slot) regret --\n";
  std::cout << "series,t,expected_regret\n";
  print_series_csv("MOSS", moss.expected().means(), flags.csv_points);
  print_series_csv("DFL-SSO", sso.expected().means(), flags.csv_points);
  print_figure("Fig 3(a) expected regret",
               {{"MOSS", moss.expected().means()},
                {"DFL-SSO", sso.expected().means()}},
               "E[regret]", 1.0);

  // Fig. 3(b): accumulated regret.
  std::cout << "\n-- Fig 3(b): accumulated regret --\n";
  std::cout << "series,t,accumulated_regret\n";
  print_series_csv("MOSS", moss.cumulative().means(), flags.csv_points);
  print_series_csv("DFL-SSO", sso.cumulative().means(), flags.csv_points);
  print_figure("Fig 3(b) accumulated regret",
               {{"MOSS", moss.cumulative().means()},
                {"DFL-SSO", sso.cumulative().means()}},
               "R_t", 1.0);
  maybe_write_svg(flags, "fig3a", "Fig 3(a) expected regret",
                  {{"MOSS", moss.expected().means()},
                   {"DFL-SSO", sso.expected().means()}},
                  "E[regret]");
  maybe_write_svg(flags, "fig3b", "Fig 3(b) accumulated regret",
                  {{"MOSS", moss.cumulative().means()},
                   {"DFL-SSO", sso.cumulative().means()}},
                  "R_t");

  // Headline comparison + theoretical bounds for EXPERIMENTS.md.
  const auto instance = build_instance(config);
  const auto gaps = gaps_from_means(instance.means());
  const auto part = threshold_partition(
      instance.graph(), gaps, default_delta0(config.num_arms, config.horizon));
  const double t1 = theorem1_bound(config.horizon, config.num_arms,
                                   part.clique_cover_size());
  std::cout << "\n-- summary --\n"
            << "final cumulative regret: MOSS="
            << moss.final_cumulative().mean() << " (+/-"
            << moss.final_cumulative().ci95_halfwidth() << ")"
            << "  DFL-SSO=" << sso.final_cumulative().mean() << " (+/-"
            << sso.final_cumulative().ci95_halfwidth() << ")\n"
            << "improvement factor: "
            << moss.final_cumulative().mean() /
                   std::max(sso.final_cumulative().mean(), 1e-9)
            << "x\n"
            << "clique cover |C(H)| = " << part.clique_cover_size()
            << " (delta0 threshold split: |K1|=" << part.k1.size()
            << " |K2|=" << part.k2.size() << ")\n"
            << "Theorem 1 bound: " << t1
            << "  MOSS bound 49*sqrt(nK): "
            << moss_bound(config.horizon, config.num_arms) << '\n'
            << "wall time: " << timer.elapsed_seconds() << " s\n";
  return 0;
}
