// Figure 3 — MOSS vs DFL-SSO (paper §VII, Fig. 3(a) expected regret and
// Fig. 3(b) accumulated regret). K = 100 arms on a random relation graph,
// means uniform in [0,1], n = 10000.
//
// Shape criterion: DFL-SSO's accumulated regret grows far slower than
// MOSS's, and its per-slot expected regret converges to ~0 sooner.
#include <iostream>

#include "bench_common.hpp"
#include "sim/thread_pool.hpp"
#include "theory/bounds.hpp"
#include "graph/clique_cover.hpp"
#include "graph/partition.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;

  const CommonFlags flags = parse_common(argc, argv);
  ExperimentConfig config = fig3_config();
  apply_flags(config, flags);
  config.edge_probability = flags.p;

  print_header("Figure 3: MOSS vs DFL-SSO (single-play, side observation)",
               "Claim: side observations let DFL-SSO converge far faster; "
               "MOSS's accumulated regret keeps climbing.",
               config);

  ThreadPool pool;
  Timer timer;
  const auto moss = run_single_experiment(config, "moss", Scenario::kSso, &pool);
  const auto sso = run_single_experiment(config, "dfl-sso", Scenario::kSso, &pool);

  // Fig. 3(a): per-slot expected regret (mean over replications).
  std::cout << "\n-- Fig 3(a): expected (per-slot) regret --\n";
  std::cout << "series,t,expected_regret\n";
  print_series_csv("MOSS", moss.expected_regret(), flags.csv_points);
  print_series_csv("DFL-SSO", sso.expected_regret(), flags.csv_points);
  print_figure("Fig 3(a) expected regret",
               {{"MOSS", moss.expected_regret()},
                {"DFL-SSO", sso.expected_regret()}},
               "E[regret]", 1.0);

  // Fig. 3(b): accumulated regret.
  std::cout << "\n-- Fig 3(b): accumulated regret --\n";
  std::cout << "series,t,accumulated_regret\n";
  print_series_csv("MOSS", moss.accumulated_regret(), flags.csv_points);
  print_series_csv("DFL-SSO", sso.accumulated_regret(), flags.csv_points);
  print_figure("Fig 3(b) accumulated regret",
               {{"MOSS", moss.accumulated_regret()},
                {"DFL-SSO", sso.accumulated_regret()}},
               "R_t", 1.0);
  maybe_write_svg(flags, "fig3a", "Fig 3(a) expected regret",
                  {{"MOSS", moss.expected_regret()},
                   {"DFL-SSO", sso.expected_regret()}},
                  "E[regret]");
  maybe_write_svg(flags, "fig3b", "Fig 3(b) accumulated regret",
                  {{"MOSS", moss.accumulated_regret()},
                   {"DFL-SSO", sso.accumulated_regret()}},
                  "R_t");

  // Headline comparison + theoretical bounds for EXPERIMENTS.md.
  const auto instance = build_instance(config);
  const auto gaps = gaps_from_means(instance.means());
  const auto part = threshold_partition(
      instance.graph(), gaps, default_delta0(config.num_arms, config.horizon));
  const double t1 = theorem1_bound(config.horizon, config.num_arms,
                                   part.clique_cover_size());
  std::cout << "\n-- summary --\n"
            << "final cumulative regret: MOSS=" << moss.final_cumulative.mean()
            << " (+/-" << moss.final_cumulative.ci95_halfwidth() << ")"
            << "  DFL-SSO=" << sso.final_cumulative.mean() << " (+/-"
            << sso.final_cumulative.ci95_halfwidth() << ")\n"
            << "improvement factor: "
            << moss.final_cumulative.mean() /
                   std::max(sso.final_cumulative.mean(), 1e-9)
            << "x\n"
            << "clique cover |C(H)| = " << part.clique_cover_size()
            << " (delta0 threshold split: |K1|=" << part.k1.size()
            << " |K2|=" << part.k2.size() << ")\n"
            << "Theorem 1 bound: " << t1
            << "  MOSS bound 49*sqrt(nK): "
            << moss_bound(config.horizon, config.num_arms) << '\n'
            << "wall time: " << timer.elapsed_seconds() << " s\n";
  return 0;
}
