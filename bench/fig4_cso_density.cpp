// Figure 4 — DFL-CSO expected regret under sparse (p=0.3, Fig. 4(a)) and
// dense (p=0.6, Fig. 4(b)) relation graphs. The paper leaves K and M
// unspecified; we use K = 20, M = 3 (|F| = 1350 com-arms), documented in
// EXPERIMENTS.md.
//
// A thin client of the sweep engine (src/exp/): the density comparison IS a
// p-axis sweep — one SweepSpec with p = {0.3, 0.6} expands to the two jobs
// this figure plots.
//
// Shape criterion: the dense graph yields more side observation per play
// (smaller clique cover of SG), so its expected regret approaches 0 faster
// than the sparse graph's.
#include <iostream>

#include "bench_common.hpp"
#include "exp/sweep_runner.hpp"
#include "graph/clique_cover.hpp"
#include "sim/thread_pool.hpp"
#include "strategy/strategy_graph.hpp"
#include "theory/bounds.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;

  CommonFlags flags = parse_common(argc, argv);
  if (flags.reps > 10 && !flags.quick) flags.reps = 10;  // combinatorial cost

  ExperimentConfig base = fig4_config(false);
  apply_flags(base, flags);
  if (flags.arms == 0) base.num_arms = 20;
  base.strategy_size = flags.m;

  exp::SweepSpec spec;
  spec.name = "fig4";
  spec.scenario = Scenario::kCso;
  spec.policies = {"dfl-cso"};
  spec.graphs = {base.graph_family};
  spec.arms = {base.num_arms};
  spec.edge_probabilities = {0.3, 0.6};  // sparse Fig. 4(a), dense Fig. 4(b)
  spec.horizons = {base.horizon};
  spec.replications = base.replications;
  spec.seed = base.seed;
  spec.strategy_size = base.strategy_size;
  spec.checkpoints = 0;  // dense grid: the figure plots every slot

  ThreadPool pool;
  Timer timer;
  exp::SweepRunOptions options;
  options.pool = &pool;
  const auto result = exp::run_sweep(spec, options);

  std::vector<PlotSeries> figure;
  for (const exp::JobOutcome& outcome : result.outcomes) {
    const ExperimentConfig& config = outcome.job.config;
    const bool dense = config.edge_probability > 0.45;

    print_header(dense ? "Figure 4(b): DFL-CSO, dense graph (p=0.6)"
                       : "Figure 4(a): DFL-CSO, sparse graph (p=0.3)",
                 "Claim: more side observation (denser graph) pulls the "
                 "expected regret toward 0 despite |F| com-arms.",
                 config);

    std::cout << "series,t,expected_regret\n";
    const std::string label = dense ? "dense(p=0.6)" : "sparse(p=0.3)";
    const auto expected = outcome.aggregate.expected().means();
    print_series_csv(label, expected, flags.csv_points);
    figure.push_back({label, expected});

    // SG statistics explain the effect: report |F| and the SG clique cover.
    const auto instance = build_instance(config);
    const auto family = build_family(config, instance.graph());
    const Graph sg = build_strategy_graph(*family);
    const auto cover = greedy_clique_cover(sg);
    const auto& final_stat = outcome.aggregate.final_cumulative();
    std::cout << "|F| = " << family->size() << ", SG edges = " << sg.num_edges()
              << ", greedy clique cover of SG C = " << cover.size() << '\n'
              << "Theorem 2 bound: "
              << theorem2_bound(config.horizon, family->size(), cover.size())
              << "  vs traditional 49*sqrt(n|F|) = "
              << moss_comarm_bound(config.horizon, family->size()) << '\n'
              << "final cumulative regret = " << final_stat.mean() << " (+/-"
              << final_stat.ci95_halfwidth() << ")\n"
              << "final avg regret R_n/n = "
              << final_stat.mean() / static_cast<double>(config.horizon)
              << "\n\n";
  }

  print_figure("Fig 4 expected regret: sparse vs dense", figure, "E[regret]",
               1.0);
  maybe_write_svg(flags, "fig4", "Fig 4 expected regret (DFL-CSO)", figure,
                  "E[regret]");
  std::cout << "wall time: " << timer.elapsed_seconds() << " s\n";
  return 0;
}
