// Figure 5 — DFL-SSR expected regret (single-play, side reward). K = 100
// arms, random relation graph, n = 10000.
//
// Shape criterion: the per-slot expected regret "converges to 0
// dramatically" (paper §VII).
#include <iostream>

#include "bench_common.hpp"
#include "sim/thread_pool.hpp"
#include "theory/bounds.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;

  const CommonFlags flags = parse_common(argc, argv);
  ExperimentConfig config = fig5_config();
  apply_flags(config, flags);
  config.edge_probability = flags.p;

  print_header("Figure 5: DFL-SSR (single-play, side reward)",
               "Claim: expected regret converges to 0 dramatically; the "
               "target is the best closed-neighborhood sum u*, not mu*.",
               config);

  ThreadPool pool;
  Timer timer;
  const auto result =
      run_single_experiment(config, "dfl-ssr", Scenario::kSsr, &pool);

  std::cout << "series,t,expected_regret\n";
  print_series_csv("DFL-SSR", result.expected_regret(), flags.csv_points);
  print_figure("Fig 5 expected regret (DFL-SSR)",
               {{"DFL-SSR", result.expected_regret()}}, "E[regret]", 1.0);
  maybe_write_svg(flags, "fig5", "Fig 5 expected regret (DFL-SSR)",
                  {{"DFL-SSR", result.expected_regret()}}, "E[regret]");

  const auto instance = build_instance(config);
  std::cout << "\n-- summary --\n"
            << "optimal side-reward arm: " << instance.best_side_reward_arm()
            << " (u* = " << instance.best_side_reward_mean()
            << ", best direct arm " << instance.best_arm()
            << " mu* = " << instance.best_mean() << ")\n"
            << "final cumulative regret = " << result.final_cumulative.mean()
            << " (+/-" << result.final_cumulative.ci95_halfwidth() << ")\n"
            << "final avg regret R_n/n = "
            << result.final_cumulative.mean() /
                   static_cast<double>(config.horizon)
            << '\n'
            << "Theorem 3 bound 49*K*sqrt(nK) = "
            << theorem3_bound(config.horizon, config.num_arms) << '\n'
            << "wall time: " << timer.elapsed_seconds() << " s\n";
  return 0;
}
