// Figure 6 — DFL-CSR expected regret (combinatorial-play, side reward).
// K = 20, M = 3 (paper leaves these unspecified; see EXPERIMENTS.md),
// n = 10000, exact coverage oracle.
//
// Shape criterion: per-slot expected regret converges to ~0 (paper §VII).
#include <iostream>

#include "bench_common.hpp"
#include "sim/thread_pool.hpp"
#include "theory/bounds.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;

  CommonFlags flags = parse_common(argc, argv);
  if (flags.reps > 10 && !flags.quick) flags.reps = 10;

  ExperimentConfig config = fig6_config();
  apply_flags(config, flags);
  if (flags.arms == 0) config.num_arms = 20;
  config.strategy_size = flags.m;
  config.edge_probability = flags.p;

  print_header("Figure 6: DFL-CSR (combinatorial-play, side reward)",
               "Claim: learning per-arm rewards + an optimization oracle "
               "achieves zero regret over the coverage objective.",
               config);

  ThreadPool pool;
  Timer timer;
  const auto result =
      run_combinatorial_experiment(config, "dfl-csr", Scenario::kCsr, &pool);

  std::cout << "series,t,expected_regret\n";
  print_series_csv("DFL-CSR", result.expected_regret(), flags.csv_points);
  print_figure("Fig 6 expected regret (DFL-CSR)",
               {{"DFL-CSR", result.expected_regret()}}, "E[regret]", 1.0);
  maybe_write_svg(flags, "fig6", "Fig 6 expected regret (DFL-CSR)",
                  {{"DFL-CSR", result.expected_regret()}}, "E[regret]");

  const auto instance = build_instance(config);
  const auto family = build_family(config, instance.graph());
  std::cout << "\n-- summary --\n"
            << "|F| = " << family->size()
            << ", N = max|Y_x| = " << family->max_neighborhood_size() << '\n'
            << "optimal sigma* = " << result.optimal_per_slot << '\n'
            << "final cumulative regret = " << result.final_cumulative.mean()
            << " (+/-" << result.final_cumulative.ci95_halfwidth() << ")\n"
            << "final avg regret R_n/n = "
            << result.final_cumulative.mean() /
                   static_cast<double>(config.horizon)
            << '\n'
            << "Theorem 4 bound = "
            << theorem4_bound(config.horizon, config.num_arms,
                              family->max_neighborhood_size())
            << " (loose; n^{5/6} term dominates)\n"
            << "wall time: " << timer.elapsed_seconds() << " s\n";
  return 0;
}
