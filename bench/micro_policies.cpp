// A7 — google-benchmark microbenchmarks: per-step CPU cost of every policy
// (select + observe), plus the substrate hot paths (graph construction,
// clique cover, strategy-graph build, oracle calls), plus the observe-path
// delivery comparison (one batched span per slot vs one singleton span per
// edge) on a dense ER graph — the before/after evidence for the batched
// ObservationSpan API.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/index_policy.hpp"
#include "core/policy_factory.hpp"
#include "graph/clique_cover.hpp"
#include "graph/generators.hpp"
#include "strategy/oracle.hpp"
#include "strategy/strategy_graph.hpp"
#include "util/rng.hpp"

namespace {

using namespace ncb;

Graph bench_graph(std::size_t k, double p) {
  Xoshiro256 rng(42);
  return erdos_renyi(k, p, rng);
}

void BM_SinglePolicyStep(benchmark::State& state, const std::string& name) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const Graph g = bench_graph(k, 0.3);
  const auto policy = make_single_play_policy(name, 1 << 20, 7);
  policy->reset(g);
  Xoshiro256 rng(9);
  std::vector<Observation> obs;
  TimeSlot t = 0;
  for (auto _ : state) {
    ++t;
    const ArmId a = policy->select(t);
    obs.clear();
    for (const ArmId j : g.closed_neighborhood(a)) obs.push_back({j, rng.uniform()});
    policy->observe(a, t, obs);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_CombinatorialPolicyStep(benchmark::State& state,
                                const std::string& name) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto graph = std::make_shared<const Graph>(bench_graph(k, 0.3));
  const auto family =
      std::make_shared<const FeasibleSet>(make_subset_family(graph, 2));
  const auto policy = make_combinatorial_policy(name, family, 7);
  policy->reset();
  Xoshiro256 rng(9);
  std::vector<Observation> obs;
  TimeSlot t = 0;
  for (auto _ : state) {
    ++t;
    const StrategyId x = policy->select(t);
    obs.clear();
    for (const ArmId j : family->neighborhood(x)) obs.push_back({j, rng.uniform()});
    policy->observe(x, t, obs);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}

// Per-slot observe cost on a dense ER graph (K = 400, p = 0.6): a slot
// reveals ~241 (arm, value) pairs. Batched = one observe() call with a span
// over the runner's reused batch (what the runner does); PerEdge = one
// observe() call per revealed pair with a singleton span (the pre-span
// delivery granularity). Only side-observation learners qualify — they are
// indifferent to how the slot's pairs are chunked.
void BM_ObservePerSlotBatched(benchmark::State& state,
                              const std::string& name) {
  const Graph g = bench_graph(400, 0.6);
  const auto policy = make_single_play_policy(name, 1 << 20, 7);
  policy->reset(g);
  Xoshiro256 rng(9);
  const ArmId played = 0;
  ObservationBatch batch;
  batch.reserve(g.num_vertices());
  for (const ArmId j : g.closed_neighborhood(played)) {
    batch.add(j, rng.uniform());
  }
  TimeSlot t = 0;
  for (auto _ : state) {
    ++t;
    policy->observe(played, t, batch.span());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch.size()));
}

void BM_ObservePerSlotPerEdge(benchmark::State& state,
                              const std::string& name) {
  const Graph g = bench_graph(400, 0.6);
  const auto policy = make_single_play_policy(name, 1 << 20, 7);
  policy->reset(g);
  Xoshiro256 rng(9);
  const ArmId played = 0;
  std::vector<Observation> observations;
  for (const ArmId j : g.closed_neighborhood(played)) {
    observations.push_back({j, rng.uniform()});
  }
  TimeSlot t = 0;
  for (auto _ : state) {
    ++t;
    for (const Observation& obs : observations) {
      policy->observe(played, t, ObservationSpan(&obs, 1));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(observations.size()));
}

// Tentpole evidence: per-slot cost of the dirty-set index cache against a
// forced full recompute (invalidate_index_cache() before every select).
// Dense (K=400, p=0.3) slots touch ~30% of the arms so the gap is modest;
// sparse (K=10^4, p=0.002) slots touch ~20 arms and the incremental path
// skips the other ~9980 refreshes entirely.
void BM_SelectIncrementalVsRecompute(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const double p = static_cast<double>(state.range(1)) / 1000.0;
  const bool recompute = state.range(2) != 0;
  const Graph g = bench_graph(k, p);
  const auto policy = make_single_play_policy("dfl-sso", 1 << 20, 7);
  auto* idx = dynamic_cast<SingleIndexPolicy*>(policy.get());
  policy->reset(g);
  Xoshiro256 rng(9);
  std::vector<Observation> obs;
  TimeSlot t = 0;
  // Warm: cover every arm once so the loop measures steady-state cost,
  // not the all-+inf opening transient (identical in both modes anyway).
  for (std::size_t i = 0; i < k; ++i) obs.push_back({static_cast<ArmId>(i), rng.uniform()});
  policy->observe(0, ++t, obs);
  for (auto _ : state) {
    ++t;
    if (recompute) idx->invalidate_index_cache();
    const ArmId a = policy->select(t);
    obs.clear();
    for (const ArmId j : g.closed_neighborhood(a)) obs.push_back({j, rng.uniform()});
    policy->observe(a, t, obs);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ErdosRenyi(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(1);
  for (auto _ : state) {
    const Graph g = erdos_renyi(k, 0.3, rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
}

// The deduplicating edge-list constructor (graph I/O path), as opposed to
// the generators' from_unique_edges fast path measured by BM_ErdosRenyi.
void BM_GraphFromEdgeList(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::vector<Edge> edges = bench_graph(k, 0.3).edges();
  for (auto _ : state) {
    const Graph g(k, edges);
    benchmark::DoNotOptimize(g.num_edges());
  }
}

void BM_GreedyCliqueCover(benchmark::State& state) {
  const Graph g = bench_graph(static_cast<std::size_t>(state.range(0)), 0.3);
  for (auto _ : state) {
    const auto cover = greedy_clique_cover(g);
    benchmark::DoNotOptimize(cover.size());
  }
}

void BM_StrategyGraphBuild(benchmark::State& state) {
  const auto graph = std::make_shared<const Graph>(
      bench_graph(static_cast<std::size_t>(state.range(0)), 0.3));
  const FeasibleSet family = make_subset_family(graph, 2);
  for (auto _ : state) {
    const Graph sg = build_strategy_graph(family);
    benchmark::DoNotOptimize(sg.num_edges());
  }
}

void BM_ExactCoverageOracle(benchmark::State& state) {
  const auto graph = std::make_shared<const Graph>(
      bench_graph(static_cast<std::size_t>(state.range(0)), 0.3));
  const FeasibleSet family = make_subset_family(graph, 2);
  const ExactCoverageOracle oracle;
  std::vector<double> scores(graph->num_vertices());
  Xoshiro256 rng(5);
  for (auto& s : scores) s = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.select(family, scores));
  }
}

void BM_GreedyCoverageOracle(benchmark::State& state) {
  const auto graph = std::make_shared<const Graph>(
      bench_graph(static_cast<std::size_t>(state.range(0)), 0.3));
  const FeasibleSet family = make_subset_family(graph, 2);
  const GreedyCoverageOracle oracle;
  std::vector<double> scores(graph->num_vertices());
  Xoshiro256 rng(5);
  for (auto& s : scores) s = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.select(family, scores));
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_SinglePolicyStep, dfl_sso, "dfl-sso")->Arg(100)->Arg(400);
BENCHMARK_CAPTURE(BM_SinglePolicyStep, dfl_ssr, "dfl-ssr")->Arg(100)->Arg(400);
BENCHMARK_CAPTURE(BM_SinglePolicyStep, dfl_ssr_meansum, "dfl-ssr-meansum")
    ->Arg(100)
    ->Arg(400);
BENCHMARK_CAPTURE(BM_SinglePolicyStep, moss, "moss-anytime")->Arg(100)->Arg(400);
BENCHMARK_CAPTURE(BM_SinglePolicyStep, ucb1, "ucb1")->Arg(100)->Arg(400);
BENCHMARK_CAPTURE(BM_SinglePolicyStep, ucb_n, "ucb-n")->Arg(100)->Arg(400);
BENCHMARK_CAPTURE(BM_SinglePolicyStep, thompson, "thompson")->Arg(100)->Arg(400);
BENCHMARK_CAPTURE(BM_SinglePolicyStep, exp3, "exp3")->Arg(100)->Arg(400);

BENCHMARK_CAPTURE(BM_CombinatorialPolicyStep, dfl_cso, "dfl-cso")->Arg(12)->Arg(20);
BENCHMARK_CAPTURE(BM_CombinatorialPolicyStep, dfl_csr, "dfl-csr")->Arg(12)->Arg(20);
BENCHMARK_CAPTURE(BM_CombinatorialPolicyStep, dfl_csr_greedy, "dfl-csr-greedy")
    ->Arg(12)
    ->Arg(20);
BENCHMARK_CAPTURE(BM_CombinatorialPolicyStep, cucb, "cucb")->Arg(12)->Arg(20);

BENCHMARK_CAPTURE(BM_ObservePerSlotBatched, dfl_sso, "dfl-sso");
BENCHMARK_CAPTURE(BM_ObservePerSlotPerEdge, dfl_sso, "dfl-sso");
BENCHMARK_CAPTURE(BM_ObservePerSlotBatched, ucb_n, "ucb-n");
BENCHMARK_CAPTURE(BM_ObservePerSlotPerEdge, ucb_n, "ucb-n");
BENCHMARK_CAPTURE(BM_ObservePerSlotBatched, exp3_set, "exp3-set");
BENCHMARK_CAPTURE(BM_ObservePerSlotPerEdge, exp3_set, "exp3-set");

// Args: {K, p_permille, 1 = force full recompute each slot}.
BENCHMARK(BM_SelectIncrementalVsRecompute)
    ->Args({400, 300, 0})
    ->Args({400, 300, 1})
    ->Args({10000, 2, 0})
    ->Args({10000, 2, 1});

BENCHMARK(BM_ErdosRenyi)->Arg(100)->Arg(400);
BENCHMARK(BM_GraphFromEdgeList)->Arg(100)->Arg(400);
BENCHMARK(BM_GreedyCliqueCover)->Arg(100)->Arg(400);
BENCHMARK(BM_StrategyGraphBuild)->Arg(12)->Arg(20);
BENCHMARK(BM_ExactCoverageOracle)->Arg(12)->Arg(20);
BENCHMARK(BM_GreedyCoverageOracle)->Arg(12)->Arg(20);

BENCHMARK_MAIN();
