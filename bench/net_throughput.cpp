// Transport microbench: framed round-trips per second over the two
// StreamTransport byte streams — an AF_UNIX socketpair (the fork/exec
// process transport) and a connected localhost TCP socket (the --listen /
// --worker-connect transport, TCP_NODELAY on). One "round trip" is a
// write_frame of a payload-sized JobResult stand-in followed by the echo
// read — the dispatch layer's unit of work — so the delta between the two
// streams is the whole cost of going multi-machine on one box.
#include <benchmark/benchmark.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "dist/protocol.hpp"
#include "net/tcp.hpp"

namespace {

using namespace ncb;

/// Echo peer: reads frames off `fd` and writes each one straight back
/// until the stream closes.
std::thread echo_thread(int fd) {
  return std::thread([fd] {
    try {
      while (auto frame = dist::read_frame(fd)) {
        dist::write_frame(fd, frame->type, frame->payload);
      }
    } catch (const std::exception&) {
      // Stream torn down mid-read at benchmark teardown — expected.
    }
  });
}

void round_trips(benchmark::State& state, int fd) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'r');
  for (auto _ : state) {
    dist::write_frame(fd, dist::MsgType::kJobResult, payload);
    const auto echoed = dist::read_frame(fd);
    if (!echoed || echoed->payload.size() != payload.size()) {
      state.SkipWithError("echo mismatch");
      break;
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size() + 5) * 2);
}

void BM_SocketpairRoundTrip(benchmark::State& state) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    state.SkipWithError("socketpair failed");
    return;
  }
  std::thread echo = echo_thread(sv[1]);
  round_trips(state, sv[0]);
  ::shutdown(sv[0], SHUT_RDWR);
  ::close(sv[0]);
  echo.join();
  ::close(sv[1]);
}
BENCHMARK(BM_SocketpairRoundTrip)->Arg(64)->Arg(4096)->Arg(262144);

void BM_LocalhostTcpRoundTrip(benchmark::State& state) {
  net::TcpListener listener(net::HostPort{"127.0.0.1", 0});
  const int client = net::tcp_connect(listener.bound(), 2000);
  int server = -1;
  for (int i = 0; i < 200 && server < 0; ++i) {
    auto accepted = listener.accept_pending();
    if (!accepted.empty()) {
      server = accepted[0].first;
      break;
    }
    ::usleep(5000);
  }
  if (server < 0) {
    ::close(client);
    state.SkipWithError("accept never completed");
    return;
  }
  std::thread echo = echo_thread(server);
  round_trips(state, client);
  ::shutdown(client, SHUT_RDWR);
  ::close(client);
  echo.join();
  ::close(server);
}
BENCHMARK(BM_LocalhostTcpRoundTrip)->Arg(64)->Arg(4096)->Arg(262144);

}  // namespace

BENCHMARK_MAIN();
