// Extension bench: piecewise-stationary arms (means reshuffled at two
// breakpoints). Plain DFL-SSO locks onto the stale optimum after a jump;
// the sliding-window and discounted variants recover. Regret is against
// the dynamic oracle (the best arm of the current phase).
#include <iostream>

#include "bench_common.hpp"
#include "core/dfl_sso.hpp"
#include "core/nonstationary.hpp"
#include "graph/generators.hpp"
#include "sim/piecewise.hpp"
#include "util/running_stat.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  CommonFlags flags = parse_common(argc, argv);
  const TimeSlot horizon = flags.horizon;
  const std::size_t k = flags.arms > 0 ? flags.arms : 30;
  // Default to a sparse graph: with dense side observation even the plain
  // policy re-estimates quickly and the breakpoint effect washes out.
  if (!ArgParse(argc, argv).has("p")) flags.p = 0.05;

  std::cout << "==========================================================\n"
               "Extension: piecewise-stationary arms (2 breakpoints)\n"
               "K=" << k << " n=" << horizon << " reps=" << flags.reps
            << " graph=ER(p=" << flags.p << ")\n"
               "==========================================================\n";

  // Three phases over one graph. Each breakpoint is adversarial to a
  // stationary learner: the current best arm crashes to near-zero and a
  // previously mediocre arm becomes the new optimum, so averaged-over-time
  // statistics keep pointing at the stale winner.
  Xoshiro256 rng(flags.seed);
  const Graph graph = erdos_renyi(k, flags.p, rng);
  std::vector<double> means(k);
  for (auto& m : means) m = rng.uniform(0.2, 0.6);
  means[0] = 0.95;
  std::vector<BanditInstance> phases;
  for (std::size_t phase = 0; phase < 3; ++phase) {
    phases.push_back(bernoulli_instance(graph, means));
    means[phase % k] = 0.05;                 // old best collapses
    means[(phase + 1) % k] = 0.95;           // a new winner emerges
  }
  const PiecewiseInstance pw(std::move(phases), {horizon / 3, 2 * horizon / 3});

  struct Entry {
    std::string label;
    std::function<std::unique_ptr<SinglePlayPolicy>(std::uint64_t)> make;
  };
  const std::vector<Entry> entries{
      {"DFL-SSO",
       [](std::uint64_t s) -> std::unique_ptr<SinglePlayPolicy> {
         return std::make_unique<DflSso>(DflSsoOptions{.seed = s});
       }},
      {"SW-DFL-SSO",
       [&](std::uint64_t s) -> std::unique_ptr<SinglePlayPolicy> {
         return std::make_unique<SwDflSso>(
             SwDflSsoOptions{.window = horizon / 6, .seed = s});
       }},
      {"D-DFL-SSO",
       [&](std::uint64_t s) -> std::unique_ptr<SinglePlayPolicy> {
         DiscountedDflSsoOptions opts;
         opts.discount = 1.0 - 6.0 / static_cast<double>(horizon);
         opts.seed = s;
         return std::make_unique<DiscountedDflSso>(opts);
       }},
  };

  std::cout << "policy,final_cumulative_dynamic_regret,ci95\n";
  std::vector<PlotSeries> figure;
  const auto seeds = derive_seeds(flags.seed, flags.reps * 2);
  for (const auto& entry : entries) {
    RunningStat final_stat;
    SeriesStat cumulative;
    for (std::size_t r = 0; r < flags.reps; ++r) {
      const auto policy = entry.make(seeds[2 * r]);
      const auto result = run_single_play_piecewise(
          *policy, pw, Scenario::kSso, horizon, seeds[2 * r + 1]);
      final_stat.add(result.cumulative_regret.back());
      cumulative.add_series(result.cumulative_regret);
    }
    std::cout << entry.label << ',' << final_stat.mean() << ','
              << final_stat.ci95_halfwidth() << '\n';
    figure.push_back({entry.label, cumulative.means()});
  }
  print_figure("dynamic cumulative regret (breakpoints at n/3, 2n/3)", figure,
               "R_t", 1.0);
  return 0;
}
