// Metrics-overhead microbench: the per-event cost of the src/obs/
// instruments on the serve hot path — a resolved Counter::inc, a
// Gauge::set, a Histogram::record, one ScopedTimer (two steady_clock
// reads + a record), and the by-name registry lookup the hot paths avoid
// by resolving references once at construction. A populated-registry
// snapshot render rounds it out (the --metrics-interval-ms writer and the
// StatsRequest path both pay it). ci.sh merges these numbers into
// BENCH_serve.json next to the end-to-end QPS, under the same 1.5x guard.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"

namespace {

using namespace ncb;

void BM_ObsCounterInc(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter& counter = registry.counter("bench.events");
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsGaugeSet(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Gauge& gauge = registry.gauge("bench.depth");
  std::int64_t v = 0;
  for (auto _ : state) {
    gauge.set(v++);
  }
  benchmark::DoNotOptimize(gauge.value());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsGaugeSet);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.histogram("bench.latency_us");
  std::uint64_t v = 1;
  for (auto _ : state) {
    histogram.record(v);
    v = v * 2862933555777941757ULL + 3037000493ULL;  // spread the buckets
    v %= 1000000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsScopedTimer(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.histogram("bench.latency_us");
  for (auto _ : state) {
    const obs::ScopedTimer timer(histogram);
    benchmark::DoNotOptimize(&timer);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsScopedTimer);

// The by-name path the instrumented components deliberately avoid (they
// resolve references once in their constructors): mutex + map walk per
// event. Kept here as the measured justification for that rule.
void BM_ObsRegistryLookupInc(benchmark::State& state) {
  obs::MetricsRegistry registry;
  registry.counter("serve.decide.requests").inc(0);
  for (auto _ : state) {
    registry.counter("serve.decide.requests").inc();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsRegistryLookupInc);

void BM_ObsSnapshotRenderJson(benchmark::State& state) {
  obs::MetricsRegistry registry;
  // Shape of a live serve registry: a few dozen instruments of each kind.
  for (int i = 0; i < 24; ++i) {
    const std::string suffix = std::to_string(i);
    registry.counter("serve.counter." + suffix).inc(i);
    registry.gauge("serve.gauge." + suffix).set(i);
    obs::Histogram& histogram = registry.histogram("serve.hist." + suffix);
    for (std::uint64_t v = 1; v < 1000; v *= 3) histogram.record(v * (i + 1));
  }
  for (auto _ : state) {
    const std::string json = registry.snapshot().render_json();
    benchmark::DoNotOptimize(json.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ObsSnapshotRenderJson);

}  // namespace

BENCHMARK_MAIN();
