// Regret decomposition: where did the regret go? Runs DFL-SSO and MOSS on
// the Fig. 3 instance and prints the top per-arm contributions T_i(n)·Δ_i
// (the quantity the Theorem 1 proof bounds arm by arm). The contrast shows
// *why* side observation helps: MOSS pays for exploring every mid-gap arm,
// DFL-SSO gets those samples free.
#include <iostream>

#include "bench_common.hpp"
#include "core/policy_factory.hpp"
#include "sim/analysis.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  CommonFlags flags = parse_common(argc, argv);
  if (!flags.quick && flags.horizon > 5000) flags.horizon = 5000;

  ExperimentConfig config = fig3_config();
  apply_flags(config, flags);
  if (flags.arms == 0) config.num_arms = 50;

  print_header("Regret decomposition: T_i(n)*gap_i per arm (single run)",
               "Top contributors under MOSS vs DFL-SSO on one instance.",
               config);

  const auto instance = build_instance(config);
  for (const char* name : {"moss", "dfl-sso"}) {
    Environment env(instance, flags.seed + 1);
    const auto policy = make_single_play_policy(name, config.horizon, flags.seed);
    RunnerOptions opts;
    opts.horizon = config.horizon;
    const auto run = run_single_play(*policy, env, Scenario::kSso, opts);
    const auto d = decompose_single_play(run, instance);
    std::cout << "\n-- " << policy->name() << " --\n" << d.to_string(8);
    // Count arms that consumed at least 1% of the horizon.
    std::size_t heavy = 0;
    for (const auto& row : d.rows) {
      const auto one_percent =
          static_cast<std::int64_t>(run.cumulative_regret.size() / 100);
      if (row.plays > one_percent) ++heavy;
    }
    std::cout << "arms with >1% of plays: " << heavy << '\n';
  }
  return 0;
}
