// Offline replay panel throughput: candidate-events per second for
// replay_panel() over a serve-generated event log. The log is produced
// in-process once (real DecisionEngine + EventLog, K arms, one feedback
// per decision) and then re-priced under panels of varying width — the
// per-event cost is one policy select + one propensity reprice + three
// estimator updates per candidate, so events/s should be flat in panel
// width and linear in log length.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "replay/replay.hpp"
#include "serve/decision_engine.hpp"
#include "serve/event_log.hpp"
#include "sim/experiment.hpp"
#include "util/rng.hpp"

namespace {

using namespace ncb;

constexpr std::size_t kArms = 10000;
constexpr std::size_t kDecisions = 50000;
constexpr double kEpsilon = 0.05;
constexpr std::uint64_t kSeed = 20170605;

Graph bench_graph() {
  ExperimentConfig config;
  config.graph_family = GraphFamily::kErdosRenyi;
  config.num_arms = kArms;
  config.edge_probability = 0.001;
  config.seed = kSeed;
  return build_graph(config);
}

/// Serves kDecisions through a real engine into a temp log once; every
/// benchmark repetition replays the same file.
const std::string& bench_log(const Graph& graph) {
  static const std::string path = [&graph] {
    std::string file = std::string(::getenv("TMPDIR") ? ::getenv("TMPDIR")
                                                      : "/tmp") +
                       "/ncb_bench_replay_XXXXXX";
    const int fd = ::mkstemp(file.data());
    if (fd >= 0) ::close(fd);
    auto log = std::make_unique<serve::EventLog>(
        serve::EventLog::Options{file, 256 * 1024, 50});
    serve::EngineOptions options;
    options.policy_spec = "eps-greedy:eps=0";
    options.epsilon = kEpsilon;
    options.seed = kSeed;
    serve::DecisionEngine engine(graph, options, log.get());
    for (std::size_t i = 0; i < kDecisions; ++i) {
      const std::string key = "user" + std::to_string(i % 64);
      const serve::Decision d = engine.decide(key);
      Xoshiro256 rng(derive_seed_at(777, d.decision_id));
      engine.report(d.decision_id, rng.bernoulli(0.5) ? 1.0 : 0.0);
    }
    log->close();
    return file;
  }();
  return path;
}

void BM_ReplayPanel(benchmark::State& state) {
  const Graph graph = bench_graph();
  const serve::EventLogScan scan = serve::read_event_log(bench_log(graph));
  static const std::vector<std::string> kPanel{
      "eps-greedy:eps=0", "eps-greedy:eps=0.1", "ucb1", "dfl-sso"};
  const std::size_t width = static_cast<std::size_t>(state.range(0));
  const std::vector<std::string> specs(kPanel.begin(),
                                       kPanel.begin() + width);
  replay::ReplayOptions options;
  options.epsilon = kEpsilon;
  options.seed = kSeed;
  for (auto _ : state) {
    const replay::PanelResult panel =
        replay::replay_panel(graph, scan, specs, options);
    benchmark::DoNotOptimize(panel.empirical_mean);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * scan.records.size() *
                                width));
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * scan.records.size() * width),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_ReplayPanel)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
