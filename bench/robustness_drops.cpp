// Robustness: DFL-SSO vs the side-observation drop rate. At p = 0 the
// policy enjoys the full side bonus; at p = 1 it degenerates to anytime
// MOSS (own feedback only). The sweep shows regret interpolating between
// the Fig. 3 endpoints — the side bonus degrades gracefully, it does not
// break the policy.
#include <iostream>

#include "bench_common.hpp"
#include "core/policy_factory.hpp"
#include "sim/replication.hpp"
#include "sim/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  CommonFlags flags = parse_common(argc, argv);
  if (!flags.quick && flags.horizon > 5000) flags.horizon = 5000;

  ExperimentConfig config = fig3_config();
  apply_flags(config, flags);
  if (flags.arms == 0) config.num_arms = 50;
  config.edge_probability = flags.p;

  print_header("Robustness: DFL-SSO under dropped side observations",
               "Each side observation is lost independently w.p. drop; "
               "drop=1 reduces DFL-SSO to own-feedback MOSS.",
               config);

  const auto instance = build_instance(config);
  ThreadPool pool;
  std::cout << "drop_prob,final_cumulative_regret,ci95\n";
  std::vector<double> series;
  for (const double drop : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0}) {
    ReplicationOptions options;
    options.replications = config.replications;
    options.master_seed = config.seed;
    options.runner.horizon = config.horizon;
    options.runner.observation_drop_prob = drop;
    options.pool = &pool;
    const auto result = run_replicated_single(
        [&](std::uint64_t seed) {
          return make_single_play_policy("dfl-sso", config.horizon, seed);
        },
        instance, Scenario::kSso, options);
    std::cout << drop << ',' << result.final_cumulative.mean() << ','
              << result.final_cumulative.ci95_halfwidth() << '\n';
    series.push_back(result.final_cumulative.mean());
  }
  PlotOptions opts;
  opts.title = "final regret vs drop probability (x = index in drop list)";
  opts.y_zero = true;
  opts.height = 12;
  std::cout << render_plot(series, opts);
  return 0;
}
