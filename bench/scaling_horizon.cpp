// Scaling: DFL-SSO regret vs horizon n at fixed K. Theorem 1 predicts
// R_n = O(sqrt(nK)), so regret normalized by sqrt(nK) should stay O(1)
// as the horizon grows — the time-axis companion to scaling_k, which
// sweeps K at fixed n.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "sim/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  CommonFlags flags = parse_common(argc, argv);
  if (flags.reps > 10) {
    std::cout << "(note: --reps capped at 10 for this sweep)\n";
    flags.reps = 10;
  }

  ExperimentConfig base = fig3_config();
  apply_flags(base, flags);

  std::cout << "==========================================================\n"
               "Scaling: DFL-SSO vs horizon (ER p=" << base.edge_probability
            << ", K=" << base.num_arms << ", sweep up to n=" << flags.horizon
            << ")\n"
               "==========================================================\n"
               "n,final_cumulative_regret,ci95,regret_over_sqrt_nK,seconds\n";

  // Geometric sweep ending at --horizon: n/16, n/8, n/4, n/2, n.
  ThreadPool pool;
  for (const std::int64_t divisor : {16, 8, 4, 2, 1}) {
    ExperimentConfig config = base;
    config.horizon = std::max<std::int64_t>(1, flags.horizon / divisor);
    Timer timer;
    const auto result =
        run_single_experiment(config, "dfl-sso", Scenario::kSso, &pool);
    const double norm = result.final_cumulative.mean() /
                        std::sqrt(static_cast<double>(config.horizon) *
                                  static_cast<double>(config.num_arms));
    std::cout << config.horizon << ',' << result.final_cumulative.mean() << ','
              << result.final_cumulative.ci95_halfwidth() << ',' << norm << ','
              << timer.elapsed_seconds() << '\n';
  }
  std::cout << "(regret_over_sqrt_nK stays O(1) if Theorem 1's sqrt(n) "
               "dependence holds; probe-only policies grow like sqrt(nK) "
               "only after paying the larger exploration constant)\n";
  return 0;
}
