// Scaling vs K — two modes.
//
// Default (Google Benchmark, when built with it): microbenchmarks of the
// relation-graph hot paths at large K, the workloads the CSR layout exists
// for. `--benchmark_format=json` output seeds BENCH_graph.json via
// `./ci.sh bench`. Benchmarks take (K, p_permille) argument pairs; the
// tracked points are the dense K = 400, p = 0.6 graph (the ISSUE/ROADMAP
// perf target) and the K = 10^4 sparse stress graph.
//
//   GraphConstructER        — generator + CSR build, O(E) fast path
//   ClosedNeighborhoodSweep — the runner's per-slot closed-row walk, all K rows
//   StrategyNeighborhoodUnion — Y_x bitset-row ORs over CSR rows
//   DflSsoSlot              — one full policy slot (select + batched observe)
//
// `--table` (always available): the regret-vs-K sweep, DFL-SSO at fixed
// horizon over ER graphs, now a thin client of the sweep engine (src/exp/).
// Theorem 1 predicts R_n = O(sqrt(nK)); the sqrt(K)-normalized column stays
// flat if the scaling holds. `--table --large` appends the K = 10^4 sparse
// (p = 0.002) end-to-end point, tractable thanks to geometric-skipping ER
// generation + sharded replications.
#include <cmath>
#include <cstring>
#include <iostream>

#include "bench_common.hpp"
#include "core/policy_factory.hpp"
#include "exp/sweep_runner.hpp"
#include "graph/generators.hpp"
#include "sim/thread_pool.hpp"
#include "util/rng.hpp"

#ifdef NCB_HAVE_BENCHMARK
#include <benchmark/benchmark.h>
#endif

namespace {

using namespace ncb;
using namespace ncb::bench;

// The regret table is a K-axis sweep of the engine (src/exp/): one
// SweepSpec over arms = {10..400} (plus 10^4 with --large), per-job rows
// streamed from run_sweep's on_job callback with the engine's timing.
int run_table_mode(int argc, char** argv) {
  CommonFlags flags = parse_common(argc, argv);
  bool large = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--large") == 0) large = true;
  }
  if (!flags.quick && flags.horizon > 5000) {
    std::cout << "(note: --horizon capped at 5000 for this sweep)\n";
    flags.horizon = 5000;
  }
  if (flags.reps > 10) {
    std::cout << "(note: --reps capped at 10 for this sweep)\n";
    flags.reps = 10;
  }

  const ExperimentConfig base = fig3_config();
  exp::SweepSpec spec;
  spec.name = "scaling-k";
  spec.scenario = Scenario::kSso;
  spec.policies = {"dfl-sso"};
  spec.graphs = {base.graph_family};
  spec.arms = {10, 25, 50, 100, 200, 400};
  spec.edge_probabilities = {flags.p};
  spec.horizons = {flags.horizon};
  spec.replications = flags.reps;
  spec.seed = flags.seed;
  spec.checkpoints = 20;  // only the final scalar feeds the table

  std::cout << "==========================================================\n"
               "Scaling: DFL-SSO vs K (ER p=" << flags.p << ", n="
            << flags.horizon << ")\n"
               "==========================================================\n"
               "K,final_cumulative_regret,ci95,regret_over_sqrt_nK,seconds\n";

  ThreadPool pool;
  exp::SweepRunOptions options;
  options.pool = &pool;
  options.on_job = [&](const exp::JobOutcome& outcome) {
    const auto& final_stat = outcome.aggregate.final_cumulative();
    const auto k = outcome.job.config.num_arms;
    const double norm =
        final_stat.mean() /
        std::sqrt(static_cast<double>(outcome.job.config.horizon) *
                  static_cast<double>(k));
    std::cout << k << ',' << final_stat.mean() << ','
              << final_stat.ci95_halfwidth() << ',' << norm << ','
              << outcome.seconds << '\n';
  };
  (void)exp::run_sweep(spec, options);
  if (large) {
    // Appended stress row: the K = 10^4 point runs sparse (p = 0.002, like
    // specs/scaling_k.sweep) so its row is not comparable to the p column
    // above — it demonstrates end-to-end feasibility, not the p trend.
    std::cout << "# K=10000 row below uses p=0.002 (sparse stress point)\n";
    exp::SweepSpec stress = spec;
    stress.arms = {10000};
    stress.edge_probabilities = {0.002};
    (void)exp::run_sweep(stress, options);
  }
  std::cout << "(regret_over_sqrt_nK stays O(1) if Theorem 1's scaling "
               "holds; it typically *decreases* because denser absolute "
               "neighborhoods mean more free observations per pull)\n";
  return 0;
}

#ifdef NCB_HAVE_BENCHMARK

Graph stress_graph(std::size_t k, double p) {
  Xoshiro256 rng(42);
  return erdos_renyi(k, p, rng);
}

double permille(const benchmark::State& state) {
  return static_cast<double>(state.range(1)) / 1000.0;
}

/// ER generation + full CSR build (offsets, flat neighbor/closed arrays,
/// bitset rows). The generator takes the no-dedup fast path.
void BM_GraphConstructER(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const double p = permille(state);
  Xoshiro256 rng(42);
  std::size_t edges = 0;
  for (auto _ : state) {
    const Graph g = erdos_renyi(k, p, rng);
    edges = g.num_edges();
    benchmark::DoNotOptimize(edges);
  }
  state.counters["edges"] = static_cast<double>(edges);
}

/// The runner's inner loop shape: walk every vertex's closed neighborhood
/// (one contiguous CSR row each) and touch every entry.
void BM_ClosedNeighborhoodSweep(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const Graph g = stress_graph(k, permille(state));
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < k; ++i) {
      for (const ArmId j : g.closed_neighborhood(static_cast<ArmId>(i))) {
        acc += j;
      }
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * g.num_edges() + k));
}

/// Y_x construction: closed-row bitset ORs over the flat word array.
void BM_StrategyNeighborhoodUnion(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const Graph g = stress_graph(k, permille(state));
  Xoshiro256 rng(7);
  ArmSet strategy;
  for (int i = 0; i < 8; ++i) {
    strategy.push_back(static_cast<ArmId>(rng.uniform_int(k)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.strategy_neighborhood(strategy).count());
  }
}

/// Covers every arm with one observation so no index is +inf. The all-+inf
/// opening is a one-off coupon-collector transient (~K·lnK/deg slots, in
/// which every slot ties across all unobserved arms); warming past it makes
/// the timed loop measure the steady-state slot cost a long-horizon run
/// actually pays — the regime the incremental dirty-set cache targets.
void warm_all_arms(SinglePlayPolicy& policy, std::size_t k, TimeSlot& t,
                   Xoshiro256& rng) {
  ObservationBatch warm;
  warm.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    warm.add(static_cast<ArmId>(i), rng.uniform());
  }
  ++t;
  policy.observe(0, t, warm.span());
}

/// One full DFL-SSO slot: select (O(K) index scan) + the batched
/// closed-neighborhood observe the runner performs. The K = 10^4 point is
/// the ISSUE's "construction + one policy step completes" stress criterion.
void BM_DflSsoSlot(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const Graph g = stress_graph(k, permille(state));
  const auto policy = make_single_play_policy("dfl-sso", 1 << 20, 7);
  policy->reset(g);
  Xoshiro256 rng(9);
  ObservationBatch batch;
  batch.reserve(k);
  TimeSlot t = 0;
  warm_all_arms(*policy, k, t, rng);
  for (auto _ : state) {
    ++t;
    const ArmId a = policy->select(t);
    batch.clear();
    for (const ArmId j : g.closed_neighborhood(a)) batch.add(j, rng.uniform());
    policy->observe(a, t, batch.span());
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(state.iterations());
}

/// Large-K slots: same loop as BM_DflSsoSlot but the graph is CSR-only
/// (kCsrOnly — the bitset rows alone would be 2.5 GB at K = 10^5 and
/// 250 GB at 10^6) and the second argument is the average degree, since
/// p_permille cannot express p = 2·10^-5. These points exist because of
/// the incremental dirty-set index cache: a slot refreshes only the
/// ~degree observed arms instead of all K.
void BM_DflSsoSlotLargeK(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const double p = static_cast<double>(state.range(1)) /
                   static_cast<double>(k - 1);
  Xoshiro256 graph_rng(42);
  const Graph g = erdos_renyi(k, p, graph_rng, ErSampling::kGeometric,
                              GraphStorage::kCsrOnly);
  const auto policy = make_single_play_policy("dfl-sso", 1 << 20, 7);
  policy->reset(g);
  Xoshiro256 rng(9);
  ObservationBatch batch;
  batch.reserve(k);
  TimeSlot t = 0;
  warm_all_arms(*policy, k, t, rng);
  for (auto _ : state) {
    ++t;
    const ArmId a = policy->select(t);
    batch.clear();
    for (const ArmId j : g.closed_neighborhood(a)) batch.add(j, rng.uniform());
    policy->observe(a, t, batch.span());
    benchmark::DoNotOptimize(a);
  }
  state.counters["edges"] = static_cast<double>(g.num_edges());
  state.SetItemsProcessed(state.iterations());
}

// Tracked points: dense K=400 p=0.6 (the ROADMAP target), mid-size K=1000
// p=0.1, and the K=10^4 sparse stress graph (p=0.002, ~100k edges).
BENCHMARK(BM_GraphConstructER)
    ->Args({400, 600})
    ->Args({1000, 100})
    ->Args({10000, 2})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClosedNeighborhoodSweep)
    ->Args({400, 600})
    ->Args({1000, 100})
    ->Args({10000, 2})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StrategyNeighborhoodUnion)
    ->Args({400, 600})
    ->Args({10000, 2});
BENCHMARK(BM_DflSsoSlot)
    ->Args({400, 600})
    ->Args({10000, 2})
    ->Unit(benchmark::kMicrosecond);
// Args: {K, average degree}. CSR-only storage; see BM_DflSsoSlotLargeK.
BENCHMARK(BM_DflSsoSlotLargeK)
    ->Args({100000, 20})
    ->Args({1000000, 20})
    ->Unit(benchmark::kMicrosecond);

#endif  // NCB_HAVE_BENCHMARK

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--table") == 0) {
      // Strip --table and hand the rest to the legacy CSV sweep.
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      return run_table_mode(argc - 1, argv);
    }
  }
#ifdef NCB_HAVE_BENCHMARK
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  // Without Google Benchmark only the regret table is available.
  return run_table_mode(argc, argv);
#endif
}
