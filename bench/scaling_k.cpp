// Scaling: DFL-SSO regret and wall time vs K at fixed horizon. Theorem 1
// predicts R_n = O(sqrt(nK)); the table reports measured regret alongside
// sqrt(K)-normalized regret (flat if the scaling holds) and the per-run
// wall time (per-step cost is O(K + deg)).
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "sim/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  CommonFlags flags = parse_common(argc, argv);
  if (!flags.quick && flags.horizon > 5000) {
    std::cout << "(note: --horizon capped at 5000 for this sweep)\n";
    flags.horizon = 5000;
  }
  if (flags.reps > 10) {
    std::cout << "(note: --reps capped at 10 for this sweep)\n";
    flags.reps = 10;
  }

  std::cout << "==========================================================\n"
               "Scaling: DFL-SSO vs K (ER p=0.3, n=" << flags.horizon << ")\n"
               "==========================================================\n"
               "K,final_cumulative_regret,ci95,regret_over_sqrt_nK,seconds\n";

  ThreadPool pool;
  for (const std::size_t k : {10u, 25u, 50u, 100u, 200u, 400u}) {
    ExperimentConfig config = fig3_config();
    apply_flags(config, flags);
    config.num_arms = k;
    Timer timer;
    const auto result =
        run_single_experiment(config, "dfl-sso", Scenario::kSso, &pool);
    const double norm =
        result.final_cumulative.mean() /
        std::sqrt(static_cast<double>(config.horizon) * static_cast<double>(k));
    std::cout << k << ',' << result.final_cumulative.mean() << ','
              << result.final_cumulative.ci95_halfwidth() << ',' << norm << ','
              << timer.elapsed_seconds() << '\n';
  }
  std::cout << "(regret_over_sqrt_nK stays O(1) if Theorem 1's scaling "
               "holds; it typically *decreases* because denser absolute "
               "neighborhoods mean more free observations per pull)\n";
  return 0;
}
