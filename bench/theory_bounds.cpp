// A5 — Theorem 1-4 bounds vs measured cumulative regret, one row per
// figure. The bounds are worst-case and loose; the table documents by how
// much, which EXPERIMENTS.md records.
#include <iostream>

#include "bench_common.hpp"
#include "graph/clique_cover.hpp"
#include "graph/partition.hpp"
#include "sim/thread_pool.hpp"
#include "strategy/strategy_graph.hpp"
#include "theory/bounds.hpp"

int main(int argc, char** argv) {
  using namespace ncb;
  using namespace ncb::bench;
  CommonFlags flags = parse_common(argc, argv);
  // Bounds comparison doesn't need many reps.
  if (flags.reps > 8) flags.reps = 8;

  std::cout << "==========================================================\n"
               "Theory: Theorem 1-4 bounds vs measured cumulative regret\n"
               "==========================================================\n"
               "experiment,policy,n,measured_Rn,theoretical_bound,ratio\n";

  ThreadPool pool;

  {  // Theorem 1 / Fig 3.
    ExperimentConfig config = fig3_config();
    apply_flags(config, flags);
    const auto result =
        run_single_experiment(config, "dfl-sso", Scenario::kSso, &pool);
    const auto instance = build_instance(config);
    const auto part = threshold_partition(
        instance.graph(), gaps_from_means(instance.means()),
        default_delta0(config.num_arms, config.horizon));
    const double bound = theorem1_bound(config.horizon, config.num_arms,
                                        part.clique_cover_size());
    std::cout << "fig3,dfl-sso," << config.horizon << ','
              << result.final_cumulative.mean() << ',' << bound << ','
              << result.final_cumulative.mean() / bound << '\n';
  }

  {  // Theorem 2 / Fig 4 (sparse).
    ExperimentConfig config = fig4_config(false);
    apply_flags(config, flags);
    if (flags.arms == 0) config.num_arms = 20;
    const auto result =
        run_combinatorial_experiment(config, "dfl-cso", Scenario::kCso, &pool);
    const auto instance = build_instance(config);
    const auto family = build_family(config, instance.graph());
    const Graph sg = build_strategy_graph(*family);
    const double bound = theorem2_bound(config.horizon, family->size(),
                                        greedy_clique_cover(sg).size());
    std::cout << "fig4a,dfl-cso," << config.horizon << ','
              << result.final_cumulative.mean() << ',' << bound << ','
              << result.final_cumulative.mean() / bound << '\n';
  }

  {  // Theorem 3 / Fig 5.
    ExperimentConfig config = fig5_config();
    apply_flags(config, flags);
    const auto result =
        run_single_experiment(config, "dfl-ssr", Scenario::kSsr, &pool);
    const double bound = theorem3_bound(config.horizon, config.num_arms);
    std::cout << "fig5,dfl-ssr," << config.horizon << ','
              << result.final_cumulative.mean() << ',' << bound << ','
              << result.final_cumulative.mean() / bound << '\n';
  }

  {  // Theorem 4 / Fig 6.
    ExperimentConfig config = fig6_config();
    apply_flags(config, flags);
    if (flags.arms == 0) config.num_arms = 20;
    const auto result =
        run_combinatorial_experiment(config, "dfl-csr", Scenario::kCsr, &pool);
    const auto instance = build_instance(config);
    const auto family = build_family(config, instance.graph());
    const double bound = theorem4_bound(config.horizon, config.num_arms,
                                        family->max_neighborhood_size());
    std::cout << "fig6,dfl-csr," << config.horizon << ','
              << result.final_cumulative.mean() << ',' << bound << ','
              << result.final_cumulative.mean() / bound << '\n';
  }

  std::cout << "\n(bounds are worst-case: measured/bound << 1 is expected; "
               "the point is the *scaling*, e.g. Thm 1's sqrt(nK))\n";
  return 0;
}
