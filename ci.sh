#!/usr/bin/env bash
# CI gate: the tier-1 verify command (ROADMAP.md) plus the sanitizer pass.
# Usage: ./ci.sh            — -Werror Release build, full ctest, observe-path
#                             smoke, then ASan/UBSan ctest.
#        NCB_CI_JOBS=N ./ci.sh — override parallelism.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${NCB_CI_JOBS:-$(nproc)}"

echo "== tier-1: -Werror Release build + full test suite =="
cmake -B build -S . -DNCB_WERROR=ON
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

if [ -x build/bench/micro_policies ]; then
  echo "== observe-path smoke: batched vs per-edge delivery must run =="
  ./build/bench/micro_policies --benchmark_filter='ObservePerSlot' \
      --benchmark_min_time=0.01
else
  echo "== micro_policies not built (Google Benchmark absent) — smoke skipped =="
fi

echo "== sanitizers: ASan/UBSan build + test suite =="
cmake -B build-asan -S . -DNCB_SANITIZE=ON -DNCB_BUILD_BENCH=OFF -DNCB_BUILD_EXAMPLES=OFF
cmake --build build-asan -j "$JOBS"
(cd build-asan && ctest --output-on-failure -j "$JOBS")

echo "== CI green =="
