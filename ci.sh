#!/usr/bin/env bash
# CI gate: the tier-1 verify command (ROADMAP.md) plus the sanitizer pass,
# with per-stage timing and a one-line recap so CI logs are skimmable.
#
# Usage: ./ci.sh            — everything: the release lane, then ASan/UBSan.
#        ./ci.sh release    — -Werror Release build, full ctest, observe-path
#                             smoke, sweep-engine smoke (resume round-trip,
#                             thread determinism, distributed dispatch incl.
#                             localhost-TCP workers), serve smoke (real server
#                             + driver + SIGTERM drain), replay smoke (offline
#                             panel over the serve log + logging-identity pin
#                             + sharded 2-worker panel), metrics identity
#                             (event logs and decision dumps byte-identical
#                             with metrics enabled, polled, and compiled out).
#        ./ci.sh asan       — ASan/UBSan build + test suite only. The release
#                             and asan lanes are disjoint so CI runs them as
#                             parallel jobs; the no-argument form is their
#                             union for local use.
#        ./ci.sh bench      — -Werror Release build, then the tracked
#                             benchmark suites (micro_policies + scaling_k)
#                             in Google Benchmark JSON mode, merged into
#                             BENCH_graph.json at the repo root, plus the
#                             serve throughput bench into BENCH_serve.json and
#                             the offline replay panel bench into
#                             BENCH_replay.json.
#        NCB_CI_JOBS=N ./ci.sh          — override parallelism.
#        NCB_BENCH_MIN_TIME=0.5 ./ci.sh bench — slower, steadier timings.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${NCB_CI_JOBS:-$(nproc)}"
RECAP=()

# stage <short-label> <heading> <fn...>: run, time, and record for the recap.
stage() {
  local label="$1" heading="$2" t0 dt
  shift 2
  echo "== ${heading} =="
  t0=$(date +%s)
  "$@"
  dt=$(( $(date +%s) - t0 ))
  RECAP+=("${label} OK (${dt}s)")
}

release_build() {
  cmake -B build -S . -DNCB_WERROR=ON
  cmake --build build -j "$JOBS"
}

tier1() {
  release_build
  (cd build && ctest --output-on-failure -j "$JOBS")
}

smoke() {
  if [ -x build/bench/micro_policies ]; then
    ./build/bench/micro_policies --benchmark_filter='ObservePerSlot' \
        --benchmark_min_time=0.01
  else
    echo "micro_policies not built (Google Benchmark absent) — smoke skipped"
  fi
}

# Sweep engine smoke: a tiny 2-policy grid (K <= 50) must (a) produce
# byte-identical JSON across thread counts, (b) round-trip through the
# --max-jobs / --resume path to the exact bytes of an uninterrupted run,
# and (c) produce those same bytes from the distributed dispatch layer —
# with 2 worker processes, and again while one worker is SIGKILLed mid-run
# (the NCB_DIST_KILL_KEY crash injection; see src/dist/worker.hpp) so the
# requeue path is exercised on every CI run. The fig3 paper grid then
# repeats the 4-worker + kill comparison at full size.
sweep_smoke() {
  local spec=build/sweep_smoke.spec
  cat > "$spec" <<'EOF'
name = ci-smoke
scenario = sso
policies = moss, dfl-sso
graphs = er
arms = 50
p = 0.3
horizons = 400
replications = 6
checkpoints = 12
seed = 7
EOF
  ./build/examples/ncb_sweep --spec "$spec" --out build/sweep_full.json \
      --csv build/sweep_full.csv --threads 4
  ./build/examples/ncb_sweep --spec "$spec" --out build/sweep_resume.json \
      --threads 1 --max-jobs 1
  ./build/examples/ncb_sweep --spec "$spec" --out build/sweep_resume.json \
      --threads 8 --resume
  cmp build/sweep_full.json build/sweep_resume.json
  echo "sweep smoke: resume round-trip byte-identical across 1/4/8 threads"

  ./build/examples/ncb_sweep --spec "$spec" --out build/sweep_dist.json \
      --workers 2
  cmp build/sweep_full.json build/sweep_dist.json
  NCB_DIST_KILL_KEY='sso:dfl-sso@er,K=50,p=0.3,n=400' \
      ./build/examples/ncb_sweep --spec "$spec" \
      --out build/sweep_dist_kill.json --workers 2 \
      | tee build/sweep_dist_kill.log
  # The injection must actually have fired (guards against key drift).
  grep -q 'requeued 1 assignments' build/sweep_dist_kill.log
  cmp build/sweep_full.json build/sweep_dist_kill.json
  echo "sweep smoke: distributed (2 workers, incl. SIGKILLed worker) byte-identical"

  # Localhost-TCP transport: a --listen coordinator with two
  # --worker-connect workers, both carrying the kill key — the injection
  # fires on attempt 1 only, so exactly one worker dies mid-run and the
  # requeued attempt must still land on the reference bytes.
  rm -f build/sweep_tcp.port
  ./build/examples/ncb_sweep --spec "$spec" --out build/sweep_tcp.json \
      --listen 127.0.0.1:0 --port-file build/sweep_tcp.port \
      > build/sweep_tcp.log 2>&1 &
  local coordinator=$! port='' w1 w2
  for _ in $(seq 1 200); do
    [ -s build/sweep_tcp.port ] && { port=$(cat build/sweep_tcp.port); break; }
    sleep 0.05
  done
  [ -n "$port" ]
  NCB_DIST_KILL_KEY='sso:dfl-sso@er,K=50,p=0.3,n=400' \
      ./build/examples/ncb_sweep --worker-connect "$port" > /dev/null 2>&1 &
  w1=$!
  NCB_DIST_KILL_KEY='sso:dfl-sso@er,K=50,p=0.3,n=400' \
      ./build/examples/ncb_sweep --worker-connect "$port" > /dev/null 2>&1 &
  w2=$!
  wait "$coordinator"
  wait "$w1" || true  # one of the two exits 137 (SIGKILL injection)
  wait "$w2" || true
  grep -q 'requeued 1 assignments' build/sweep_tcp.log
  cmp build/sweep_full.json build/sweep_tcp.json
  echo "sweep smoke: localhost TCP (2 workers, one SIGKILLed mid-run) byte-identical"

  ./build/examples/ncb_sweep --spec specs/fig3.sweep \
      --out build/fig3_inproc.json
  NCB_DIST_KILL_KEY='sso:moss@er,K=100,p=0.3,n=10000' \
      ./build/examples/ncb_sweep --spec specs/fig3.sweep \
      --out build/fig3_dist.json --workers 4 \
      | tee build/fig3_dist.log
  grep -q 'requeued 1 assignments' build/fig3_dist.log
  cmp build/fig3_inproc.json build/fig3_dist.json
  echo "sweep smoke: fig3 across 4 workers (one SIGKILLed) byte-identical"
}

# Serve smoke: a real ncb_serve process (engine + event log + reactor)
# answers 10k driver requests over 2 connections, then gets SIGTERM. The
# server must drain and exit 0, and the log must hold every decision with
# every feedback joined — the zero-torn/zero-lost-records guarantee, checked
# through the actual binaries on every CI run.
serve_smoke() {
  local sock=build/serve_smoke.sock log=build/serve_smoke.ncbl server_pid
  rm -f "$sock" "$log" build/serve_smoke_metrics.json
  ./build/examples/ncb_serve --socket "$sock" --policy 'eps-greedy:eps=0' \
      --epsilon 0.1 --arms 200 --graph er --edge-prob 0.1 --seed 7 \
      --log "$log" --metrics-out build/serve_smoke_metrics.json \
      --metrics-interval-ms 50 > build/serve_smoke.out 2>&1 &
  server_pid=$!
  for _ in $(seq 1 200); do [ -S "$sock" ] && break; sleep 0.05; done
  if ! ./build/examples/ncb_serve_driver --socket "$sock" --requests 10000 \
      --connections 2 --keys 64 --arms 200 --graph er --edge-prob 0.1 \
      --seed 7; then
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" || true
    cat build/serve_smoke.out >&2
    return 1
  fi
  # Live stats poll against the still-running server: the counter the
  # driver just drove must be visible over the StatsRequest frame.
  ./build/examples/ncb_stats --socket "$sock" --raw \
      | tee build/serve_smoke.stats
  grep -q '^serve\.decide\.requests 10000$' build/serve_smoke.stats
  grep -q '^serve\.engine\.feedbacks 10000$' build/serve_smoke.stats
  kill -TERM "$server_pid"
  wait "$server_pid"  # non-zero exit (or a crash) fails the stage
  # The periodic snapshotter must have left a final JSON snapshot behind.
  grep -q '"schema": 1' build/serve_smoke_metrics.json
  grep -q '"serve.decide.requests": 10000' build/serve_smoke_metrics.json
  ./build/examples/ncb_serve --inspect-log "$log" \
      | tee build/serve_smoke.inspect
  grep -q 'records=20000 decisions=10000 feedbacks=10000 joined=10000' \
      build/serve_smoke.inspect
  grep -q '"duplicate_feedbacks": 0' build/serve_smoke.inspect
  echo "serve smoke: 10k decisions / 2 connections, 10000/10000 joined, live stats polled, clean SIGTERM drain"
}

# Metrics must observe, never steer: one lockstep workload against (a) a
# metrics-enabled server, (b) the same server hammered by ncb_stats --watch
# mid-run, and (c) an NCB_NO_METRICS cross-build. Event logs and decision
# dumps must be byte-identical across all three.
metrics_identity() {
  cmake -B build-nometrics -S . -DNCB_WERROR=ON -DNCB_NO_METRICS=ON \
        -DNCB_BUILD_TESTS=OFF -DNCB_BUILD_BENCH=OFF > /dev/null
  cmake --build build-nometrics -j "$JOBS" --target ncb_serve > /dev/null
  local variant sock log dump server server_pid watcher_pid
  for variant in on polled nometrics; do
    sock="build/metrics_${variant}.sock"
    log="build/metrics_${variant}.ncbl"
    dump="build/metrics_${variant}.dump"
    rm -f "$sock" "$log" "$dump"
    server=./build/examples/ncb_serve
    [ "$variant" = nometrics ] && server=./build-nometrics/examples/ncb_serve
    "$server" --socket "$sock" --policy 'eps-greedy:eps=0' \
        --epsilon 0.1 --arms 200 --graph er --edge-prob 0.1 --seed 7 \
        --log "$log" --metrics-out "build/metrics_${variant}.json" \
        > "build/metrics_${variant}.out" 2>&1 &
    server_pid=$!
    for _ in $(seq 1 200); do [ -S "$sock" ] && break; sleep 0.05; done
    watcher_pid=""
    if [ "$variant" = polled ]; then
      ./build/examples/ncb_stats --socket "$sock" --watch --interval-ms 5 \
          > /dev/null 2>&1 &
      watcher_pid=$!
    fi
    ./build/examples/ncb_serve_driver --socket "$sock" --requests 2000 \
        --connections 2 --keys 64 --arms 200 --graph er --edge-prob 0.1 \
        --seed 7 --lockstep --dump "$dump" > /dev/null
    if [ -n "$watcher_pid" ]; then
      kill -TERM "$watcher_pid" 2>/dev/null || true
      wait "$watcher_pid" || true
    fi
    kill -TERM "$server_pid"
    wait "$server_pid"
  done
  cmp build/metrics_on.ncbl build/metrics_polled.ncbl
  cmp build/metrics_on.ncbl build/metrics_nometrics.ncbl
  cmp build/metrics_on.dump build/metrics_polled.dump
  cmp build/metrics_on.dump build/metrics_nometrics.dump
  echo "metrics identity: logs + dumps byte-identical (enabled / polled / NCB_NO_METRICS)"
}

# Replay smoke: the offline evaluator prices a candidate panel on the log
# the serve smoke just wrote, with the serving spec pinned as the logging
# policy. Asserts (a) the logging-identity line — the IPS estimate of the
# logging policy equals the log's empirical mean bitwise, or ncb_replay
# exits 1; (b) the panel JSON carries the schema header and estimator
# fields; (c) a second run is byte-identical; (d) a truncated copy of the
# log makes --inspect-log exit nonzero and say so.
replay_smoke() {
  local log=build/serve_smoke.ncbl
  if [ ! -f "$log" ]; then
    echo "error: $log missing — replay smoke must run after serve smoke" >&2
    return 1
  fi
  ./build/examples/ncb_replay --log "$log" \
      --logging-policy 'eps-greedy:eps=0' --policies 'ucb1;dfl-sso' \
      --arms 200 --graph er --edge-prob 0.1 --seed 7 --epsilon 0.1 \
      --out build/replay_smoke.json | tee build/replay_smoke.out
  grep -q 'logging identity OK' build/replay_smoke.out
  grep -q '"schema": 1' build/replay_smoke.json
  grep -q '"ips_mean":' build/replay_smoke.json
  grep -q '"dr_mean":' build/replay_smoke.json
  grep -q '"ess":' build/replay_smoke.json
  ./build/examples/ncb_replay --log "$log" \
      --logging-policy 'eps-greedy:eps=0' --policies 'ucb1;dfl-sso' \
      --arms 200 --graph er --edge-prob 0.1 --seed 7 --epsilon 0.1 \
      --out build/replay_smoke_2.json > /dev/null
  cmp build/replay_smoke.json build/replay_smoke_2.json
  # Sharded panel: candidates fanned across 2 worker processes must
  # reassemble to the single-process bytes, logging identity included.
  ./build/examples/ncb_replay --log "$log" \
      --logging-policy 'eps-greedy:eps=0' --policies 'ucb1;dfl-sso' \
      --arms 200 --graph er --edge-prob 0.1 --seed 7 --epsilon 0.1 \
      --workers 2 --out build/replay_smoke_dist.json \
      | tee build/replay_smoke_dist.out
  grep -q 'logging identity OK' build/replay_smoke_dist.out
  cmp build/replay_smoke.json build/replay_smoke_dist.json
  echo "replay smoke: sharded panel (2 workers) byte-identical to single-process"
  # Chop the tail mid-record: inspect must refuse to call the log intact.
  local size
  size=$(stat -c %s "$log")
  head -c $(( size - 3 )) "$log" > build/replay_smoke_truncated.ncbl
  if ./build/examples/ncb_serve --inspect-log build/replay_smoke_truncated.ncbl \
      > build/replay_truncated.out 2>&1; then
    echo "error: --inspect-log exited 0 on a truncated log" >&2
    return 1
  fi
  grep -qi 'truncated' build/replay_truncated.out
  echo "replay smoke: logging identity pinned, panel byte-identical, truncated log rejected"
}

asan() {
  cmake -B build-asan -S . -DNCB_SANITIZE=ON -DNCB_BUILD_BENCH=OFF \
        -DNCB_BUILD_EXAMPLES=OFF
  cmake --build build-asan -j "$JOBS"
  (cd build-asan && ctest --output-on-failure -j "$JOBS")
}

# Tracked benchmarks: micro_policies (policy/substrate hot paths) and
# scaling_k (relation-graph large-K hot paths), merged into one JSON file
# that seeds the perf trajectory. Keep BENCH_graph.json committed so every
# PR's numbers land in history.
bench_tracked() {
  if [ ! -x build/bench/micro_policies ] || [ ! -x build/bench/scaling_k ]; then
    echo "error: Google Benchmark binaries missing — cannot run tracked benches" >&2
    exit 1
  fi
  local min_time="${NCB_BENCH_MIN_TIME:-0.05}"
  ./build/bench/micro_policies --benchmark_out=build/bench_micro.json \
      --benchmark_out_format=json --benchmark_min_time="$min_time"
  ./build/bench/scaling_k --benchmark_out=build/bench_scaling.json \
      --benchmark_out_format=json --benchmark_min_time="$min_time"
  python3 - <<'PY'
import json

merged = {"schema": 1, "benches": {}}
for name, path in (("micro_policies", "build/bench_micro.json"),
                   ("scaling_k", "build/bench_scaling.json")):
    with open(path) as f:
        merged["benches"][name] = json.load(f)
with open("BENCH_graph.json", "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print("wrote BENCH_graph.json")
PY
  bench_regression_guard
}

# Regression guard over the tracked hot-path benches: compare the fresh
# timings against the committed BENCH_graph.json baseline (HEAD) and fail
# if any guarded benchmark got more than 1.5x slower. The report always
# lands in build/bench_regression.txt (uploaded as a CI artifact) so a
# red run shows exactly which point moved. Benchmarks new in this run
# (absent from the baseline) are reported but never fail the guard.
bench_regression_guard() {
  if ! git show HEAD:BENCH_graph.json > build/bench_baseline.json 2>/dev/null; then
    echo "bench guard: no committed BENCH_graph.json baseline — skipped" \
        | tee build/bench_regression.txt
    return 0
  fi
  python3 - <<'PY'
import json
import sys

GUARDED_PREFIXES = ("BM_DflSsoSlot", "BM_ClosedNeighborhoodSweep")
THRESHOLD = 1.5

def guarded_times(path):
    with open(path) as f:
        merged = json.load(f)
    out = {}
    for suite in merged.get("benches", {}).values():
        for b in suite.get("benchmarks", []):
            if b.get("run_type", "iteration") != "iteration":
                continue
            name = b["name"]
            if name.startswith(GUARDED_PREFIXES):
                # One entry per name in our suites; keep the median-like
                # real_time google-benchmark reports for the run.
                out[name] = (b["real_time"], b["time_unit"])
    return out

base = guarded_times("build/bench_baseline.json")
fresh = guarded_times("BENCH_graph.json")
lines, failures = [], []
for name in sorted(fresh):
    t, unit = fresh[name]
    if name not in base:
        lines.append(f"NEW      {name}: {t:.1f} {unit} (no baseline)")
        continue
    t0, unit0 = base[name]
    if unit0 != unit:
        lines.append(f"SKIP     {name}: unit changed {unit0} -> {unit}")
        continue
    ratio = t / t0 if t0 > 0 else float("inf")
    tag = "REGRESS " if ratio > THRESHOLD else ("OK      " if ratio >= 1 else "FASTER  ")
    lines.append(f"{tag} {name}: {t0:.1f} -> {t:.1f} {unit} ({ratio:.2f}x)")
    if ratio > THRESHOLD:
        failures.append(name)
for name in sorted(set(base) - set(fresh)):
    lines.append(f"GONE     {name}: present in baseline, missing from run")

report = "\n".join(lines) + "\n"
with open("build/bench_regression.txt", "w") as f:
    f.write(report)
sys.stdout.write(report)
if failures:
    print(f"bench guard: {len(failures)} benchmark(s) regressed beyond "
          f"{THRESHOLD}x -- see build/bench_regression.txt")
    sys.exit(1)
print("bench guard: no tracked benchmark regressed beyond 1.5x")
PY
}

# Serve throughput bench: the load driver against a real K=10^4 server
# (event log on), merged into tracked BENCH_serve.json. Guard: fail when
# sustained QPS drops below 1/1.5 of the committed baseline.
bench_serve() {
  local sock=build/bench_serve.sock log=build/bench_serve.ncbl server_pid
  rm -f "$sock" "$log"
  ./build/examples/ncb_serve --socket "$sock" --policy 'eps-greedy:eps=0' \
      --epsilon 0.05 --arms 10000 --graph er --edge-prob 0.001 \
      --seed 20170605 --log "$log" > build/bench_serve_server.out 2>&1 &
  server_pid=$!
  for _ in $(seq 1 200); do [ -S "$sock" ] && break; sleep 0.05; done
  if ! ./build/examples/ncb_serve_driver --socket "$sock" --requests 200000 \
      --connections 4 --pipeline 8 --keys 1024 --arms 10000 --graph er \
      --edge-prob 0.001 --seed 20170605 --reward noisy \
      --out build/bench_serve_run.json; then
    kill -TERM "$server_pid" 2>/dev/null || true
    wait "$server_pid" || true
    cat build/bench_serve_server.out >&2
    return 1
  fi
  kill -TERM "$server_pid"
  wait "$server_pid"
  # Every decision and every feedback must be in the log, fully joined.
  ./build/examples/ncb_serve --inspect-log "$log" \
      | tee build/bench_serve.inspect
  grep -q 'records=400000 decisions=200000 feedbacks=200000 joined=200000' \
      build/bench_serve.inspect
  if git show HEAD:BENCH_serve.json > build/bench_serve_baseline.json \
      2>/dev/null; then
    :
  else
    rm -f build/bench_serve_baseline.json
  fi
  # Metrics-overhead microbench: per-event instrument costs ride along in
  # BENCH_serve.json next to the end-to-end QPS, under the same 1.5x guard.
  if [ -x build/bench/obs_overhead ]; then
    ./build/bench/obs_overhead --benchmark_out=build/obs_overhead.json \
        --benchmark_out_format=json \
        --benchmark_min_time="${NCB_BENCH_MIN_TIME:-0.05}"
  else
    rm -f build/obs_overhead.json
  fi
  python3 - <<'PY'
import json
import os
import sys

THRESHOLD = 1.5

with open("build/bench_serve_run.json") as f:
    run = json.load(f)
payload = {"schema": 1, "serve": run}
if os.path.exists("build/obs_overhead.json"):
    with open("build/obs_overhead.json") as f:
        obs = json.load(f)
    payload["obs"] = {b["name"]: round(b["real_time"], 2)
                      for b in obs["benchmarks"]}
with open("BENCH_serve.json", "w") as f:
    json.dump(payload, f, indent=1)
    f.write("\n")
print(f"wrote BENCH_serve.json: {run['qps']:.0f} qps, "
      f"p50={run['p50_us']} us p99={run['p99_us']} us "
      f"p999={run['p999_us']} us"
      + (f", {len(payload.get('obs', {}))} obs microbenches"
         if "obs" in payload else ""))

if not os.path.exists("build/bench_serve_baseline.json"):
    print("serve bench guard: no committed BENCH_serve.json baseline — skipped")
    sys.exit(0)
with open("build/bench_serve_baseline.json") as f:
    base_all = json.load(f)
base = base_all["serve"]
ratio = base["qps"] / run["qps"] if run["qps"] > 0 else float("inf")
print(f"serve bench guard: qps {base['qps']:.0f} -> {run['qps']:.0f} "
      f"({ratio:.2f}x slower)" if ratio > 1 else
      f"serve bench guard: qps {base['qps']:.0f} -> {run['qps']:.0f} (faster)")
if ratio > THRESHOLD:
    print(f"serve bench guard: throughput regressed beyond {THRESHOLD}x")
    sys.exit(1)

worst_name, worst = "", 0.0
for name, base_ns in base_all.get("obs", {}).items():
    ns = payload.get("obs", {}).get(name)
    if ns is None or base_ns <= 0:
        continue
    obs_ratio = ns / base_ns
    print(f"obs bench guard: {name} {base_ns:.1f} -> {ns:.1f} ns "
          f"({obs_ratio:.2f}x)")
    if obs_ratio > worst:
        worst_name, worst = name, obs_ratio
if worst > THRESHOLD:
    print(f"obs bench guard: {worst_name} regressed beyond {THRESHOLD}x")
    sys.exit(1)
PY
}

# Replay panel throughput bench: re-price a 3-policy panel on the 400k-record
# log the serve bench just wrote (K=10^4), merged into tracked
# BENCH_replay.json. Guard: fail when panel events/s drops below 1/1.5 of
# the committed baseline. The logging-identity pin runs here too — ncb_replay
# exits 1 itself if the IPS-of-logging-policy identity breaks at this scale.
bench_replay() {
  local log=build/bench_serve.ncbl
  if [ ! -f "$log" ]; then
    echo "error: $log missing — replay bench must run after the serve bench" >&2
    return 1
  fi
  ./build/examples/ncb_replay --log "$log" \
      --logging-policy 'eps-greedy:eps=0' --policies 'eps-greedy:eps=0.1;ucb1' \
      --arms 10000 --graph er --edge-prob 0.001 --seed 20170605 \
      --epsilon 0.05 --out build/bench_replay_panel.json \
      --bench-out build/bench_replay_run.json | tee build/bench_replay.out
  grep -q 'logging identity OK' build/bench_replay.out
  python3 - <<'PY'
import json
import os
import sys

THRESHOLD = 1.5

with open("build/bench_replay_run.json") as f:
    run = json.load(f)
with open("BENCH_replay.json", "w") as f:
    json.dump({"schema": 1, "replay": run}, f, indent=1)
    f.write("\n")
print(f"wrote BENCH_replay.json: {run['events_per_s']:.0f} events/s "
      f"({run['records']} records x {run['policies']} policies in "
      f"{run['elapsed_s']:.2f} s)")

if os.system("git show HEAD:BENCH_replay.json > build/bench_replay_baseline.json 2>/dev/null") != 0:
    print("replay bench guard: no committed BENCH_replay.json baseline — skipped")
    sys.exit(0)
with open("build/bench_replay_baseline.json") as f:
    base = json.load(f)["replay"]
rate, base_rate = run["events_per_s"], base["events_per_s"]
ratio = base_rate / rate if rate > 0 else float("inf")
print(f"replay bench guard: {base_rate:.0f} -> {rate:.0f} events/s "
      + (f"({ratio:.2f}x slower)" if ratio > 1 else "(faster)"))
if ratio > THRESHOLD:
    print(f"replay bench guard: panel throughput regressed beyond {THRESHOLD}x")
    sys.exit(1)
PY
}

release_lane() {
  stage "tier-1" "tier-1: -Werror Release build + full test suite" tier1
  stage "smoke" "observe-path smoke: batched vs per-edge delivery must run" smoke
  stage "sweep" "sweep smoke: resume + thread/worker determinism + kill-requeue" \
        sweep_smoke
  stage "serve" "serve smoke: 10k decisions over 2 connections + SIGTERM drain" \
        serve_smoke
  stage "replay" "replay smoke: offline panel + logging-identity pin" \
        replay_smoke
  stage "metrics" "metrics identity: bytes unchanged with metrics on/polled/off" \
        metrics_identity
}

asan_lane() {
  stage "asan" "sanitizers: ASan/UBSan build + test suite" asan
}

case "${1:-}" in
  bench)
    stage "build" "-Werror Release build" release_build
    stage "bench" "tracked benches: micro_policies + scaling_k -> BENCH_graph.json" \
          bench_tracked
    stage "serve-bench" "serve bench: 200k decisions @ K=10^4 -> BENCH_serve.json" \
          bench_serve
    stage "replay-bench" "replay bench: 3-policy panel @ K=10^4 -> BENCH_replay.json" \
          bench_replay
    ;;
  release)
    release_lane
    ;;
  asan)
    asan_lane
    ;;
  "")
    release_lane
    asan_lane
    ;;
  *)
    echo "usage: $0 [release|asan|bench]" >&2
    exit 2
    ;;
esac

echo "== CI green =="
recap_line=""
for r in "${RECAP[@]}"; do recap_line+="${recap_line:+ · }${r}"; done
echo "${recap_line}"
