// Online advertising (the paper's combinatorial-play motivation, §II):
// a website can show at most M ads per page view. Ads are arms; the
// relation graph links ads of the same product category — showing one ad
// reveals click-through feedback for its related ads (users who ignore a
// running-shoe ad tell you something about the other shoe ads).
//
// We compare DFL-CSO (Algorithm 2, exploits side observation across the
// strategy relation graph) against CUCB (no side bonus) under CSO
// semantics, with category-clustered ads.
#include <iostream>

#include "core/dfl_cso.hpp"
#include "core/cucb.hpp"
#include "graph/generators.hpp"
#include "sim/replication.hpp"

int main() {
  using namespace ncb;

  // 12 ads in 3 product categories of 4; same-category ads are related.
  constexpr std::size_t kAds = 12, kCategories = 3, kSlotsPerPage = 2;
  auto graph = std::make_shared<const Graph>(
      disjoint_cliques(kCategories, kAds / kCategories));

  // Click-through rates: category 2 hides the two best ads.
  std::vector<double> ctr{0.04, 0.06, 0.05, 0.03,   // category 0
                          0.08, 0.07, 0.06, 0.05,   // category 1
                          0.02, 0.12, 0.11, 0.03};  // category 2
  BanditInstance instance = bernoulli_instance(*graph, ctr);

  // Feasible strategies: every set of at most M ads.
  const auto family = std::make_shared<const FeasibleSet>(
      make_subset_family(graph, kSlotsPerPage));
  std::cout << "ad inventory: " << kAds << " ads, " << family->size()
            << " feasible placements (M = " << kSlotsPerPage << ")\n";

  ReplicationOptions options;
  options.replications = 10;
  options.runner.horizon = 8000;
  ThreadPool pool;
  options.pool = &pool;

  const auto dfl = run_replicated_combinatorial(
      [&](std::uint64_t seed) -> std::unique_ptr<CombinatorialPolicy> {
        return std::make_unique<DflCso>(family, DflCsoOptions{.seed = seed});
      },
      instance, *family, Scenario::kCso, options);
  const auto cucb = run_replicated_combinatorial(
      [&](std::uint64_t seed) -> std::unique_ptr<CombinatorialPolicy> {
        return std::make_unique<Cucb>(family, CucbOptions{.seed = seed});
      },
      instance, *family, Scenario::kCso, options);

  std::cout << "optimal placement CTR sum (lambda*): " << dfl.optimal_per_slot
            << "  (ads 9+10)\n"
            << "cumulative missed clicks after " << options.runner.horizon
            << " page views:\n"
            << "  DFL-CSO (uses category feedback): "
            << dfl.final_cumulative.mean() << " (+/-"
            << dfl.final_cumulative.ci95_halfwidth() << ")\n"
            << "  CUCB    (ignores it):             "
            << cucb.final_cumulative.mean() << " (+/-"
            << cucb.final_cumulative.ci95_halfwidth() << ")\n";
  const double factor =
      cucb.final_cumulative.mean() / std::max(dfl.final_cumulative.mean(), 1e-9);
  std::cout << "side observation buys a " << factor << "x regret reduction\n";

  // Variant: a diversity constraint — one page slot per category, at most
  // one ad from each (a partition matroid over 3 slots). Pairing the two
  // best ads {9,10} is now infeasible (same category); DFL-CSO learns the
  // best diverse placement instead.
  std::vector<int> categories(kAds);
  for (std::size_t i = 0; i < kAds; ++i) {
    categories[i] = static_cast<int>(i / (kAds / kCategories));
  }
  const auto diverse_family = std::make_shared<const FeasibleSet>(
      make_partition_matroid_family(graph, categories, /*capacity=*/1));
  std::cout << "\nwith a one-ad-per-category constraint: "
            << diverse_family->size() << " feasible placements\n";
  const auto diverse = run_replicated_combinatorial(
      [&](std::uint64_t seed) -> std::unique_ptr<CombinatorialPolicy> {
        return std::make_unique<DflCso>(diverse_family,
                                        DflCsoOptions{.seed = seed});
      },
      instance, *diverse_family, Scenario::kCso, options);
  std::cout << "best diverse placement CTR sum: " << diverse.optimal_per_slot
            << " (vs unconstrained " << dfl.optimal_per_slot << ")\n"
            << "DFL-CSO cumulative regret under the matroid constraint: "
            << diverse.final_cumulative.mean() << " (+/-"
            << diverse.final_cumulative.ci95_halfwidth() << ")\n";
  return 0;
}
