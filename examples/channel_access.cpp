// Opportunistic channel access in cognitive radio (one of the paper's §I
// motivating applications): a secondary user probes one channel per slot;
// spectrum sensing on adjacent channels comes for free (side observation),
// because the radio's FFT window covers neighboring frequencies.
//
// Channels form a ring lattice with a few long-range correlations
// (Watts–Strogatz); availability is Bernoulli. We compare DFL-SSO, UCB-N,
// and MOSS under SSO semantics.
#include <iomanip>
#include <iostream>

#include "core/dfl_sso.hpp"
#include "core/moss.hpp"
#include "core/ucb_n.hpp"
#include "graph/generators.hpp"
#include "sim/replication.hpp"

int main() {
  using namespace ncb;

  // 32 channels; sensing a channel also senses its 2 neighbors per side,
  // with 10% of adjacencies rewired to model cross-band interference.
  Xoshiro256 rng(99);
  Graph graph = watts_strogatz(32, 2, 0.1, rng);

  // Channel availability: a quiet region around channels 20-25.
  std::vector<double> availability(32);
  for (std::size_t c = 0; c < 32; ++c) {
    availability[c] = (c >= 20 && c <= 25) ? 0.85 - 0.02 * (c - 20)
                                           : 0.25 + 0.3 * ((c * 7) % 10) / 10.0;
  }
  BanditInstance instance = bernoulli_instance(graph, availability);
  std::cout << "best channel: " << instance.best_arm() << " (available "
            << instance.best_mean() * 100 << "% of slots)\n";

  ReplicationOptions options;
  options.replications = 12;
  options.runner.horizon = 8000;
  ThreadPool pool;
  options.pool = &pool;

  struct Entry {
    std::string name;
    SinglePolicyFactory factory;
  };
  const std::vector<Entry> policies{
      {"DFL-SSO",
       [](std::uint64_t seed) -> std::unique_ptr<SinglePlayPolicy> {
         return std::make_unique<DflSso>(DflSsoOptions{.seed = seed});
       }},
      {"UCB-N",
       [](std::uint64_t seed) -> std::unique_ptr<SinglePlayPolicy> {
         return std::make_unique<UcbN>(UcbNOptions{.seed = seed});
       }},
      {"MOSS",
       [&](std::uint64_t seed) -> std::unique_ptr<SinglePlayPolicy> {
         return std::make_unique<Moss>(
             MossOptions{.horizon = options.runner.horizon, .seed = seed});
       }},
  };

  std::cout << "\nmissed transmission opportunities over "
            << options.runner.horizon << " slots:\n";
  for (const auto& entry : policies) {
    const auto result = run_replicated_single(entry.factory, instance,
                                              Scenario::kSso, options);
    std::cout << "  " << std::setw(8) << std::left << entry.name << std::right
              << " cumulative regret = " << std::setw(8)
              << result.final_cumulative.mean() << "  (R_n/n = "
              << result.final_cumulative.mean() /
                     static_cast<double>(options.runner.horizon)
              << ")\n";
  }
  std::cout << "\nfree adjacent-channel sensing (DFL-SSO, UCB-N) beats "
               "probe-only learning (MOSS).\n";
  return 0;
}
