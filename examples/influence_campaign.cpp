// Influence campaign (the paper's CSR scenario): each week a brand gives
// free samples to M seed users of a social network. Every seeded user and
// *all their friends* may then buy (combinatorial side reward): the payout
// is Σ_{j∈Y_x} X_j over the union of the seeds' closed neighborhoods. The
// right seed set maximizes neighborhood coverage value, not individual
// conversion — a set-cover flavored bandit.
//
// DFL-CSR (Algorithm 4) learns per-user conversion rates from observed
// neighborhoods and re-optimizes every week through a coverage oracle. We
// compare the exact oracle against the scalable lazy-greedy oracle and
// against CUCB (which ignores the influence structure entirely).
#include <iostream>

#include "core/cucb.hpp"
#include "core/dfl_csr.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sim/replication.hpp"

int main() {
  using namespace ncb;

  // 24 users, preferential attachment (hubs exist), seed M = 2 per week.
  Xoshiro256 rng(1503);
  auto graph = std::make_shared<const Graph>(barabasi_albert(24, 2, rng));
  std::cout << "social graph: " << compute_metrics(*graph).to_string() << '\n';

  BanditInstance instance = random_bernoulli_instance(*graph, rng, 0.05, 0.6);
  const auto family =
      std::make_shared<const FeasibleSet>(make_subset_family(graph, 2));
  std::cout << "|F| = " << family->size() << " seed sets, N = max|Y_x| = "
            << family->max_neighborhood_size() << '\n';

  // Ground truth for orientation: the best seed set under CSR.
  const StrategyId best = optimal_strategy(instance, Scenario::kCsr, *family);
  std::cout << "optimal seeds: {";
  for (std::size_t i = 0; i < family->strategy(best).size(); ++i) {
    if (i) std::cout << ',';
    std::cout << family->strategy(best)[i];
  }
  std::cout << "} with sigma* = "
            << instance.strategy_side_reward_mean(family->strategy(best))
            << " expected purchases/week\n\n";

  ReplicationOptions options;
  options.replications = 10;
  options.runner.horizon = 8000;
  ThreadPool pool;
  options.pool = &pool;

  struct Entry {
    std::string label;
    CombinatorialPolicyFactory factory;
  };
  const std::vector<Entry> entries{
      {"DFL-CSR (exact oracle)",
       [&](std::uint64_t s) -> std::unique_ptr<CombinatorialPolicy> {
         return std::make_unique<DflCsr>(family, nullptr,
                                         DflCsrOptions{.seed = s});
       }},
      {"DFL-CSR (lazy greedy) ",
       [&](std::uint64_t s) -> std::unique_ptr<CombinatorialPolicy> {
         return std::make_unique<DflCsr>(
             family, std::make_shared<const GreedyCoverageOracle>(),
             DflCsrOptions{.seed = s});
       }},
      {"CUCB (no influence)   ",
       [&](std::uint64_t s) -> std::unique_ptr<CombinatorialPolicy> {
         return std::make_unique<Cucb>(family, CucbOptions{.seed = s});
       }},
  };

  std::cout << "cumulative missed purchases over " << options.runner.horizon
            << " weeks (regret vs sigma*):\n";
  for (const auto& entry : entries) {
    const auto result = run_replicated_combinatorial(
        entry.factory, instance, *family, Scenario::kCsr, options);
    std::cout << "  " << entry.label << " : "
              << result.final_cumulative.mean() << " (+/-"
              << result.final_cumulative.ci95_halfwidth() << ")\n";
  }
  std::cout << "\nCUCB maximizes the seeds' own conversions and ignores the "
               "network;\nDFL-CSR covers the high-value neighborhoods.\n";
  return 0;
}
