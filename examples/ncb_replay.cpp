// ncb_replay — counterfactual replay & offline policy evaluation.
//
// Scans an ncb_serve event log, joins decisions to rewards, and prices a
// panel of candidate policy specs on the logged traffic via IPS, SNIPS,
// and doubly-robust estimation (src/replay/). One logged run evaluates an
// arbitrary panel without re-serving; the panel JSON merges with sweep
// emitter output downstream.
//
// The graph flags must match the serving run (the log stores traffic, not
// the graph), and --epsilon/--seed must match it for --logging-policy to
// reproduce the served actions exactly. With those matched, the logging
// policy's IPS estimate equals the log's empirical mean reward bitwise —
// ncb_replay verifies that identity and fails loudly when it breaks.
//
// Usage:
//   ncb_replay --log <file> --policies 'ucb1;eps-greedy:eps=0.1'
//              [--logging-policy 'eps-greedy:eps=0'] [--epsilon 0.05]
//              [--arms 100] [--graph er] [--edge-prob 0.3]
//              [--family-param 4] [--seed N] [--horizon N]
//              [--workers N | --listen host:port [--port-file F]]
//              [--out panel.json] [--bench-out bench.json]
#include <unistd.h>

#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dist/process.hpp"
#include "exp/emitters.hpp"
#include "exp/sweep_spec.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "replay/dispatch.hpp"
#include "replay/replay.hpp"
#include "serve/event_log.hpp"
#include "sim/experiment.hpp"
#include "util/arg_parse.hpp"
#include "util/timer.hpp"

namespace {

using namespace ncb;

int usage(const char* program) {
  std::cerr
      << "usage: " << program << " --log <file> --policies 'spec;spec;...'\n"
         "  --log <file>        ncb_serve event log to replay\n"
         "  --policies <list>   ';'-separated candidate policy specs\n"
         "                      (specs may contain commas: 'ucb1;moss:horizon=auto')\n"
         "  --logging-policy S  the spec the log was served with; replayed as\n"
         "                      a candidate and pinned: its IPS estimate must\n"
         "                      equal the log's empirical mean exactly\n"
         "  --epsilon E         engine-level exploration assumed for every\n"
         "                      candidate (match the serving run; default 0.05)\n"
         "  --arms K            number of arms (default: 100)\n"
         "  --graph <family>    er|complete|empty|star|cycle|cliques|ba|ws\n"
         "  --edge-prob P       ER edge probability / WS beta (default: 0.3)\n"
         "  --family-param N    cliques count / BA attach / WS k (default: 4)\n"
         "  --seed N            master seed (match the serving run)\n"
         "  --horizon N         horizon hint for policy builders (0 = anytime)\n"
         "  --workers N         shard the panel across N spawned worker\n"
         "                      processes (0 = single process; output is\n"
         "                      byte-identical either way)\n"
         "  --listen H:P        accept TCP replay workers instead of spawning\n"
         "                      (port 0 = kernel-assigned; exclusive with\n"
         "                      --workers)\n"
         "  --port-file F       write the bound host:port to F (with --listen)\n"
         "  --out <file>        write the panel JSON document\n"
         "  --metrics-out <f>   write a final metrics-registry snapshot\n"
         "                      (JSON: replay.* and, with --workers, the\n"
         "                      dist.workers.*/dist.bytes.* fleet counters)\n"
         "  --bench-out <file>  write panel throughput JSON (events/s)\n"
         "(--worker-fd N and --worker-connect H:P are internal: they run the\n"
         " replay worker loop over an inherited fd / a TCP connection)\n";
  return 2;
}

/// Splits the --policies list on ';' (specs contain commas, so the sweep
/// comma convention cannot apply here). Empty segments are dropped.
std::vector<std::string> split_panel(const std::string& text) {
  std::vector<std::string> specs;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ';')) {
    if (!item.empty()) specs.push_back(item);
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParse args(argc, argv);
    if (args.has("help")) return usage(args.program().c_str());

    // Internal worker modes: everything (graph config, event stream,
    // candidate assignments) arrives over the wire, so no other flags.
    if (args.has("worker-fd")) {
      replay::ReplayWorkerOptions worker;
      worker.fd = static_cast<int>(args.get_int("worker-fd", -1));
      return replay::run_replay_worker(worker);
    }
    if (args.has("worker-connect")) {
      const net::HostPort address = net::parse_host_port(
          args.get_string("worker-connect", ""), "--worker-connect");
      replay::ReplayWorkerOptions worker;
      worker.fd = net::tcp_connect_retry(address, 5000, 10000);
      const int code = replay::run_replay_worker(worker);
      ::close(worker.fd);
      return code;
    }

    const std::string log_path = args.get_string("log", "");
    if (log_path.empty()) return usage(args.program().c_str());

    const auto reject = [&](const std::string& message) {
      std::cerr << args.program() << ": error: " << message << '\n';
      return 2;
    };
    const int workers = args.get_int("workers", 0);
    if (workers < 0) return reject("--workers must be >= 0 (0 = in-process)");
    const std::string listen_text = args.get_string("listen", "");
    const std::string port_file = args.get_string("port-file", "");
    if (!listen_text.empty() && workers > 0) {
      return reject(
          "--listen and --workers are mutually exclusive: a TCP fleet is "
          "whoever connects, not a spawned count");
    }
    if (!port_file.empty() && listen_text.empty()) {
      return reject("--port-file requires --listen");
    }
    net::HostPort listen_address;
    if (!listen_text.empty()) {
      listen_address = net::parse_host_port(listen_text, "--listen");
    }

    const std::string logging_spec = args.get_string("logging-policy", "");
    std::vector<std::string> specs = split_panel(args.get_string("policies", ""));
    // The logging policy rides at the front of the panel (once).
    if (!logging_spec.empty()) {
      std::vector<std::string> panel{logging_spec};
      for (const std::string& spec : specs) {
        if (spec != logging_spec) panel.push_back(spec);
      }
      specs = std::move(panel);
    }
    if (specs.empty()) {
      std::cerr << args.program()
                << ": error: no candidate policies (--policies / "
                   "--logging-policy)\n";
      return 2;
    }

    ExperimentConfig config;
    config.graph_family = exp::parse_family(args.get_string("graph", "er"));
    config.num_arms = static_cast<std::size_t>(args.get_int("arms", 100));
    config.edge_probability = args.get_double("edge-prob", 0.3);
    config.family_param =
        static_cast<std::size_t>(args.get_int("family-param", 4));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20170605));

    replay::ReplayOptions options;
    options.epsilon = args.get_double("epsilon", 0.05);
    options.seed = config.seed;
    options.horizon = args.get_int("horizon", 0);

    const serve::EventLogScan scan = serve::read_event_log(log_path);
    std::cout << "ncb_replay: " << log_path << ": " << scan.decisions
              << " decisions, " << scan.feedbacks << " feedbacks"
              << (scan.truncated_tail ? " (truncated tail — replaying the "
                                        "intact prefix)"
                                      : "")
              << '\n';

    const Graph graph = build_graph(config);
    Timer timer;
    replay::PanelResult panel;
    if (workers > 0 || !listen_text.empty()) {
      // Distributed path: one candidate per worker assignment; the merged
      // panel is byte-identical to the in-process one (replay/dispatch.hpp).
      std::unique_ptr<net::StreamTransport> transport;
      if (!listen_text.empty()) {
        auto tcp = std::make_unique<net::TcpServerTransport>(listen_address);
        const std::string bound = net::format_host_port(tcp->bound());
        std::cout << "ncb_replay: " << specs.size()
                  << " candidates, listening on " << bound
                  << " (start workers with --worker-connect " << bound
                  << ")\n";
        if (!port_file.empty()) exp::write_file(port_file, bound + "\n");
        transport = std::move(tcp);
      } else {
        transport = std::make_unique<net::ProcessTransport>(
            std::vector<std::string>{dist::self_exe_path(args.program())});
        std::cout << "ncb_replay: " << specs.size() << " candidates across "
                  << workers << " workers\n";
      }
      replay::ReplayDispatchOptions dispatch;
      dispatch.transport = transport.get();
      dispatch.workers = static_cast<std::size_t>(workers);
      dispatch.graph_config = &config;
      const replay::DistPanelSummary summary =
          replay::run_distributed_panel(graph, scan, specs, options, dispatch);
      panel = summary.panel;
      if (summary.requeues > 0) {
        std::cout << "(requeued " << summary.requeues
                  << " candidates after worker loss — output unaffected)\n";
      }
      for (const net::WorkerSummary& w : summary.workers) {
        std::cout << "  worker " << w.id << " (" << w.where;
        if (!w.host.empty()) {
          std::cout << ", " << w.host << "/" << w.remote_pid;
        }
        std::cout << "): " << w.jobs_done << " candidates, "
                  << exp::json_number(w.seconds) << "s, " << w.bytes_out
                  << "B out / " << w.bytes_in << "B in"
                  << (w.lost_in_flight ? "  [lost mid-candidate]"
                                       : (w.lost ? "  [lost]" : ""))
                  << "\n";
      }
    } else {
      panel = replay::replay_panel(graph, scan, specs, options);
    }
    const double elapsed = timer.elapsed_seconds();

    std::cout << "ncb_replay: joined " << panel.joined << "/"
              << panel.decisions << ", empirical mean "
              << exp::json_number(panel.empirical_mean) << " +/- "
              << exp::json_number(panel.empirical_se)
              << ", propensity floor "
              << exp::json_number(panel.min_propensity) << '\n';

    std::vector<std::string> lines;
    lines.reserve(panel.candidates.size());
    for (const replay::CandidateSummary& candidate : panel.candidates) {
      exp::ReplayRecord record;
      record.policy = candidate.spec;
      record.description = candidate.description;
      record.logging =
          !logging_spec.empty() && candidate.spec == logging_spec;
      record.epsilon = options.epsilon;
      record.seed = options.seed;
      record.decisions = candidate.decisions;
      record.events = candidate.events;
      record.matched = candidate.matched;
      record.ips_mean = candidate.ips_mean;
      record.ips_se = candidate.ips_se;
      record.snips = candidate.snips;
      record.dr_mean = candidate.dr_mean;
      record.dr_se = candidate.dr_se;
      record.ess = candidate.ess;
      record.max_weight = candidate.max_weight;
      lines.push_back(exp::render_replay_json(record));

      const double match_pct =
          candidate.events
              ? 100.0 * static_cast<double>(candidate.matched) /
                    static_cast<double>(candidate.events)
              : 0.0;
      std::cout << "  " << candidate.spec << ": ips="
                << exp::json_number(candidate.ips_mean) << " +/- "
                << exp::json_number(candidate.ips_se)
                << " snips=" << exp::json_number(candidate.snips)
                << " dr=" << exp::json_number(candidate.dr_mean) << " +/- "
                << exp::json_number(candidate.dr_se)
                << " ess=" << exp::json_number(candidate.ess) << "/"
                << candidate.events << " match=" << match_pct << "%\n";
    }

    const std::string out_path = args.get_string("out", "");
    if (!out_path.empty()) {
      exp::ReplayPanelMeta meta;
      meta.log_path = log_path;
      meta.decisions = panel.decisions;
      meta.feedbacks = panel.feedbacks;
      meta.joined = panel.joined;
      meta.truncated_tail = panel.truncated_tail;
      meta.arms = config.num_arms;
      meta.graph = exp::family_token(config.graph_family);
      meta.min_propensity = panel.min_propensity;
      meta.empirical_mean = panel.empirical_mean;
      meta.empirical_se = panel.empirical_se;
      exp::write_file(out_path, exp::render_replay_panel_json(meta, lines));
      std::cout << "ncb_replay: wrote " << out_path << " ("
                << panel.candidates.size() << " policies)\n";
    }

    const std::string bench_path = args.get_string("bench-out", "");
    if (!bench_path.empty()) {
      const double candidate_events = static_cast<double>(scan.records.size()) *
                                      static_cast<double>(specs.size());
      const double events_per_s =
          elapsed > 0.0 ? candidate_events / elapsed : 0.0;
      std::ostringstream out;
      out << "{\"records\": " << scan.records.size()
          << ", \"policies\": " << specs.size() << ", \"elapsed_s\": "
          << exp::json_number(elapsed) << ", \"events_per_s\": "
          << exp::json_number(events_per_s) << "}\n";
      exp::write_file(bench_path, out.str());
      std::cout << "ncb_replay: panel throughput "
                << static_cast<std::uint64_t>(events_per_s)
                << " events/s (" << scan.records.size() << " records x "
                << specs.size() << " policies in "
                << exp::json_number(elapsed) << " s)\n";
    }

    const std::string metrics_path = args.get_string("metrics-out", "");
    if (!metrics_path.empty()) {
      // Before the identity pin: a broken identity should still leave the
      // snapshot behind for diagnosis.
      exp::write_file(metrics_path,
                      obs::MetricsRegistry::global().snapshot().render_json());
      std::cout << "ncb_replay: wrote " << metrics_path << '\n';
    }

    // The identity pin: the logging policy replayed at matched seeds must
    // price itself at exactly the log's empirical mean (weight 1.0 on every
    // event, so the IPS accumulator saw the raw reward sequence).
    if (!logging_spec.empty()) {
      const replay::CandidateSummary& logger = panel.candidates.front();
      const bool identity =
          logger.ips_mean == panel.empirical_mean &&
          logger.ips_variance == panel.empirical_variance &&
          logger.ess == static_cast<double>(logger.events);
      if (!identity) {
        std::cerr << "ncb_replay: LOGGING IDENTITY BROKEN: ips="
                  << exp::json_number(logger.ips_mean) << " empirical="
                  << exp::json_number(panel.empirical_mean)
                  << " ess=" << exp::json_number(logger.ess) << "/"
                  << logger.events
                  << " — graph/seed/epsilon flags do not match the serving "
                     "run, or the estimator drifted\n";
        return 1;
      }
      std::cout << "ncb_replay: logging identity OK: ips == empirical mean == "
                << exp::json_number(logger.ips_mean) << " over "
                << logger.events << " events\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "ncb_replay") << ": error: " << e.what()
              << '\n';
    return 2;
  }
}
