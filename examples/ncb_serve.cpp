// ncb_serve — the online decision service CLI.
//
// Binds an AF_UNIX socket and serves decide/feedback traffic (the
// src/serve/ reactor) from a registry-built policy over a deterministic
// relation graph, logging every decision with its propensity to a binary
// event log that survives SIGTERM with no torn records. SIGINT/SIGTERM
// stop gracefully: connected clients get a drain window, the event log is
// flushed and closed, and the exit line reports the serve counters.
//
// Usage:
//   ncb_serve --socket <path> [--policy dfl-sso] [--epsilon 0.05]
//             [--arms 100] [--graph er] [--edge-prob 0.3]
//             [--family-param 4] [--seed N] [--horizon N]
//             [--log <file>] [--flush-bytes N] [--flush-ms N]
//             [--backlog N] [--drain-ms N]
//             [--metrics-out <file>] [--metrics-interval-ms N]
//   ncb_serve --inspect-log <file>      # offline: scan + summarize a log
#include <signal.h>

#include <csignal>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>

#include "exp/emitters.hpp"
#include "exp/sweep_spec.hpp"
#include "serve/decision_engine.hpp"
#include "serve/event_log.hpp"
#include "serve/server.hpp"
#include "sim/experiment.hpp"
#include "util/arg_parse.hpp"

namespace {

using namespace ncb;

int usage(const char* program) {
  std::cerr
      << "usage: " << program << " --socket <path> [options]\n"
         "       " << program << " --inspect-log <file>\n"
         "  --socket <path>   AF_UNIX socket to bind and serve on\n"
         "  --policy <spec>   policy registry spec (default: dfl-sso)\n"
         "  --epsilon E       exploration rate in [0,1] (default: 0.05)\n"
         "  --arms K          number of arms (default: 100)\n"
         "  --graph <family>  er|complete|empty|star|cycle|cliques|ba|ws\n"
         "                    (default: er)\n"
         "  --edge-prob P     ER edge probability / WS beta (default: 0.3)\n"
         "  --family-param N  cliques count / BA attach / WS k (default: 4)\n"
         "  --seed N          master seed (default: 20170605)\n"
         "  --horizon N       horizon hint for the policy (0 = anytime)\n"
         "  --log <file>      propensity-logged event stream (off by default)\n"
         "  --flush-bytes N   event-log size flush threshold (default 256K)\n"
         "  --flush-ms N      event-log age flush threshold (default 50)\n"
         "  --backlog N       listen backlog (default: 64)\n"
         "  --drain-ms N      post-signal client drain window (default: 500)\n"
         "  --metrics-out <f> write registry snapshots (JSON) to this file\n"
         "  --metrics-interval-ms N\n"
         "                    also snapshot every N ms while serving\n"
         "                    (default 0 = final snapshot only)\n"
         "  --inspect-log <f> scan an event log and print a summary plus a\n"
         "                    machine-readable join-health JSON block\n";
  return 2;
}

/// Flag plumbing for run_server and the event log, validated up front in
/// the validate_runner_options() style: every rejection names the flag and
/// echoes the offending value, and main's handler turns the throw into
/// "error: ..." on stderr with exit code 2.
struct ServeFlags {
  std::int64_t flush_bytes = 256 * 1024;
  std::int64_t flush_ms = 50;
  std::int64_t backlog = 64;
  std::int64_t drain_ms = 500;
  std::string metrics_out;
  std::int64_t metrics_interval_ms = 0;
};

void validate_serve_flags(const ServeFlags& flags) {
  if (flags.flush_bytes <= 0) {
    throw std::invalid_argument("--flush-bytes: must be positive (got " +
                                std::to_string(flags.flush_bytes) + ")");
  }
  if (flags.flush_ms <= 0) {
    throw std::invalid_argument("--flush-ms: must be positive (got " +
                                std::to_string(flags.flush_ms) + ")");
  }
  if (flags.backlog <= 0) {
    throw std::invalid_argument("--backlog: must be positive (got " +
                                std::to_string(flags.backlog) + ")");
  }
  if (flags.drain_ms < 0) {
    throw std::invalid_argument("--drain-ms: must be non-negative (got " +
                                std::to_string(flags.drain_ms) + ")");
  }
  if (flags.metrics_interval_ms < 0) {
    throw std::invalid_argument(
        "--metrics-interval-ms: must be non-negative (got " +
        std::to_string(flags.metrics_interval_ms) + ")");
  }
  if (flags.metrics_interval_ms > 0 && flags.metrics_out.empty()) {
    throw std::invalid_argument(
        "--metrics-interval-ms: requires --metrics-out (nowhere to write "
        "periodic snapshots)");
  }
}

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

void install_stop_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: poll sees EINTR promptly
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

// Exit codes: 0 for a fully intact log, 1 for a truncated tail (the
// complete prefix is summarized anyway), 2 for structural corruption
// (read_event_log throws into main's handler). CI's log-join assertions
// pipe through this, so a torn log can never satisfy them silently.
int inspect_log(const std::string& path) {
  const serve::EventLogScan scan = serve::read_event_log(path);
  std::cout << "event log " << path << ": version=" << scan.version
            << " records=" << scan.records.size()
            << " decisions=" << scan.decisions
            << " feedbacks=" << scan.feedbacks << " joined=" << scan.joined
            << " valid_bytes=" << scan.valid_bytes << '\n';
  // Join-health block: the same numbers in one machine-readable JSON
  // object, plus what the prose line cannot say — how many feedbacks were
  // orphans or duplicates and how many decisions never got a reward.
  const serve::EventLogJoin join = serve::join_event_log(scan);
  const double min_propensity =
      join.decisions > 0 ? join.min_propensity : 0.0;
  std::cout << "{\n"
            << "  \"schema\": 1,\n"
            << "  \"path\": \"" << exp::json_escape(path) << "\",\n"
            << "  \"version\": " << scan.version << ",\n"
            << "  \"records\": " << scan.records.size() << ",\n"
            << "  \"decisions\": " << join.decisions << ",\n"
            << "  \"feedbacks\": " << scan.feedbacks << ",\n"
            << "  \"joined\": " << join.joined << ",\n"
            << "  \"unjoined_decisions\": " << (join.decisions - join.joined)
            << ",\n"
            << "  \"orphan_feedbacks\": " << join.orphan_feedbacks << ",\n"
            << "  \"duplicate_feedbacks\": " << join.duplicate_feedbacks
            << ",\n"
            << "  \"min_propensity\": " << exp::json_number(min_propensity)
            << ",\n"
            << "  \"valid_bytes\": " << scan.valid_bytes << ",\n"
            << "  \"truncated_tail\": "
            << (scan.truncated_tail ? "true" : "false") << "\n"
            << "}\n";
  if (scan.truncated_tail) {
    std::cerr << "error: truncated tail after the last complete record — "
                 "the prefix above is intact, but the log is incomplete\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParse args(argc, argv);
    if (args.has("help")) return usage(args.program().c_str());
    if (args.has("inspect-log")) {
      return inspect_log(args.get_string("inspect-log", ""));
    }

    const std::string socket_path = args.get_string("socket", "");
    if (socket_path.empty()) return usage(args.program().c_str());

    ExperimentConfig config;
    config.graph_family = exp::parse_family(args.get_string("graph", "er"));
    config.num_arms = static_cast<std::size_t>(args.get_int("arms", 100));
    config.edge_probability = args.get_double("edge-prob", 0.3);
    config.family_param =
        static_cast<std::size_t>(args.get_int("family-param", 4));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20170605));

    serve::EngineOptions engine_options;
    engine_options.policy_spec = args.get_string("policy", "dfl-sso");
    engine_options.epsilon = args.get_double("epsilon", 0.05);
    engine_options.seed = config.seed;
    engine_options.horizon = args.get_int("horizon", 0);

    ServeFlags flags;
    flags.flush_bytes = args.get_int("flush-bytes", 256 * 1024);
    flags.flush_ms = args.get_int("flush-ms", 50);
    flags.backlog = args.get_int("backlog", 64);
    flags.drain_ms = args.get_int("drain-ms", 500);
    flags.metrics_out = args.get_string("metrics-out", "");
    flags.metrics_interval_ms = args.get_int("metrics-interval-ms", 0);
    validate_serve_flags(flags);

    std::unique_ptr<serve::EventLog> log;
    const std::string log_path = args.get_string("log", "");
    if (!log_path.empty()) {
      serve::EventLog::Options log_options;
      log_options.path = log_path;
      log_options.flush_bytes = static_cast<std::size_t>(flags.flush_bytes);
      log_options.flush_ms = static_cast<int>(flags.flush_ms);
      log = std::make_unique<serve::EventLog>(log_options);
    }

    serve::DecisionEngine engine(build_graph(config), engine_options,
                                 log.get());
    std::cout << "ncb_serve: " << engine.describe() << ", graph="
              << exp::family_token(config.graph_family) << ", socket="
              << socket_path
              << (log ? ", log=" + log_path : std::string(", no log")) << '\n';

    install_stop_handlers();
    serve::ServerOptions server_options;
    server_options.socket_path = socket_path;
    server_options.backlog = static_cast<int>(flags.backlog);
    server_options.drain_ms = static_cast<int>(flags.drain_ms);
    server_options.should_stop = [] { return g_stop != 0; };
    server_options.metrics_out = flags.metrics_out;
    server_options.metrics_interval_ms =
        static_cast<int>(flags.metrics_interval_ms);
    const serve::ServerStats stats = serve::run_server(engine, server_options);

    if (log) log->close();  // drains every buffered record before we report
    std::cout << "ncb_serve: served " << stats.decide_requests
              << " decisions, " << stats.feedback_frames << " feedbacks ("
              << engine.unknown_feedbacks() << " unknown, "
              << engine.duplicate_feedbacks() << " duplicate) over "
              << stats.connections_accepted << " connections, "
              << stats.protocol_errors << " protocol errors\n";
    if (log) {
      std::cout << "ncb_serve: event log " << log->path() << ": "
                << log->records_appended() << " records, "
                << log->bytes_written() << " bytes, " << log->flush_batches()
                << " flush batches"
                << (log->write_failed() ? " (WRITE FAILURES — log truncated)"
                                        : "")
                << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "ncb_serve") << ": error: " << e.what()
              << '\n';
    return 2;
  }
}
