// ncb_serve_driver — closed-loop load driver for ncb_serve.
//
// Opens M connections to a running server and pushes N decide requests
// through them, each followed by a Bernoulli reward drawn from the same
// §VII instance the server's graph flags describe — so the server's policy
// actually learns while being load-tested. Per-request round-trip latency
// lands in a log-scale histogram; the exit line and --out JSON report QPS
// and p50/p99/p999.
//
// --lockstep serializes the whole run to one request in flight globally,
// with each request's frame carrying the previous decision's feedback on
// the same connection (so the server processes report(i-1) immediately
// before decide(i)). That makes the server's processing order — and
// therefore its decisions, its policy state, and its event log bytes —
// identical for ANY --connections value: the determinism harness behind
// the serve smoke and tests/test_serve.cpp.
//
// Usage:
//   ncb_serve_driver --socket <path> --requests N [--connections M]
//                    [--keys U] [--arms K] [--graph er] [--edge-prob P]
//                    [--family-param N] [--seed N] [--out BENCH_serve.json]
//                    [--lockstep] [--dump <file>]
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <deque>
#include <iostream>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dist/protocol.hpp"
#include "exp/emitters.hpp"
#include "exp/sweep_spec.hpp"
#include "sim/experiment.hpp"
#include "util/arg_parse.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace ncb;

int usage(const char* program) {
  std::cerr
      << "usage: " << program << " --socket <path> --requests N [options]\n"
         "  --connections M   parallel closed-loop connections (default: 2)\n"
         "  --pipeline W      requests in flight per connection (default: 8;\n"
         "                    reported latency includes queueing)\n"
         "  --keys U          distinct user keys cycled through (default: 64)\n"
         "  --arms K          arms of the server's instance (default: 100)\n"
         "  --graph <family>  server's graph family (default: er)\n"
         "  --edge-prob P     server's edge probability (default: 0.3)\n"
         "  --family-param N  server's family param (default: 4)\n"
         "  --seed N          instance + reward seed (default: 20170605)\n"
         "  --reward <model>  bernoulli (default; 0/1 clicks) or noisy\n"
         "                    (continuous mean±0.1 — avoids the large-K\n"
         "                    empirical-mean tie pathology in bench runs)\n"
         "  --out <file>      write a BENCH_serve.json-style summary\n"
         "  --lockstep        one request in flight globally (determinism\n"
         "                    harness; QPS is meaningless in this mode)\n"
         "  --dump <file>     write 'decision_id action propensity' lines\n"
         "                    sorted by decision_id (for run comparison)\n";
  return 2;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long for AF_UNIX");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error("connect '" + path +
                             "': " + std::strerror(saved));
  }
  return fd;
}

/// Hello/HelloAck exchange with the serve schema word.
void handshake(int fd) {
  dist::HelloMsg hello;
  hello.schema = dist::kServeWireSchema;
  dist::write_frame(fd, dist::MsgType::kHello, dist::encode_hello(hello));
  const auto ack = dist::read_frame(fd);
  if (!ack || ack->type != dist::MsgType::kHelloAck) {
    throw std::runtime_error("server rejected the handshake");
  }
  dist::decode_hello_ack(ack->payload);
}

struct DumpedDecision {
  std::uint64_t decision_id = 0;
  std::uint32_t action = 0;
  double propensity = 0.0;
};

void send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<std::size_t>(n);
  }
}

enum class RewardModel {
  kBernoulli,  ///< click model: reward ∈ {0, 1} with P(1) = μ_action.
  kNoisy,      ///< continuous: μ_action ± 0.1 uniform noise, clamped [0,1].
};

RewardModel parse_reward_model(const std::string& token) {
  if (token == "bernoulli") return RewardModel::kBernoulli;
  if (token == "noisy") return RewardModel::kNoisy;
  throw std::invalid_argument("--reward must be 'bernoulli' or 'noisy', got '" +
                              token + "'");
}

double reward_for(double mean, Xoshiro256& rng, RewardModel model) {
  if (model == RewardModel::kBernoulli) {
    return rng.bernoulli(mean) ? 1.0 : 0.0;
  }
  return std::min(1.0, std::max(0.0, mean + (rng.uniform() - 0.5) * 0.2));
}

/// One decide round trip on `fd`; returns the reply. `prefix_feedback`
/// (possibly empty) is the previous decision's deferred Feedback frame,
/// written in the same send so the server reports it before this decide.
dist::DecideReplyMsg decide_round_trip(int fd, std::uint64_t request_id,
                                       const std::string& user_key,
                                       const std::string& prefix_feedback) {
  std::string out = prefix_feedback;
  dist::DecideRequestMsg request;
  request.request_id = request_id;
  request.slot = request_id;
  request.user_key = user_key;
  dist::append_frame(out, dist::MsgType::kDecideRequest,
                     dist::encode_decide_request(request));
  send_all(fd, out);
  const auto frame = dist::read_frame(fd);
  if (!frame || frame->type != dist::MsgType::kDecideReply) {
    throw std::runtime_error("expected a DecideReply");
  }
  dist::DecideReplyMsg reply = dist::decode_decide_reply(frame->payload);
  if (reply.request_id != request_id) {
    throw std::runtime_error("DecideReply for the wrong request");
  }
  return reply;
}

std::string encode_feedback_frame(std::uint64_t decision_id, double reward) {
  dist::FeedbackMsg feedback;
  feedback.decision_id = decision_id;
  feedback.reward = reward;
  std::string out;
  dist::append_frame(out, dist::MsgType::kFeedback,
                     dist::encode_feedback(feedback));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParse args(argc, argv);
    if (args.has("help")) return usage(args.program().c_str());
    const std::string socket_path = args.get_string("socket", "");
    const auto requests = args.get_int("requests", 0);
    if (socket_path.empty() || requests <= 0) {
      return usage(args.program().c_str());
    }
    const auto connections = std::max<std::int64_t>(
        1, std::min<std::int64_t>(args.get_int("connections", 2), requests));
    const auto keys = std::max<std::int64_t>(1, args.get_int("keys", 64));
    const bool lockstep = args.get_bool("lockstep", false);
    const std::uint64_t pipeline = static_cast<std::uint64_t>(
        std::max<std::int64_t>(1, args.get_int("pipeline", 8)));
    const RewardModel reward_model =
        parse_reward_model(args.get_string("reward", "bernoulli"));
    const std::string out_path = args.get_string("out", "");
    const std::string dump_path = args.get_string("dump", "");

    // The same instance the server built from matching flags: arm means for
    // the Bernoulli reward simulation.
    ExperimentConfig config;
    config.graph_family = exp::parse_family(args.get_string("graph", "er"));
    config.num_arms = static_cast<std::size_t>(args.get_int("arms", 100));
    config.edge_probability = args.get_double("edge-prob", 0.3);
    config.family_param =
        static_cast<std::size_t>(args.get_int("family-param", 4));
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20170605));
    const std::vector<double> means = build_instance(config).means();

    std::vector<int> fds;
    for (std::int64_t i = 0; i < connections; ++i) {
      const int fd = connect_unix(socket_path);
      handshake(fd);
      fds.push_back(fd);
    }

    const std::uint64_t total = static_cast<std::uint64_t>(requests);
    std::vector<LatencyHistogram> histograms(fds.size());
    std::vector<DumpedDecision> dumped;
    if (!dump_path.empty()) dumped.resize(total);

    // Lockstep shared state (all guarded by lockstep_mutex): the global
    // request counter, the shared reward stream, and the previous
    // decision's not-yet-sent feedback frame.
    std::mutex lockstep_mutex;
    std::uint64_t lockstep_next = 0;
    Xoshiro256 lockstep_rewards(derive_seed_at(config.seed, 1));
    std::string lockstep_pending_feedback;
    int lockstep_last_fd = -1;

    std::atomic<std::uint64_t> next{0};
    std::atomic<bool> failed{false};
    std::string first_error;
    std::mutex error_mutex;

    Timer timer;
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < fds.size(); ++c) {
      threads.emplace_back([&, c] {
        const int fd = fds[c];
        Xoshiro256 rewards(derive_seed_at(config.seed + 1, c));
        const auto dump_reply = [&](const dist::DecideReplyMsg& reply) {
          if (dump_path.empty()) return;
          dumped[reply.request_id] = {reply.decision_id, reply.action,
                                      reply.propensity};
        };
        const auto mean_of = [&](const dist::DecideReplyMsg& reply) {
          return means[std::min<std::size_t>(reply.action, means.size() - 1)];
        };
        try {
          if (lockstep) {
            while (!failed.load(std::memory_order_relaxed)) {
              std::unique_lock<std::mutex> lock(lockstep_mutex);
              const std::uint64_t i = lockstep_next;
              if (i >= total) break;
              ++lockstep_next;
              const std::string prefix =
                  std::move(lockstep_pending_feedback);
              lockstep_pending_feedback.clear();
              const std::string key = "user-" + std::to_string(i % keys);
              Timer rtt;
              const dist::DecideReplyMsg reply =
                  decide_round_trip(fd, i, key, prefix);
              histograms[c].record(
                  static_cast<std::uint64_t>(rtt.elapsed_seconds() * 1e9));
              dump_reply(reply);
              // Defer the feedback: it rides in front of the NEXT decide
              // (any connection), keeping the server's processing order
              // globally sequential.
              lockstep_pending_feedback = encode_feedback_frame(
                  reply.decision_id,
                  reward_for(mean_of(reply), lockstep_rewards, reward_model));
              lockstep_last_fd = fd;
            }
            return;
          }
          // Windowed closed loop: keep up to `pipeline` requests in flight
          // on this connection, each send carrying the deferred feedback of
          // already-answered decisions — so syscalls and reactor rounds
          // amortize over the window. The server answers a connection's
          // requests in order, so replies match pending_starts FIFO.
          std::deque<std::pair<std::uint64_t, Timer>> pending_starts;
          std::string outbox;  ///< Deferred feedback awaiting the next send.
          std::uint64_t in_flight = 0;
          bool drained = false;
          while (!failed.load(std::memory_order_relaxed)) {
            while (!drained && in_flight < pipeline) {
              const std::uint64_t i =
                  next.fetch_add(1, std::memory_order_relaxed);
              if (i >= total) {
                drained = true;
                break;
              }
              dist::DecideRequestMsg request;
              request.request_id = i;
              request.slot = i;
              request.user_key = "user-" + std::to_string(i % keys);
              dist::append_frame(outbox, dist::MsgType::kDecideRequest,
                                 dist::encode_decide_request(request));
              pending_starts.emplace_back(i, Timer());
              ++in_flight;
            }
            if (!outbox.empty()) {
              send_all(fd, outbox);
              outbox.clear();
            }
            if (in_flight == 0) break;
            const auto frame = dist::read_frame(fd);
            if (!frame || frame->type != dist::MsgType::kDecideReply) {
              throw std::runtime_error("expected a DecideReply");
            }
            const dist::DecideReplyMsg reply =
                dist::decode_decide_reply(frame->payload);
            if (pending_starts.empty() ||
                reply.request_id != pending_starts.front().first) {
              throw std::runtime_error("DecideReply out of order");
            }
            histograms[c].record(static_cast<std::uint64_t>(
                pending_starts.front().second.elapsed_seconds() * 1e9));
            pending_starts.pop_front();
            --in_flight;
            dump_reply(reply);
            outbox += encode_feedback_frame(
                reply.decision_id,
                reward_for(mean_of(reply), rewards, reward_model));
          }
          // Feedback for the window's final replies has no request to ride
          // on — flush it standalone.
          if (!outbox.empty()) send_all(fd, outbox);
        } catch (const std::exception& e) {
          failed.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> guard(error_mutex);
          if (first_error.empty()) first_error = e.what();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    if (failed.load()) {
      throw std::runtime_error("driver connection failed: " + first_error);
    }
    // Lockstep leaves the last decision's feedback unsent — flush it on the
    // connection that received the decision.
    if (lockstep && !lockstep_pending_feedback.empty()) {
      send_all(lockstep_last_fd, lockstep_pending_feedback);
    }
    const double seconds = timer.elapsed_seconds();
    for (const int fd : fds) ::close(fd);

    LatencyHistogram merged;
    for (const LatencyHistogram& histogram : histograms) {
      merged.merge(histogram);
    }
    const double qps =
        seconds > 0 ? static_cast<double>(total) / seconds : 0.0;
    std::cout << "ncb_serve_driver: " << total << " requests over "
              << fds.size() << " connections in " << seconds << "s = "
              << static_cast<std::uint64_t>(qps) << " qps"
              << (lockstep ? " (lockstep)" : "") << "\n  latency p50="
              << merged.p50() / 1000 << "us p99=" << merged.p99() / 1000
              << "us p999=" << merged.p999() / 1000
              << "us max=" << merged.max() / 1000 << "us\n";

    if (!dump_path.empty()) {
      std::sort(dumped.begin(), dumped.end(),
                [](const DumpedDecision& a, const DumpedDecision& b) {
                  return a.decision_id < b.decision_id;
                });
      std::string text;
      for (const DumpedDecision& d : dumped) {
        text += std::to_string(d.decision_id) + " " +
                std::to_string(d.action) + " " +
                exp::json_number(d.propensity) + "\n";
      }
      exp::write_file(dump_path, text);
      std::cout << "wrote " << dump_path << '\n';
    }
    if (!out_path.empty()) {
      std::string json = "{\n  \"schema\": 1,\n";
      json += "  \"requests\": " + std::to_string(total) + ",\n";
      json += "  \"connections\": " + std::to_string(fds.size()) + ",\n";
      json += "  \"arms\": " + std::to_string(config.num_arms) + ",\n";
      json += "  \"lockstep\": " + std::string(lockstep ? "true" : "false") +
              ",\n";
      json += "  \"seconds\": " + exp::json_number(seconds) + ",\n";
      json += "  \"qps\": " + exp::json_number(qps) + ",\n";
      json += "  \"p50_us\": " +
              exp::json_number(static_cast<double>(merged.p50()) / 1e3) +
              ",\n";
      json += "  \"p99_us\": " +
              exp::json_number(static_cast<double>(merged.p99()) / 1e3) +
              ",\n";
      json += "  \"p999_us\": " +
              exp::json_number(static_cast<double>(merged.p999()) / 1e3) +
              ",\n";
      json += "  \"max_us\": " +
              exp::json_number(static_cast<double>(merged.max()) / 1e3) +
              "\n}\n";
      exp::write_file(out_path, json);
      std::cout << "wrote " << out_path << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "ncb_serve_driver")
              << ": error: " << e.what() << '\n';
    return 2;
  }
}
