// ncb_stats — live metrics poller for a running ncb_serve.
//
// Connects to the server's AF_UNIX socket, completes the same
// Hello/HelloAck handshake decide traffic uses, and sends StatsRequest
// frames; each StatsReply carries the server's flattened metrics registry
// (counters, gauges, histogram quantiles). One-shot by default; --watch
// redraws like top, annotating counters with per-second rates computed
// from successive polls. Polling rides the ordinary reactor path, so it
// never perturbs serving — the hard invariant the serve tests pin.
//
// Usage:
//   ncb_stats --socket <path> [--watch] [--interval-ms N] [--raw]
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>

#include <sys/socket.h>
#include <sys/un.h>

#include <cstring>

#include "dist/protocol.hpp"
#include "util/arg_parse.hpp"

namespace {

using namespace ncb;

int usage(const char* program) {
  std::cerr
      << "usage: " << program << " --socket <path> [options]\n"
         "  --socket <path>   AF_UNIX socket of a running ncb_serve\n"
         "  --watch           redraw every interval until interrupted\n"
         "  --interval-ms N   polling interval for --watch (default: 1000)\n"
         "  --raw             print bare 'name value' lines (grep-friendly)\n";
  return 2;
}

volatile std::sig_atomic_t g_stop = 0;
void handle_stop_signal(int) { g_stop = 1; }

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("socket path too long for AF_UNIX");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error("connect '" + path +
                             "': " + std::strerror(saved));
  }
  return fd;
}

void handshake(int fd) {
  dist::HelloMsg hello;
  hello.schema = dist::kServeWireSchema;
  dist::write_frame(fd, dist::MsgType::kHello, dist::encode_hello(hello));
  const auto ack = dist::read_frame(fd);
  if (!ack || ack->type != dist::MsgType::kHelloAck) {
    throw std::runtime_error("server rejected the handshake");
  }
  dist::decode_hello_ack(ack->payload);
}

dist::StatsReplyMsg poll_stats(int fd) {
  dist::write_frame(fd, dist::MsgType::kStatsRequest, "");
  const auto frame = dist::read_frame(fd);
  if (!frame || frame->type != dist::MsgType::kStatsReply) {
    throw std::runtime_error("expected a StatsReply");
  }
  return dist::decode_stats_reply(frame->payload);
}

void print_raw(const dist::StatsReplyMsg& reply) {
  for (const dist::StatsEntry& entry : reply.entries) {
    if (entry.kind == dist::StatsEntry::kGauge) {
      std::cout << entry.name << ' '
                << static_cast<std::int64_t>(entry.value) << '\n';
    } else {
      std::cout << entry.name << ' ' << entry.value << '\n';
    }
  }
}

/// Pretty table: one line per entry, counters annotated with the
/// per-second rate against the previous poll (when one exists).
void print_pretty(const dist::StatsReplyMsg& reply,
                  const std::map<std::string, std::uint64_t>& previous,
                  double interval_seconds) {
  for (const dist::StatsEntry& entry : reply.entries) {
    char line[160];
    if (entry.kind == dist::StatsEntry::kCounter) {
      const auto it = previous.find(entry.name);
      if (it != previous.end() && interval_seconds > 0) {
        const double rate =
            static_cast<double>(entry.value - it->second) / interval_seconds;
        std::snprintf(line, sizeof line, "%-44s %14llu  %10.1f/s",
                      entry.name.c_str(),
                      static_cast<unsigned long long>(entry.value), rate);
      } else {
        std::snprintf(line, sizeof line, "%-44s %14llu", entry.name.c_str(),
                      static_cast<unsigned long long>(entry.value));
      }
    } else if (entry.kind == dist::StatsEntry::kGauge) {
      std::snprintf(line, sizeof line, "%-44s %14lld  (gauge)",
                    entry.name.c_str(),
                    static_cast<long long>(
                        static_cast<std::int64_t>(entry.value)));
    } else {
      std::snprintf(line, sizeof line, "%-44s %14llu", entry.name.c_str(),
                    static_cast<unsigned long long>(entry.value));
    }
    std::cout << line << '\n';
  }
  std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParse args(argc, argv);
    if (args.has("help")) return usage(args.program().c_str());
    const std::string socket_path = args.get_string("socket", "");
    if (socket_path.empty()) return usage(args.program().c_str());
    const bool watch = args.get_bool("watch", false);
    const bool raw = args.get_bool("raw", false);
    const std::int64_t interval_ms =
        std::max<std::int64_t>(1, args.get_int("interval-ms", 1000));

    struct sigaction action {};
    action.sa_handler = handle_stop_signal;
    sigemptyset(&action.sa_mask);
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);

    const int fd = connect_unix(socket_path);
    handshake(fd);

    std::map<std::string, std::uint64_t> previous;
    while (g_stop == 0) {
      const dist::StatsReplyMsg reply = poll_stats(fd);
      if (raw) {
        print_raw(reply);
      } else {
        if (watch) std::cout << "\033[2J\033[H";  // clear + home, like top
        std::cout << "ncb_stats: " << socket_path << " ("
                  << reply.entries.size() << " metrics)\n";
        print_pretty(reply, previous,
                     static_cast<double>(interval_ms) / 1000.0);
      }
      if (!watch) break;
      previous.clear();
      for (const dist::StatsEntry& entry : reply.entries) {
        if (entry.kind == dist::StatsEntry::kCounter) {
          previous.emplace(entry.name, entry.value);
        }
      }
      ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
    }
    ::close(fd);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "ncb_stats") << ": error: " << e.what()
              << '\n';
    return 2;
  }
}
