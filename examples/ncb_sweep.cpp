// ncb_sweep — the sweep engine's CLI.
//
// Loads a declarative sweep spec (see specs/*.sweep and README "Running
// sweeps"), expands the grid, runs every job as fine-grained shards on a
// thread pool, and writes schema-versioned JSON (and optionally CSV). The
// JSON output is bit-identical for any --threads / --shard-size choice, and
// --resume re-runs only the grid points missing from a partial output file.
//
// Usage:
//   ncb_sweep --spec specs/fig3.sweep --out fig3.json [--csv fig3.csv]
//             [--threads N] [--shard-size N] [--max-jobs N] [--resume]
//             [--list] [--list-policies]
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/policy_registry.hpp"
#include "exp/emitters.hpp"
#include "exp/sweep_runner.hpp"
#include "sim/thread_pool.hpp"
#include "util/arg_parse.hpp"
#include "util/timer.hpp"

namespace {

using namespace ncb;
using namespace ncb::exp;

int usage(const char* program) {
  std::cerr
      << "usage: " << program << " --spec <file> [options]\n"
         "  --spec <file>     sweep spec (key = value lines; see specs/)\n"
         "  --out <file>      JSON output (default: <spec name>.sweep.json)\n"
         "  --csv <file>      also emit a long-format CSV table\n"
         "  --threads N       worker threads (0 = hardware, default)\n"
         "  --shard-size N    fixed replications per shard (0 = auto)\n"
         "  --max-jobs N      run at most N pending jobs, then stop\n"
         "  --resume          keep finished jobs found in --out, run the rest\n"
         "  --list            print the expanded job list and exit\n"
         "  --list-policies   print the policy registry and exit\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParse args(argc, argv);
    if (args.has("help")) return usage(args.program().c_str());
    if (args.has("list-policies")) {
      std::cout << PolicyRegistry::instance().render_listing();
      return 0;
    }
    const std::string spec_path = args.get_string("spec", "");
    if (spec_path.empty()) return usage(args.program().c_str());
    const SweepSpec spec = SweepSpec::parse_file(spec_path);
    const std::vector<SweepJob> jobs = spec.expand();

    if (args.has("list")) {
      std::cout << "sweep '" << spec.name << "': " << jobs.size()
                << " jobs\n";
      for (const SweepJob& job : jobs) {
        std::cout << "  [" << job.index << "] " << job.key << '\n';
      }
      return 0;
    }

    const std::string out_path =
        args.get_string("out", spec.name + ".sweep.json");
    const std::string csv_path = args.get_string("csv", "");
    const auto threads = args.get_int("threads", 0);
    const auto shard_size = args.get_int("shard-size", 0);
    const auto max_jobs = args.get_int("max-jobs", 0);
    if (threads < 0 || shard_size < 0 || max_jobs < 0) {
      std::cerr << args.program()
                << ": error: --threads/--shard-size/--max-jobs must be >= 0\n";
      return 2;
    }

    // Resume: harvest finished job lines from a previous (partial) output.
    // A kept record must match the current spec exactly — the key encodes
    // the grid coordinates, and the record's seed/replications/checkpoints
    // are checked here so editing those spec fields invalidates old runs
    // instead of silently relabeling them.
    std::map<std::string, std::string> done;
    if (args.has("resume")) {
      std::map<std::string, const SweepJob*> by_key;
      for (const SweepJob& job : jobs) by_key.emplace(job.key, &job);
      for (auto& [key, line] : load_job_lines(out_path)) {
        const auto it = by_key.find(key);
        if (it == by_key.end()) {
          std::cout << "(resume: dropping stale job '" << key << "')\n";
          continue;
        }
        const ExperimentConfig& config = it->second->config;
        JobRecord record;
        try {
          record = parse_job_json(line);
        } catch (const std::invalid_argument&) {
          std::cout << "(resume: dropping unreadable record '" << key
                    << "')\n";
          continue;
        }
        if (record.seed != config.seed ||
            record.replications != config.replications ||
            record.checkpoints !=
                checkpoint_grid(config.horizon, spec.checkpoints)) {
          std::cout << "(resume: dropping outdated job '" << key
                    << "' — spec seed/replications/checkpoints changed)\n";
          continue;
        }
        done.emplace(key, line);
      }
      std::cout << "resume: " << done.size() << "/" << jobs.size()
                << " jobs already done in " << out_path << '\n';
    }

    ThreadPool pool(static_cast<std::size_t>(threads));
    std::cout << "sweep '" << spec.name << "': " << jobs.size() << " jobs, "
              << pool.num_threads() << " threads\n";

    std::set<std::string> skip;
    for (const auto& [key, line] : done) skip.insert(key);

    // Incremental checkpoint: header + already-done jobs up front, then one
    // appended line per finished job (O(total size) I/O). A crash leaves a
    // footer-less file load_job_lines can still scan; the happy path ends
    // with one atomic, expansion-ordered rewrite below.
    std::ofstream checkpoint(out_path, std::ios::binary | std::ios::trunc);
    if (!checkpoint) {
      throw std::runtime_error("cannot open '" + out_path + "' for write");
    }
    checkpoint << render_sweep_json_header(spec);
    for (const SweepJob& job : jobs) {
      const auto it = done.find(job.key);
      if (it != done.end()) checkpoint << it->second << ",\n";
    }
    checkpoint.flush();

    Timer timer;
    SweepRunOptions options;
    options.pool = &pool;
    options.shard_size = static_cast<std::size_t>(shard_size);
    options.max_jobs = static_cast<std::size_t>(max_jobs);
    std::size_t launched = 0;
    std::map<std::string, JobRecord> fresh;
    options.on_job = [&](const JobOutcome& outcome) {
      ++launched;
      std::cout << "  [" << outcome.job.index + 1 << "/" << jobs.size()
                << "] " << outcome.job.key << "  reps="
                << outcome.aggregate.replications() << " shards="
                << outcome.shards << "x" << outcome.shard_size
                << "  final=" << outcome.aggregate.final_cumulative().mean()
                << "  " << outcome.seconds << "s\n";
      JobRecord record = JobRecord::from(outcome.job, outcome.aggregate);
      done[outcome.job.key] = render_job_json(record);
      checkpoint << done[outcome.job.key] << ",\n" << std::flush;
      fresh.emplace(outcome.job.key, std::move(record));
    };
    const SweepResult result = run_sweep(spec, options, skip);
    checkpoint.close();

    // Final rewrite: jobs in expansion order regardless of which run
    // produced them, so partial + resume equals one full run byte-for-byte.
    std::vector<std::string> lines;
    for (const SweepJob& job : jobs) {
      const auto it = done.find(job.key);
      if (it != done.end()) lines.push_back(it->second);
    }
    write_file(out_path, render_sweep_json(spec, lines));
    const std::size_t emitted = lines.size();
    std::cout << "wrote " << out_path << " (" << emitted << "/" << jobs.size()
              << " jobs)\n";
    if (!csv_path.empty()) {
      // Only resumed jobs need re-parsing; fresh ones keep their records.
      std::vector<JobRecord> records;
      for (const SweepJob& job : jobs) {
        const auto it = done.find(job.key);
        if (it == done.end()) continue;
        const auto have = fresh.find(job.key);
        records.push_back(have != fresh.end() ? have->second
                                              : parse_job_json(it->second));
      }
      write_file(csv_path, render_sweep_csv(records));
      std::cout << "wrote " << csv_path << '\n';
    }

    if (!result.policy_seconds.empty()) {
      std::cout << "per-policy timing (this run):\n";
      for (const auto& [policy, stat] : result.policy_seconds) {
        std::cout << "  " << policy << ": " << stat.count() << " jobs, mean "
                  << stat.mean() << "s, total "
                  << stat.mean() * static_cast<double>(stat.count()) << "s\n";
      }
    }
    if (result.pending > 0) {
      std::cout << "partial: " << result.pending
                << " jobs still pending (rerun with --resume)\n";
    }
    std::cout << "ran " << launched << " jobs (skipped " << result.skipped
              << ") in " << timer.elapsed_seconds() << "s\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "ncb_sweep") << ": error: " << e.what()
              << '\n';
    return 2;
  }
}
