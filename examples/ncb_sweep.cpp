// ncb_sweep — the sweep engine's CLI.
//
// Loads a declarative sweep spec (see specs/*.sweep and README "Running
// sweeps"), expands the grid, runs every job, and writes schema-versioned
// JSON (and optionally CSV). Jobs run either as fine-grained shards on an
// in-process thread pool, or — with --workers N — across N worker processes
// coordinated over the src/dist/ protocol. The JSON output is bit-identical
// for any --threads / --shard-size / --workers choice (even when a worker
// is killed mid-sweep), and --resume re-runs only the grid points missing
// from a partial output file. SIGINT/SIGTERM stop gracefully: completed
// job records are flushed so the file stays valid for --resume.
//
// Usage:
//   ncb_sweep --spec specs/fig3.sweep --out fig3.json [--csv fig3.csv]
//             [--threads N] [--shard-size N] [--max-jobs N] [--workers N]
//             [--listen host:port] [--port-file <file>]
//             [--resume] [--dry-run] [--list] [--list-policies]
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/policy_registry.hpp"
#include "dist/coordinator.hpp"
#include "dist/process.hpp"
#include "dist/worker.hpp"
#include "exp/emitters.hpp"
#include "exp/shard_scheduler.hpp"
#include "exp/sweep_runner.hpp"
#include "net/tcp.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "sim/thread_pool.hpp"
#include "util/arg_parse.hpp"
#include "util/timer.hpp"

namespace {

using namespace ncb;
using namespace ncb::exp;

int usage(const char* program) {
  std::cerr
      << "usage: " << program << " --spec <file> [options]\n"
         "  --spec <file>     sweep spec (key = value lines; see specs/)\n"
         "  --out <file>      JSON output (default: <spec name>.sweep.json)\n"
         "  --csv <file>      also emit a long-format CSV table\n"
         "  --metrics-out <f> write a final metrics-registry snapshot (JSON:\n"
         "                    dist.jobs.*, dist.workers.*, dist.bytes.*)\n"
         "  --threads N       worker threads: in-process pool size, or the\n"
         "                    per-worker pool size with --workers\n"
         "                    (0 = auto, default)\n"
         "  --shard-size N    fixed replications per shard (0 = auto)\n"
         "  --max-jobs N      run at most N pending jobs, then stop\n"
         "  --workers N       dispatch jobs to N worker processes (0 = run\n"
         "                    in-process, default); output is byte-identical\n"
         "                    either way\n"
         "  --listen H:P      coordinate over TCP instead of spawning: bind\n"
         "                    host:port (port 0 = kernel-assigned) and wait\n"
         "                    for workers started elsewhere with\n"
         "                    --worker-connect host:port; output is still\n"
         "                    byte-identical\n"
         "  --port-file F     with --listen: write the bound host:port to F\n"
         "                    once listening (for scripts using port 0)\n"
         "  --resume          keep finished jobs found in --out, run the rest\n"
         "  --dry-run         print the expanded jobs with slot/shard\n"
         "                    estimates (for sizing runs) and exit\n"
         "  --list            print the expanded job list and exit\n"
         "  --list-policies   print the policy registry and exit\n"
         "(--worker-fd and --worker-connect are internal: they turn this\n"
         " binary into a dispatch worker — on an inherited socket, or by\n"
         " dialing a --listen coordinator over TCP.)\n";
  return 2;
}

// SIGINT/SIGTERM request a graceful stop: the engine stops between jobs
// (and between shards), completed records are already flushed, and the
// final rewrite still runs — so the output is always resumable.
volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

void install_stop_handlers() {
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: poll/read see EINTR promptly
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

/// --dry-run: the expanded grid with per-job cost estimates, nothing runs.
int print_dry_run(const SweepSpec& spec, const std::vector<SweepJob>& jobs,
                  const std::map<std::string, std::string>& done,
                  std::size_t shard_size_override) {
  const std::size_t shard_size =
      shard_size_override != 0 ? shard_size_override : spec.shard_size;
  std::cout << "sweep '" << spec.name << "': " << jobs.size()
            << " jobs (dry run)\n";
  unsigned long long total_slots = 0;
  unsigned long long todo_slots = 0;
  std::size_t todo_jobs = 0;
  for (const SweepJob& job : jobs) {
    const unsigned long long slots =
        static_cast<unsigned long long>(job.config.replications) *
        static_cast<unsigned long long>(job.config.horizon);
    const ShardPlan plan =
        plan_shards(job.config.replications, job.config.horizon, shard_size);
    const bool finished = done.count(job.key) != 0;
    total_slots += slots;
    if (!finished) {
      todo_slots += slots;
      ++todo_jobs;
    }
    std::cout << "  [" << job.index << "] " << job.key << "\n        policy="
              << job.policy << " K=" << job.config.num_arms
              << " n=" << job.config.horizon
              << " reps=" << job.config.replications << " slots=" << slots
              << " shards=" << plan.num_shards() << "x" << plan.shard_size
              << (finished ? "  [done]" : "") << '\n';
  }
  std::cout << "total: " << jobs.size() << " jobs / " << total_slots
            << " slots; to run: " << todo_jobs << " jobs / " << todo_slots
            << " slots\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParse args(argc, argv);
    if (args.has("help")) return usage(args.program().c_str());

    // Internal worker mode: exec'd by a coordinator with an inherited
    // socket fd. Everything else in this file is coordinator/CLI-side.
    if (args.has("worker-fd")) {
      const auto fd = args.get_int("worker-fd", -1);
      if (fd < 0) {
        std::cerr << args.program() << ": error: bad --worker-fd\n";
        return 2;
      }
      dist::WorkerOptions worker;
      worker.fd = static_cast<int>(fd);
      worker.threads = static_cast<std::size_t>(args.get_int("threads", 0));
      return dist::run_worker(worker);
    }

    // TCP worker mode: dial a --listen coordinator. Refused connections are
    // retried briefly — workers routinely start before the coordinator.
    if (args.has("worker-connect")) {
      const net::HostPort address = net::parse_host_port(
          args.get_string("worker-connect", ""), "--worker-connect");
      dist::WorkerOptions worker;
      worker.fd = net::tcp_connect_retry(address, 5000, 10000);
      worker.threads = static_cast<std::size_t>(args.get_int("threads", 0));
      const int code = dist::run_worker(worker);
      ::close(worker.fd);
      return code;
    }

    if (args.has("list-policies")) {
      std::cout << PolicyRegistry::instance().render_listing();
      return 0;
    }
    const std::string spec_path = args.get_string("spec", "");
    if (spec_path.empty()) return usage(args.program().c_str());
    const SweepSpec spec = SweepSpec::parse_file(spec_path);
    const std::vector<SweepJob> jobs = spec.expand();

    if (args.has("list")) {
      std::cout << "sweep '" << spec.name << "': " << jobs.size()
                << " jobs\n";
      for (const SweepJob& job : jobs) {
        std::cout << "  [" << job.index << "] " << job.key << '\n';
      }
      return 0;
    }

    const std::string out_path =
        args.get_string("out", spec.name + ".sweep.json");
    const std::string csv_path = args.get_string("csv", "");
    const auto threads = args.get_int("threads", 0);
    const auto shard_size = args.get_int("shard-size", 0);
    const auto max_jobs = args.get_int("max-jobs", 0);
    const auto workers = args.get_int("workers", 0);
    // Field-named validation: each bad flag names itself, so a cluster
    // launch script's error message points at the one knob to fix.
    const auto reject = [&](const std::string& message) {
      std::cerr << args.program() << ": error: " << message << '\n';
      return 2;
    };
    if (threads < 0) return reject("--threads must be >= 0 (0 = auto)");
    if (shard_size < 0) return reject("--shard-size must be >= 0 (0 = auto)");
    if (max_jobs < 0) return reject("--max-jobs must be >= 0 (0 = all)");
    if (workers < 0) return reject("--workers must be >= 0 (0 = in-process)");
    const std::string listen_text = args.get_string("listen", "");
    const std::string port_file = args.get_string("port-file", "");
    if (!listen_text.empty() && workers > 0) {
      return reject(
          "--listen and --workers are mutually exclusive: a TCP fleet is "
          "whoever connects, not a spawned count");
    }
    if (!port_file.empty() && listen_text.empty()) {
      return reject("--port-file requires --listen");
    }
    // Parse (and so validate, with --listen-named errors) up front, before
    // any work happens.
    net::HostPort listen_address;
    if (!listen_text.empty()) {
      listen_address = net::parse_host_port(listen_text, "--listen");
    }

    // Resume: harvest finished job lines from a previous (partial) output.
    // A kept record must match the current spec exactly — the key encodes
    // the grid coordinates, and the record's seed/replications/checkpoints
    // are checked here so editing those spec fields invalidates old runs
    // instead of silently relabeling them.
    std::map<std::string, std::string> done;
    if (args.has("resume")) {
      std::map<std::string, const SweepJob*> by_key;
      for (const SweepJob& job : jobs) by_key.emplace(job.key, &job);
      for (auto& [key, line] : load_job_lines(out_path)) {
        const auto it = by_key.find(key);
        if (it == by_key.end()) {
          std::cout << "(resume: dropping stale job '" << key << "')\n";
          continue;
        }
        const ExperimentConfig& config = it->second->config;
        JobRecord record;
        try {
          record = parse_job_json(line);
        } catch (const std::invalid_argument&) {
          std::cout << "(resume: dropping unreadable record '" << key
                    << "')\n";
          continue;
        }
        if (record.seed != config.seed ||
            record.replications != config.replications ||
            record.checkpoints !=
                checkpoint_grid(config.horizon, spec.checkpoints)) {
          std::cout << "(resume: dropping outdated job '" << key
                    << "' — spec seed/replications/checkpoints changed)\n";
          continue;
        }
        done.emplace(key, line);
      }
      std::cout << "resume: " << done.size() << "/" << jobs.size()
                << " jobs already done in " << out_path << '\n';
    }

    if (args.has("dry-run")) {
      return print_dry_run(spec, jobs, done,
                           static_cast<std::size_t>(shard_size));
    }

    install_stop_handlers();

    std::set<std::string> skip;
    for (const auto& [key, line] : done) skip.insert(key);

    // Incremental checkpoint: header + already-done jobs up front, then one
    // appended line per finished job (O(total size) I/O). A crash or an
    // interrupt leaves a footer-less file load_job_lines can still scan;
    // the happy path ends with one atomic, expansion-ordered rewrite below.
    std::ofstream checkpoint(out_path, std::ios::binary | std::ios::trunc);
    if (!checkpoint) {
      throw std::runtime_error("cannot open '" + out_path + "' for write");
    }
    checkpoint << render_sweep_json_header(spec);
    for (const SweepJob& job : jobs) {
      const auto it = done.find(job.key);
      if (it != done.end()) checkpoint << it->second << ",\n";
    }
    checkpoint.flush();

    Timer timer;
    std::size_t launched = 0;
    std::size_t skipped = 0;
    std::size_t pending = 0;
    bool interrupted = false;
    std::map<std::string, RunningStat> policy_seconds;
    std::map<std::string, JobRecord> fresh;

    // The one place the checkpoint-file record discipline lives: one JSON
    // line + ",\n", flushed, so a crash/interrupt only ever truncates at a
    // record boundary — both execution paths feed through here.
    const auto record_done = [&](const std::string& key, std::string line,
                                 JobRecord record) {
      ++launched;
      checkpoint << line << ",\n" << std::flush;
      done[key] = std::move(line);
      fresh.emplace(key, std::move(record));
    };

    if (workers > 0 || !listen_text.empty()) {
      // Distributed path: fan jobs across workers — spawned processes of
      // this binary, or TCP peers dialing a --listen socket — and stream
      // their deterministic record lines into the same checkpoint file.
      dist::CoordinatorOptions dist_options;
      std::unique_ptr<net::TcpServerTransport> tcp;
      if (!listen_text.empty()) {
        tcp = std::make_unique<net::TcpServerTransport>(listen_address);
        dist_options.transport = tcp.get();
        const std::string bound = net::format_host_port(tcp->bound());
        std::cout << "sweep '" << spec.name << "': " << jobs.size()
                  << " jobs, listening on " << bound
                  << " (start workers with --worker-connect " << bound
                  << ")\n";
        if (!port_file.empty()) write_file(port_file, bound + "\n");
      } else {
        const std::size_t hardware =
            std::max(1u, std::thread::hardware_concurrency());
        const std::size_t per_worker =
            threads > 0
                ? static_cast<std::size_t>(threads)
                : std::max<std::size_t>(
                      1, hardware / static_cast<std::size_t>(workers));
        dist_options.workers = static_cast<std::size_t>(workers);
        dist_options.worker_command = {dist::self_exe_path(args.program()),
                                       "--threads",
                                       std::to_string(per_worker)};
        std::cout << "sweep '" << spec.name << "': " << jobs.size()
                  << " jobs, " << workers << " workers x " << per_worker
                  << " threads\n";
      }
      dist_options.checkpoints = spec.checkpoints;
      dist_options.shard_size = static_cast<std::size_t>(shard_size) != 0
                                    ? static_cast<std::size_t>(shard_size)
                                    : spec.shard_size;
      dist_options.max_jobs = static_cast<std::size_t>(max_jobs);
      dist_options.should_stop = [] { return g_stop != 0; };
      dist_options.on_result = [&](const dist::DistJobResult& result) {
        JobRecord record = parse_job_json(result.record_line);
        std::cout << "  [" << result.job->index + 1 << "/" << jobs.size()
                  << "] " << result.job->key << "  reps="
                  << record.replications << " shards=" << result.shards << "x"
                  << result.shard_size << "  final=" << record.final_mean
                  << "  " << result.seconds << "s  (worker " << result.worker
                  << (result.attempts > 1
                          ? ", attempt " + std::to_string(result.attempts)
                          : "")
                  << ")\n";
        record_done(result.job->key, result.record_line, std::move(record));
      };
      const dist::DistSweepSummary summary =
          dist::run_distributed_sweep(jobs, dist_options, skip);
      skipped = summary.skipped;
      pending = summary.pending;
      interrupted = summary.interrupted;
      policy_seconds = summary.policy_seconds;
      if (summary.requeues > 0) {
        std::cout << "(requeued " << summary.requeues
                  << " assignments after worker loss — output unaffected)\n";
      }
      for (const net::WorkerSummary& w : summary.workers) {
        std::cout << "  worker " << w.id << " (" << w.where;
        if (!w.host.empty()) std::cout << ", " << w.host << "/" << w.remote_pid;
        std::cout << "): " << w.jobs_done << " jobs, " << std::fixed
                  << std::setprecision(1) << w.seconds << "s, "
                  << w.bytes_out << "B out / " << w.bytes_in << "B in"
                  << (w.lost_in_flight ? "  [lost mid-job]"
                                       : (w.lost ? "  [lost]" : ""))
                  << "\n";
        std::cout.unsetf(std::ios::fixed);
        std::cout << std::setprecision(6);
      }
    } else {
      ThreadPool pool(static_cast<std::size_t>(threads));
      std::cout << "sweep '" << spec.name << "': " << jobs.size() << " jobs, "
                << pool.num_threads() << " threads\n";
      SweepRunOptions options;
      options.pool = &pool;
      options.shard_size = static_cast<std::size_t>(shard_size);
      options.max_jobs = static_cast<std::size_t>(max_jobs);
      options.should_stop = [] { return g_stop != 0; };
      options.on_job = [&](const JobOutcome& outcome) {
        std::cout << "  [" << outcome.job.index + 1 << "/" << jobs.size()
                  << "] " << outcome.job.key << "  reps="
                  << outcome.aggregate.replications() << " shards="
                  << outcome.shards << "x" << outcome.shard_size
                  << "  final=" << outcome.aggregate.final_cumulative().mean()
                  << "  " << outcome.seconds << "s\n";
        JobRecord record = JobRecord::from(outcome.job, outcome.aggregate);
        std::string line = render_job_json(record);
        record_done(outcome.job.key, std::move(line), std::move(record));
      };
      const SweepResult result = run_sweep(spec, options, skip);
      skipped = result.skipped;
      pending = result.pending;
      interrupted = result.interrupted;
      policy_seconds = result.policy_seconds;
    }
    checkpoint.close();

    // Final rewrite: jobs in expansion order regardless of which run (or
    // which worker) produced them, so partial + resume — and any worker
    // count — equals one full run byte-for-byte.
    std::vector<std::string> lines;
    for (const SweepJob& job : jobs) {
      const auto it = done.find(job.key);
      if (it != done.end()) lines.push_back(it->second);
    }
    write_file(out_path, render_sweep_json(spec, lines));
    const std::size_t emitted = lines.size();
    std::cout << "wrote " << out_path << " (" << emitted << "/" << jobs.size()
              << " jobs)\n";
    if (!csv_path.empty()) {
      // Only resumed jobs need re-parsing; fresh ones keep their records.
      std::vector<JobRecord> records;
      for (const SweepJob& job : jobs) {
        const auto it = done.find(job.key);
        if (it == done.end()) continue;
        const auto have = fresh.find(job.key);
        records.push_back(have != fresh.end() ? have->second
                                              : parse_job_json(it->second));
      }
      write_file(csv_path, render_sweep_csv(records));
      std::cout << "wrote " << csv_path << '\n';
    }

    if (!policy_seconds.empty()) {
      std::cout << "per-policy timing (this run):\n";
      for (const auto& [policy, stat] : policy_seconds) {
        std::cout << "  " << policy << ": " << stat.count() << " jobs, mean "
                  << stat.mean() << "s, total "
                  << stat.mean() * static_cast<double>(stat.count()) << "s\n";
      }
    }
    if (pending > 0) {
      std::cout << "partial: " << pending
                << " jobs still pending (rerun with --resume)\n";
    }
    std::cout << "ran " << launched << " jobs (skipped " << skipped << ") in "
              << timer.elapsed_seconds() << "s\n";
    const std::string metrics_path = args.get_string("metrics-out", "");
    if (!metrics_path.empty()) {
      write_file(metrics_path,
                 obs::MetricsRegistry::global().snapshot().render_json());
      std::cout << "wrote " << metrics_path << '\n';
    }
    if (interrupted) {
      std::cout << "interrupted: completed records were flushed; rerun with "
                   "--resume to finish\n";
      return 130;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << (argc > 0 ? argv[0] : "ncb_sweep") << ": error: " << e.what()
              << '\n';
    return 2;
  }
}
