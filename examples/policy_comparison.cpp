// CLI playground: run any policy on any graph family under any scenario.
//
//   ./policy_comparison --scenario=sso --policy=dfl-sso --arms=50 --p=0.4
//   ./policy_comparison --scenario=csr --policy=dfl-csr --arms=15 --m=2
//   ./policy_comparison --scenario=cso --family=is --arms=12   # Fig 2 style
//   ./policy_comparison --policy=eps-greedy:eps=0.05,ucb1:c=4  # param specs
//   ./policy_comparison --list            # registry names + docs + params
//
// Flags: --scenario {sso,ssr,cso,csr}, --policy NAME (repeatable via comma
// list), --arms K, --p density, --m strategy size, --family {subsets,is},
// --horizon N, --reps R, --graph {er,complete,empty,star,cycle,cliques,
// ba,ws}, --seed S.
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "core/policy_factory.hpp"
#include "core/policy_registry.hpp"
#include "sim/experiment.hpp"
#include "util/arg_parse.hpp"
#include "util/ascii_plot.hpp"

namespace {

// Splits the --policy list on commas, except that a segment containing '='
// but no ':' continues the previous spec's parameter list ("a:x=1,y=2,b"
// → {"a:x=1,y=2", "b"}; policy names never contain '=').
std::vector<std::string> split_policy_list(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const bool continues_params = !out.empty() &&
                                  item.find('=') != std::string::npos &&
                                  item.find(':') == std::string::npos;
    if (continues_params) {
      out.back() += ',' + item;
    } else {
      out.push_back(item);
    }
  }
  return out;
}

int run(int argc, char** argv) {
  using namespace ncb;
  const ArgParse args(argc, argv);

  if (args.has("list") || args.has("list-policies")) {
    std::cout << PolicyRegistry::instance().render_listing()
              << "scenarios: sso ssr cso csr\n";
    return 0;
  }

  const std::string scenario_text = args.get_string("scenario", "sso");
  Scenario scenario = Scenario::kSso;
  if (scenario_text == "ssr") scenario = Scenario::kSsr;
  else if (scenario_text == "cso") scenario = Scenario::kCso;
  else if (scenario_text == "csr") scenario = Scenario::kCsr;
  else if (scenario_text != "sso") {
    std::cerr << "unknown scenario: " << scenario_text << '\n';
    return 1;
  }

  ExperimentConfig config;
  config.name = "policy-comparison";
  config.num_arms = static_cast<std::size_t>(
      args.get_int("arms", is_combinatorial(scenario) ? 15 : 50));
  config.edge_probability = args.get_double("p", 0.3);
  config.horizon = args.get_int("horizon", 5000);
  config.replications = static_cast<std::size_t>(args.get_int("reps", 10));
  config.strategy_size = static_cast<std::size_t>(args.get_int("m", 2));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20170605));

  const std::string graph_text = args.get_string("graph", "er");
  if (graph_text == "complete") config.graph_family = GraphFamily::kComplete;
  else if (graph_text == "empty") config.graph_family = GraphFamily::kEmpty;
  else if (graph_text == "star") config.graph_family = GraphFamily::kStar;
  else if (graph_text == "cycle") config.graph_family = GraphFamily::kCycle;
  else if (graph_text == "cliques") {
    config.graph_family = GraphFamily::kDisjointCliques;
    config.family_param = 5;
  } else if (graph_text == "ba") {
    config.graph_family = GraphFamily::kBarabasiAlbert;
    config.family_param = 2;
  } else if (graph_text == "ws") {
    config.graph_family = GraphFamily::kWattsStrogatz;
    config.family_param = 2;
  }

  const std::string default_policy =
      is_combinatorial(scenario) ? "dfl-cso" : "dfl-sso";
  const auto policies =
      split_policy_list(args.get_string("policy", default_policy));

  std::cout << config.describe() << "  scenario=" << scenario_name(scenario)
            << '\n';

  // Optional independent-set family (the paper's Fig. 2 setting) instead of
  // the default ≤M-subset family.
  const bool use_is_family = args.get_string("family", "subsets") == "is";
  std::shared_ptr<const FeasibleSet> family;
  BanditInstance instance = build_instance(config);
  if (is_combinatorial(scenario)) {
    if (use_is_family) {
      family = std::make_shared<const FeasibleSet>(make_independent_set_family(
          std::make_shared<const Graph>(instance.graph()),
          config.strategy_size));
    } else {
      family = build_family(config, instance.graph());
    }
    std::cout << "feasible family: " << (use_is_family ? "independent sets"
                                                       : "subsets")
              << ", |F| = " << family->size() << '\n';
  }

  std::cout << "\npolicy,final_cumulative_regret,ci95,final_avg_regret\n";
  ThreadPool pool;
  std::vector<PlotSeries> figure;
  for (const auto& policy : policies) {
    ReplicationOptions ro;
    ro.replications = config.replications;
    ro.master_seed = config.seed;
    ro.runner.horizon = config.horizon;
    ro.pool = &pool;
    const ReplicatedResult result =
        is_combinatorial(scenario)
            ? run_replicated_combinatorial(
                  [&](std::uint64_t seed) {
                    return make_combinatorial_policy(policy, family, seed);
                  },
                  instance, *family, scenario, ro)
            : run_replicated_single(
                  [&](std::uint64_t seed) {
                    return make_single_play_policy(policy, config.horizon, seed);
                  },
                  instance, scenario, ro);
    // Multi-param specs contain commas; CSV-quote them to keep 4 columns.
    const bool needs_quoting = policy.find(',') != std::string::npos;
    std::cout << (needs_quoting ? "\"" + policy + "\"" : policy) << ','
              << result.final_cumulative.mean() << ','
              << result.final_cumulative.ci95_halfwidth() << ','
              << result.final_cumulative.mean() /
                     static_cast<double>(config.horizon)
              << '\n';
    figure.push_back({policy, result.accumulated_regret()});
  }

  PlotOptions opts;
  opts.title = "accumulated regret";
  opts.y_zero = true;
  opts.height = 14;
  for (auto& s : figure) s.values = downsample(s.values, 72);
  std::cout << '\n' << render_plot(figure, opts);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::cerr << (argc > 0 ? argv[0] : "policy_comparison")
              << ": error: " << e.what() << '\n';
    return 2;
  }
}
