// Quickstart: the smallest end-to-end use of the ncb public API.
//
//   1. Build a relation graph over K arms.
//   2. Attach reward distributions (a BanditInstance).
//   3. Pick a policy (DFL-SSO here) and let the simulation runner drive the
//      feedback loop under side-observation semantics.
//   4. Read the regret series off the result.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/dfl_sso.hpp"
#include "env/environment.hpp"
#include "graph/generators.hpp"
#include "sim/runner.hpp"

int main() {
  using namespace ncb;

  // 1. A random relation graph over 20 arms: an edge means "pulling one arm
  //    also reveals the other's reward this slot".
  Xoshiro256 rng(7);
  Graph graph = erdos_renyi(/*n=*/20, /*p=*/0.3, rng);

  // 2. Bernoulli arms with means drawn uniformly from [0, 1] (the paper's
  //    §VII setting).
  BanditInstance instance = random_bernoulli_instance(std::move(graph), rng);
  std::cout << "best arm: " << instance.best_arm()
            << " (mu* = " << instance.best_mean() << ")\n";

  // 3. DFL-SSO (Algorithm 1) against a seeded environment.
  Environment env(instance, /*seed=*/42);
  DflSso policy;
  RunnerOptions options;
  options.horizon = 5000;
  const RunResult result = run_single_play(policy, env, Scenario::kSso, options);

  // 4. Regret diagnostics.
  std::cout << "cumulative regret after " << options.horizon
            << " slots: " << result.cumulative_regret.back() << '\n'
            << "average regret R_n/n:    " << result.final_average_regret()
            << "  (zero-regret policies drive this to 0)\n";

  // How often was the best arm played over the last thousand slots? The
  // play-count vector tells us where the policy converged.
  std::cout << "plays of best arm: "
            << result.play_counts[static_cast<std::size_t>(instance.best_arm())]
            << " / " << options.horizon << '\n';
  return 0;
}
