// Environmental sensor-field monitoring: a data-collection drone queries one
// sensor per round for its event-detection reading, but overhearing the
// low-power radio broadcasts of the queried sensor's grid neighbors comes for
// free — the side-observation structure of the paper, with the relation graph
// given by physical adjacency rather than social ties.
//
// Sensors sit on an 8x6 grid; detection probability peaks at a hot spot and
// decays with distance. We compare DFL-SSO (exploits overheard neighbors)
// against plain UCB1 (discards them) under SSO semantics.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "core/dfl_sso.hpp"
#include "core/ucb1.hpp"
#include "graph/generators.hpp"
#include "sim/replication.hpp"

int main() {
  using namespace ncb;

  constexpr std::size_t kRows = 8;
  constexpr std::size_t kCols = 6;
  Graph graph = grid_graph(kRows, kCols);

  // Detection probability: a hot spot near cell (2, 4) decaying with
  // Manhattan distance, floored at a 5% false-positive rate.
  std::vector<double> detect(kRows * kCols);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t c = 0; c < kCols; ++c) {
      const double dist = std::abs(static_cast<double>(r) - 2.0) +
                          std::abs(static_cast<double>(c) - 4.0);
      detect[r * kCols + c] = std::max(0.05, 0.9 - 0.12 * dist);
    }
  }
  BanditInstance instance = bernoulli_instance(graph, detect);
  std::cout << "hot-spot sensor: " << instance.best_arm()
            << " (detects " << instance.best_mean() * 100 << "% of events)\n";

  ReplicationOptions options;
  options.replications = 12;
  options.runner.horizon = 6000;
  ThreadPool pool;
  options.pool = &pool;

  struct Entry {
    std::string name;
    SinglePolicyFactory factory;
  };
  const std::vector<Entry> policies{
      {"DFL-SSO",
       [](std::uint64_t seed) -> std::unique_ptr<SinglePlayPolicy> {
         return std::make_unique<DflSso>(DflSsoOptions{.seed = seed});
       }},
      {"UCB1",
       [](std::uint64_t seed) -> std::unique_ptr<SinglePlayPolicy> {
         return std::make_unique<Ucb1>(Ucb1Options{.seed = seed});
       }},
  };

  std::cout << "\nmissed detections over " << options.runner.horizon
            << " query rounds:\n";
  for (const auto& entry : policies) {
    const auto result = run_replicated_single(entry.factory, instance,
                                              Scenario::kSso, options);
    std::cout << "  " << std::setw(8) << std::left << entry.name << std::right
              << " cumulative regret = " << std::setw(8)
              << result.final_cumulative.mean() << "  (R_n/n = "
              << result.final_cumulative.mean() /
                     static_cast<double>(options.runner.horizon)
              << ")\n";
  }
  std::cout << "\noverheard neighbor broadcasts localize the hot spot with "
               "far fewer wasted queries than probe-only UCB1.\n";
  return 0;
}
