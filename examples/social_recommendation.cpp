// Social-network product recommendation (the paper's side-reward
// motivation, §I-II): promoting a product to a user also influences her
// friends' purchases, so the realized reward of picking user i is the sum
// over the closed friend-neighborhood N_i. The right target is the user
// with the most valuable *neighborhood* (u_i = Σ_{j∈N_i} μ_j), not the most
// valuable individual — a hub with an average conversion rate can beat a
// high-converting loner.
//
// The friendship graph is Barabási–Albert (heavy-tailed degrees, like real
// social networks); DFL-SSR (Algorithm 3) learns where to seed promotions.
#include <iostream>

#include "core/dfl_ssr.hpp"
#include "core/moss.hpp"
#include "graph/generators.hpp"
#include "graph/metrics.hpp"
#include "sim/replication.hpp"

int main() {
  using namespace ncb;

  // 60 users, preferential attachment: a few hubs, many leaves.
  Xoshiro256 rng(2017);
  Graph graph = barabasi_albert(60, 2, rng);
  std::cout << "friendship graph: " << compute_metrics(graph).to_string()
            << '\n';

  // Conversion probabilities uniform in [0, 0.5].
  BanditInstance instance =
      random_bernoulli_instance(std::move(graph), rng, 0.0, 0.5);
  std::cout << "best individual converter: user " << instance.best_arm()
            << " (mu = " << instance.best_mean() << ")\n"
            << "best neighborhood seed:    user "
            << instance.best_side_reward_arm()
            << " (u = " << instance.best_side_reward_mean()
            << " expected purchases/slot)\n";

  ReplicationOptions options;
  options.replications = 10;
  options.runner.horizon = 10000;
  ThreadPool pool;
  options.pool = &pool;

  // DFL-SSR targets neighborhood value; MOSS chases individual conversions
  // and is structurally blind to the hub effect (run under the same SSR
  // payout to make the comparison fair).
  const auto ssr = run_replicated_single(
      [](std::uint64_t seed) -> std::unique_ptr<SinglePlayPolicy> {
        return std::make_unique<DflSsr>(DflSsrOptions{.seed = seed});
      },
      instance, Scenario::kSsr, options);
  const auto moss = run_replicated_single(
      [&](std::uint64_t seed) -> std::unique_ptr<SinglePlayPolicy> {
        return std::make_unique<Moss>(
            MossOptions{.horizon = options.runner.horizon, .seed = seed});
      },
      instance, Scenario::kSsr, options);

  std::cout << "cumulative missed purchases after "
            << options.runner.horizon << " campaigns:\n"
            << "  DFL-SSR (targets u_i):  " << ssr.final_cumulative.mean()
            << " (+/-" << ssr.final_cumulative.ci95_halfwidth() << ")\n"
            << "  MOSS    (targets mu_i): " << moss.final_cumulative.mean()
            << " (+/-" << moss.final_cumulative.ci95_halfwidth() << ")\n"
            << "average regret per campaign (DFL-SSR): "
            << ssr.final_cumulative.mean() /
                   static_cast<double>(options.runner.horizon)
            << " -> approaches 0 (zero-regret)\n";
  return 0;
}
