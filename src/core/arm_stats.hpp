// Per-arm sufficient statistics shared by the index policies.
#pragma once

#include <cstdint>
#include <vector>

namespace ncb {

/// Count + incremental mean for one arm (or com-arm). The update matches the
/// paper's line "X̄ ← X/O + (1 − 1/O)·X̄" with O the post-increment count.
struct ArmStat {
  std::int64_t count = 0;
  double mean = 0.0;

  void add(double value) noexcept {
    ++count;
    mean += (value - mean) / static_cast<double>(count);
  }

  void clear() noexcept {
    count = 0;
    mean = 0.0;
  }
};

/// Resets a vector of stats to `size` cleared entries.
inline void reset_stats(std::vector<ArmStat>& stats, std::size_t size) {
  stats.assign(size, ArmStat{});
}

}  // namespace ncb
