// Per-arm sufficient statistics shared by the index policies, stored in
// structure-of-arrays form.
//
// The select hot path scans per-arm counts and means as flat arrays (an
// every-round index refresh touches all K of each, the vectorized argmax
// streams the index array), so the table keeps one contiguous counts[]
// and one contiguous means[] instead of an array of {count, mean} pairs.
// The mean update matches the paper's line "X̄ ← X/O + (1 − 1/O)·X̄" with
// O the post-increment count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/types.hpp"

namespace ncb {

class ArmStatsTable {
 public:
  /// Resets to `size` cleared entries, reusing the existing allocations.
  void reset(std::size_t size) {
    counts_.assign(size, 0);
    means_.assign(size, 0.0);
  }

  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }

  /// Observation count O_i; throws std::out_of_range for invalid arms.
  [[nodiscard]] std::int64_t count(ArmId i) const {
    return counts_.at(static_cast<std::size_t>(i));
  }

  /// Empirical mean X̄_i; throws std::out_of_range for invalid arms.
  [[nodiscard]] double mean(ArmId i) const {
    return means_.at(static_cast<std::size_t>(i));
  }

  /// Folds one observation of arm i into the table; throws
  /// std::out_of_range for invalid arms.
  void add(ArmId i, double value) {
    const auto k = static_cast<std::size_t>(i);
    if (k >= counts_.size()) {
      throw std::out_of_range("ArmStatsTable::add: arm out of range");
    }
    add_unchecked(k, value);
  }

  /// Unchecked fold for hot paths whose arm is already validated.
  void add_unchecked(std::size_t k, double value) noexcept {
    const std::int64_t c = ++counts_[k];
    means_[k] += (value - means_[k]) / static_cast<double>(c);
  }

  /// Flat per-arm count array (size() entries), for bulk refresh loops.
  [[nodiscard]] const std::int64_t* counts() const noexcept {
    return counts_.data();
  }
  /// Flat per-arm mean array (size() entries).
  [[nodiscard]] const double* means() const noexcept { return means_.data(); }

 private:
  std::vector<std::int64_t> counts_;
  std::vector<double> means_;
};

}  // namespace ncb
