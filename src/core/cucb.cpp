#include "core/cucb.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/policy_registry.hpp"
#include "strategy/oracle.hpp"

namespace ncb {

Cucb::Cucb(std::shared_ptr<const FeasibleSet> family, CucbOptions options)
    : family_(std::move(family)), options_(options), rng_(options.seed) {
  if (!family_) throw std::invalid_argument("Cucb: null family");
  reset();
}

void Cucb::reset() {
  stats_.reset(family_->graph().num_vertices());
  scores_.assign(stats_.size(), 0.0);
  rng_ = Xoshiro256(options_.seed);
}

double Cucb::arm_index(ArmId i, TimeSlot t) const {
  const std::int64_t count = stats_.count(i);
  if (count == 0) return 1e6;  // force coverage of unplayed arms
  const double bonus =
      std::sqrt(options_.exploration *
                std::log(std::max<double>(static_cast<double>(t), 1.0)) /
                static_cast<double>(count));
  return stats_.mean(i) + bonus;
}

StrategyId Cucb::select(TimeSlot t) {
  // c·ln t is shared by every arm (same hoisting as the single-play UCBs;
  // the expression tree matches arm_index, so the scores are bit-equal).
  const double clt =
      options_.exploration *
      std::log(std::max<double>(static_cast<double>(t), 1.0));
  const std::int64_t* counts = stats_.counts();
  const double* means = stats_.means();
  for (std::size_t i = 0; i < scores_.size(); ++i) {
    scores_[i] = counts[i] == 0
                     ? 1e6
                     : means[i] + std::sqrt(clt / static_cast<double>(counts[i]));
  }
  return argmax_modular(*family_, scores_);
}

void Cucb::observe(StrategyId played, TimeSlot /*t*/,
                   ObservationSpan observations) {
  // No side bonus: consume only the component arms of the played strategy.
  const Bitset64& bits = family_->strategy_bits(played);
  for (const Observation& obs : observations) {
    if (bits.test(static_cast<std::size_t>(obs.arm))) {
      stats_.add(obs.arm, obs.value);
    }
  }
}

std::string Cucb::describe() const {
  std::ostringstream out;
  out << name() << "(c=" << options_.exploration << ")";
  return out.str();
}

namespace {

const PolicyRegistration kRegCucb{{
    "cucb",
    "combinatorial UCB baseline without side bonus (Gai/Chen et al.)",
    kCsoBit | kCsrBit,
    {{"c", ParamKind::kDouble, "exploration scale", "1.5", false}},
    nullptr,
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<Cucb>(
          ctx.family, CucbOptions{.exploration = p.get_double("c", 1.5),
                                  .seed = ctx.seed});
    },
}};

}  // namespace

}  // namespace ncb
