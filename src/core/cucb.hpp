// CUCB-style combinatorial UCB (Gai et al. / Chen et al.): the
// combinatorial-play baseline *without* side bonus the paper's §VIII cites.
// Learns per-arm means from the arms it actually plays, selects the strategy
// maximizing the modular sum of per-arm UCB indices. Distribution-dependent.
#pragma once

#include <memory>
#include <vector>

#include "core/arm_stats.hpp"
#include "core/policy.hpp"
#include "strategy/feasible_set.hpp"
#include "util/rng.hpp"

namespace ncb {

struct CucbOptions {
  double exploration = 1.5;  ///< Chen et al. use sqrt(3 ln t / (2 T_i)).
  std::uint64_t seed = 0x5eedcccb;
};

class Cucb final : public CombinatorialPolicy {
 public:
  explicit Cucb(std::shared_ptr<const FeasibleSet> family,
                CucbOptions options = {});

  void reset() override;
  [[nodiscard]] StrategyId select(TimeSlot t) override;
  void observe(StrategyId played, TimeSlot t,
               ObservationSpan observations) override;
  [[nodiscard]] std::string name() const override { return "CUCB"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::int64_t play_count(ArmId i) const {
    return stats_.count(i);
  }
  [[nodiscard]] double arm_index(ArmId i, TimeSlot t) const;

 private:
  std::shared_ptr<const FeasibleSet> family_;
  CucbOptions options_;
  ArmStatsTable stats_;
  std::vector<double> scores_;
  Xoshiro256 rng_;
};

}  // namespace ncb
