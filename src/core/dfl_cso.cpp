#include "core/dfl_cso.hpp"

#include <limits>
#include <stdexcept>

#include "core/policy_registry.hpp"
#include "strategy/strategy_graph.hpp"
#include "util/argmax.hpp"
#include "util/math.hpp"

namespace ncb {

DflCso::DflCso(std::shared_ptr<const FeasibleSet> family, DflCsoOptions options)
    : family_(std::move(family)), options_(options), rng_(options.seed) {
  if (!family_) throw std::invalid_argument("DflCso: null family");
  const auto count = static_cast<StrategyId>(family_->size());
  update_lists_.resize(family_->size());
  if (options_.scope == CsoUpdateScope::kStrategyGraph) {
    const Graph sg = build_strategy_graph(*family_);
    for (StrategyId x = 0; x < count; ++x) {
      const ArmSpan closed = sg.closed_neighborhood(x);
      update_lists_[static_cast<std::size_t>(x)] =
          std::vector<StrategyId>(closed.begin(), closed.end());
    }
  } else {
    for (StrategyId x = 0; x < count; ++x) {
      update_lists_[static_cast<std::size_t>(x)] =
          observable_strategies(*family_, x);
    }
  }
  reset();
}

void DflCso::reset() {
  stats_.reset(family_->size());
  scores_.assign(family_->size(), 0.0);
  scratch_rewards_.assign(family_->graph().num_vertices(), 0.0);
  scratch_stamp_.assign(family_->graph().num_vertices(), -1);
  epoch_ = 0;
  rng_ = Xoshiro256(options_.seed);
}

double DflCso::index(StrategyId x, TimeSlot t) const {
  const std::int64_t count = stats_.count(x);
  if (count == 0) return std::numeric_limits<double>::infinity();
  const double ratio = static_cast<double>(t) /
                       (static_cast<double>(family_->size()) *
                        static_cast<double>(count));
  return stats_.mean(x) + exploration_width(ratio, static_cast<double>(count));
}

StrategyId DflCso::select(TimeSlot t) {
  const std::int64_t* counts = stats_.counts();
  const double* means = stats_.means();
  const double f_size = static_cast<double>(family_->size());
  for (std::size_t x = 0; x < scores_.size(); ++x) {
    if (counts[x] == 0) {
      scores_[x] = std::numeric_limits<double>::infinity();
      continue;
    }
    const double ratio =
        static_cast<double>(t) / (f_size * static_cast<double>(counts[x]));
    scores_[x] = means[x] + exploration_width(ratio, static_cast<double>(counts[x]));
  }
  // Same reservoir tie-break draw sequence as the historical inline loop.
  return static_cast<StrategyId>(
      reservoir_argmax(scores_.data(), scores_.size(), rng_));
}

void DflCso::observe(StrategyId played, TimeSlot /*t*/,
                     ObservationSpan observations) {
  // Stage the arm values; observations normally cover Y_played, and every
  // com-arm in the update list has all component arms inside Y_played. When
  // feedback is unreliable (dropped side observations), a com-arm whose
  // component arms were not all revealed this slot is skipped rather than
  // updated with stale values.
  ++epoch_;
  for (const Observation& obs : observations) {
    scratch_rewards_.at(static_cast<std::size_t>(obs.arm)) = obs.value;
    scratch_stamp_.at(static_cast<std::size_t>(obs.arm)) = epoch_;
  }
  for (const StrategyId y : update_lists_.at(static_cast<std::size_t>(played))) {
    double reward = 0.0;
    bool complete = true;
    for (const ArmId i : family_->strategy(y)) {
      if (scratch_stamp_[static_cast<std::size_t>(i)] != epoch_) {
        complete = false;
        break;
      }
      reward += scratch_rewards_[static_cast<std::size_t>(i)];
    }
    if (complete) stats_.add_unchecked(static_cast<std::size_t>(y), reward);
  }
}

std::string DflCso::name() const {
  return options_.scope == CsoUpdateScope::kStrategyGraph
             ? "DFL-CSO"
             : "DFL-CSO(all-observable)";
}

namespace {

const PolicyRegistration kRegDflCso{{
    "dfl-cso",
    "Algorithm 2: combinatorial side-observation learner over the strategy "
    "graph",
    kCsoBit,
    {},
    nullptr,
    [](const PolicyParams&, const PolicyBuildContext& ctx) {
      return std::make_unique<DflCso>(
          ctx.family,
          DflCsoOptions{.scope = CsoUpdateScope::kStrategyGraph,
                        .seed = ctx.seed});
    },
}};

const PolicyRegistration kRegDflCsoObservable{{
    "dfl-cso-observable",
    "DFL-CSO updating every com-arm contained in the observed set",
    kCsoBit,
    {},
    nullptr,
    [](const PolicyParams&, const PolicyBuildContext& ctx) {
      return std::make_unique<DflCso>(
          ctx.family,
          DflCsoOptions{.scope = CsoUpdateScope::kAllObservable,
                        .seed = ctx.seed});
    },
}};

}  // namespace

}  // namespace ncb
