#include "core/dfl_cso.hpp"

#include <limits>
#include <stdexcept>

#include "core/policy_registry.hpp"
#include "strategy/strategy_graph.hpp"
#include "util/math.hpp"

namespace ncb {

DflCso::DflCso(std::shared_ptr<const FeasibleSet> family, DflCsoOptions options)
    : family_(std::move(family)), options_(options), rng_(options.seed) {
  if (!family_) throw std::invalid_argument("DflCso: null family");
  const auto count = static_cast<StrategyId>(family_->size());
  update_lists_.resize(family_->size());
  if (options_.scope == CsoUpdateScope::kStrategyGraph) {
    const Graph sg = build_strategy_graph(*family_);
    for (StrategyId x = 0; x < count; ++x) {
      const ArmSpan closed = sg.closed_neighborhood(x);
      update_lists_[static_cast<std::size_t>(x)] =
          std::vector<StrategyId>(closed.begin(), closed.end());
    }
  } else {
    for (StrategyId x = 0; x < count; ++x) {
      update_lists_[static_cast<std::size_t>(x)] =
          observable_strategies(*family_, x);
    }
  }
  reset();
}

void DflCso::reset() {
  reset_stats(stats_, family_->size());
  scratch_rewards_.assign(family_->graph().num_vertices(), 0.0);
  scratch_stamp_.assign(family_->graph().num_vertices(), -1);
  epoch_ = 0;
  rng_ = Xoshiro256(options_.seed);
}

double DflCso::index(StrategyId x, TimeSlot t) const {
  const ArmStat& s = stats_.at(static_cast<std::size_t>(x));
  if (s.count == 0) return std::numeric_limits<double>::infinity();
  const double ratio = static_cast<double>(t) /
                       (static_cast<double>(family_->size()) *
                        static_cast<double>(s.count));
  return s.mean + exploration_width(ratio, static_cast<double>(s.count));
}

StrategyId DflCso::select(TimeSlot t) {
  StrategyId best = 0;
  double best_index = -std::numeric_limits<double>::infinity();
  std::size_t ties = 0;
  for (StrategyId x = 0; x < static_cast<StrategyId>(family_->size()); ++x) {
    const double idx = index(x, t);
    if (idx > best_index) {
      best_index = idx;
      best = x;
      ties = 1;
    } else if (idx == best_index) {
      ++ties;
      if (rng_.uniform_int(ties) == 0) best = x;
    }
  }
  return best;
}

void DflCso::observe(StrategyId played, TimeSlot /*t*/,
                     ObservationSpan observations) {
  // Stage the arm values; observations normally cover Y_played, and every
  // com-arm in the update list has all component arms inside Y_played. When
  // feedback is unreliable (dropped side observations), a com-arm whose
  // component arms were not all revealed this slot is skipped rather than
  // updated with stale values.
  ++epoch_;
  for (const Observation& obs : observations) {
    scratch_rewards_.at(static_cast<std::size_t>(obs.arm)) = obs.value;
    scratch_stamp_.at(static_cast<std::size_t>(obs.arm)) = epoch_;
  }
  for (const StrategyId y : update_lists_.at(static_cast<std::size_t>(played))) {
    double reward = 0.0;
    bool complete = true;
    for (const ArmId i : family_->strategy(y)) {
      if (scratch_stamp_[static_cast<std::size_t>(i)] != epoch_) {
        complete = false;
        break;
      }
      reward += scratch_rewards_[static_cast<std::size_t>(i)];
    }
    if (complete) stats_[static_cast<std::size_t>(y)].add(reward);
  }
}

std::string DflCso::name() const {
  return options_.scope == CsoUpdateScope::kStrategyGraph
             ? "DFL-CSO"
             : "DFL-CSO(all-observable)";
}

namespace {

const PolicyRegistration kRegDflCso{{
    "dfl-cso",
    "Algorithm 2: combinatorial side-observation learner over the strategy "
    "graph",
    kCsoBit,
    {},
    nullptr,
    [](const PolicyParams&, const PolicyBuildContext& ctx) {
      return std::make_unique<DflCso>(
          ctx.family,
          DflCsoOptions{.scope = CsoUpdateScope::kStrategyGraph,
                        .seed = ctx.seed});
    },
}};

const PolicyRegistration kRegDflCsoObservable{{
    "dfl-cso-observable",
    "DFL-CSO updating every com-arm contained in the observed set",
    kCsoBit,
    {},
    nullptr,
    [](const PolicyParams&, const PolicyBuildContext& ctx) {
      return std::make_unique<DflCso>(
          ctx.family,
          DflCsoOptions{.scope = CsoUpdateScope::kAllObservable,
                        .seed = ctx.seed});
    },
}};

}  // namespace

}  // namespace ncb
