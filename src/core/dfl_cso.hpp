// DFL-CSO — Algorithm 2: distribution-free learning for combinatorial play
// with side observation.
//
// The CSO problem is converted to SSO over the strategy relation graph
// SG(F, L) of §IV: each feasible strategy is a com-arm; playing x reveals
// arm rewards over Y_x, which determines the full reward of every com-arm
// whose component arms lie inside Y_x. The policy maintains per-com-arm
// statistics (O_x, R̄_x) and selects by the MOSS-style index
// R̄_x + sqrt(log⁺(t/(|F|·O_x))/O_x).
//
// Update scope:
//  * kStrategyGraph (faithful to Algorithm 2's "for y ∈ N_x over SG"):
//    updates the closed SG-neighborhood of the played com-arm.
//  * kAllObservable: updates every com-arm with s_y ⊆ Y_x — a superset of
//    the SG neighborhood (SG requires mutual containment); strictly more
//    information at the same observation cost.
//
// Theorem 2: R_n ≤ 15.94·sqrt(n|F|) + 0.74·C·sqrt(n/|F|).
#pragma once

#include <memory>
#include <vector>

#include "core/arm_stats.hpp"
#include "core/policy.hpp"
#include "strategy/feasible_set.hpp"
#include "util/rng.hpp"

namespace ncb {

enum class CsoUpdateScope {
  kStrategyGraph,  ///< Closed SG-neighborhood (pseudocode-faithful).
  kAllObservable,  ///< Every com-arm contained in the observed set Y_x.
};

struct DflCsoOptions {
  CsoUpdateScope scope = CsoUpdateScope::kStrategyGraph;
  std::uint64_t seed = 0x5eedc501;
};

class DflCso final : public CombinatorialPolicy {
 public:
  /// Precomputes SG and the per-com-arm update lists from `family`.
  explicit DflCso(std::shared_ptr<const FeasibleSet> family,
                  DflCsoOptions options = {});

  void reset() override;
  [[nodiscard]] StrategyId select(TimeSlot t) override;
  void observe(StrategyId played, TimeSlot t,
               ObservationSpan observations) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const FeasibleSet& family() const noexcept { return *family_; }
  [[nodiscard]] std::int64_t observation_count(StrategyId x) const {
    return stats_.count(x);
  }
  [[nodiscard]] double empirical_mean(StrategyId x) const {
    return stats_.mean(x);
  }
  [[nodiscard]] double index(StrategyId x, TimeSlot t) const;
  /// Com-arms whose statistics get updated when `x` is played.
  [[nodiscard]] const std::vector<StrategyId>& update_list(StrategyId x) const {
    return update_lists_.at(static_cast<std::size_t>(x));
  }

 private:
  std::shared_ptr<const FeasibleSet> family_;
  DflCsoOptions options_;
  std::vector<std::vector<StrategyId>> update_lists_;
  ArmStatsTable stats_;
  std::vector<double> scores_;            // per-com-arm index scratch
  std::vector<double> scratch_rewards_;   // per-arm value buffer
  std::vector<std::int64_t> scratch_stamp_;  // which epoch staged the value
  std::int64_t epoch_ = 0;
  Xoshiro256 rng_;
};

}  // namespace ncb
