#include "core/dfl_csr.hpp"

#include <cmath>
#include <stdexcept>

#include "core/policy_registry.hpp"
#include "util/math.hpp"

namespace ncb {

DflCsr::DflCsr(std::shared_ptr<const FeasibleSet> family,
               std::shared_ptr<const CoverageOracle> oracle,
               DflCsrOptions options)
    : family_(std::move(family)),
      oracle_(oracle ? std::move(oracle)
                     : std::make_shared<const ExactCoverageOracle>()),
      options_(options),
      rng_(options.seed) {
  if (!family_) throw std::invalid_argument("DflCsr: null family");
  reset();
}

void DflCsr::reset() {
  stats_.reset(family_->graph().num_vertices());
  scores_.assign(stats_.size(), 0.0);
  rng_ = Xoshiro256(options_.seed);
}

double DflCsr::arm_score(ArmId i, TimeSlot t) const {
  const std::int64_t count = stats_.count(i);
  if (count == 0) return options_.unobserved_score;
  // ln(t^{2/3} / (K·O_i)) clipped at zero, per Equation (47).
  const double k = static_cast<double>(stats_.size());
  const double ratio =
      std::pow(static_cast<double>(t), 2.0 / 3.0) /
      (k * static_cast<double>(count));
  return stats_.mean(i) + exploration_width(ratio, static_cast<double>(count));
}

StrategyId DflCsr::select(TimeSlot t) {
  // t^{2/3} is shared by every arm; hoist it so the per-arm work is one
  // division + sqrt over the flat SoA arrays (same tree as arm_score).
  const double t23 = std::pow(static_cast<double>(t), 2.0 / 3.0);
  const double k = static_cast<double>(stats_.size());
  const std::int64_t* counts = stats_.counts();
  const double* means = stats_.means();
  for (std::size_t i = 0; i < scores_.size(); ++i) {
    if (counts[i] == 0) {
      scores_[i] = options_.unobserved_score;
      continue;
    }
    const double ratio = t23 / (k * static_cast<double>(counts[i]));
    scores_[i] = means[i] + exploration_width(ratio, static_cast<double>(counts[i]));
  }
  return oracle_->select(*family_, scores_);
}

void DflCsr::observe(StrategyId /*played*/, TimeSlot /*t*/,
                     ObservationSpan observations) {
  // Observations cover Y_x; update every revealed arm in one batched pass
  // (pseudocode line "for k ∈ Y_x").
  for (const Observation& obs : observations) {
    stats_.add(obs.arm, obs.value);
  }
}

std::string DflCsr::name() const {
  return oracle_->name() == "exact" ? "DFL-CSR" : "DFL-CSR(greedy)";
}

namespace {

const std::vector<ParamSpec> kDflCsrParams{
    {"unobserved", ParamKind::kDouble,
     "score stand-in for +inf on never-observed arms", "1e6", false}};

const PolicyRegistration kRegDflCsr{{
    "dfl-csr",
    "Algorithm 4: combinatorial side-reward learner, exact oracle",
    kCsrBit,
    kDflCsrParams,
    nullptr,
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<DflCsr>(
          ctx.family, nullptr,
          DflCsrOptions{.unobserved_score = p.get_double("unobserved", 1e6),
                        .seed = ctx.seed});
    },
}};

const PolicyRegistration kRegDflCsrGreedy{{
    "dfl-csr-greedy",
    "DFL-CSR with the scalable (1-1/e)-approximate lazy-greedy oracle",
    kCsrBit,
    kDflCsrParams,
    nullptr,
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<DflCsr>(
          ctx.family, std::make_shared<const GreedyCoverageOracle>(),
          DflCsrOptions{.unobserved_score = p.get_double("unobserved", 1e6),
                        .seed = ctx.seed});
    },
}};

}  // namespace

}  // namespace ncb
