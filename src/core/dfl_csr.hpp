// DFL-CSR — Algorithm 4: distribution-free learning for combinatorial play
// with side reward.
//
// Rather than learning exponentially many com-arm side rewards directly, the
// policy learns per-arm direct rewards and selects the com-arm maximizing
//   Σ_{i∈Y_x} ( X̄_i + sqrt( max(ln(t^{2/3}/(K·O_i)), 0) / O_i ) )
// through a combinatorial oracle (§VI assumes the per-slot optimization can
// be solved optimally; a lazy-greedy oracle provides the scalable
// (1−1/e)-approximate alternative for the A4 ablation).
//
// Theorem 4: R(n) ≤ NK + (sqrt(eK) + 8(1+N)N³)·n^{2/3}
//                    + (1 + 4·sqrt(K)·N²/e)·N²K·n^{5/6}.
#pragma once

#include <memory>
#include <vector>

#include "core/arm_stats.hpp"
#include "core/policy.hpp"
#include "strategy/feasible_set.hpp"
#include "strategy/oracle.hpp"
#include "util/rng.hpp"

namespace ncb {

struct DflCsrOptions {
  /// Score assigned to a never-observed arm so the oracle prioritizes
  /// strategies that cover it (a finite stand-in for +inf).
  double unobserved_score = 1e6;
  std::uint64_t seed = 0x5eedc512;
};

class DflCsr final : public CombinatorialPolicy {
 public:
  /// `oracle` defaults to exact enumeration when null.
  DflCsr(std::shared_ptr<const FeasibleSet> family,
         std::shared_ptr<const CoverageOracle> oracle = nullptr,
         DflCsrOptions options = {});

  void reset() override;
  [[nodiscard]] StrategyId select(TimeSlot t) override;
  void observe(StrategyId played, TimeSlot t,
               ObservationSpan observations) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] const FeasibleSet& family() const noexcept { return *family_; }
  [[nodiscard]] std::int64_t observation_count(ArmId i) const {
    return stats_.count(i);
  }
  [[nodiscard]] double empirical_mean(ArmId i) const {
    return stats_.mean(i);
  }
  /// Per-arm index score w_i(t) fed to the coverage oracle.
  [[nodiscard]] double arm_score(ArmId i, TimeSlot t) const;

 private:
  std::shared_ptr<const FeasibleSet> family_;
  std::shared_ptr<const CoverageOracle> oracle_;
  DflCsrOptions options_;
  ArmStatsTable stats_;
  std::vector<double> scores_;  // scratch
  Xoshiro256 rng_;
};

}  // namespace ncb
