#include "core/dfl_sso.hpp"

#include <limits>
#include <stdexcept>

#include "util/math.hpp"

namespace ncb {

DflSso::DflSso(DflSsoOptions options)
    : options_(options), rng_(options.seed) {}

void DflSso::reset(const Graph& graph) {
  graph_ = graph;
  num_arms_ = graph.num_vertices();
  reset_stats(stats_, num_arms_);
  rng_ = Xoshiro256(options_.seed);
}

double DflSso::index(ArmId i, TimeSlot t) const {
  const ArmStat& s = stats_.at(static_cast<std::size_t>(i));
  if (s.count == 0) return std::numeric_limits<double>::infinity();
  const double ratio = static_cast<double>(t) /
                       (static_cast<double>(num_arms_) *
                        static_cast<double>(s.count));
  return s.mean + options_.exploration_scale *
                      exploration_width(ratio, static_cast<double>(s.count));
}

ArmId DflSso::select(TimeSlot t) {
  if (num_arms_ == 0) throw std::logic_error("DflSso: reset() not called");
  ArmId best = 0;
  double best_index = -std::numeric_limits<double>::infinity();
  std::size_t ties = 0;
  for (std::size_t i = 0; i < num_arms_; ++i) {
    const double idx = index(static_cast<ArmId>(i), t);
    if (idx > best_index) {
      best_index = idx;
      best = static_cast<ArmId>(i);
      ties = 1;
    } else if (idx == best_index) {
      // Reservoir-style uniform tie-breaking.
      ++ties;
      if (rng_.uniform_int(ties) == 0) best = static_cast<ArmId>(i);
    }
  }
  if (options_.neighbor_greedy) {
    // Play the empirically best arm inside N_{I_t} (§IX heuristic). The
    // closed neighborhood always contains `best` itself.
    ArmId play = best;
    double play_mean = stats_[static_cast<std::size_t>(best)].mean;
    for (const ArmId j : graph_.closed_neighborhood(best)) {
      const ArmStat& s = stats_[static_cast<std::size_t>(j)];
      if (s.count > 0 && s.mean > play_mean) {
        play = j;
        play_mean = s.mean;
      }
    }
    return play;
  }
  return best;
}

void DflSso::observe(ArmId /*played*/, TimeSlot /*t*/,
                     const std::vector<Observation>& observations) {
  for (const auto& obs : observations) {
    stats_.at(static_cast<std::size_t>(obs.arm)).add(obs.value);
  }
}

std::string DflSso::name() const {
  return options_.neighbor_greedy ? "DFL-SSO+greedy" : "DFL-SSO";
}

}  // namespace ncb
