#include "core/dfl_sso.hpp"

#include <limits>
#include <sstream>

#include "core/policy_registry.hpp"
#include "util/math.hpp"

namespace ncb {

DflSso::DflSso(DflSsoOptions options)
    : ArmStatIndexPolicy(options.seed), options_(options) {}

void DflSso::on_reset(const Graph& graph) {
  graph_ = graph;
  ArmStatIndexPolicy::on_reset(graph);
}

IndexRefresh DflSso::refresh_index(ArmId i, TimeSlot t) const {
  const std::int64_t count = stats_.count(i);
  if (count == 0) {
    // +inf until the first observation dirty-marks the arm.
    return {std::numeric_limits<double>::infinity(), kIndexValidForever};
  }
  // Width plateau: t ≤ K·O_i ⇔ the ratio rounds to ≤ 1.0 (t and K·O_i are
  // exact in double up to 2^53 and division is monotonic), so log⁺ clips
  // the width to exactly zero and the index sits at the empirical mean
  // until slot K·O_i.
  const std::int64_t plateau = static_cast<std::int64_t>(num_arms_) * count;
  const double mean = stats_.mean(i);
  if (t <= plateau) {
    return {mean + options_.exploration_scale * 0.0, plateau};
  }
  const double ratio = static_cast<double>(t) /
                       (static_cast<double>(num_arms_) *
                        static_cast<double>(count));
  return {mean + options_.exploration_scale *
                     exploration_width(ratio, static_cast<double>(count)),
          t};
}

double DflSso::index(ArmId i, TimeSlot t) const {
  return refresh_index(i, t).value;
}

ArmId DflSso::refine_selection(ArmId best) {
  if (!options_.neighbor_greedy) return best;
  // Play the empirically best arm inside N_{I_t} (§IX heuristic). The
  // closed neighborhood always contains `best` itself.
  return best_empirical_in_neighborhood(graph_, best);
}

std::string DflSso::name() const {
  return options_.neighbor_greedy ? "DFL-SSO+greedy" : "DFL-SSO";
}

std::string DflSso::describe() const {
  std::ostringstream out;
  out << name() << "(eta=" << options_.exploration_scale << ")";
  return out.str();
}

namespace {

const PolicyRegistration kRegDflSso{{
    "dfl-sso",
    "Algorithm 1: distribution-free single-play learner, batched "
    "closed-neighborhood updates",
    kSsoBit,
    {{"eta", ParamKind::kDouble, "exploration width multiplier", "1.0",
      false}},
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<DflSso>(DflSsoOptions{
          .neighbor_greedy = false,
          .exploration_scale = p.get_double("eta", 1.0),
          .seed = ctx.seed});
    },
    nullptr,
}};

const PolicyRegistration kRegDflSsoGreedy{{
    "dfl-sso-greedy",
    "DFL-SSO with the paper's neighbor-greedy play heuristic",
    kSsoBit,
    {{"eta", ParamKind::kDouble, "exploration width multiplier", "1.0",
      false}},
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<DflSso>(DflSsoOptions{
          .neighbor_greedy = true,
          .exploration_scale = p.get_double("eta", 1.0),
          .seed = ctx.seed});
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
