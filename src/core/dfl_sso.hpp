// DFL-SSO — Algorithm 1: distribution-free learning for single-play with
// side observation.
//
// Index: X̄_i + sqrt(log⁺(t / (K·O_i)) / O_i), where O_i counts *all*
// observations of arm i (direct plays plus side observations from playing a
// neighbor). Every slot updates the statistics of the whole closed
// neighborhood N_{I_t}, which is exactly the observation set the runner
// delivers. Theorem 1: R_n ≤ 15.94·sqrt(nK) + 0.74·C·sqrt(n/K).
#pragma once

#include <vector>

#include "core/arm_stats.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace ncb {

struct DflSsoOptions {
  /// §IX future-work heuristic: after computing the argmax-index arm I_t,
  /// actually play the arm with the best empirical mean within N_{I_t}.
  bool neighbor_greedy = false;
  /// Multiplier η on the exploration width (index = X̄ + η·width). 1.0 is
  /// Algorithm 1; the A-η ablation sweeps it.
  double exploration_scale = 1.0;
  /// Seed for random tie-breaking among equal indices.
  std::uint64_t seed = 0x5eed5501;
};

class DflSso final : public SinglePlayPolicy {
 public:
  explicit DflSso(DflSsoOptions options = {});

  void reset(const Graph& graph) override;
  [[nodiscard]] ArmId select(TimeSlot t) override;
  void observe(ArmId played, TimeSlot t,
               const std::vector<Observation>& observations) override;
  [[nodiscard]] std::string name() const override;

  /// Observation count O_i (for tests / diagnostics).
  [[nodiscard]] std::int64_t observation_count(ArmId i) const {
    return stats_.at(static_cast<std::size_t>(i)).count;
  }
  /// Empirical mean X̄_i.
  [[nodiscard]] double empirical_mean(ArmId i) const {
    return stats_.at(static_cast<std::size_t>(i)).mean;
  }
  /// The index value of arm i at slot t (+inf when unobserved).
  [[nodiscard]] double index(ArmId i, TimeSlot t) const;

 private:
  DflSsoOptions options_;
  Graph graph_{0};  // copied at reset(); no external lifetime requirement
  std::size_t num_arms_ = 0;
  std::vector<ArmStat> stats_;
  Xoshiro256 rng_;
};

}  // namespace ncb
