// DFL-SSO — Algorithm 1: distribution-free learning for single-play with
// side observation.
//
// Index: X̄_i + sqrt(log⁺(t / (K·O_i)) / O_i), where O_i counts *all*
// observations of arm i (direct plays plus side observations from playing a
// neighbor). Every slot updates the statistics of the whole closed
// neighborhood N_{I_t} in one batched pass — exactly the observation set
// the runner delivers. Theorem 1: R_n ≤ 15.94·sqrt(nK) + 0.74·C·sqrt(n/K).
#pragma once

#include "core/index_policy.hpp"

namespace ncb {

struct DflSsoOptions {
  /// §IX future-work heuristic: after computing the argmax-index arm I_t,
  /// actually play the arm with the best empirical mean within N_{I_t}.
  bool neighbor_greedy = false;
  /// Multiplier η on the exploration width (index = X̄ + η·width). 1.0 is
  /// Algorithm 1; the A-η ablation sweeps it.
  double exploration_scale = 1.0;
  /// Seed for random tie-breaking among equal indices.
  std::uint64_t seed = 0x5eed5501;
};

class DflSso final : public ArmStatIndexPolicy {
 public:
  explicit DflSso(DflSsoOptions options = {});

  /// The index value of arm i at slot t (+inf when unobserved).
  [[nodiscard]] double index(ArmId i, TimeSlot t) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;

 protected:
  void on_reset(const Graph& graph) override;
  [[nodiscard]] ArmId refine_selection(ArmId best) override;
  [[nodiscard]] IndexRefreshMode refresh_mode() const override {
    return IndexRefreshMode::kIncremental;
  }
  [[nodiscard]] IndexRefresh refresh_index(ArmId i, TimeSlot t) const override;

 private:
  DflSsoOptions options_;
  Graph graph_{0};  // copied at reset(); no external lifetime requirement
};

}  // namespace ncb
