#include "core/dfl_ssr.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/math.hpp"

namespace ncb {

DflSsr::DflSsr(DflSsrOptions options) : options_(options), rng_(options.seed) {}

void DflSsr::reset(const Graph& graph) {
  graph_ = graph;
  num_arms_ = graph.num_vertices();
  reset_stats(direct_, num_arms_);
  prefix_sums_.assign(num_arms_, {});
  if (options_.estimator == SsrEstimator::kPaired) {
    for (auto& ps : prefix_sums_) ps.reserve(64);
  }
  rng_ = Xoshiro256(options_.seed);
}

std::int64_t DflSsr::side_observation_count(ArmId i) const {
  std::int64_t ob = std::numeric_limits<std::int64_t>::max();
  for (const ArmId j : graph_.closed_neighborhood(i)) {
    ob = std::min(ob, direct_[static_cast<std::size_t>(j)].count);
  }
  return ob;
}

double DflSsr::side_reward_estimate(ArmId i) const {
  if (options_.estimator == SsrEstimator::kMeanSum) {
    double total = 0.0;
    for (const ArmId j : graph_.closed_neighborhood(i)) {
      total += direct_[static_cast<std::size_t>(j)].mean;
    }
    return total;
  }
  // Paired: average of the first Ob_i paired sums, which equals the sum of
  // each neighbor's mean over its first Ob_i observations.
  const std::int64_t ob = side_observation_count(i);
  if (ob == 0) return 0.0;
  double total = 0.0;
  for (const ArmId j : graph_.closed_neighborhood(i)) {
    total += prefix_sums_[static_cast<std::size_t>(j)][static_cast<std::size_t>(ob - 1)];
  }
  return total / static_cast<double>(ob);
}

double DflSsr::index(ArmId i, TimeSlot t) const {
  const std::int64_t ob = side_observation_count(i);
  if (ob == 0) return std::numeric_limits<double>::infinity();
  const double ratio = static_cast<double>(t) /
                       (static_cast<double>(num_arms_) * static_cast<double>(ob));
  return side_reward_estimate(i) +
         exploration_width(ratio, static_cast<double>(ob));
}

ArmId DflSsr::select(TimeSlot t) {
  if (num_arms_ == 0) throw std::logic_error("DflSsr: reset() not called");
  ArmId best = 0;
  double best_index = -std::numeric_limits<double>::infinity();
  std::size_t ties = 0;
  for (std::size_t i = 0; i < num_arms_; ++i) {
    const double idx = index(static_cast<ArmId>(i), t);
    if (idx > best_index) {
      best_index = idx;
      best = static_cast<ArmId>(i);
      ties = 1;
    } else if (idx == best_index) {
      ++ties;
      if (rng_.uniform_int(ties) == 0) best = static_cast<ArmId>(i);
    }
  }
  return best;
}

void DflSsr::observe(ArmId /*played*/, TimeSlot /*t*/,
                     const std::vector<Observation>& observations) {
  for (const auto& obs : observations) {
    const auto i = static_cast<std::size_t>(obs.arm);
    direct_[i].add(obs.value);
    if (options_.estimator == SsrEstimator::kPaired) {
      const double prev = prefix_sums_[i].empty() ? 0.0 : prefix_sums_[i].back();
      prefix_sums_[i].push_back(prev + obs.value);
    }
  }
}

std::string DflSsr::name() const {
  return options_.estimator == SsrEstimator::kPaired ? "DFL-SSR"
                                                     : "DFL-SSR(mean-sum)";
}

}  // namespace ncb
