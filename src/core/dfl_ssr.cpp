#include "core/dfl_ssr.hpp"

#include <algorithm>
#include <limits>

#include "core/policy_registry.hpp"
#include "util/math.hpp"

namespace ncb {

DflSsr::DflSsr(DflSsrOptions options)
    : SingleIndexPolicy(options.seed), options_(options) {}

void DflSsr::on_reset(const Graph& graph) {
  graph_ = graph;
  direct_.reset(num_arms_);
  prefix_sums_.assign(num_arms_, {});
  if (options_.estimator == SsrEstimator::kPaired) {
    for (auto& ps : prefix_sums_) ps.reserve(64);
  }
}

std::int64_t DflSsr::side_observation_count(ArmId i) const {
  const std::int64_t* counts = direct_.counts();
  std::int64_t ob = std::numeric_limits<std::int64_t>::max();
  for (const ArmId j : graph_.closed_neighborhood(i)) {
    ob = std::min(ob, counts[static_cast<std::size_t>(j)]);
  }
  return ob;
}

double DflSsr::side_reward_estimate(ArmId i) const {
  if (options_.estimator == SsrEstimator::kMeanSum) {
    const double* means = direct_.means();
    double total = 0.0;
    for (const ArmId j : graph_.closed_neighborhood(i)) {
      total += means[static_cast<std::size_t>(j)];
    }
    return total;
  }
  // Paired: average of the first Ob_i paired sums, which equals the sum of
  // each neighbor's mean over its first Ob_i observations.
  const std::int64_t ob = side_observation_count(i);
  if (ob == 0) return 0.0;
  double total = 0.0;
  for (const ArmId j : graph_.closed_neighborhood(i)) {
    total += prefix_sums_[static_cast<std::size_t>(j)][static_cast<std::size_t>(ob - 1)];
  }
  return total / static_cast<double>(ob);
}

IndexRefresh DflSsr::refresh_index(ArmId i, TimeSlot t) const {
  const std::int64_t ob = side_observation_count(i);
  if (ob == 0) {
    return {std::numeric_limits<double>::infinity(), kIndexValidForever};
  }
  // Same width plateau as DFL-SSO, over the side-reward counter Ob_i.
  const std::int64_t plateau = static_cast<std::int64_t>(num_arms_) * ob;
  if (t <= plateau) return {side_reward_estimate(i) + 0.0, plateau};
  const double ratio = static_cast<double>(t) /
                       (static_cast<double>(num_arms_) * static_cast<double>(ob));
  return {side_reward_estimate(i) +
              exploration_width(ratio, static_cast<double>(ob)),
          t};
}

double DflSsr::index(ArmId i, TimeSlot t) const {
  return refresh_index(i, t).value;
}

void DflSsr::observe(ArmId /*played*/, TimeSlot /*t*/,
                     ObservationSpan observations) {
  for (const Observation& obs : observations) {
    const auto i = static_cast<std::size_t>(obs.arm);
    direct_.add(obs.arm, obs.value);
    if (options_.estimator == SsrEstimator::kPaired) {
      const double prev = prefix_sums_[i].empty() ? 0.0 : prefix_sums_[i].back();
      prefix_sums_[i].push_back(prev + obs.value);
    }
  }
  // An arm's index reads the min count and means over its *closed
  // neighborhood*, so the stale set is the union of the observed arms'
  // closed neighborhoods (two hops from the played arm). When scanning
  // that union would cost ≥ K marks, flooding the whole cache is cheaper.
  if (!all_indices_dirty()) {
    std::size_t touched = 0;
    for (const Observation& obs : observations) {
      touched += graph_.degree(obs.arm) + 1;
    }
    if (touched >= num_arms_) {
      mark_all_indices_dirty();
    } else {
      for (const Observation& obs : observations) {
        for (const ArmId j : graph_.closed_neighborhood(obs.arm)) {
          mark_index_dirty(j);
        }
      }
    }
  }
}

std::string DflSsr::name() const {
  return options_.estimator == SsrEstimator::kPaired ? "DFL-SSR"
                                                     : "DFL-SSR(mean-sum)";
}

std::string DflSsr::describe() const {
  return options_.estimator == SsrEstimator::kPaired
             ? "DFL-SSR(estimator=paired)"
             : "DFL-SSR(estimator=mean-sum)";
}

namespace {

const PolicyRegistration kRegDflSsr{{
    "dfl-ssr",
    "Algorithm 3: single-play side-reward learner, paired estimator",
    kSsrBit,
    {},
    [](const PolicyParams&, const PolicyBuildContext& ctx) {
      return std::make_unique<DflSsr>(
          DflSsrOptions{.estimator = SsrEstimator::kPaired, .seed = ctx.seed});
    },
    nullptr,
}};

const PolicyRegistration kRegDflSsrMeanSum{{
    "dfl-ssr-meansum",
    "DFL-SSR with the O(K)-memory mean-sum estimator",
    kSsrBit,
    {},
    [](const PolicyParams&, const PolicyBuildContext& ctx) {
      return std::make_unique<DflSsr>(DflSsrOptions{
          .estimator = SsrEstimator::kMeanSum, .seed = ctx.seed});
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
