#include "core/dfl_ssr.hpp"

#include <algorithm>
#include <limits>

#include "core/policy_registry.hpp"
#include "util/math.hpp"

namespace ncb {

DflSsr::DflSsr(DflSsrOptions options)
    : SingleIndexPolicy(options.seed), options_(options) {}

void DflSsr::on_reset(const Graph& graph) {
  graph_ = graph;
  reset_stats(direct_, num_arms_);
  prefix_sums_.assign(num_arms_, {});
  if (options_.estimator == SsrEstimator::kPaired) {
    for (auto& ps : prefix_sums_) ps.reserve(64);
  }
}

std::int64_t DflSsr::side_observation_count(ArmId i) const {
  std::int64_t ob = std::numeric_limits<std::int64_t>::max();
  for (const ArmId j : graph_.closed_neighborhood(i)) {
    ob = std::min(ob, direct_[static_cast<std::size_t>(j)].count);
  }
  return ob;
}

double DflSsr::side_reward_estimate(ArmId i) const {
  if (options_.estimator == SsrEstimator::kMeanSum) {
    double total = 0.0;
    for (const ArmId j : graph_.closed_neighborhood(i)) {
      total += direct_[static_cast<std::size_t>(j)].mean;
    }
    return total;
  }
  // Paired: average of the first Ob_i paired sums, which equals the sum of
  // each neighbor's mean over its first Ob_i observations.
  const std::int64_t ob = side_observation_count(i);
  if (ob == 0) return 0.0;
  double total = 0.0;
  for (const ArmId j : graph_.closed_neighborhood(i)) {
    total += prefix_sums_[static_cast<std::size_t>(j)][static_cast<std::size_t>(ob - 1)];
  }
  return total / static_cast<double>(ob);
}

double DflSsr::index(ArmId i, TimeSlot t) const {
  const std::int64_t ob = side_observation_count(i);
  if (ob == 0) return std::numeric_limits<double>::infinity();
  const double ratio = static_cast<double>(t) /
                       (static_cast<double>(num_arms_) * static_cast<double>(ob));
  return side_reward_estimate(i) +
         exploration_width(ratio, static_cast<double>(ob));
}

void DflSsr::observe(ArmId /*played*/, TimeSlot /*t*/,
                     ObservationSpan observations) {
  for (const Observation& obs : observations) {
    const auto i = static_cast<std::size_t>(obs.arm);
    direct_[i].add(obs.value);
    if (options_.estimator == SsrEstimator::kPaired) {
      const double prev = prefix_sums_[i].empty() ? 0.0 : prefix_sums_[i].back();
      prefix_sums_[i].push_back(prev + obs.value);
    }
  }
}

std::string DflSsr::name() const {
  return options_.estimator == SsrEstimator::kPaired ? "DFL-SSR"
                                                     : "DFL-SSR(mean-sum)";
}

std::string DflSsr::describe() const {
  return options_.estimator == SsrEstimator::kPaired
             ? "DFL-SSR(estimator=paired)"
             : "DFL-SSR(estimator=mean-sum)";
}

namespace {

const PolicyRegistration kRegDflSsr{{
    "dfl-ssr",
    "Algorithm 3: single-play side-reward learner, paired estimator",
    kSsrBit,
    {},
    [](const PolicyParams&, const PolicyBuildContext& ctx) {
      return std::make_unique<DflSsr>(
          DflSsrOptions{.estimator = SsrEstimator::kPaired, .seed = ctx.seed});
    },
    nullptr,
}};

const PolicyRegistration kRegDflSsrMeanSum{{
    "dfl-ssr-meansum",
    "DFL-SSR with the O(K)-memory mean-sum estimator",
    kSsrBit,
    {},
    [](const PolicyParams&, const PolicyBuildContext& ctx) {
      return std::make_unique<DflSsr>(DflSsrOptions{
          .estimator = SsrEstimator::kMeanSum, .seed = ctx.seed});
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
