// DFL-SSR — Algorithm 3: distribution-free learning for single-play with
// side reward.
//
// The decision maker receives B_{i,t} = Σ_{j∈N_i} X_{j,t} when playing i,
// so the target is the arm maximizing u_i = Σ_{j∈N_i} μ_j. Because neighbor
// rewards are observed asynchronously, the side-reward observation counter
// advances only when the least-observed member of N_i is renewed (paper
// Eq. 44): Ob_i = min_{j∈N_i} O_j.
//
// Two estimators for B̄_i are provided:
//  * kPaired (faithful to the pseudocode): the m-th side-reward sample of
//    arm i pairs the m-th direct observation of every j ∈ N_i; needs per-arm
//    observation prefix sums (O(total observations) memory).
//  * kMeanSum: B̄_i = Σ_{j∈N_i} X̄_j over all observations (O(K) memory).
// Both are unbiased for u_i; the A3 ablation compares them empirically.
//
// Theorem 3: R_n ≤ 49·K·sqrt(nK).
#pragma once

#include <vector>

#include "core/arm_stats.hpp"
#include "core/index_policy.hpp"

namespace ncb {

enum class SsrEstimator {
  kPaired,   ///< Pseudocode-faithful paired samples.
  kMeanSum,  ///< Sum of neighbor empirical means.
};

struct DflSsrOptions {
  SsrEstimator estimator = SsrEstimator::kPaired;
  std::uint64_t seed = 0x5eed5512;
};

class DflSsr final : public SingleIndexPolicy {
 public:
  explicit DflSsr(DflSsrOptions options = {});

  void observe(ArmId played, TimeSlot t, ObservationSpan observations) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;

  /// Direct-observation count O_i; bounds-checked.
  [[nodiscard]] std::int64_t observation_count(ArmId i) const {
    return direct_.count(i);
  }
  /// Side-reward observation count Ob_i = min_{j∈N_i} O_j.
  [[nodiscard]] std::int64_t side_observation_count(ArmId i) const;
  /// Current side-reward estimate B̄_i (0 when Ob_i = 0).
  [[nodiscard]] double side_reward_estimate(ArmId i) const;
  /// Index value of arm i at slot t (+inf when Ob_i = 0). The [0,K]-ranged
  /// side reward is used unnormalized, as in the pseudocode.
  [[nodiscard]] double index(ArmId i, TimeSlot t) const override;

 protected:
  void on_reset(const Graph& graph) override;
  [[nodiscard]] IndexRefreshMode refresh_mode() const override {
    return IndexRefreshMode::kIncremental;
  }
  [[nodiscard]] IndexRefresh refresh_index(ArmId i, TimeSlot t) const override;

 private:
  DflSsrOptions options_;
  Graph graph_{0};  // copied at reset(); no external lifetime requirement
  ArmStatsTable direct_;                           // O_i and X̄_i
  std::vector<std::vector<double>> prefix_sums_;   // kPaired: per-arm Σ first m obs
};

}  // namespace ncb
