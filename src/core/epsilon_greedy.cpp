#include "core/epsilon_greedy.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ncb {

EpsilonGreedy::EpsilonGreedy(EpsilonGreedyOptions options)
    : options_(options), rng_(options.seed) {
  if (options.epsilon < 0.0 || options.epsilon > 1.0) {
    throw std::invalid_argument("EpsilonGreedy: epsilon outside [0,1]");
  }
}

void EpsilonGreedy::reset(const Graph& graph) {
  num_arms_ = graph.num_vertices();
  reset_stats(stats_, num_arms_);
  rng_ = Xoshiro256(options_.seed);
}

double EpsilonGreedy::epsilon_at(TimeSlot t) const {
  if (!options_.decay) return options_.epsilon;
  const double eps = options_.c * static_cast<double>(num_arms_) /
                     (options_.d * options_.d * static_cast<double>(std::max<TimeSlot>(t, 1)));
  return std::min(1.0, eps);
}

ArmId EpsilonGreedy::select(TimeSlot t) {
  if (num_arms_ == 0) throw std::logic_error("EpsilonGreedy: reset() not called");
  // Explore unvisited arms first so the greedy step has data.
  for (std::size_t i = 0; i < num_arms_; ++i) {
    if (stats_[i].count == 0) return static_cast<ArmId>(i);
  }
  if (rng_.bernoulli(epsilon_at(t))) {
    return static_cast<ArmId>(rng_.uniform_int(num_arms_));
  }
  ArmId best = 0;
  double best_mean = -std::numeric_limits<double>::infinity();
  std::size_t ties = 0;
  for (std::size_t i = 0; i < num_arms_; ++i) {
    if (stats_[i].mean > best_mean) {
      best_mean = stats_[i].mean;
      best = static_cast<ArmId>(i);
      ties = 1;
    } else if (stats_[i].mean == best_mean) {
      ++ties;
      if (rng_.uniform_int(ties) == 0) best = static_cast<ArmId>(i);
    }
  }
  return best;
}

void EpsilonGreedy::observe(ArmId played, TimeSlot /*t*/,
                            const std::vector<Observation>& observations) {
  for (const auto& obs : observations) {
    if (options_.use_side_observations || obs.arm == played) {
      stats_.at(static_cast<std::size_t>(obs.arm)).add(obs.value);
    }
  }
}

std::string EpsilonGreedy::name() const {
  std::string base = options_.decay ? "eps-greedy-decay" : "eps-greedy";
  if (options_.use_side_observations) base += "+side";
  return base;
}

}  // namespace ncb
