#include "core/epsilon_greedy.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/policy_registry.hpp"
#include "util/argmax.hpp"

namespace ncb {

EpsilonGreedy::EpsilonGreedy(EpsilonGreedyOptions options)
    : options_(options), rng_(options.seed) {
  if (options.epsilon < 0.0 || options.epsilon > 1.0) {
    throw std::invalid_argument("EpsilonGreedy: epsilon outside [0,1]");
  }
}

void EpsilonGreedy::reset(const Graph& graph) {
  num_arms_ = graph.num_vertices();
  stats_.reset(num_arms_);
  rng_ = Xoshiro256(options_.seed);
  unvisited_cursor_ = 0;
}

double EpsilonGreedy::epsilon_at(TimeSlot t) const {
  if (!options_.decay) return options_.epsilon;
  const double eps = options_.c * static_cast<double>(num_arms_) /
                     (options_.d * options_.d * static_cast<double>(std::max<TimeSlot>(t, 1)));
  return std::min(1.0, eps);
}

ArmId EpsilonGreedy::select(TimeSlot t) {
  if (num_arms_ == 0) throw std::logic_error("EpsilonGreedy: reset() not called");
  // Explore unvisited arms first so the greedy step has data. The cursor
  // only moves forward (counts are monotone), so returns are identical to
  // the historical full scan at amortized O(1) per call.
  const std::int64_t* counts = stats_.counts();
  while (unvisited_cursor_ < num_arms_ && counts[unvisited_cursor_] != 0) {
    ++unvisited_cursor_;
  }
  if (unvisited_cursor_ < num_arms_) {
    return static_cast<ArmId>(unvisited_cursor_);
  }
  if (rng_.bernoulli(epsilon_at(t))) {
    return static_cast<ArmId>(rng_.uniform_int(num_arms_));
  }
  // Exploit: the shared block-vectorized argmax over the flat mean array,
  // with the same reservoir tie-break draw sequence as the historical loop.
  return static_cast<ArmId>(reservoir_argmax(stats_.means(), num_arms_, rng_));
}

void EpsilonGreedy::observe(ArmId played, TimeSlot /*t*/,
                            ObservationSpan observations) {
  for (const Observation& obs : observations) {
    if (options_.use_side_observations || obs.arm == played) {
      stats_.add(obs.arm, obs.value);
    }
  }
}

std::string EpsilonGreedy::name() const {
  std::string base = options_.decay ? "eps-greedy-decay" : "eps-greedy";
  if (options_.use_side_observations) base += "+side";
  return base;
}

std::string EpsilonGreedy::describe() const {
  std::ostringstream out;
  out << name();
  if (options_.decay) {
    out << "(c=" << options_.c << ",d=" << options_.d << ")";
  } else {
    out << "(eps=" << options_.epsilon << ")";
  }
  return out.str();
}

namespace {

const std::vector<ParamSpec> kEpsGreedyParams{
    {"eps", ParamKind::kDouble, "exploration probability (fixed mode)", "0.1",
     false},
    {"decay", ParamKind::kBool, "use the 1/t decay schedule", "false", false},
    {"c", ParamKind::kDouble, "decay numerator constant", "5.0", false},
    {"d", ParamKind::kDouble, "decay gap parameter", "0.1", false}};

EpsilonGreedyOptions eps_greedy_options(const PolicyParams& p,
                                        const PolicyBuildContext& ctx,
                                        bool side) {
  EpsilonGreedyOptions opts;
  opts.epsilon = p.get_double("eps", opts.epsilon);
  opts.decay = p.get_bool("decay", opts.decay);
  opts.c = p.get_double("c", opts.c);
  opts.d = p.get_double("d", opts.d);
  opts.use_side_observations = side;
  opts.seed = ctx.seed;
  return opts;
}

const PolicyRegistration kRegEpsGreedy{{
    "eps-greedy",
    "epsilon-greedy sanity baseline (played arm only)",
    kSsoBit | kSsrBit,
    kEpsGreedyParams,
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<EpsilonGreedy>(eps_greedy_options(p, ctx, false));
    },
    nullptr,
}};

const PolicyRegistration kRegEpsGreedySide{{
    "eps-greedy-side",
    "epsilon-greedy consuming side observations",
    kSsoBit,
    kEpsGreedyParams,
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<EpsilonGreedy>(eps_greedy_options(p, ctx, true));
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
