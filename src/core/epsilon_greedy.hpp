// ε-greedy with optional 1/t decay (Auer et al.'s ε_t = min(1, cK/(d²t))).
// Sanity baseline; consumes side observations when `use_side_observations`.
#pragma once

#include <vector>

#include "core/arm_stats.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace ncb {

struct EpsilonGreedyOptions {
  double epsilon = 0.1;    ///< Exploration probability (fixed mode).
  bool decay = false;      ///< ε_t = min(1, c·K/(d²·t)) when true.
  double c = 5.0;          ///< Decay numerator constant.
  double d = 0.1;          ///< Decay gap parameter.
  bool use_side_observations = false;
  std::uint64_t seed = 0x5eede605;
};

class EpsilonGreedy final : public SinglePlayPolicy {
 public:
  explicit EpsilonGreedy(EpsilonGreedyOptions options = {});

  void reset(const Graph& graph) override;
  [[nodiscard]] ArmId select(TimeSlot t) override;
  void observe(ArmId played, TimeSlot t, ObservationSpan observations) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double epsilon_at(TimeSlot t) const;

 private:
  EpsilonGreedyOptions options_;
  std::size_t num_arms_ = 0;
  ArmStatsTable stats_;
  Xoshiro256 rng_;
  /// First possibly-unvisited arm. Counts never decrease, so arms below the
  /// cursor stay visited forever and select()'s unvisited-first sweep is
  /// amortized O(K) over a run instead of O(K) per call — the difference
  /// between 10µs and 2µs per decision when serving K=10⁴ online.
  std::size_t unvisited_cursor_ = 0;
};

}  // namespace ncb
