#include "core/exp3.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/policy_registry.hpp"

namespace ncb {

Exp3::Exp3(Exp3Options options) : options_(options), rng_(options.seed) {
  if (options.gamma <= 0.0 || options.gamma > 1.0) {
    throw std::invalid_argument("Exp3: gamma outside (0,1]");
  }
}

void Exp3::reset(const Graph& graph) {
  num_arms_ = graph.num_vertices();
  log_weights_.assign(num_arms_, 0.0);
  probs_.assign(num_arms_, 1.0 / static_cast<double>(num_arms_));
  rng_ = Xoshiro256(options_.seed);
}

void Exp3::recompute_probabilities() {
  // Normalize in log space for numerical stability.
  const double max_lw = *std::max_element(log_weights_.begin(), log_weights_.end());
  double total = 0.0;
  for (std::size_t i = 0; i < num_arms_; ++i) {
    probs_[i] = std::exp(log_weights_[i] - max_lw);
    total += probs_[i];
  }
  const double k = static_cast<double>(num_arms_);
  for (std::size_t i = 0; i < num_arms_; ++i) {
    probs_[i] = (1.0 - options_.gamma) * probs_[i] / total + options_.gamma / k;
  }
}

ArmId Exp3::select(TimeSlot /*t*/) {
  if (num_arms_ == 0) throw std::logic_error("Exp3: reset() not called");
  recompute_probabilities();
  double u = rng_.uniform();
  for (std::size_t i = 0; i < num_arms_; ++i) {
    u -= probs_[i];
    if (u <= 0.0) return static_cast<ArmId>(i);
  }
  return static_cast<ArmId>(num_arms_ - 1);
}

void Exp3::observe(ArmId played, TimeSlot /*t*/,
                   ObservationSpan observations) {
  for (const Observation& obs : observations) {
    if (obs.arm != played) continue;
    const auto i = static_cast<std::size_t>(played);
    const double estimated = obs.value / std::max(probs_[i], 1e-12);
    log_weights_[i] += options_.gamma * estimated / static_cast<double>(num_arms_);
    return;
  }
  throw std::logic_error("Exp3: played arm missing from observations");
}

double Exp3::probability(ArmId i) const {
  return probs_.at(static_cast<std::size_t>(i));
}

std::string Exp3::describe() const {
  std::ostringstream out;
  out << name() << "(gamma=" << options_.gamma << ")";
  return out.str();
}

namespace {

const PolicyRegistration kRegExp3{{
    "exp3",
    "adversarial exponential-weights baseline (no side information)",
    kSsoBit | kSsrBit,
    {{"gamma", ParamKind::kDouble, "exploration mix in (0,1]", "0.05", false}},
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<Exp3>(Exp3Options{
          .gamma = p.get_double("gamma", 0.05), .seed = ctx.seed});
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
