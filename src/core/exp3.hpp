// Exp3 (Auer et al. 2002b): exponential weighting for adversarial bandits.
// Included as an ablation baseline — it makes no use of the stochastic
// structure or side observations, so the stochastic index policies should
// dominate it on the paper's workloads.
#pragma once

#include <vector>

#include "core/policy.hpp"
#include "util/rng.hpp"

namespace ncb {

struct Exp3Options {
  /// Exploration mix γ ∈ (0, 1].
  double gamma = 0.05;
  std::uint64_t seed = 0x5eede3b3;
};

class Exp3 final : public SinglePlayPolicy {
 public:
  explicit Exp3(Exp3Options options = {});

  void reset(const Graph& graph) override;
  [[nodiscard]] ArmId select(TimeSlot t) override;
  void observe(ArmId played, TimeSlot t, ObservationSpan observations) override;
  [[nodiscard]] std::string name() const override { return "Exp3"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double probability(ArmId i) const;

 private:
  void recompute_probabilities();

  Exp3Options options_;
  std::size_t num_arms_ = 0;
  std::vector<double> log_weights_;
  std::vector<double> probs_;
  Xoshiro256 rng_;
};

}  // namespace ncb
