#include "core/exp3_set.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/policy_registry.hpp"

namespace ncb {

Exp3Set::Exp3Set(Exp3SetOptions options) : options_(options), rng_(options.seed) {
  if (options.eta <= 0.0) {
    throw std::invalid_argument("Exp3Set: eta must be positive");
  }
}

void Exp3Set::reset(const Graph& graph) {
  graph_ = graph;
  num_arms_ = graph.num_vertices();
  log_weights_.assign(num_arms_, 0.0);
  probs_.assign(num_arms_, 1.0 / static_cast<double>(num_arms_));
  rng_ = Xoshiro256(options_.seed);
}

void Exp3Set::recompute_probabilities() {
  const double max_lw =
      *std::max_element(log_weights_.begin(), log_weights_.end());
  double total = 0.0;
  for (std::size_t i = 0; i < num_arms_; ++i) {
    probs_[i] = std::exp(log_weights_[i] - max_lw);
    total += probs_[i];
  }
  for (std::size_t i = 0; i < num_arms_; ++i) probs_[i] /= total;
}

double Exp3Set::observation_probability(ArmId i) const {
  // q_i = Σ_{j : i ∈ N_j} p_j — the probability arm i's reward is revealed
  // this slot. With closed neighborhoods this is Σ over N_i (symmetry).
  double q = 0.0;
  for (const ArmId j : graph_.closed_neighborhood(i)) {
    q += probs_[static_cast<std::size_t>(j)];
  }
  return q;
}

ArmId Exp3Set::select(TimeSlot /*t*/) {
  if (num_arms_ == 0) throw std::logic_error("Exp3Set: reset() not called");
  recompute_probabilities();
  double u = rng_.uniform();
  for (std::size_t i = 0; i < num_arms_; ++i) {
    u -= probs_[i];
    if (u <= 0.0) return static_cast<ArmId>(i);
  }
  return static_cast<ArmId>(num_arms_ - 1);
}

void Exp3Set::observe(ArmId /*played*/, TimeSlot /*t*/,
                      ObservationSpan observations) {
  // Exp3-SET (Alon et al. 2013): every *observed* arm gets an importance-
  // weighted loss update with its observation probability q_i, not the play
  // probability. Rewards r ∈ [0,1] become losses (1 - r).
  for (const Observation& obs : observations) {
    const auto i = static_cast<std::size_t>(obs.arm);
    const double q = std::max(observation_probability(obs.arm), 1e-12);
    const double estimated_loss = (1.0 - obs.value) / q;
    log_weights_[i] -= options_.eta * estimated_loss;
  }
}

double Exp3Set::probability(ArmId i) const {
  return probs_.at(static_cast<std::size_t>(i));
}

std::string Exp3Set::describe() const {
  std::ostringstream out;
  out << name() << "(eta=" << options_.eta << ")";
  return out.str();
}

namespace {

const PolicyRegistration kRegExp3Set{{
    "exp3-set",
    "adversarial exponential weights exploiting side observations",
    kSsoBit,
    {{"eta", ParamKind::kDouble, "learning rate > 0", "0.05", false}},
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<Exp3Set>(Exp3SetOptions{
          .eta = p.get_double("eta", 0.05), .seed = ctx.seed});
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
