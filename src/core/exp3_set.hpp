// Exp3-SET (Alon, Cesa-Bianchi, Gentile & Mansour 2013): exponential
// weights for adversarial bandits *with side observations* — the
// adversarial counterpart of the paper's stochastic side-observation
// setting. Every revealed arm receives an importance-weighted loss update
// scaled by its observation probability q_i = Σ_{j: i∈N_j} p_j. Included
// so the baseline panel spans both stochastic and adversarial exploitation
// of the relation graph.
#pragma once

#include <vector>

#include "core/policy.hpp"
#include "util/rng.hpp"

namespace ncb {

struct Exp3SetOptions {
  /// Learning rate η > 0. Theory suggests sqrt(ln K / (mas(G)·n)); a small
  /// constant works well at the paper's horizons.
  double eta = 0.05;
  std::uint64_t seed = 0x5eede357;
};

class Exp3Set final : public SinglePlayPolicy {
 public:
  explicit Exp3Set(Exp3SetOptions options = {});

  void reset(const Graph& graph) override;
  [[nodiscard]] ArmId select(TimeSlot t) override;
  void observe(ArmId played, TimeSlot t, ObservationSpan observations) override;
  [[nodiscard]] std::string name() const override { return "Exp3-SET"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double probability(ArmId i) const;
  /// q_i: probability that arm i is observed under the current play
  /// distribution (closed-neighborhood sum of play probabilities).
  [[nodiscard]] double observation_probability(ArmId i) const;

 private:
  void recompute_probabilities();

  Exp3SetOptions options_;
  Graph graph_{0};
  std::size_t num_arms_ = 0;
  std::vector<double> log_weights_;
  std::vector<double> probs_;
  Xoshiro256 rng_;
};

}  // namespace ncb
