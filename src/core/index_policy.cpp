#include "core/index_policy.hpp"

#include <limits>
#include <stdexcept>

namespace ncb {

void SingleIndexPolicy::reset(const Graph& graph) {
  num_arms_ = graph.num_vertices();
  rng_ = Xoshiro256(seed_);
  on_reset(graph);
}

ArmId SingleIndexPolicy::select(TimeSlot t) {
  if (num_arms_ == 0) {
    throw std::logic_error(name() + ": reset() not called");
  }
  before_select(t);
  ArmId best = 0;
  double best_index = -std::numeric_limits<double>::infinity();
  std::size_t ties = 0;
  for (std::size_t i = 0; i < num_arms_; ++i) {
    const double idx = index(static_cast<ArmId>(i), t);
    if (idx > best_index) {
      best_index = idx;
      best = static_cast<ArmId>(i);
      ties = 1;
    } else if (idx == best_index) {
      // Reservoir-style uniform tie-breaking.
      ++ties;
      if (rng_.uniform_int(ties) == 0) best = static_cast<ArmId>(i);
    }
  }
  return refine_selection(best);
}

void ArmStatIndexPolicy::on_reset(const Graph& /*graph*/) {
  reset_stats(stats_, num_arms_);
}

void ArmStatIndexPolicy::observe(ArmId /*played*/, TimeSlot /*t*/,
                                 ObservationSpan observations) {
  for (const Observation& obs : observations) {
    stats_.at(static_cast<std::size_t>(obs.arm)).add(obs.value);
  }
}

ArmId ArmStatIndexPolicy::best_empirical_in_neighborhood(const Graph& graph,
                                                         ArmId best) const {
  ArmId play = best;
  double play_mean = stats_[static_cast<std::size_t>(best)].mean;
  for (const ArmId j : graph.closed_neighborhood(best)) {
    const ArmStat& s = stats_[static_cast<std::size_t>(j)];
    if (s.count > 0 && s.mean > play_mean) {
      play = j;
      play_mean = s.mean;
    }
  }
  return play;
}

}  // namespace ncb
