#include "core/index_policy.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/argmax.hpp"

namespace ncb {
namespace {

/// Min-heap ordering on (valid_until, arm): the earliest expiry at front.
struct LaterExpiry {
  bool operator()(const std::pair<TimeSlot, ArmId>& a,
                  const std::pair<TimeSlot, ArmId>& b) const noexcept {
    return a.first > b.first;
  }
};

}  // namespace

void SingleIndexPolicy::reset(const Graph& graph) {
  num_arms_ = graph.num_vertices();
  rng_ = Xoshiro256(seed_);
  cached_indices_.assign(num_arms_, 0.0);
  dirty_flag_.assign(num_arms_, 0);
  dirty_list_.clear();
  valid_until_.assign(num_arms_, 0);
  expiry_heap_.clear();
  sched_vu_.assign(num_arms_, kIndexValidForever);
  hot_list_.clear();
  all_dirty_ = true;
  last_select_t_ = std::numeric_limits<TimeSlot>::min();
  tie_break_draws_ = 0;
  on_reset(graph);
}

ArmId SingleIndexPolicy::select(TimeSlot t) {
  if (num_arms_ == 0) {
    throw std::logic_error(name() + ": reset() not called");
  }
  before_select(t);
  double* cache = cached_indices_.data();
  if (refresh_mode() == IndexRefreshMode::kEveryRound) {
    refresh_all_indices(t, cache);
  } else {
    refresh_incremental(t, cache);
  }
  last_select_t_ = t;
  const std::size_t best =
      reservoir_argmax(cache, num_arms_, rng_, &tie_break_draws_);
  return refine_selection(static_cast<ArmId>(best));
}

void SingleIndexPolicy::refresh_all_indices(TimeSlot t, double* out) const {
  for (std::size_t k = 0; k < num_arms_; ++k) {
    out[k] = index(static_cast<ArmId>(k), t);
  }
}

void SingleIndexPolicy::refresh_incremental(TimeSlot t, double* cache) {
  // Time moving backwards (piecewise scenarios replaying, tests probing
  // arbitrary slots) invalidates every valid_until promise; fall back to a
  // full rebuild rather than trusting stale plateaus.
  if (all_dirty_ || t < last_select_t_) {
    rebuild_cache(t, cache);
    return;
  }
  // Hot arms expired the moment they were refreshed; re-dirty them without
  // a heap round-trip (dedup'd against observe()'s own markings).
  for (const ArmId i : hot_list_) mark_index_dirty(i);
  hot_list_.clear();
  // Expired promises become dirty. A popped entry whose arm is still
  // valid (its promise was extended after the push) renews itself at the
  // authoritative expiry instead of triggering a refresh.
  while (!expiry_heap_.empty() && expiry_heap_.front().first < t) {
    const auto [vu, arm] = expiry_heap_.front();
    std::pop_heap(expiry_heap_.begin(), expiry_heap_.end(), LaterExpiry{});
    expiry_heap_.pop_back();
    const auto k = static_cast<std::size_t>(arm);
    if (vu == sched_vu_[k]) sched_vu_[k] = kIndexValidForever;
    if (valid_until_[k] == kIndexValidForever) continue;
    if (valid_until_[k] < t) {
      mark_index_dirty(arm);
    } else {
      schedule_expiry(arm, valid_until_[k]);
    }
  }
  for (const ArmId i : dirty_list_) {
    const auto k = static_cast<std::size_t>(i);
    const IndexRefresh r = refresh_index(i, t);
    cache[k] = r.value;
    valid_until_[k] = r.valid_until;
    if (r.valid_until == kIndexValidForever) {
      // Never expires on its own; only an observation re-dirties it.
    } else if (r.valid_until <= t) {
      hot_list_.push_back(i);
    } else {
      schedule_expiry(i, r.valid_until);
    }
    dirty_flag_[k] = 0;
  }
  dirty_list_.clear();
  if (expiry_heap_.size() > 4 * num_arms_ + 64) purge_expiry_heap();
}

void SingleIndexPolicy::rebuild_cache(TimeSlot t, double* cache) {
  std::fill(dirty_flag_.begin(), dirty_flag_.end(), std::uint8_t{0});
  dirty_list_.clear();
  expiry_heap_.clear();
  std::fill(sched_vu_.begin(), sched_vu_.end(), kIndexValidForever);
  hot_list_.clear();
  for (std::size_t k = 0; k < num_arms_; ++k) {
    const IndexRefresh r = refresh_index(static_cast<ArmId>(k), t);
    cache[k] = r.value;
    valid_until_[k] = r.valid_until;
    if (r.valid_until == kIndexValidForever) {
    } else if (r.valid_until <= t) {
      hot_list_.push_back(static_cast<ArmId>(k));
    } else {
      expiry_heap_.emplace_back(r.valid_until, static_cast<ArmId>(k));
      sched_vu_[k] = r.valid_until;
    }
  }
  std::make_heap(expiry_heap_.begin(), expiry_heap_.end(), LaterExpiry{});
  all_dirty_ = false;
}

void SingleIndexPolicy::schedule_expiry(ArmId i, TimeSlot valid_until) {
  // An existing entry popping at or before the new expiry already
  // guarantees a timely wake-up (it renews itself if it pops early).
  const auto k = static_cast<std::size_t>(i);
  if (sched_vu_[k] <= valid_until) return;
  expiry_heap_.emplace_back(valid_until, i);
  std::push_heap(expiry_heap_.begin(), expiry_heap_.end(), LaterExpiry{});
  sched_vu_[k] = valid_until;
}

void SingleIndexPolicy::purge_expiry_heap() {
  // Drops every superseded entry in one pass by rebuilding from the
  // authoritative per-arm expiries. Hot-listed arms (valid_until == the
  // last refresh slot) get a redundant entry here; it pops on the next
  // select and its dirty marking dedups against the hot list's own.
  expiry_heap_.clear();
  for (std::size_t k = 0; k < num_arms_; ++k) {
    if (valid_until_[k] != kIndexValidForever) {
      expiry_heap_.emplace_back(valid_until_[k], static_cast<ArmId>(k));
      sched_vu_[k] = valid_until_[k];
    } else {
      sched_vu_[k] = kIndexValidForever;
    }
  }
  std::make_heap(expiry_heap_.begin(), expiry_heap_.end(), LaterExpiry{});
}

void ArmStatIndexPolicy::on_reset(const Graph& /*graph*/) {
  stats_.reset(num_arms_);
}

void ArmStatIndexPolicy::observe(ArmId /*played*/, TimeSlot /*t*/,
                                 ObservationSpan observations) {
  for (const Observation& obs : observations) {
    absorb(obs.arm, obs.value);
  }
}

ArmId ArmStatIndexPolicy::best_empirical_in_neighborhood(const Graph& graph,
                                                         ArmId best) const {
  const std::int64_t* counts = stats_.counts();
  const double* means = stats_.means();
  ArmId play = best;
  double play_mean = means[static_cast<std::size_t>(best)];
  for (const ArmId j : graph.closed_neighborhood(best)) {
    const auto k = static_cast<std::size_t>(j);
    if (counts[k] > 0 && means[k] > play_mean) {
      play = j;
      play_mean = means[k];
    }
  }
  return play;
}

}  // namespace ncb
