// Shared skeleton for the single-play index policies.
//
// Every stochastic index learner in this codebase (DFL-SSO, DFL-SSR, MOSS,
// UCB1, UCB-N, KL-UCB, the non-stationary DFL variants) selects
// argmax_i index(i, t) with uniform random tie-breaking. SingleIndexPolicy
// owns that loop plus the seeded reset plumbing so the per-policy code is
// just the index formula and the statistics it reads.
//
// ArmStatIndexPolicy additionally owns the per-arm ArmStat table and
// default-implements observe() as the *batched* update path: the whole
// ObservationSpan is folded into the stats in one pass, which is what the
// side-observation learners (DFL-SSO, UCB-N, KL-UCB-N) want. Played-only
// learners (MOSS, UCB1) override observe() to filter.
#pragma once

#include <vector>

#include "core/arm_stats.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace ncb {

class SingleIndexPolicy : public SinglePlayPolicy {
 public:
  void reset(const Graph& graph) final;
  [[nodiscard]] ArmId select(TimeSlot t) final;

  /// The index value of arm i at slot t (+inf forces exploration).
  [[nodiscard]] virtual double index(ArmId i, TimeSlot t) const = 0;

 protected:
  explicit SingleIndexPolicy(std::uint64_t seed) : rng_(seed), seed_(seed) {}

  /// Re-initializes subclass statistics; called by reset() after the arm
  /// count and RNG have been restored.
  virtual void on_reset(const Graph& graph) = 0;

  /// Pre-selection maintenance hook (e.g. sliding-window eviction).
  virtual void before_select(TimeSlot /*t*/) {}

  /// Post-selection refinement hook: maps the argmax-index arm to the arm
  /// actually played (the §IX neighbor-greedy / MaxN heuristics).
  [[nodiscard]] virtual ArmId refine_selection(ArmId best) { return best; }

  std::size_t num_arms_ = 0;
  Xoshiro256 rng_;

 private:
  std::uint64_t seed_;
};

class ArmStatIndexPolicy : public SingleIndexPolicy {
 public:
  /// Batched update: folds every revealed (arm, value) pair into the stats
  /// table in one pass. Side-observation learners inherit this as-is.
  void observe(ArmId played, TimeSlot t, ObservationSpan observations) override;

  /// Observation count O_i (for tests / diagnostics).
  [[nodiscard]] std::int64_t observation_count(ArmId i) const {
    return stats_.at(static_cast<std::size_t>(i)).count;
  }
  /// Empirical mean X̄_i.
  [[nodiscard]] double empirical_mean(ArmId i) const {
    return stats_.at(static_cast<std::size_t>(i)).mean;
  }

 protected:
  using SingleIndexPolicy::SingleIndexPolicy;

  void on_reset(const Graph& graph) override;

  /// The empirically best observed arm within N_best (always contains
  /// `best` itself) — the shared MaxN/neighbor-greedy refinement.
  [[nodiscard]] ArmId best_empirical_in_neighborhood(const Graph& graph,
                                                     ArmId best) const;

  std::vector<ArmStat> stats_;
};

}  // namespace ncb
