// Shared skeleton for the single-play index policies.
//
// Every stochastic index learner in this codebase (DFL-SSO, DFL-SSR, MOSS,
// UCB1, UCB-N, KL-UCB, the non-stationary DFL variants) selects
// argmax_i index(i, t) with uniform random tie-breaking. SingleIndexPolicy
// owns that loop plus the seeded reset plumbing so the per-policy code is
// just the index formula and the statistics it reads.
//
// select() never evaluates the virtual index() per arm. It maintains a flat
// per-arm index array and runs the block-vectorized reservoir argmax
// (util/argmax.hpp) over it; how the array is kept current is the policy's
// IndexRefreshMode:
//
//  * kEveryRound — the index depends on t every slot (UCB1's ln t, KL-UCB's
//    budget). select() bulk-refreshes the whole array through one virtual
//    refresh_all_indices() call, which hoists the per-round shared terms
//    (log t, the KL budget) out of the per-arm loop.
//  * kIncremental — the index of an untouched arm is constant until a known
//    future slot (the DFL family: width = sqrt(log⁺(t/(K·O_i))/O_i) is
//    exactly zero while t ≤ K·O_i, so the index sits at the empirical mean
//    on a "plateau"). observe() marks exactly the touched arms stale via
//    mark_index_dirty(); refresh_index() returns each refreshed value with
//    the last slot it stays valid (valid_until), and select() re-refreshes
//    an arm only when it is dirty or its plateau expired — tracked by a
//    lazy-deletion min-heap keyed on valid_until.
//
// Both paths produce bit-for-the-comparisons-identical values to the
// from-scratch index(), so the argmax comparisons — and therefore the
// tie-break RNG draw sequence and every downstream selection — are exactly
// reproduced (regression-tested against pre-refactor goldens).
//
// ArmStatIndexPolicy additionally owns the per-arm SoA stats table and
// default-implements observe() as the *batched* update path: the whole
// ObservationSpan is folded into the stats in one pass and each touched arm
// is dirty-marked, which is what the side-observation learners (DFL-SSO,
// UCB-N, KL-UCB-N) want. Played-only learners (MOSS, UCB1) override
// observe() to filter.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "core/arm_stats.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace ncb {

/// How a policy's cached per-arm indices age between selects.
enum class IndexRefreshMode {
  kEveryRound,   ///< t-dependent every slot: bulk refresh per select.
  kIncremental,  ///< changes only on observation or plateau expiry.
};

/// Sentinel valid_until: the cached value never expires on its own; only
/// dirty-marking (an observation touching the arm) invalidates it.
inline constexpr TimeSlot kIndexValidForever =
    std::numeric_limits<TimeSlot>::max();

/// One incremental refresh: the new index value and the last slot it stays
/// valid for, assuming the arm's statistics do not change in between.
struct IndexRefresh {
  double value;
  TimeSlot valid_until;
};

class SingleIndexPolicy : public SinglePlayPolicy {
 public:
  void reset(const Graph& graph) final;
  [[nodiscard]] ArmId select(TimeSlot t) final;

  /// The index value of arm i at slot t (+inf forces exploration). This is
  /// the from-scratch reference; select() reads the cached array instead.
  [[nodiscard]] virtual double index(ArmId i, TimeSlot t) const = 0;

  /// Total uniform_int tie-break draws consumed by select() since the last
  /// reset() — part of the reproducibility contract, pinned by goldens.
  [[nodiscard]] std::uint64_t tie_break_draws() const noexcept {
    return tie_break_draws_;
  }

  /// The per-arm index array as of the last select() (diagnostics/tests).
  [[nodiscard]] const std::vector<double>& cached_indices() const noexcept {
    return cached_indices_;
  }

  /// Test/bench hook: drops every cached value so the next select() does a
  /// full from-scratch rebuild.
  void invalidate_index_cache() noexcept { all_dirty_ = true; }

 protected:
  explicit SingleIndexPolicy(std::uint64_t seed) : rng_(seed), seed_(seed) {}

  /// Re-initializes subclass statistics; called by reset() after the arm
  /// count and RNG have been restored.
  virtual void on_reset(const Graph& graph) = 0;

  /// Pre-selection maintenance hook (e.g. sliding-window eviction). Runs
  /// before the cache refresh, so stat changes made here (with their
  /// mark_index_dirty calls) are visible to the same select().
  virtual void before_select(TimeSlot /*t*/) {}

  /// Post-selection refinement hook: maps the argmax-index arm to the arm
  /// actually played (the §IX neighbor-greedy / MaxN heuristics).
  [[nodiscard]] virtual ArmId refine_selection(ArmId best) { return best; }

  /// Which maintenance scheme select() runs; kEveryRound is the safe
  /// default for any t-dependent index.
  [[nodiscard]] virtual IndexRefreshMode refresh_mode() const {
    return IndexRefreshMode::kEveryRound;
  }

  /// Bulk refresh: writes the index of every arm at slot t into
  /// out[0, num_arms_). The default loops over the virtual index();
  /// kEveryRound policies override it to hoist per-round shared terms and
  /// stream the SoA stat arrays.
  virtual void refresh_all_indices(TimeSlot t, double* out) const;

  /// Incremental refresh of one stale arm (kIncremental policies must
  /// override). The returned value must equal index(i, t) numerically, and
  /// must keep equaling index(i, t') for every t ≤ t' ≤ valid_until absent
  /// observations of the arm.
  [[nodiscard]] virtual IndexRefresh refresh_index(ArmId i, TimeSlot t) const {
    return {index(i, t), t};
  }

  /// Marks arm i's cached index stale. Deduplicated (a flag per arm), so
  /// repeated observe() calls between selects stay O(touched arms).
  void mark_index_dirty(ArmId i) {
    const auto k = static_cast<std::size_t>(i);
    if (all_dirty_ || dirty_flag_[k] != 0) return;
    dirty_flag_[k] = 1;
    dirty_list_.push_back(i);
  }

  /// Marks every arm stale (decay steps, bulk evictions, piecewise resets).
  void mark_all_indices_dirty() noexcept { all_dirty_ = true; }
  [[nodiscard]] bool all_indices_dirty() const noexcept { return all_dirty_; }

  std::size_t num_arms_ = 0;
  Xoshiro256 rng_;

 private:
  void refresh_incremental(TimeSlot t, double* cache);
  void rebuild_cache(TimeSlot t, double* cache);
  void schedule_expiry(ArmId i, TimeSlot valid_until);
  void purge_expiry_heap();

  std::vector<double> cached_indices_;
  std::vector<std::uint8_t> dirty_flag_;  // per-arm "already in dirty_list_"
  std::vector<ArmId> dirty_list_;
  std::vector<TimeSlot> valid_until_;     // authoritative per-arm expiry
  // Lazy-deletion min-heap of (valid_until, arm). Purged when it outgrows
  // 4K + 64 entries. sched_vu_ tracks each arm's earliest live entry
  // (kIndexValidForever = none): a refresh only pushes when no entry pops
  // at or before the new expiry, and an entry popping early renews itself
  // — so an arm refreshed every slot with a growing plateau costs zero
  // heap traffic instead of one push per slot.
  std::vector<std::pair<TimeSlot, ArmId>> expiry_heap_;
  std::vector<TimeSlot> sched_vu_;
  // Arms whose refresh expires at the refresh slot itself (the "hot"
  // regime, valid_until <= t): they would pop from the heap on the very
  // next select anyway, so they bypass it and re-dirty directly —
  // bounded at one entry per arm per refresh.
  std::vector<ArmId> hot_list_;
  bool all_dirty_ = true;
  TimeSlot last_select_t_ = std::numeric_limits<TimeSlot>::min();
  std::uint64_t tie_break_draws_ = 0;
  std::uint64_t seed_;
};

class ArmStatIndexPolicy : public SingleIndexPolicy {
 public:
  /// Batched update: folds every revealed (arm, value) pair into the stats
  /// table in one pass and dirty-marks exactly the touched arms.
  /// Side-observation learners inherit this as-is.
  void observe(ArmId played, TimeSlot t, ObservationSpan observations) override;

  /// Observation count O_i (for tests / diagnostics); bounds-checked.
  [[nodiscard]] std::int64_t observation_count(ArmId i) const {
    return stats_.count(i);
  }
  /// Empirical mean X̄_i; bounds-checked.
  [[nodiscard]] double empirical_mean(ArmId i) const { return stats_.mean(i); }

 protected:
  using SingleIndexPolicy::SingleIndexPolicy;

  void on_reset(const Graph& graph) override;

  /// Folds one observation into the stats and marks the arm stale — the
  /// shared primitive for the played-only observe() overrides.
  void absorb(ArmId arm, double value) {
    stats_.add(arm, value);
    mark_index_dirty(arm);
  }

  /// The empirically best observed arm within N_best (always contains
  /// `best` itself) — the shared MaxN/neighbor-greedy refinement.
  [[nodiscard]] ArmId best_empirical_in_neighborhood(const Graph& graph,
                                                     ArmId best) const;

  ArmStatsTable stats_;
};

}  // namespace ncb
