#include "core/kl_ucb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/policy_registry.hpp"

namespace ncb {

KlUcb::KlUcb(KlUcbOptions options)
    : ArmStatIndexPolicy(options.seed), options_(options) {}

double KlUcb::bernoulli_kl(double p, double q) noexcept {
  constexpr double kEps = 1e-15;
  p = std::clamp(p, kEps, 1.0 - kEps);
  q = std::clamp(q, kEps, 1.0 - kEps);
  return p * std::log(p / q) + (1.0 - p) * std::log((1.0 - p) / (1.0 - q));
}

double KlUcb::kl_upper_bound(double p, double count, double budget) noexcept {
  if (count <= 0.0) return 1.0;
  const double limit = budget / count;
  double lo = std::clamp(p, 0.0, 1.0);
  double hi = 1.0;
  for (int iter = 0; iter < 64 && hi - lo > 1e-9; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (bernoulli_kl(p, mid) <= limit) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double KlUcb::index(ArmId i, TimeSlot t) const {
  const std::int64_t count = stats_.count(i);
  if (count == 0) return std::numeric_limits<double>::infinity();
  const double lt = std::log(std::max<double>(static_cast<double>(t), 1.0));
  const double llt =
      options_.c > 0.0 ? options_.c * std::log(std::max(lt, 1.0)) : 0.0;
  return kl_upper_bound(stats_.mean(i), static_cast<double>(count), lt + llt);
}

void KlUcb::refresh_all_indices(TimeSlot t, double* out) const {
  // The exploration budget ln t + c·ln ln t is shared by every arm; the
  // per-arm work is just the bisection on its own (mean, count).
  const double lt = std::log(std::max<double>(static_cast<double>(t), 1.0));
  const double llt =
      options_.c > 0.0 ? options_.c * std::log(std::max(lt, 1.0)) : 0.0;
  const double budget = lt + llt;
  const std::int64_t* counts = stats_.counts();
  const double* means = stats_.means();
  for (std::size_t k = 0; k < num_arms_; ++k) {
    out[k] = counts[k] == 0
                 ? std::numeric_limits<double>::infinity()
                 : kl_upper_bound(means[k], static_cast<double>(counts[k]),
                                  budget);
  }
}

void KlUcb::observe(ArmId played, TimeSlot t, ObservationSpan observations) {
  bool saw_played = false;
  if (options_.use_side_observations) {
    // Batched path: absorb the whole span in one pass.
    for (const Observation& obs : observations) {
      saw_played = saw_played || obs.arm == played;
    }
    ArmStatIndexPolicy::observe(played, t, observations);
  } else {
    for (const Observation& obs : observations) {
      if (obs.arm == played) {
        absorb(obs.arm, obs.value);
        saw_played = true;
      }
    }
  }
  if (!saw_played) {
    throw std::logic_error("KlUcb: played arm missing from observations");
  }
}

std::string KlUcb::name() const {
  return options_.use_side_observations ? "KL-UCB-N" : "KL-UCB";
}

std::string KlUcb::describe() const {
  std::ostringstream out;
  out << name() << "(c=" << options_.c << ")";
  return out.str();
}

namespace {

const std::vector<ParamSpec> kKlUcbParams{
    {"c", ParamKind::kDouble, "the c in ln t + c*ln ln t", "0.0", false}};

const PolicyRegistration kRegKlUcb{{
    "kl-ucb",
    "KL-UCB for bounded rewards; asymptotically optimal for Bernoulli arms",
    kSsoBit | kSsrBit,
    kKlUcbParams,
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      KlUcbOptions opts;
      opts.c = p.get_double("c", 0.0);
      opts.seed = ctx.seed;
      return std::make_unique<KlUcb>(opts);
    },
    nullptr,
}};

const PolicyRegistration kRegKlUcbN{{
    "kl-ucb-n",
    "KL-UCB consuming side observations (KL analogue of UCB-N)",
    kSsoBit,
    kKlUcbParams,
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      KlUcbOptions opts;
      opts.c = p.get_double("c", 0.0);
      opts.use_side_observations = true;
      opts.seed = ctx.seed;
      return std::make_unique<KlUcb>(opts);
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
