#include "core/kl_ucb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ncb {

KlUcb::KlUcb(KlUcbOptions options) : options_(options), rng_(options.seed) {}

void KlUcb::reset(const Graph& graph) {
  num_arms_ = graph.num_vertices();
  reset_stats(stats_, num_arms_);
  rng_ = Xoshiro256(options_.seed);
}

double KlUcb::bernoulli_kl(double p, double q) noexcept {
  constexpr double kEps = 1e-15;
  p = std::clamp(p, kEps, 1.0 - kEps);
  q = std::clamp(q, kEps, 1.0 - kEps);
  return p * std::log(p / q) + (1.0 - p) * std::log((1.0 - p) / (1.0 - q));
}

double KlUcb::kl_upper_bound(double p, double count, double budget) noexcept {
  if (count <= 0.0) return 1.0;
  const double limit = budget / count;
  double lo = std::clamp(p, 0.0, 1.0);
  double hi = 1.0;
  for (int iter = 0; iter < 64 && hi - lo > 1e-9; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (bernoulli_kl(p, mid) <= limit) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double KlUcb::index(ArmId i, TimeSlot t) const {
  const ArmStat& s = stats_.at(static_cast<std::size_t>(i));
  if (s.count == 0) return std::numeric_limits<double>::infinity();
  const double lt = std::log(std::max<double>(static_cast<double>(t), 1.0));
  const double llt =
      options_.c > 0.0 ? options_.c * std::log(std::max(lt, 1.0)) : 0.0;
  return kl_upper_bound(s.mean, static_cast<double>(s.count), lt + llt);
}

ArmId KlUcb::select(TimeSlot t) {
  if (num_arms_ == 0) throw std::logic_error("KlUcb: reset() not called");
  ArmId best = 0;
  double best_index = -std::numeric_limits<double>::infinity();
  std::size_t ties = 0;
  for (std::size_t i = 0; i < num_arms_; ++i) {
    const double idx = index(static_cast<ArmId>(i), t);
    if (idx > best_index) {
      best_index = idx;
      best = static_cast<ArmId>(i);
      ties = 1;
    } else if (idx == best_index) {
      ++ties;
      if (rng_.uniform_int(ties) == 0) best = static_cast<ArmId>(i);
    }
  }
  return best;
}

void KlUcb::observe(ArmId played, TimeSlot /*t*/,
                    const std::vector<Observation>& observations) {
  bool saw_played = false;
  for (const auto& obs : observations) {
    if (options_.use_side_observations || obs.arm == played) {
      stats_.at(static_cast<std::size_t>(obs.arm)).add(obs.value);
    }
    saw_played = saw_played || obs.arm == played;
  }
  if (!saw_played) {
    throw std::logic_error("KlUcb: played arm missing from observations");
  }
}

std::string KlUcb::name() const {
  return options_.use_side_observations ? "KL-UCB-N" : "KL-UCB";
}

}  // namespace ncb
