// KL-UCB (Garivier & Cappé 2011): the strongest classical stochastic
// baseline for bounded rewards. Index = max{ q ≥ X̄_i :
// T_i · kl(X̄_i, q) ≤ ln t + c·ln ln t }, solved by bisection on the
// Bernoulli KL divergence. Distribution-dependent and asymptotically
// optimal for Bernoulli arms; the A8 panel ranks it against the
// distribution-free DFL policies. Optionally consumes side observations
// (a KL analogue of UCB-N).
#pragma once

#include "core/index_policy.hpp"

namespace ncb {

struct KlUcbOptions {
  /// The `c` in ln t + c·ln ln t; 0 is the common practical choice,
  /// 3 the theoretical one.
  double c = 0.0;
  bool use_side_observations = false;
  std::uint64_t seed = 0x5eedc1cb;
};

class KlUcb final : public ArmStatIndexPolicy {
 public:
  explicit KlUcb(KlUcbOptions options = {});

  void observe(ArmId played, TimeSlot t, ObservationSpan observations) override;
  [[nodiscard]] double index(ArmId i, TimeSlot t) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;

  /// Bernoulli KL divergence kl(p, q) with the usual 0·log 0 conventions.
  [[nodiscard]] static double bernoulli_kl(double p, double q) noexcept;

  /// Upper KL confidence bound: max{q ∈ [p, 1] : kl(p, q) ≤ budget/count}.
  [[nodiscard]] static double kl_upper_bound(double p, double count,
                                             double budget) noexcept;

 protected:
  /// Bulk refresh with the ln t + c·ln ln t budget hoisted out of the
  /// per-arm bisection loop.
  void refresh_all_indices(TimeSlot t, double* out) const override;

 private:
  KlUcbOptions options_;
};

}  // namespace ncb
