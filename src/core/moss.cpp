#include "core/moss.hpp"

#include <limits>
#include <stdexcept>

#include "util/math.hpp"

namespace ncb {

Moss::Moss(MossOptions options) : options_(options), rng_(options.seed) {}

void Moss::reset(const Graph& graph) {
  num_arms_ = graph.num_vertices();
  reset_stats(stats_, num_arms_);
  rng_ = Xoshiro256(options_.seed);
}

double Moss::index(ArmId i, TimeSlot t) const {
  const ArmStat& s = stats_.at(static_cast<std::size_t>(i));
  if (s.count == 0) return std::numeric_limits<double>::infinity();
  const double top = options_.horizon > 0 ? static_cast<double>(options_.horizon)
                                          : static_cast<double>(t);
  const double ratio = top / (static_cast<double>(num_arms_) *
                              static_cast<double>(s.count));
  return s.mean + exploration_width(ratio, static_cast<double>(s.count));
}

ArmId Moss::select(TimeSlot t) {
  if (num_arms_ == 0) throw std::logic_error("Moss: reset() not called");
  ArmId best = 0;
  double best_index = -std::numeric_limits<double>::infinity();
  std::size_t ties = 0;
  for (std::size_t i = 0; i < num_arms_; ++i) {
    const double idx = index(static_cast<ArmId>(i), t);
    if (idx > best_index) {
      best_index = idx;
      best = static_cast<ArmId>(i);
      ties = 1;
    } else if (idx == best_index) {
      ++ties;
      if (rng_.uniform_int(ties) == 0) best = static_cast<ArmId>(i);
    }
  }
  return best;
}

void Moss::observe(ArmId played, TimeSlot /*t*/,
                   const std::vector<Observation>& observations) {
  // MOSS has no side information: consume only the played arm's sample.
  for (const auto& obs : observations) {
    if (obs.arm == played) {
      stats_.at(static_cast<std::size_t>(obs.arm)).add(obs.value);
      return;
    }
  }
  throw std::logic_error("Moss: played arm missing from observations");
}

std::string Moss::name() const {
  return options_.horizon > 0 ? "MOSS" : "MOSS-anytime";
}

}  // namespace ncb
