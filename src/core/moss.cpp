#include "core/moss.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/policy_registry.hpp"
#include "util/math.hpp"

namespace ncb {

Moss::Moss(MossOptions options)
    : ArmStatIndexPolicy(options.seed), options_(options) {}

IndexRefresh Moss::refresh_index(ArmId i, TimeSlot t) const {
  const std::int64_t count = stats_.count(i);
  if (count == 0) {
    return {std::numeric_limits<double>::infinity(), kIndexValidForever};
  }
  const double mean = stats_.mean(i);
  if (options_.horizon > 0) {
    // Fixed-horizon MOSS: the ratio uses n, not t, so the index only moves
    // when the arm is played again.
    const double ratio = static_cast<double>(options_.horizon) /
                         (static_cast<double>(num_arms_) *
                          static_cast<double>(count));
    return {mean + exploration_width(ratio, static_cast<double>(count)),
            kIndexValidForever};
  }
  // Anytime form: same width plateau as DFL-SSO (zero while t ≤ K·T_i).
  const std::int64_t plateau = static_cast<std::int64_t>(num_arms_) * count;
  if (t <= plateau) return {mean + 0.0, plateau};
  const double ratio = static_cast<double>(t) /
                       (static_cast<double>(num_arms_) *
                        static_cast<double>(count));
  return {mean + exploration_width(ratio, static_cast<double>(count)), t};
}

double Moss::index(ArmId i, TimeSlot t) const {
  return refresh_index(i, t).value;
}

void Moss::observe(ArmId played, TimeSlot /*t*/,
                   ObservationSpan observations) {
  // MOSS has no side information: consume only the played arm's sample.
  for (const Observation& obs : observations) {
    if (obs.arm == played) {
      absorb(obs.arm, obs.value);
      return;
    }
  }
  throw std::logic_error("Moss: played arm missing from observations");
}

std::string Moss::name() const {
  return options_.horizon > 0 ? "MOSS" : "MOSS-anytime";
}

std::string Moss::describe() const {
  if (options_.horizon <= 0) return name();
  std::ostringstream out;
  out << name() << "(horizon=" << options_.horizon << ")";
  return out.str();
}

namespace {

const PolicyRegistration kRegMoss{{
    "moss",
    "minimax-optimal stochastic baseline; learns only from the played arm",
    kSsoBit | kSsrBit,
    {{"horizon", ParamKind::kInt,
      "known horizon n; \"auto\" selects the anytime variant", "run horizon",
      true}},
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      const TimeSlot horizon =
          p.is_auto("horizon") ? 0 : p.get_int("horizon", ctx.horizon);
      return std::make_unique<Moss>(
          MossOptions{.horizon = horizon, .seed = ctx.seed});
    },
    nullptr,
}};

const PolicyRegistration kRegMossAnytime{{
    "moss-anytime",
    "MOSS with the anytime index (substitutes t for the horizon)",
    kSsoBit | kSsrBit,
    {},
    [](const PolicyParams&, const PolicyBuildContext& ctx) {
      return std::make_unique<Moss>(MossOptions{.horizon = 0, .seed = ctx.seed});
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
