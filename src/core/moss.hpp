// MOSS (Minimax Optimal Strategy in the Stochastic case, Audibert & Bubeck).
//
// The paper's Fig. 3 baseline and the skeleton of DFL-SSO: identical index
// shape, but MOSS only learns from the arm it plays (no side observations).
// Fixed-horizon form uses sqrt(log⁺(n/(K·T_i))/T_i); the anytime form
// substitutes t for n, matching Algorithm 1's index exactly when the
// relation graph is empty.
#pragma once

#include <vector>

#include "core/arm_stats.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace ncb {

struct MossOptions {
  /// Known horizon n; 0 selects the anytime variant (ratio uses t).
  TimeSlot horizon = 0;
  std::uint64_t seed = 0x5eedA055;
};

class Moss final : public SinglePlayPolicy {
 public:
  explicit Moss(MossOptions options = {});

  void reset(const Graph& graph) override;
  [[nodiscard]] ArmId select(TimeSlot t) override;
  void observe(ArmId played, TimeSlot t,
               const std::vector<Observation>& observations) override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] std::int64_t play_count(ArmId i) const {
    return stats_.at(static_cast<std::size_t>(i)).count;
  }
  [[nodiscard]] double empirical_mean(ArmId i) const {
    return stats_.at(static_cast<std::size_t>(i)).mean;
  }
  [[nodiscard]] double index(ArmId i, TimeSlot t) const;

 private:
  MossOptions options_;
  std::size_t num_arms_ = 0;
  std::vector<ArmStat> stats_;
  Xoshiro256 rng_;
};

}  // namespace ncb
