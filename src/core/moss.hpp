// MOSS (Minimax Optimal Strategy in the Stochastic case, Audibert & Bubeck).
//
// The paper's Fig. 3 baseline and the skeleton of DFL-SSO: identical index
// shape, but MOSS only learns from the arm it plays (no side observations).
// Fixed-horizon form uses sqrt(log⁺(n/(K·T_i))/T_i); the anytime form
// substitutes t for n, matching Algorithm 1's index exactly when the
// relation graph is empty.
#pragma once

#include "core/index_policy.hpp"

namespace ncb {

struct MossOptions {
  /// Known horizon n; 0 selects the anytime variant (ratio uses t).
  TimeSlot horizon = 0;
  std::uint64_t seed = 0x5eedA055;
};

class Moss final : public ArmStatIndexPolicy {
 public:
  explicit Moss(MossOptions options = {});

  /// Played-only update: MOSS has no side information.
  void observe(ArmId played, TimeSlot t, ObservationSpan observations) override;
  [[nodiscard]] double index(ArmId i, TimeSlot t) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::int64_t play_count(ArmId i) const {
    return observation_count(i);
  }

 protected:
  [[nodiscard]] IndexRefreshMode refresh_mode() const override {
    return IndexRefreshMode::kIncremental;
  }
  [[nodiscard]] IndexRefresh refresh_index(ArmId i, TimeSlot t) const override;

 private:
  MossOptions options_;
};

}  // namespace ncb
