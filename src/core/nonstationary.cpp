#include "core/nonstationary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/policy_registry.hpp"
#include "util/math.hpp"

namespace ncb {

SwDflSso::SwDflSso(SwDflSsoOptions options)
    : SingleIndexPolicy(options.seed), options_(options) {
  if (options.window <= 0) {
    throw std::invalid_argument("SwDflSso: window must be positive");
  }
}

void SwDflSso::on_reset(const Graph& /*graph*/) {
  samples_.clear();
  counts_.assign(num_arms_, 0);
  sums_.assign(num_arms_, 0.0);
}

void SwDflSso::evict_older_than(TimeSlot cutoff) {
  while (!samples_.empty() && samples_.front().slot <= cutoff) {
    const Sample& s = samples_.front();
    --counts_[static_cast<std::size_t>(s.arm)];
    sums_[static_cast<std::size_t>(s.arm)] -= s.value;
    samples_.pop_front();
  }
}

double SwDflSso::window_mean(ArmId i) const {
  const auto idx = static_cast<std::size_t>(i);
  return counts_[idx] > 0 ? sums_[idx] / static_cast<double>(counts_[idx])
                          : 0.0;
}

double SwDflSso::index(ArmId i, TimeSlot t) const {
  const auto count = static_cast<double>(counts_.at(static_cast<std::size_t>(i)));
  if (count <= 0.0) return std::numeric_limits<double>::infinity();
  // The effective horizon inside the window is min(t, window).
  const double effective_t =
      static_cast<double>(std::min<TimeSlot>(t, options_.window));
  const double ratio = effective_t / (static_cast<double>(num_arms_) * count);
  return window_mean(i) + exploration_width(ratio, count);
}

void SwDflSso::before_select(TimeSlot t) {
  evict_older_than(t - options_.window);
}

void SwDflSso::observe(ArmId /*played*/, TimeSlot t,
                       ObservationSpan observations) {
  for (const Observation& obs : observations) {
    samples_.push_back({t, obs.arm, obs.value});
    ++counts_[static_cast<std::size_t>(obs.arm)];
    sums_[static_cast<std::size_t>(obs.arm)] += obs.value;
  }
  evict_older_than(t - options_.window);
}

std::string SwDflSso::name() const {
  std::ostringstream out;
  out << "SW-DFL-SSO(w=" << options_.window << ")";
  return out.str();
}

DiscountedDflSso::DiscountedDflSso(DiscountedDflSsoOptions options)
    : SingleIndexPolicy(options.seed), options_(options) {
  if (options.discount <= 0.0 || options.discount > 1.0) {
    throw std::invalid_argument("DiscountedDflSso: discount outside (0,1]");
  }
}

void DiscountedDflSso::on_reset(const Graph& /*graph*/) {
  counts_.assign(num_arms_, 0.0);
  sums_.assign(num_arms_, 0.0);
}

double DiscountedDflSso::discounted_mean(ArmId i) const {
  const auto idx = static_cast<std::size_t>(i);
  return counts_[idx] > 1e-12 ? sums_[idx] / counts_[idx] : 0.0;
}

double DiscountedDflSso::index(ArmId i, TimeSlot t) const {
  const double count = counts_.at(static_cast<std::size_t>(i));
  if (count <= 1e-12) return std::numeric_limits<double>::infinity();
  // Effective horizon under discounting: 1/(1-γ) once saturated.
  const double effective_t =
      options_.discount < 1.0
          ? std::min(static_cast<double>(t), 1.0 / (1.0 - options_.discount))
          : static_cast<double>(t);
  const double ratio = effective_t / (static_cast<double>(num_arms_) * count);
  return discounted_mean(i) + exploration_width(ratio, count);
}

void DiscountedDflSso::observe(ArmId /*played*/, TimeSlot /*t*/,
                               ObservationSpan observations) {
  // One decay step per slot, then absorb the new samples at full weight.
  for (std::size_t i = 0; i < num_arms_; ++i) {
    counts_[i] *= options_.discount;
    sums_[i] *= options_.discount;
  }
  for (const Observation& obs : observations) {
    counts_[static_cast<std::size_t>(obs.arm)] += 1.0;
    sums_[static_cast<std::size_t>(obs.arm)] += obs.value;
  }
}

std::string DiscountedDflSso::name() const {
  std::ostringstream out;
  out << "D-DFL-SSO(g=" << options_.discount << ")";
  return out.str();
}

namespace {

const PolicyRegistration kRegSwDflSso{{
    "sw-dfl-sso",
    "DFL-SSO over a sliding window (non-stationary remedy)",
    kSsoBit,
    {{"window", ParamKind::kInt,
      "slots retained; \"auto\" = horizon/5 (1000 when unknown)", "auto",
      true}},
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      const TimeSlot fallback = ctx.horizon > 0 ? ctx.horizon / 5 : 1000;
      return std::make_unique<SwDflSso>(SwDflSsoOptions{
          .window = p.get_int("window", fallback), .seed = ctx.seed});
    },
    nullptr,
}};

const PolicyRegistration kRegDiscountedDflSso{{
    "d-dfl-sso",
    "DFL-SSO with exponential forgetting (non-stationary remedy)",
    kSsoBit,
    {{"discount", ParamKind::kDouble, "per-slot decay in (0,1]", "0.999",
      false}},
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<DiscountedDflSso>(DiscountedDflSsoOptions{
          .discount = p.get_double("discount", 0.999), .seed = ctx.seed});
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
