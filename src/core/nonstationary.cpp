#include "core/nonstationary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/math.hpp"

namespace ncb {

SwDflSso::SwDflSso(SwDflSsoOptions options)
    : options_(options), rng_(options.seed) {
  if (options.window <= 0) {
    throw std::invalid_argument("SwDflSso: window must be positive");
  }
}

void SwDflSso::reset(const Graph& graph) {
  num_arms_ = graph.num_vertices();
  samples_.clear();
  counts_.assign(num_arms_, 0);
  sums_.assign(num_arms_, 0.0);
  rng_ = Xoshiro256(options_.seed);
}

void SwDflSso::evict_older_than(TimeSlot cutoff) {
  while (!samples_.empty() && samples_.front().slot <= cutoff) {
    const Sample& s = samples_.front();
    --counts_[static_cast<std::size_t>(s.arm)];
    sums_[static_cast<std::size_t>(s.arm)] -= s.value;
    samples_.pop_front();
  }
}

double SwDflSso::window_mean(ArmId i) const {
  const auto idx = static_cast<std::size_t>(i);
  return counts_[idx] > 0 ? sums_[idx] / static_cast<double>(counts_[idx])
                          : 0.0;
}

double SwDflSso::index(ArmId i, TimeSlot t) const {
  const auto count = static_cast<double>(counts_.at(static_cast<std::size_t>(i)));
  if (count <= 0.0) return std::numeric_limits<double>::infinity();
  // The effective horizon inside the window is min(t, window).
  const double effective_t =
      static_cast<double>(std::min<TimeSlot>(t, options_.window));
  const double ratio = effective_t / (static_cast<double>(num_arms_) * count);
  return window_mean(i) + exploration_width(ratio, count);
}

ArmId SwDflSso::select(TimeSlot t) {
  if (num_arms_ == 0) throw std::logic_error("SwDflSso: reset() not called");
  evict_older_than(t - options_.window);
  ArmId best = 0;
  double best_index = -std::numeric_limits<double>::infinity();
  std::size_t ties = 0;
  for (std::size_t i = 0; i < num_arms_; ++i) {
    const double idx = index(static_cast<ArmId>(i), t);
    if (idx > best_index) {
      best_index = idx;
      best = static_cast<ArmId>(i);
      ties = 1;
    } else if (idx == best_index) {
      ++ties;
      if (rng_.uniform_int(ties) == 0) best = static_cast<ArmId>(i);
    }
  }
  return best;
}

void SwDflSso::observe(ArmId /*played*/, TimeSlot t,
                       const std::vector<Observation>& observations) {
  for (const auto& obs : observations) {
    samples_.push_back({t, obs.arm, obs.value});
    ++counts_[static_cast<std::size_t>(obs.arm)];
    sums_[static_cast<std::size_t>(obs.arm)] += obs.value;
  }
  evict_older_than(t - options_.window);
}

std::string SwDflSso::name() const {
  std::ostringstream out;
  out << "SW-DFL-SSO(w=" << options_.window << ")";
  return out.str();
}

DiscountedDflSso::DiscountedDflSso(DiscountedDflSsoOptions options)
    : options_(options), rng_(options.seed) {
  if (options.discount <= 0.0 || options.discount > 1.0) {
    throw std::invalid_argument("DiscountedDflSso: discount outside (0,1]");
  }
}

void DiscountedDflSso::reset(const Graph& graph) {
  num_arms_ = graph.num_vertices();
  counts_.assign(num_arms_, 0.0);
  sums_.assign(num_arms_, 0.0);
  rng_ = Xoshiro256(options_.seed);
}

double DiscountedDflSso::discounted_mean(ArmId i) const {
  const auto idx = static_cast<std::size_t>(i);
  return counts_[idx] > 1e-12 ? sums_[idx] / counts_[idx] : 0.0;
}

double DiscountedDflSso::index(ArmId i, TimeSlot t) const {
  const double count = counts_.at(static_cast<std::size_t>(i));
  if (count <= 1e-12) return std::numeric_limits<double>::infinity();
  // Effective horizon under discounting: 1/(1-γ) once saturated.
  const double effective_t =
      options_.discount < 1.0
          ? std::min(static_cast<double>(t), 1.0 / (1.0 - options_.discount))
          : static_cast<double>(t);
  const double ratio = effective_t / (static_cast<double>(num_arms_) * count);
  return discounted_mean(i) + exploration_width(ratio, count);
}

ArmId DiscountedDflSso::select(TimeSlot t) {
  if (num_arms_ == 0) {
    throw std::logic_error("DiscountedDflSso: reset() not called");
  }
  ArmId best = 0;
  double best_index = -std::numeric_limits<double>::infinity();
  std::size_t ties = 0;
  for (std::size_t i = 0; i < num_arms_; ++i) {
    const double idx = index(static_cast<ArmId>(i), t);
    if (idx > best_index) {
      best_index = idx;
      best = static_cast<ArmId>(i);
      ties = 1;
    } else if (idx == best_index) {
      ++ties;
      if (rng_.uniform_int(ties) == 0) best = static_cast<ArmId>(i);
    }
  }
  return best;
}

void DiscountedDflSso::observe(ArmId /*played*/, TimeSlot /*t*/,
                               const std::vector<Observation>& observations) {
  // One decay step per slot, then absorb the new samples at full weight.
  for (std::size_t i = 0; i < num_arms_; ++i) {
    counts_[i] *= options_.discount;
    sums_[i] *= options_.discount;
  }
  for (const auto& obs : observations) {
    counts_[static_cast<std::size_t>(obs.arm)] += 1.0;
    sums_[static_cast<std::size_t>(obs.arm)] += obs.value;
  }
}

std::string DiscountedDflSso::name() const {
  std::ostringstream out;
  out << "D-DFL-SSO(g=" << options_.discount << ")";
  return out.str();
}

}  // namespace ncb
