#include "core/nonstationary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/policy_registry.hpp"
#include "util/math.hpp"

namespace ncb {

SwDflSso::SwDflSso(SwDflSsoOptions options)
    : SingleIndexPolicy(options.seed), options_(options) {
  if (options.window <= 0) {
    throw std::invalid_argument("SwDflSso: window must be positive");
  }
}

void SwDflSso::on_reset(const Graph& /*graph*/) {
  samples_.clear();
  counts_.assign(num_arms_, 0);
  sums_.assign(num_arms_, 0.0);
}

void SwDflSso::evict_older_than(TimeSlot cutoff) {
  while (!samples_.empty() && samples_.front().slot <= cutoff) {
    const Sample& s = samples_.front();
    --counts_[static_cast<std::size_t>(s.arm)];
    sums_[static_cast<std::size_t>(s.arm)] -= s.value;
    // Eviction changes the arm's windowed statistics just like an
    // observation does — its cached index must be recomputed.
    mark_index_dirty(s.arm);
    samples_.pop_front();
  }
}

double SwDflSso::window_mean(ArmId i) const {
  const auto idx = static_cast<std::size_t>(i);
  return counts_[idx] > 0 ? sums_[idx] / static_cast<double>(counts_[idx])
                          : 0.0;
}

IndexRefresh SwDflSso::refresh_index(ArmId i, TimeSlot t) const {
  const std::int64_t raw = counts_.at(static_cast<std::size_t>(i));
  if (raw <= 0) {
    return {std::numeric_limits<double>::infinity(), kIndexValidForever};
  }
  const double count = static_cast<double>(raw);
  if (t >= options_.window) {
    // The effective horizon is frozen at `window`: the index is
    // t-independent and only observation/eviction dirty-marking moves it.
    const double ratio = static_cast<double>(options_.window) /
                         (static_cast<double>(num_arms_) * count);
    return {window_mean(i) + exploration_width(ratio, count),
            kIndexValidForever};
  }
  // t < window: effective horizon is t, so the DFL plateau argument
  // applies — width is exactly zero while t ≤ K·c. If the plateau outlasts
  // the window, the frozen ratio window/(K·c) ≤ 1 keeps it zero forever.
  const std::int64_t plateau = static_cast<std::int64_t>(num_arms_) * raw;
  if (t <= plateau) {
    return {window_mean(i) + 0.0,
            plateau >= options_.window ? kIndexValidForever : plateau};
  }
  const double ratio =
      static_cast<double>(t) / (static_cast<double>(num_arms_) * count);
  return {window_mean(i) + exploration_width(ratio, count), t};
}

double SwDflSso::index(ArmId i, TimeSlot t) const {
  return refresh_index(i, t).value;
}

void SwDflSso::before_select(TimeSlot t) {
  evict_older_than(t - options_.window);
}

void SwDflSso::observe(ArmId /*played*/, TimeSlot t,
                       ObservationSpan observations) {
  for (const Observation& obs : observations) {
    samples_.push_back({t, obs.arm, obs.value});
    ++counts_[static_cast<std::size_t>(obs.arm)];
    sums_[static_cast<std::size_t>(obs.arm)] += obs.value;
    mark_index_dirty(obs.arm);
  }
  evict_older_than(t - options_.window);
}

std::string SwDflSso::name() const {
  std::ostringstream out;
  out << "SW-DFL-SSO(w=" << options_.window << ")";
  return out.str();
}

DiscountedDflSso::DiscountedDflSso(DiscountedDflSsoOptions options)
    : SingleIndexPolicy(options.seed), options_(options) {
  if (options.discount <= 0.0 || options.discount > 1.0) {
    throw std::invalid_argument("DiscountedDflSso: discount outside (0,1]");
  }
}

void DiscountedDflSso::on_reset(const Graph& /*graph*/) {
  counts_.assign(num_arms_, 0.0);
  sums_.assign(num_arms_, 0.0);
}

double DiscountedDflSso::discounted_mean(ArmId i) const {
  const auto idx = static_cast<std::size_t>(i);
  return counts_[idx] > 1e-12 ? sums_[idx] / counts_[idx] : 0.0;
}

double DiscountedDflSso::index(ArmId i, TimeSlot t) const {
  const double count = counts_.at(static_cast<std::size_t>(i));
  if (count <= 1e-12) return std::numeric_limits<double>::infinity();
  // Effective horizon under discounting: 1/(1-γ) once saturated.
  const double effective_t =
      options_.discount < 1.0
          ? std::min(static_cast<double>(t), 1.0 / (1.0 - options_.discount))
          : static_cast<double>(t);
  const double ratio = effective_t / (static_cast<double>(num_arms_) * count);
  return discounted_mean(i) + exploration_width(ratio, count);
}

void DiscountedDflSso::refresh_all_indices(TimeSlot t, double* out) const {
  // Effective horizon under discounting: 1/(1-γ) once saturated. Shared by
  // every arm, so computed once per round.
  const double effective_t =
      options_.discount < 1.0
          ? std::min(static_cast<double>(t), 1.0 / (1.0 - options_.discount))
          : static_cast<double>(t);
  const double k_arms = static_cast<double>(num_arms_);
  for (std::size_t i = 0; i < num_arms_; ++i) {
    if (counts_[i] <= 1e-12) {
      out[i] = std::numeric_limits<double>::infinity();
      continue;
    }
    const double ratio = effective_t / (k_arms * counts_[i]);
    out[i] = sums_[i] / counts_[i] + exploration_width(ratio, counts_[i]);
  }
}

void DiscountedDflSso::observe(ArmId /*played*/, TimeSlot /*t*/,
                               ObservationSpan observations) {
  // One decay step per slot, then absorb the new samples at full weight.
  for (std::size_t i = 0; i < num_arms_; ++i) {
    counts_[i] *= options_.discount;
    sums_[i] *= options_.discount;
  }
  for (const Observation& obs : observations) {
    counts_[static_cast<std::size_t>(obs.arm)] += 1.0;
    sums_[static_cast<std::size_t>(obs.arm)] += obs.value;
  }
}

std::string DiscountedDflSso::name() const {
  std::ostringstream out;
  out << "D-DFL-SSO(g=" << options_.discount << ")";
  return out.str();
}

namespace {

const PolicyRegistration kRegSwDflSso{{
    "sw-dfl-sso",
    "DFL-SSO over a sliding window (non-stationary remedy)",
    kSsoBit,
    {{"window", ParamKind::kInt,
      "slots retained; \"auto\" = horizon/5 (1000 when unknown)", "auto",
      true}},
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      const TimeSlot fallback = ctx.horizon > 0 ? ctx.horizon / 5 : 1000;
      return std::make_unique<SwDflSso>(SwDflSsoOptions{
          .window = p.get_int("window", fallback), .seed = ctx.seed});
    },
    nullptr,
}};

const PolicyRegistration kRegDiscountedDflSso{{
    "d-dfl-sso",
    "DFL-SSO with exponential forgetting (non-stationary remedy)",
    kSsoBit,
    {{"discount", ParamKind::kDouble, "per-slot decay in (0,1]", "0.999",
      false}},
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<DiscountedDflSso>(DiscountedDflSsoOptions{
          .discount = p.get_double("discount", 0.999), .seed = ctx.seed});
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
