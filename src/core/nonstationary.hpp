// Non-stationary extensions of DFL-SSO (beyond the paper; its §IX notes
// practical refinements as future work). Two standard remedies when arm
// means drift or jump:
//
//  * SwDflSso — sliding window: statistics over the last `window` slots
//    only (Garivier & Moulines' SW-UCB adapted to the DFL index and side
//    observations).
//  * DiscountedDflSso — exponential forgetting: counts and sums decay by
//    `discount` each slot, so stale side observations fade out.
//
// Both keep Algorithm 1's index shape X̄ + sqrt(log⁺(t/(K·O))/O) with the
// windowed/discounted O and X̄. The nonstationary bench shows plain
// DFL-SSO locking onto a stale optimum after a breakpoint while these
// variants recover.
#pragma once

#include <deque>
#include <vector>

#include "core/index_policy.hpp"

namespace ncb {

struct SwDflSsoOptions {
  TimeSlot window = 1000;  ///< Number of most recent slots retained.
  std::uint64_t seed = 0x5eed5a11;
};

class SwDflSso final : public SingleIndexPolicy {
 public:
  explicit SwDflSso(SwDflSsoOptions options = {});

  void observe(ArmId played, TimeSlot t, ObservationSpan observations) override;
  [[nodiscard]] std::string name() const override;

  /// Windowed observation count of arm i.
  [[nodiscard]] std::int64_t window_count(ArmId i) const {
    return counts_.at(static_cast<std::size_t>(i));
  }
  /// Windowed empirical mean (0 when the window holds no samples).
  [[nodiscard]] double window_mean(ArmId i) const;
  [[nodiscard]] double index(ArmId i, TimeSlot t) const override;

 protected:
  void on_reset(const Graph& graph) override;
  void before_select(TimeSlot t) override;
  [[nodiscard]] IndexRefreshMode refresh_mode() const override {
    return IndexRefreshMode::kIncremental;
  }
  [[nodiscard]] IndexRefresh refresh_index(ArmId i, TimeSlot t) const override;

 private:
  void evict_older_than(TimeSlot cutoff);

  struct Sample {
    TimeSlot slot;
    ArmId arm;
    double value;
  };

  SwDflSsoOptions options_;
  std::deque<Sample> samples_;       // chronological
  std::vector<std::int64_t> counts_;  // per-arm samples inside the window
  std::vector<double> sums_;          // per-arm value sums inside the window
};

struct DiscountedDflSsoOptions {
  double discount = 0.999;  ///< Per-slot decay γ ∈ (0, 1].
  std::uint64_t seed = 0x5eedd15c;
};

class DiscountedDflSso final : public SingleIndexPolicy {
 public:
  explicit DiscountedDflSso(DiscountedDflSsoOptions options = {});

  void observe(ArmId played, TimeSlot t, ObservationSpan observations) override;
  [[nodiscard]] std::string name() const override;

  /// Discounted observation count (a real number).
  [[nodiscard]] double discounted_count(ArmId i) const {
    return counts_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] double discounted_mean(ArmId i) const;
  [[nodiscard]] double index(ArmId i, TimeSlot t) const override;

 protected:
  void on_reset(const Graph& graph) override;
  /// Decay touches every arm every slot, so the index stays on the
  /// every-round path; the effective horizon min(t, 1/(1-γ)) is hoisted.
  void refresh_all_indices(TimeSlot t, double* out) const override;

 private:
  DiscountedDflSsoOptions options_;
  std::vector<double> counts_;
  std::vector<double> sums_;
};

}  // namespace ncb
