// Policy interfaces for the four scenarios (paper §II).
//
// The simulation runner mediates all feedback: after a policy selects an arm
// (or com-arm), the runner hands it every (arm, value) pair its scenario
// legitimately reveals — N_i under side observation/reward, Y_x under
// combinatorial play, or just the played arm(s) for no-side baselines run
// in a side-observation world (they simply ignore the extras they choose
// not to consume).
//
// Feedback is delivered *batched*: the runner fills one slot-reused
// ObservationBatch per slot (zero allocations after warm-up) and passes a
// non-owning ObservationSpan to observe(). The span is only valid for the
// duration of the observe() call; policies that need the data later must
// copy it. The played arm's own sample is always included (component arms
// for combinatorial play).
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "graph/graph.hpp"
#include "util/types.hpp"

namespace ncb {

/// One revealed sample: arm j's reward X_{j,t} at the current slot.
struct Observation {
  ArmId arm = kNoArm;
  double value = 0.0;
};

/// Non-owning view over a contiguous run of observations — the unit of
/// feedback delivery. Implicitly constructible from a vector or a braced
/// list so test and example call sites stay literal.
class ObservationSpan {
 public:
  using value_type = Observation;
  using const_iterator = const Observation*;

  constexpr ObservationSpan() noexcept = default;
  constexpr ObservationSpan(const Observation* data, std::size_t size) noexcept
      : data_(data), size_(size) {}
  ObservationSpan(const std::vector<Observation>& observations) noexcept
      : data_(observations.data()), size_(observations.size()) {}
  // A braced list's backing array lives until the end of the full
  // expression, which covers every observe(...) call — the only way spans
  // are consumed. GCC cannot see that contract, hence the suppression.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winit-list-lifetime"
#endif
  ObservationSpan(std::initializer_list<Observation> observations) noexcept
      : data_(observations.begin()), size_(observations.size()) {}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  [[nodiscard]] constexpr const Observation* begin() const noexcept {
    return data_;
  }
  [[nodiscard]] constexpr const Observation* end() const noexcept {
    return data_ + size_;
  }
  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] constexpr const Observation& operator[](
      std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] constexpr const Observation& front() const noexcept {
    return data_[0];
  }

 private:
  const Observation* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Runner-owned slot feedback buffer. The runner reserves capacity once per
/// run and refills the batch every slot; clear() keeps the capacity, so the
/// steady-state hot loop performs no allocations.
class ObservationBatch {
 public:
  void reserve(std::size_t capacity) { observations_.reserve(capacity); }
  void clear() noexcept { observations_.clear(); }
  void add(ArmId arm, double value) { observations_.push_back({arm, value}); }

  [[nodiscard]] std::size_t size() const noexcept {
    return observations_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return observations_.empty(); }
  [[nodiscard]] const Observation& operator[](std::size_t i) const {
    return observations_[i];
  }
  [[nodiscard]] ObservationSpan span() const noexcept {
    return {observations_.data(), observations_.size()};
  }
  operator ObservationSpan() const noexcept { return span(); }

 private:
  std::vector<Observation> observations_;
};

/// Common root of the two action-typed policy interfaces: identity,
/// human-readable description, and advertised scenario support.
class PolicyBase {
 public:
  virtual ~PolicyBase() = default;

  /// Display name, e.g. "DFL-SSO" or "UCB-MaxN".
  [[nodiscard]] virtual std::string name() const = 0;

  /// One-line description echoing the effective parameter values, e.g.
  /// "eps-greedy(eps=0.05)". Defaults to name().
  [[nodiscard]] virtual std::string describe() const { return name(); }

  /// Scenarios this learner is designed for (advisory; the runner does not
  /// enforce it — baselines are deliberately run outside their home turf).
  [[nodiscard]] virtual ScenarioMask scenarios() const = 0;
};

/// Single-play decision maker: picks one arm per slot.
class SinglePlayPolicy : public PolicyBase {
 public:
  /// Re-initializes all learning state for a fresh run over `graph`.
  /// Must be called before the first `select`.
  virtual void reset(const Graph& graph) = 0;

  /// Chooses the arm for slot `t` (t = 1, 2, ...).
  [[nodiscard]] virtual ArmId select(TimeSlot t) = 0;

  /// Delivers the slot's feedback in one batched call. `played` is the arm
  /// returned by select; `observations` views every revealed (arm, value)
  /// pair, always including the played arm itself, and is only valid during
  /// the call.
  virtual void observe(ArmId played, TimeSlot t,
                       ObservationSpan observations) = 0;

  [[nodiscard]] ScenarioMask scenarios() const override {
    return kSinglePlayScenarios;
  }
};

/// Combinatorial-play decision maker: picks one feasible strategy per slot.
/// The feasible set is fixed at construction by each implementation.
class CombinatorialPolicy : public PolicyBase {
 public:
  /// Re-initializes all learning state for a fresh run.
  virtual void reset() = 0;

  /// Chooses the strategy for slot `t` (t = 1, 2, ...).
  [[nodiscard]] virtual StrategyId select(TimeSlot t) = 0;

  /// Delivers arm-level feedback covering the scenario's observed set in one
  /// batched call; the span is only valid during the call.
  virtual void observe(StrategyId played, TimeSlot t,
                       ObservationSpan observations) = 0;

  [[nodiscard]] ScenarioMask scenarios() const override {
    return kCombinatorialScenarios;
  }
};

}  // namespace ncb
