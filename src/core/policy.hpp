// Policy interfaces for the four scenarios (paper §II).
//
// The simulation runner mediates all feedback: after a policy selects an arm
// (or com-arm), the runner hands it every (arm, value) pair its scenario
// legitimately reveals — N_i under side observation/reward, Y_x under
// combinatorial play, or just the played arm(s) for no-side baselines run
// in a side-observation world (they simply ignore the extras they choose
// not to consume).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace ncb {

/// One revealed sample: arm j's reward X_{j,t} at the current slot.
struct Observation {
  ArmId arm = kNoArm;
  double value = 0.0;
};

/// Single-play decision maker: picks one arm per slot.
class SinglePlayPolicy {
 public:
  virtual ~SinglePlayPolicy() = default;

  /// Re-initializes all learning state for a fresh run over `graph`.
  /// Must be called before the first `select`.
  virtual void reset(const Graph& graph) = 0;

  /// Chooses the arm for slot `t` (t = 1, 2, ...).
  [[nodiscard]] virtual ArmId select(TimeSlot t) = 0;

  /// Delivers the slot's feedback. `played` is the arm returned by select;
  /// `observations` holds every revealed (arm, value) pair, always including
  /// the played arm itself.
  virtual void observe(ArmId played, TimeSlot t,
                       const std::vector<Observation>& observations) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Combinatorial-play decision maker: picks one feasible strategy per slot.
/// The feasible set is fixed at construction by each implementation.
class CombinatorialPolicy {
 public:
  virtual ~CombinatorialPolicy() = default;

  /// Re-initializes all learning state for a fresh run.
  virtual void reset() = 0;

  /// Chooses the strategy for slot `t` (t = 1, 2, ...).
  [[nodiscard]] virtual StrategyId select(TimeSlot t) = 0;

  /// Delivers arm-level feedback covering the scenario's observed set.
  virtual void observe(StrategyId played, TimeSlot t,
                       const std::vector<Observation>& observations) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace ncb
