#include "core/policy_factory.hpp"

#include <stdexcept>

#include "core/cucb.hpp"
#include "core/dfl_cso.hpp"
#include "core/dfl_csr.hpp"
#include "core/dfl_sso.hpp"
#include "core/dfl_ssr.hpp"
#include "core/epsilon_greedy.hpp"
#include "core/exp3.hpp"
#include "core/exp3_set.hpp"
#include "core/kl_ucb.hpp"
#include "core/moss.hpp"
#include "core/nonstationary.hpp"
#include "core/random_policy.hpp"
#include "core/thompson.hpp"
#include "core/ucb1.hpp"
#include "core/ucb_n.hpp"

namespace ncb {

std::unique_ptr<SinglePlayPolicy> make_single_play_policy(
    const std::string& name, TimeSlot horizon, std::uint64_t seed) {
  if (name == "dfl-sso") {
    return std::make_unique<DflSso>(DflSsoOptions{.neighbor_greedy = false, .seed = seed});
  }
  if (name == "dfl-sso-greedy") {
    return std::make_unique<DflSso>(DflSsoOptions{.neighbor_greedy = true, .seed = seed});
  }
  if (name == "dfl-ssr") {
    return std::make_unique<DflSsr>(
        DflSsrOptions{.estimator = SsrEstimator::kPaired, .seed = seed});
  }
  if (name == "dfl-ssr-meansum") {
    return std::make_unique<DflSsr>(
        DflSsrOptions{.estimator = SsrEstimator::kMeanSum, .seed = seed});
  }
  if (name == "moss") {
    return std::make_unique<Moss>(MossOptions{.horizon = horizon, .seed = seed});
  }
  if (name == "moss-anytime") {
    return std::make_unique<Moss>(MossOptions{.horizon = 0, .seed = seed});
  }
  if (name == "ucb1") {
    return std::make_unique<Ucb1>(Ucb1Options{.exploration = 2.0, .seed = seed});
  }
  if (name == "ucb-n") {
    return std::make_unique<UcbN>(
        UcbNOptions{.exploration = 2.0, .max_variant = false, .seed = seed});
  }
  if (name == "ucb-maxn") {
    return std::make_unique<UcbN>(
        UcbNOptions{.exploration = 2.0, .max_variant = true, .seed = seed});
  }
  if (name == "eps-greedy") {
    return std::make_unique<EpsilonGreedy>(EpsilonGreedyOptions{.seed = seed});
  }
  if (name == "eps-greedy-side") {
    EpsilonGreedyOptions opts;
    opts.use_side_observations = true;
    opts.seed = seed;
    return std::make_unique<EpsilonGreedy>(opts);
  }
  if (name == "thompson") {
    return std::make_unique<ThompsonSampling>(ThompsonOptions{.seed = seed});
  }
  if (name == "thompson-side") {
    ThompsonOptions opts;
    opts.use_side_observations = true;
    opts.seed = seed;
    return std::make_unique<ThompsonSampling>(opts);
  }
  if (name == "kl-ucb") {
    return std::make_unique<KlUcb>(KlUcbOptions{.seed = seed});
  }
  if (name == "kl-ucb-n") {
    KlUcbOptions opts;
    opts.use_side_observations = true;
    opts.seed = seed;
    return std::make_unique<KlUcb>(opts);
  }
  if (name == "exp3") {
    return std::make_unique<Exp3>(Exp3Options{.gamma = 0.05, .seed = seed});
  }
  if (name == "exp3-set") {
    return std::make_unique<Exp3Set>(Exp3SetOptions{.eta = 0.05, .seed = seed});
  }
  if (name == "sw-dfl-sso") {
    return std::make_unique<SwDflSso>(
        SwDflSsoOptions{.window = horizon > 0 ? horizon / 5 : 1000,
                        .seed = seed});
  }
  if (name == "d-dfl-sso") {
    return std::make_unique<DiscountedDflSso>(
        DiscountedDflSsoOptions{.discount = 0.999, .seed = seed});
  }
  if (name == "random") {
    return std::make_unique<RandomPolicy>(seed);
  }
  throw std::invalid_argument("unknown single-play policy: " + name);
}

std::unique_ptr<CombinatorialPolicy> make_combinatorial_policy(
    const std::string& name, std::shared_ptr<const FeasibleSet> family,
    std::uint64_t seed) {
  if (name == "dfl-cso") {
    return std::make_unique<DflCso>(
        std::move(family),
        DflCsoOptions{.scope = CsoUpdateScope::kStrategyGraph, .seed = seed});
  }
  if (name == "dfl-cso-observable") {
    return std::make_unique<DflCso>(
        std::move(family),
        DflCsoOptions{.scope = CsoUpdateScope::kAllObservable, .seed = seed});
  }
  if (name == "dfl-csr") {
    return std::make_unique<DflCsr>(std::move(family), nullptr,
                                    DflCsrOptions{.seed = seed});
  }
  if (name == "dfl-csr-greedy") {
    return std::make_unique<DflCsr>(std::move(family),
                                    std::make_shared<const GreedyCoverageOracle>(),
                                    DflCsrOptions{.seed = seed});
  }
  if (name == "cucb") {
    return std::make_unique<Cucb>(std::move(family), CucbOptions{.seed = seed});
  }
  throw std::invalid_argument("unknown combinatorial policy: " + name);
}

std::vector<std::string> single_play_policy_names() {
  return {"dfl-sso",  "dfl-sso-greedy", "dfl-ssr",   "dfl-ssr-meansum",
          "moss",     "moss-anytime",   "ucb1",      "ucb-n",
          "ucb-maxn", "kl-ucb",         "kl-ucb-n",  "eps-greedy",
          "eps-greedy-side", "thompson", "thompson-side", "exp3",
          "exp3-set", "sw-dfl-sso",     "d-dfl-sso", "random"};
}

std::vector<std::string> combinatorial_policy_names() {
  return {"dfl-cso", "dfl-cso-observable", "dfl-csr", "dfl-csr-greedy", "cucb"};
}

}  // namespace ncb
