#include "core/policy_factory.hpp"

#include "core/policy_registry.hpp"

namespace ncb {

std::unique_ptr<SinglePlayPolicy> make_single_play_policy(
    const std::string& spec, TimeSlot horizon, std::uint64_t seed) {
  return PolicyRegistry::instance().make_single_play(spec, horizon, seed);
}

std::unique_ptr<CombinatorialPolicy> make_combinatorial_policy(
    const std::string& spec, std::shared_ptr<const FeasibleSet> family,
    std::uint64_t seed) {
  return PolicyRegistry::instance().make_combinatorial(spec, std::move(family),
                                                       seed);
}

std::vector<std::string> single_play_policy_names() {
  return PolicyRegistry::instance().single_play_names();
}

std::vector<std::string> combinatorial_policy_names() {
  return PolicyRegistry::instance().combinatorial_names();
}

}  // namespace ncb
