// Name-based construction of policies for the bench/example CLI layer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "strategy/feasible_set.hpp"

namespace ncb {

/// Builds a single-play policy by name. Recognized names: "dfl-sso",
/// "dfl-sso-greedy", "dfl-ssr", "dfl-ssr-meansum", "moss" (fixed horizon),
/// "moss-anytime", "ucb1", "ucb-n", "ucb-maxn", "kl-ucb", "kl-ucb-n",
/// "eps-greedy", "eps-greedy-side", "thompson", "thompson-side", "exp3",
/// "random".
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] std::unique_ptr<SinglePlayPolicy> make_single_play_policy(
    const std::string& name, TimeSlot horizon, std::uint64_t seed);

/// Builds a combinatorial policy by name: "dfl-cso", "dfl-cso-observable",
/// "dfl-csr", "dfl-csr-greedy", "cucb".
[[nodiscard]] std::unique_ptr<CombinatorialPolicy> make_combinatorial_policy(
    const std::string& name, std::shared_ptr<const FeasibleSet> family,
    std::uint64_t seed);

/// All recognized single-play policy names.
[[nodiscard]] std::vector<std::string> single_play_policy_names();

/// All recognized combinatorial policy names.
[[nodiscard]] std::vector<std::string> combinatorial_policy_names();

}  // namespace ncb
