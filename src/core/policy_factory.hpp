// Name-based construction of policies for the bench/example CLI layer.
//
// These are thin wrappers over PolicyRegistry (core/policy_registry.hpp),
// kept for the many existing call sites. They accept full spec strings
// ("eps-greedy:eps=0.05"), not just bare names.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "strategy/feasible_set.hpp"

namespace ncb {

/// Builds a single-play policy from a registry spec string (see
/// PolicyRegistry for the grammar and `--list-policies` for the names).
/// Throws std::invalid_argument on unknown names (with a nearest-name
/// suggestion) or malformed params.
[[nodiscard]] std::unique_ptr<SinglePlayPolicy> make_single_play_policy(
    const std::string& spec, TimeSlot horizon, std::uint64_t seed);

/// Builds a combinatorial policy from a registry spec string.
[[nodiscard]] std::unique_ptr<CombinatorialPolicy> make_combinatorial_policy(
    const std::string& spec, std::shared_ptr<const FeasibleSet> family,
    std::uint64_t seed);

/// All registered single-play policy names, sorted.
[[nodiscard]] std::vector<std::string> single_play_policy_names();

/// All registered combinatorial policy names, sorted.
[[nodiscard]] std::vector<std::string> combinatorial_policy_names();

}  // namespace ncb
