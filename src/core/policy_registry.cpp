#include "core/policy_registry.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace ncb {
namespace {

[[nodiscard]] std::string quoted(const std::string& text) {
  return "\"" + text + "\"";
}

[[nodiscard]] std::int64_t parse_int(const std::string& key,
                                     const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::invalid_argument("policy param " + quoted(key) +
                                ": expected an integer, got " + quoted(text));
  }
  return static_cast<std::int64_t>(v);
}

[[nodiscard]] double parse_double(const std::string& key,
                                  const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE) {
    throw std::invalid_argument("policy param " + quoted(key) +
                                ": expected a number, got " + quoted(text));
  }
  return v;
}

[[nodiscard]] bool parse_bool(const std::string& key,
                              const std::string& text) {
  if (text == "true" || text == "1" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "false" || text == "0" || text == "no" || text == "off") {
    return false;
  }
  throw std::invalid_argument("policy param " + quoted(key) +
                              ": expected a boolean, got " + quoted(text));
}

/// Classic dynamic-programming Levenshtein distance (small strings only).
[[nodiscard]] std::size_t edit_distance(const std::string& a,
                                        const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diagonal = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t substitution =
          diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitution});
    }
  }
  return row[b.size()];
}

[[nodiscard]] const ParamSpec* find_spec(const PolicyDescriptor& descriptor,
                                         const std::string& key) {
  for (const ParamSpec& spec : descriptor.params) {
    if (spec.key == key) return &spec;
  }
  return nullptr;
}

[[nodiscard]] std::string valid_keys(const PolicyDescriptor& descriptor) {
  if (descriptor.params.empty()) return "none";
  std::string out;
  for (const ParamSpec& spec : descriptor.params) {
    if (!out.empty()) out += ", ";
    out += spec.key;
  }
  return out;
}

}  // namespace

bool PolicyParams::is_auto(const std::string& key) const {
  const auto it = values_.find(key);
  return it != values_.end() && it->second == "auto";
}

double PolicyParams::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second == "auto") return fallback;
  return parse_double(key, it->second);
}

std::int64_t PolicyParams::get_int(const std::string& key,
                                   std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second == "auto") return fallback;
  return parse_int(key, it->second);
}

bool PolicyParams::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second == "auto") return fallback;
  return parse_bool(key, it->second);
}

PolicyRegistry& PolicyRegistry::instance() {
  static PolicyRegistry registry;
  return registry;
}

void PolicyRegistry::add(PolicyDescriptor descriptor) {
  if (descriptor.name.empty()) {
    throw std::logic_error("PolicyRegistry: descriptor without a name");
  }
  if (static_cast<bool>(descriptor.make_single) ==
      static_cast<bool>(descriptor.make_combinatorial)) {
    throw std::logic_error("PolicyRegistry: " + quoted(descriptor.name) +
                           " must set exactly one builder");
  }
  const std::string name = descriptor.name;
  if (!by_name_.emplace(name, std::move(descriptor)).second) {
    throw std::logic_error("PolicyRegistry: duplicate name " + quoted(name));
  }
}

const PolicyDescriptor* PolicyRegistry::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

std::vector<const PolicyDescriptor*> PolicyRegistry::descriptors() const {
  std::vector<const PolicyDescriptor*> out;
  out.reserve(by_name_.size());
  for (const auto& [name, descriptor] : by_name_) out.push_back(&descriptor);
  return out;
}

std::vector<std::string> PolicyRegistry::single_play_names() const {
  std::vector<std::string> out;
  for (const auto& [name, descriptor] : by_name_) {
    if (!descriptor.is_combinatorial()) out.push_back(name);
  }
  return out;
}

std::vector<std::string> PolicyRegistry::combinatorial_names() const {
  std::vector<std::string> out;
  for (const auto& [name, descriptor] : by_name_) {
    if (descriptor.is_combinatorial()) out.push_back(name);
  }
  return out;
}

std::string PolicyRegistry::nearest_name(const std::string& name) const {
  std::string best;
  std::size_t best_distance = std::numeric_limits<std::size_t>::max();
  for (const auto& [candidate, descriptor] : by_name_) {
    const std::size_t d = edit_distance(name, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

const PolicyDescriptor& PolicyRegistry::resolve(const std::string& spec,
                                                bool want_combinatorial,
                                                PolicyParams& params) const {
  const std::size_t colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  const char* kind = want_combinatorial ? "combinatorial" : "single-play";

  const PolicyDescriptor* descriptor = find(name);
  if (!descriptor) {
    std::string message =
        std::string("unknown ") + kind + " policy: " + quoted(name);
    const std::string suggestion = nearest_name(name);
    if (!suggestion.empty()) {
      message += " (did you mean " + quoted(suggestion) + "?)";
    }
    throw std::invalid_argument(message);
  }
  if (descriptor->is_combinatorial() != want_combinatorial) {
    throw std::invalid_argument(
        "policy " + quoted(name) + " is " +
        (descriptor->is_combinatorial() ? "combinatorial-play"
                                        : "single-play") +
        "; it cannot be built as a " + kind + " policy");
  }

  if (colon != std::string::npos) {
    std::istringstream in(spec.substr(colon + 1));
    std::string item;
    while (std::getline(in, item, ',')) {
      if (item.empty()) continue;
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw std::invalid_argument("policy " + quoted(name) +
                                    ": malformed param " + quoted(item) +
                                    " (expected key=value)");
      }
      const std::string key = item.substr(0, eq);
      const std::string value = item.substr(eq + 1);
      const ParamSpec* param = find_spec(*descriptor, key);
      if (!param) {
        throw std::invalid_argument("policy " + quoted(name) +
                                    ": unknown param " + quoted(key) +
                                    " (valid: " + valid_keys(*descriptor) +
                                    ")");
      }
      if (!params.values_.emplace(key, value).second) {
        throw std::invalid_argument("policy " + quoted(name) +
                                    ": duplicate param " + quoted(key));
      }
      if (value == "auto") {
        if (!param->allow_auto) {
          throw std::invalid_argument("policy param " + quoted(key) +
                                      ": \"auto\" is not accepted here");
        }
        continue;
      }
      // Type-check eagerly so bad specs fail at parse time, not mid-run.
      switch (param->kind) {
        case ParamKind::kInt: (void)parse_int(key, value); break;
        case ParamKind::kDouble: (void)parse_double(key, value); break;
        case ParamKind::kBool: (void)parse_bool(key, value); break;
      }
    }
  }
  return *descriptor;
}

std::unique_ptr<SinglePlayPolicy> PolicyRegistry::make_single_play(
    const std::string& spec, TimeSlot horizon, std::uint64_t seed) const {
  PolicyParams params;
  const PolicyDescriptor& descriptor = resolve(spec, false, params);
  PolicyBuildContext context;
  context.horizon = horizon;
  context.seed = seed;
  return descriptor.make_single(params, context);
}

const PolicyDescriptor& PolicyRegistry::check_single_play(
    const std::string& spec) const {
  PolicyParams params;
  return resolve(spec, false, params);
}

std::unique_ptr<CombinatorialPolicy> PolicyRegistry::make_combinatorial(
    const std::string& spec, std::shared_ptr<const FeasibleSet> family,
    std::uint64_t seed) const {
  PolicyParams params;
  const PolicyDescriptor& descriptor = resolve(spec, true, params);
  PolicyBuildContext context;
  context.seed = seed;
  context.family = std::move(family);
  return descriptor.make_combinatorial(params, context);
}

std::string PolicyRegistry::render_listing() const {
  std::ostringstream out;
  const auto render = [&out](const PolicyDescriptor& descriptor) {
    out << "  " << descriptor.name;
    for (std::size_t pad = descriptor.name.size(); pad < 20; ++pad) out << ' ';
    out << '[' << scenario_mask_names(descriptor.scenarios) << "]  "
        << descriptor.description << '\n';
    for (const ParamSpec& param : descriptor.params) {
      out << "      :" << param.key << "=<";
      switch (param.kind) {
        case ParamKind::kInt: out << "int"; break;
        case ParamKind::kDouble: out << "double"; break;
        case ParamKind::kBool: out << "bool"; break;
      }
      if (param.allow_auto) out << "|auto";
      out << ">  " << param.doc;
      if (!param.default_text.empty()) {
        out << " (default " << param.default_text << ')';
      }
      out << '\n';
    }
  };
  out << "single-play policies:\n";
  for (const PolicyDescriptor* d : descriptors()) {
    if (!d->is_combinatorial()) render(*d);
  }
  out << "combinatorial policies:\n";
  for (const PolicyDescriptor* d : descriptors()) {
    if (d->is_combinatorial()) render(*d);
  }
  out << "spec grammar: name[:key=value[,key=value]...]   e.g. "
         "\"eps-greedy:eps=0.05\"\n";
  return out.str();
}

}  // namespace ncb
