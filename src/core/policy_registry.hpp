// Self-registering policy registry: the single place policy *names* resolve.
//
// Each policy translation unit registers one PolicyDescriptor per public
// name at static-initialization time (see the PolicyRegistration statics at
// the bottom of the core/*.cpp files), carrying a doc string, the scenarios
// the learner targets, and a typed parameter schema. Spec strings of the
// form
//
//     name                       e.g.  "dfl-sso"
//     name:key=value[,key=value] e.g.  "eps-greedy:eps=0.05"
//                                      "moss:horizon=auto"
//
// parse uniformly: keys are validated against the schema, values are
// type-checked (int / double / bool; "auto" where the schema allows it),
// and unknown policy names fail with a nearest-name suggestion. New
// policies plug in by registering a descriptor — no central factory edit.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "strategy/feasible_set.hpp"

namespace ncb {

/// Value kinds a policy parameter can take.
enum class ParamKind { kInt, kDouble, kBool };

/// Schema entry for one `key=value` parameter of a policy spec.
struct ParamSpec {
  std::string key;
  ParamKind kind = ParamKind::kDouble;
  std::string doc;
  /// Human-readable default shown in listings (e.g. "0.1", "run horizon").
  std::string default_text;
  /// Accept the sentinel value "auto" (resolved by the builder).
  bool allow_auto = false;
};

/// Parsed, schema-validated `key=value` pairs handed to a builder.
class PolicyParams {
 public:
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }
  /// True when the key was given the sentinel value "auto".
  [[nodiscard]] bool is_auto(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

 private:
  friend class PolicyRegistry;
  std::map<std::string, std::string> values_;
};

/// Build-time context a policy may need beyond its own parameters.
struct PolicyBuildContext {
  /// Run horizon n; 0 when unknown (anytime).
  TimeSlot horizon = 0;
  /// Replication seed for the policy's private RNG stream.
  std::uint64_t seed = 0;
  /// Feasible strategy family (combinatorial builders only).
  std::shared_ptr<const FeasibleSet> family;
};

using SinglePlayBuilder = std::function<std::unique_ptr<SinglePlayPolicy>(
    const PolicyParams&, const PolicyBuildContext&)>;
using CombinatorialBuilder =
    std::function<std::unique_ptr<CombinatorialPolicy>(
        const PolicyParams&, const PolicyBuildContext&)>;

/// Everything the registry knows about one public policy name.
struct PolicyDescriptor {
  std::string name;
  std::string description;
  ScenarioMask scenarios = 0;
  std::vector<ParamSpec> params;
  /// Exactly one of the two builders is set.
  SinglePlayBuilder make_single;
  CombinatorialBuilder make_combinatorial;

  [[nodiscard]] bool is_combinatorial() const {
    return static_cast<bool>(make_combinatorial);
  }
};

class PolicyRegistry {
 public:
  /// The process-wide registry (populated during static initialization).
  [[nodiscard]] static PolicyRegistry& instance();

  /// Registers a descriptor. Throws std::logic_error on a duplicate name or
  /// a descriptor without exactly one builder.
  void add(PolicyDescriptor descriptor);

  /// Descriptor for `name` (exact match, no params), or nullptr.
  [[nodiscard]] const PolicyDescriptor* find(const std::string& name) const;

  /// All descriptors, sorted by name.
  [[nodiscard]] std::vector<const PolicyDescriptor*> descriptors() const;

  /// Sorted names of the single-play / combinatorial policies.
  [[nodiscard]] std::vector<std::string> single_play_names() const;
  [[nodiscard]] std::vector<std::string> combinatorial_names() const;

  /// Builds a single-play policy from a spec string ("name" or
  /// "name:key=value,..."). Throws std::invalid_argument on unknown names
  /// (with a nearest-name suggestion), unknown keys, or bad values.
  [[nodiscard]] std::unique_ptr<SinglePlayPolicy> make_single_play(
      const std::string& spec, TimeSlot horizon, std::uint64_t seed) const;

  /// Validates a single-play spec string (name, parameter keys, value
  /// types) without building the policy, throwing exactly what
  /// make_single_play would. Lets batch consumers (the replay panel, sweep
  /// expansion) reject a bad spec up front instead of mid-scan. Returns the
  /// resolved descriptor.
  const PolicyDescriptor& check_single_play(const std::string& spec) const;

  /// Combinatorial counterpart; `family` is forwarded to the builder.
  [[nodiscard]] std::unique_ptr<CombinatorialPolicy> make_combinatorial(
      const std::string& spec, std::shared_ptr<const FeasibleSet> family,
      std::uint64_t seed) const;

  /// Registered name closest to `name` in edit distance ("" when empty).
  [[nodiscard]] std::string nearest_name(const std::string& name) const;

  /// Multi-line human listing (names, scenario support, descriptions,
  /// parameter schemas) for the --list-policies CLI flag.
  [[nodiscard]] std::string render_listing() const;

 private:
  const PolicyDescriptor& resolve(const std::string& spec,
                                  bool want_combinatorial,
                                  PolicyParams& params) const;

  std::map<std::string, PolicyDescriptor> by_name_;
};

/// Static-initialization helper:
///   namespace { const PolicyRegistration reg{{.name = "...", ...}}; }
struct PolicyRegistration {
  explicit PolicyRegistration(PolicyDescriptor descriptor) {
    PolicyRegistry::instance().add(std::move(descriptor));
  }
};

}  // namespace ncb
