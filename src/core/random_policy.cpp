#include "core/random_policy.hpp"

#include "core/policy_registry.hpp"

namespace ncb {
namespace {

const PolicyRegistration kRegRandom{{
    "random",
    "uniform-random arm selection; the regret floor",
    kSsoBit | kSsrBit,
    {},
    [](const PolicyParams&, const PolicyBuildContext& ctx) {
      return std::make_unique<RandomPolicy>(ctx.seed);
    },
    nullptr,
}};

}  // namespace
}  // namespace ncb
