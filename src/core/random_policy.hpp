// Uniform-random arm selection: the regret floor nothing should lose to.
#pragma once

#include "core/policy.hpp"
#include "util/rng.hpp"

namespace ncb {

class RandomPolicy final : public SinglePlayPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed = 0x5eed4a2d) : seed_(seed), rng_(seed) {}

  void reset(const Graph& graph) override {
    num_arms_ = graph.num_vertices();
    rng_ = Xoshiro256(seed_);
  }

  [[nodiscard]] ArmId select(TimeSlot /*t*/) override {
    return static_cast<ArmId>(rng_.uniform_int(num_arms_));
  }

  void observe(ArmId, TimeSlot, ObservationSpan) override {}

  [[nodiscard]] std::string name() const override { return "Random"; }

 private:
  std::uint64_t seed_;
  std::size_t num_arms_ = 1;
  Xoshiro256 rng_;
};

}  // namespace ncb
