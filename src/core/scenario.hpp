// Scenario tags for the four cases of §II, plus the bitmask vocabulary the
// policy layer uses to advertise scenario support.
//
// This lives in core/ (not sim/) because policies and the registry need it;
// sim/semantics.hpp re-exports it for the existing include sites.
#pragma once

#include <cstdint>
#include <string>

namespace ncb {

enum class Scenario {
  kSso,  ///< Single-play, side observation (Eq. 1 regret).
  kCso,  ///< Combinatorial-play, side observation (Eq. 2).
  kSsr,  ///< Single-play, side reward (Eq. 3).
  kCsr,  ///< Combinatorial-play, side reward (Eq. 4).
};

[[nodiscard]] inline std::string scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kSso: return "SSO";
    case Scenario::kCso: return "CSO";
    case Scenario::kSsr: return "SSR";
    case Scenario::kCsr: return "CSR";
  }
  return "?";
}

[[nodiscard]] inline bool is_combinatorial(Scenario s) {
  return s == Scenario::kCso || s == Scenario::kCsr;
}

[[nodiscard]] inline bool is_side_reward(Scenario s) {
  return s == Scenario::kSsr || s == Scenario::kCsr;
}

/// Bitmask over the four scenarios (one bit per Scenario enumerator).
using ScenarioMask = std::uint8_t;

[[nodiscard]] constexpr ScenarioMask scenario_bit(Scenario s) noexcept {
  return static_cast<ScenarioMask>(1u << static_cast<unsigned>(s));
}

inline constexpr ScenarioMask kSsoBit = scenario_bit(Scenario::kSso);
inline constexpr ScenarioMask kCsoBit = scenario_bit(Scenario::kCso);
inline constexpr ScenarioMask kSsrBit = scenario_bit(Scenario::kSsr);
inline constexpr ScenarioMask kCsrBit = scenario_bit(Scenario::kCsr);
inline constexpr ScenarioMask kSinglePlayScenarios = kSsoBit | kSsrBit;
inline constexpr ScenarioMask kCombinatorialScenarios = kCsoBit | kCsrBit;

[[nodiscard]] constexpr bool mask_supports(ScenarioMask mask,
                                           Scenario s) noexcept {
  return (mask & scenario_bit(s)) != 0;
}

/// Space-separated scenario names in SSO/SSR/CSO/CSR order, e.g. "SSO SSR".
[[nodiscard]] inline std::string scenario_mask_names(ScenarioMask mask) {
  std::string out;
  for (const Scenario s : {Scenario::kSso, Scenario::kSsr, Scenario::kCso,
                           Scenario::kCsr}) {
    if (!mask_supports(mask, s)) continue;
    if (!out.empty()) out += ' ';
    out += scenario_name(s);
  }
  return out;
}

}  // namespace ncb
