#include "core/thompson.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/policy_registry.hpp"

namespace ncb {

ThompsonSampling::ThompsonSampling(ThompsonOptions options)
    : options_(options), rng_(options.seed) {
  if (options.prior_alpha <= 0.0 || options.prior_beta <= 0.0) {
    throw std::invalid_argument("ThompsonSampling: prior must be positive");
  }
}

void ThompsonSampling::reset(const Graph& graph) {
  num_arms_ = graph.num_vertices();
  alpha_.assign(num_arms_, options_.prior_alpha);
  beta_.assign(num_arms_, options_.prior_beta);
  rng_ = Xoshiro256(options_.seed);
}

ArmId ThompsonSampling::select(TimeSlot /*t*/) {
  if (num_arms_ == 0) {
    throw std::logic_error("ThompsonSampling: reset() not called");
  }
  ArmId best = 0;
  double best_draw = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < num_arms_; ++i) {
    const double draw = rng_.beta(alpha_[i], beta_[i]);
    if (draw > best_draw) {
      best_draw = draw;
      best = static_cast<ArmId>(i);
    }
  }
  return best;
}

void ThompsonSampling::observe(ArmId played, TimeSlot /*t*/,
                               ObservationSpan observations) {
  // Batched pass over the span: every consumed sample flips one posterior
  // pseudo-count coin, side observations included when opted in.
  for (const Observation& obs : observations) {
    if (!options_.use_side_observations && obs.arm != played) continue;
    const auto i = static_cast<std::size_t>(obs.arm);
    // Binarize [0,1] rewards into posterior pseudo-counts.
    if (rng_.bernoulli(obs.value)) {
      alpha_[i] += 1.0;
    } else {
      beta_[i] += 1.0;
    }
  }
}

double ThompsonSampling::posterior_mean(ArmId i) const {
  const auto idx = static_cast<std::size_t>(i);
  return alpha_.at(idx) / (alpha_.at(idx) + beta_.at(idx));
}

std::string ThompsonSampling::name() const {
  return options_.use_side_observations ? "Thompson+side" : "Thompson";
}

std::string ThompsonSampling::describe() const {
  std::ostringstream out;
  out << name() << "(alpha=" << options_.prior_alpha
      << ",beta=" << options_.prior_beta << ")";
  return out.str();
}

namespace {

const std::vector<ParamSpec> kThompsonParams{
    {"alpha", ParamKind::kDouble, "Beta prior alpha", "1.0", false},
    {"beta", ParamKind::kDouble, "Beta prior beta", "1.0", false}};

ThompsonOptions thompson_options(const PolicyParams& p,
                                 const PolicyBuildContext& ctx, bool side) {
  ThompsonOptions opts;
  opts.prior_alpha = p.get_double("alpha", opts.prior_alpha);
  opts.prior_beta = p.get_double("beta", opts.prior_beta);
  opts.use_side_observations = side;
  opts.seed = ctx.seed;
  return opts;
}

const PolicyRegistration kRegThompson{{
    "thompson",
    "Thompson sampling with Beta-Bernoulli posteriors",
    kSsoBit | kSsrBit,
    kThompsonParams,
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<ThompsonSampling>(thompson_options(p, ctx, false));
    },
    nullptr,
}};

const PolicyRegistration kRegThompsonSide{{
    "thompson-side",
    "Thompson sampling consuming side observations",
    kSsoBit,
    kThompsonParams,
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<ThompsonSampling>(thompson_options(p, ctx, true));
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
