#include "core/thompson.hpp"

#include <limits>
#include <stdexcept>

namespace ncb {

ThompsonSampling::ThompsonSampling(ThompsonOptions options)
    : options_(options), rng_(options.seed) {
  if (options.prior_alpha <= 0.0 || options.prior_beta <= 0.0) {
    throw std::invalid_argument("ThompsonSampling: prior must be positive");
  }
}

void ThompsonSampling::reset(const Graph& graph) {
  num_arms_ = graph.num_vertices();
  alpha_.assign(num_arms_, options_.prior_alpha);
  beta_.assign(num_arms_, options_.prior_beta);
  rng_ = Xoshiro256(options_.seed);
}

ArmId ThompsonSampling::select(TimeSlot /*t*/) {
  if (num_arms_ == 0) {
    throw std::logic_error("ThompsonSampling: reset() not called");
  }
  ArmId best = 0;
  double best_draw = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < num_arms_; ++i) {
    const double draw = rng_.beta(alpha_[i], beta_[i]);
    if (draw > best_draw) {
      best_draw = draw;
      best = static_cast<ArmId>(i);
    }
  }
  return best;
}

void ThompsonSampling::observe(ArmId played, TimeSlot /*t*/,
                               const std::vector<Observation>& observations) {
  for (const auto& obs : observations) {
    if (!options_.use_side_observations && obs.arm != played) continue;
    const auto i = static_cast<std::size_t>(obs.arm);
    // Binarize [0,1] rewards into posterior pseudo-counts.
    if (rng_.bernoulli(obs.value)) {
      alpha_[i] += 1.0;
    } else {
      beta_[i] += 1.0;
    }
  }
}

double ThompsonSampling::posterior_mean(ArmId i) const {
  const auto idx = static_cast<std::size_t>(i);
  return alpha_.at(idx) / (alpha_.at(idx) + beta_.at(idx));
}

std::string ThompsonSampling::name() const {
  return options_.use_side_observations ? "Thompson+side" : "Thompson";
}

}  // namespace ncb
