// Thompson sampling with Beta-Bernoulli posteriors. General [0,1] rewards
// are handled by the standard binarization trick (Agrawal & Goyal): a reward
// r updates the posterior with a Bernoulli(r) coin flip. Side observations
// are consumed when `use_side_observations` (giving a Thompson analogue of
// UCB-N for the baseline panel).
#pragma once

#include <vector>

#include "core/policy.hpp"
#include "util/rng.hpp"

namespace ncb {

struct ThompsonOptions {
  double prior_alpha = 1.0;
  double prior_beta = 1.0;
  bool use_side_observations = false;
  std::uint64_t seed = 0x5eed7503;
};

class ThompsonSampling final : public SinglePlayPolicy {
 public:
  explicit ThompsonSampling(ThompsonOptions options = {});

  void reset(const Graph& graph) override;
  [[nodiscard]] ArmId select(TimeSlot t) override;
  void observe(ArmId played, TimeSlot t, ObservationSpan observations) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double posterior_mean(ArmId i) const;

 private:
  ThompsonOptions options_;
  std::size_t num_arms_ = 0;
  std::vector<double> alpha_;
  std::vector<double> beta_;
  Xoshiro256 rng_;
};

}  // namespace ncb
