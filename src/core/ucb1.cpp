#include "core/ucb1.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ncb {

Ucb1::Ucb1(Ucb1Options options) : options_(options), rng_(options.seed) {}

void Ucb1::reset(const Graph& graph) {
  num_arms_ = graph.num_vertices();
  reset_stats(stats_, num_arms_);
  rng_ = Xoshiro256(options_.seed);
}

double Ucb1::index(ArmId i, TimeSlot t) const {
  const ArmStat& s = stats_.at(static_cast<std::size_t>(i));
  if (s.count == 0) return std::numeric_limits<double>::infinity();
  const double bonus = std::sqrt(options_.exploration *
                                 std::log(std::max<double>(static_cast<double>(t), 1.0)) /
                                 static_cast<double>(s.count));
  return s.mean + bonus;
}

ArmId Ucb1::select(TimeSlot t) {
  if (num_arms_ == 0) throw std::logic_error("Ucb1: reset() not called");
  ArmId best = 0;
  double best_index = -std::numeric_limits<double>::infinity();
  std::size_t ties = 0;
  for (std::size_t i = 0; i < num_arms_; ++i) {
    const double idx = index(static_cast<ArmId>(i), t);
    if (idx > best_index) {
      best_index = idx;
      best = static_cast<ArmId>(i);
      ties = 1;
    } else if (idx == best_index) {
      ++ties;
      if (rng_.uniform_int(ties) == 0) best = static_cast<ArmId>(i);
    }
  }
  return best;
}

void Ucb1::observe(ArmId played, TimeSlot /*t*/,
                   const std::vector<Observation>& observations) {
  for (const auto& obs : observations) {
    if (obs.arm == played) {
      stats_.at(static_cast<std::size_t>(obs.arm)).add(obs.value);
      return;
    }
  }
  throw std::logic_error("Ucb1: played arm missing from observations");
}

}  // namespace ncb
