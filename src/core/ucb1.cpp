#include "core/ucb1.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/policy_registry.hpp"

namespace ncb {

Ucb1::Ucb1(Ucb1Options options)
    : ArmStatIndexPolicy(options.seed), options_(options) {}

double Ucb1::index(ArmId i, TimeSlot t) const {
  const ArmStat& s = stats_.at(static_cast<std::size_t>(i));
  if (s.count == 0) return std::numeric_limits<double>::infinity();
  const double bonus = std::sqrt(options_.exploration *
                                 std::log(std::max<double>(static_cast<double>(t), 1.0)) /
                                 static_cast<double>(s.count));
  return s.mean + bonus;
}

void Ucb1::observe(ArmId played, TimeSlot /*t*/,
                   ObservationSpan observations) {
  for (const Observation& obs : observations) {
    if (obs.arm == played) {
      stats_.at(static_cast<std::size_t>(obs.arm)).add(obs.value);
      return;
    }
  }
  throw std::logic_error("Ucb1: played arm missing from observations");
}

std::string Ucb1::describe() const {
  std::ostringstream out;
  out << name() << "(c=" << options_.exploration << ")";
  return out.str();
}

namespace {

const PolicyRegistration kRegUcb1{{
    "ucb1",
    "classical UCB1; distribution-dependent, no side information",
    kSsoBit | kSsrBit,
    {{"c", ParamKind::kDouble, "exploration scale", "2.0", false}},
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<Ucb1>(Ucb1Options{
          .exploration = p.get_double("c", 2.0), .seed = ctx.seed});
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
