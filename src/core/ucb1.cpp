#include "core/ucb1.hpp"

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "core/policy_registry.hpp"

namespace ncb {

Ucb1::Ucb1(Ucb1Options options)
    : ArmStatIndexPolicy(options.seed), options_(options) {}

double Ucb1::index(ArmId i, TimeSlot t) const {
  const std::int64_t count = stats_.count(i);
  if (count == 0) return std::numeric_limits<double>::infinity();
  const double bonus = std::sqrt(options_.exploration *
                                 std::log(std::max<double>(static_cast<double>(t), 1.0)) /
                                 static_cast<double>(count));
  return stats_.mean(i) + bonus;
}

void Ucb1::refresh_all_indices(TimeSlot t, double* out) const {
  // c·ln t is shared by every arm; hoisting it keeps the loop at one
  // division + one sqrt per arm over the flat SoA arrays. The expression
  // tree (c·lt)/T_i matches index() exactly, so the values are bit-equal.
  const double clt =
      options_.exploration *
      std::log(std::max<double>(static_cast<double>(t), 1.0));
  const std::int64_t* counts = stats_.counts();
  const double* means = stats_.means();
  for (std::size_t k = 0; k < num_arms_; ++k) {
    out[k] = counts[k] == 0
                 ? std::numeric_limits<double>::infinity()
                 : means[k] + std::sqrt(clt / static_cast<double>(counts[k]));
  }
}

void Ucb1::observe(ArmId played, TimeSlot /*t*/,
                   ObservationSpan observations) {
  for (const Observation& obs : observations) {
    if (obs.arm == played) {
      absorb(obs.arm, obs.value);
      return;
    }
  }
  throw std::logic_error("Ucb1: played arm missing from observations");
}

std::string Ucb1::describe() const {
  std::ostringstream out;
  out << name() << "(c=" << options_.exploration << ")";
  return out.str();
}

namespace {

const PolicyRegistration kRegUcb1{{
    "ucb1",
    "classical UCB1; distribution-dependent, no side information",
    kSsoBit | kSsrBit,
    {{"c", ParamKind::kDouble, "exploration scale", "2.0", false}},
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<Ucb1>(Ucb1Options{
          .exploration = p.get_double("c", 2.0), .seed = ctx.seed});
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
