// UCB1 (Auer, Cesa-Bianchi & Fischer 2002): the classical index policy,
// X̄_i + sqrt(2 ln t / T_i). Distribution-dependent baseline without side
// information.
#pragma once

#include "core/index_policy.hpp"

namespace ncb {

struct Ucb1Options {
  /// Exploration scale; 2.0 is the textbook constant.
  double exploration = 2.0;
  std::uint64_t seed = 0x5eed0cb1;
};

class Ucb1 final : public ArmStatIndexPolicy {
 public:
  explicit Ucb1(Ucb1Options options = {});

  /// Played-only update: UCB1 ignores side observations.
  void observe(ArmId played, TimeSlot t, ObservationSpan observations) override;
  [[nodiscard]] double index(ArmId i, TimeSlot t) const override;
  [[nodiscard]] std::string name() const override { return "UCB1"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] std::int64_t play_count(ArmId i) const {
    return observation_count(i);
  }

 protected:
  /// Bulk refresh with ln t hoisted out of the per-arm loop.
  void refresh_all_indices(TimeSlot t, double* out) const override;

 private:
  Ucb1Options options_;
};

}  // namespace ncb
