// UCB1 (Auer, Cesa-Bianchi & Fischer 2002): the classical index policy,
// X̄_i + sqrt(2 ln t / T_i). Distribution-dependent baseline without side
// information.
#pragma once

#include <vector>

#include "core/arm_stats.hpp"
#include "core/policy.hpp"
#include "util/rng.hpp"

namespace ncb {

struct Ucb1Options {
  /// Exploration scale; 2.0 is the textbook constant.
  double exploration = 2.0;
  std::uint64_t seed = 0x5eed0cb1;
};

class Ucb1 final : public SinglePlayPolicy {
 public:
  explicit Ucb1(Ucb1Options options = {});

  void reset(const Graph& graph) override;
  [[nodiscard]] ArmId select(TimeSlot t) override;
  void observe(ArmId played, TimeSlot t,
               const std::vector<Observation>& observations) override;
  [[nodiscard]] std::string name() const override { return "UCB1"; }

  [[nodiscard]] double index(ArmId i, TimeSlot t) const;
  [[nodiscard]] std::int64_t play_count(ArmId i) const {
    return stats_.at(static_cast<std::size_t>(i)).count;
  }

 private:
  Ucb1Options options_;
  std::size_t num_arms_ = 0;
  std::vector<ArmStat> stats_;
  Xoshiro256 rng_;
};

}  // namespace ncb
