#include "core/ucb_n.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ncb {

UcbN::UcbN(UcbNOptions options) : options_(options), rng_(options.seed) {}

void UcbN::reset(const Graph& graph) {
  graph_ = graph;
  num_arms_ = graph.num_vertices();
  reset_stats(stats_, num_arms_);
  rng_ = Xoshiro256(options_.seed);
}

double UcbN::index(ArmId i, TimeSlot t) const {
  const ArmStat& s = stats_.at(static_cast<std::size_t>(i));
  if (s.count == 0) return std::numeric_limits<double>::infinity();
  const double bonus = std::sqrt(options_.exploration *
                                 std::log(std::max<double>(static_cast<double>(t), 1.0)) /
                                 static_cast<double>(s.count));
  return s.mean + bonus;
}

ArmId UcbN::select(TimeSlot t) {
  if (num_arms_ == 0) throw std::logic_error("UcbN: reset() not called");
  ArmId best = 0;
  double best_index = -std::numeric_limits<double>::infinity();
  std::size_t ties = 0;
  for (std::size_t i = 0; i < num_arms_; ++i) {
    const double idx = index(static_cast<ArmId>(i), t);
    if (idx > best_index) {
      best_index = idx;
      best = static_cast<ArmId>(i);
      ties = 1;
    } else if (idx == best_index) {
      ++ties;
      if (rng_.uniform_int(ties) == 0) best = static_cast<ArmId>(i);
    }
  }
  if (!options_.max_variant) return best;
  // UCB-MaxN: play the best empirical arm among N_{best}.
  ArmId play = best;
  double play_mean = stats_[static_cast<std::size_t>(best)].mean;
  for (const ArmId j : graph_.closed_neighborhood(best)) {
    const ArmStat& s = stats_[static_cast<std::size_t>(j)];
    if (s.count > 0 && s.mean > play_mean) {
      play = j;
      play_mean = s.mean;
    }
  }
  return play;
}

void UcbN::observe(ArmId /*played*/, TimeSlot /*t*/,
                   const std::vector<Observation>& observations) {
  for (const auto& obs : observations) {
    stats_.at(static_cast<std::size_t>(obs.arm)).add(obs.value);
  }
}

std::string UcbN::name() const {
  return options_.max_variant ? "UCB-MaxN" : "UCB-N";
}

}  // namespace ncb
