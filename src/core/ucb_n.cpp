#include "core/ucb_n.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "core/policy_registry.hpp"

namespace ncb {

UcbN::UcbN(UcbNOptions options)
    : ArmStatIndexPolicy(options.seed), options_(options) {}

void UcbN::on_reset(const Graph& graph) {
  graph_ = graph;
  ArmStatIndexPolicy::on_reset(graph);
}

double UcbN::index(ArmId i, TimeSlot t) const {
  const std::int64_t count = stats_.count(i);
  if (count == 0) return std::numeric_limits<double>::infinity();
  const double bonus = std::sqrt(options_.exploration *
                                 std::log(std::max<double>(static_cast<double>(t), 1.0)) /
                                 static_cast<double>(count));
  return stats_.mean(i) + bonus;
}

void UcbN::refresh_all_indices(TimeSlot t, double* out) const {
  // Same hoisted form as UCB1 — the counts here include side observations.
  const double clt =
      options_.exploration *
      std::log(std::max<double>(static_cast<double>(t), 1.0));
  const std::int64_t* counts = stats_.counts();
  const double* means = stats_.means();
  for (std::size_t k = 0; k < num_arms_; ++k) {
    out[k] = counts[k] == 0
                 ? std::numeric_limits<double>::infinity()
                 : means[k] + std::sqrt(clt / static_cast<double>(counts[k]));
  }
}

ArmId UcbN::refine_selection(ArmId best) {
  if (!options_.max_variant) return best;
  // UCB-MaxN: play the best empirical arm among N_{best}.
  return best_empirical_in_neighborhood(graph_, best);
}

std::string UcbN::name() const {
  return options_.max_variant ? "UCB-MaxN" : "UCB-N";
}

std::string UcbN::describe() const {
  std::ostringstream out;
  out << name() << "(c=" << options_.exploration << ")";
  return out.str();
}

namespace {

const PolicyRegistration kRegUcbN{{
    "ucb-n",
    "UCB1 index over observation counts (side observations included)",
    kSsoBit,
    {{"c", ParamKind::kDouble, "exploration scale", "2.0", false}},
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<UcbN>(UcbNOptions{
          .exploration = p.get_double("c", 2.0),
          .max_variant = false,
          .seed = ctx.seed});
    },
    nullptr,
}};

const PolicyRegistration kRegUcbMaxN{{
    "ucb-maxn",
    "UCB-N that plays the best empirical arm in the chosen neighborhood",
    kSsoBit,
    {{"c", ParamKind::kDouble, "exploration scale", "2.0", false}},
    [](const PolicyParams& p, const PolicyBuildContext& ctx) {
      return std::make_unique<UcbN>(UcbNOptions{
          .exploration = p.get_double("c", 2.0),
          .max_variant = true,
          .seed = ctx.seed});
    },
    nullptr,
}};

}  // namespace

}  // namespace ncb
