// UCB-N and UCB-MaxN (Caron, Kveton, Lelarge & Bhagat 2012): the prior
// side-observation policies the paper's §VIII contrasts against. Both use
// the UCB1 index over *observation* counts (side observations included);
// UCB-MaxN then plays the empirically best arm within the chosen arm's
// closed neighborhood. Their regret bounds are distribution-dependent
// (they degrade as Δ_min → 0), which is the gap DFL-SSO closes.
#pragma once

#include "core/index_policy.hpp"

namespace ncb {

struct UcbNOptions {
  double exploration = 2.0;
  /// false → UCB-N (play the argmax-index arm); true → UCB-MaxN (play the
  /// best empirical arm inside the argmax arm's closed neighborhood).
  bool max_variant = false;
  std::uint64_t seed = 0x5eed0cbe;
};

class UcbN final : public ArmStatIndexPolicy {
 public:
  explicit UcbN(UcbNOptions options = {});

  [[nodiscard]] double index(ArmId i, TimeSlot t) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string describe() const override;

 protected:
  void on_reset(const Graph& graph) override;
  [[nodiscard]] ArmId refine_selection(ArmId best) override;
  /// Bulk refresh with ln t hoisted out of the per-arm loop.
  void refresh_all_indices(TimeSlot t, double* out) const override;

 private:
  UcbNOptions options_;
  Graph graph_{0};  // copied at reset(); no external lifetime requirement
};

}  // namespace ncb
