#include "dist/coordinator.hpp"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <stdexcept>

#include "dist/process.hpp"
#include "dist/protocol.hpp"
#include "exp/emitters.hpp"

namespace ncb::dist {

namespace {

struct Slot {
  WorkerProcess proc;
  FrameDecoder decoder;
  std::size_t id = 0;  ///< Stable spawn-order id (display only).
  bool handshaken = false;
  bool shutdown_sent = false;
  std::ptrdiff_t job = -1;  ///< Index into the jobs vector, -1 when idle.
};

class Coordinator {
 public:
  Coordinator(const std::vector<exp::SweepJob>& jobs,
              const CoordinatorOptions& options,
              const std::set<std::string>& skip_keys)
      : jobs_(jobs), options_(options), attempts_(jobs.size(), 0) {
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      if (skip_keys.count(jobs_[i].key)) {
        ++summary_.skipped;
      } else if (options_.max_jobs != 0 && queued_ >= options_.max_jobs) {
        ++summary_.pending;
      } else {
        queue_.push_back(i);
        ++queued_;
      }
    }
  }

  // abort_run throws deliberately, but exceptions can also escape from
  // elsewhere (spawn failure, a throwing on_result callback). Whatever the
  // exit path, no worker process may outlive the coordinator un-reaped.
  ~Coordinator() { kill_and_reap_all(); }

  DistSweepSummary run() {
    if (queue_.empty()) return std::move(summary_);
    const std::size_t fleet =
        std::max<std::size_t>(1, std::min(options_.workers, queue_.size()));
    for (std::size_t i = 0; i < fleet; ++i) spawn_one();

    while (live_ > 0) {
      if (!stopping_ && options_.should_stop && options_.should_stop()) {
        stopping_ = true;
        // Idle workers have nothing to drain — release them now.
        for (Slot& slot : slots_) {
          if (slot.proc.fd >= 0 && slot.handshaken && slot.job < 0) {
            send_shutdown(slot);
          }
        }
      }
      poll_once();
    }

    summary_.pending += queue_.size();
    summary_.interrupted = stopping_;
    return std::move(summary_);
  }

 private:
  // slots_ is a deque so spawning a replacement never invalidates the Slot
  // references held further up the call stack (read_ready/handle_frame).
  void spawn_one() {
    Slot slot;
    slot.id = next_id_++;
    slot.proc = spawn_worker(options_.worker_command);
    slots_.push_back(std::move(slot));
    ++live_;
  }

  void kill_and_reap_all() {
    for (Slot& slot : slots_) {
      if (slot.proc.fd < 0) continue;
      kill_worker(slot.proc.pid, SIGKILL);
      ::close(slot.proc.fd);
      slot.proc.fd = -1;
      reap_worker(slot.proc.pid);
      --live_;
    }
  }

  [[noreturn]] void abort_run(const std::string& message) {
    kill_and_reap_all();
    throw std::runtime_error(message);
  }

  void send_shutdown(Slot& slot) {
    if (slot.shutdown_sent) return;
    slot.shutdown_sent = true;
    try {
      write_frame(slot.proc.fd, MsgType::kShutdown, "");
    } catch (const std::exception&) {
      worker_died(slot);
    }
  }

  /// Hands the next queued job to an idle, handshaken worker — or a
  /// Shutdown when there is nothing left for it to do.
  void dispatch(Slot& slot) {
    if (slot.proc.fd < 0 || !slot.handshaken || slot.job >= 0 ||
        slot.shutdown_sent) {
      return;
    }
    if (stopping_ || queue_.empty()) {
      send_shutdown(slot);
      return;
    }
    const std::size_t index = queue_.front();
    queue_.pop_front();
    slot.job = static_cast<std::ptrdiff_t>(index);
    JobAssignMsg assign;
    assign.attempt = static_cast<std::uint32_t>(attempts_[index] + 1);
    assign.checkpoints = options_.checkpoints;
    assign.shard_size = options_.shard_size;
    assign.job = jobs_[index];
    try {
      write_frame(slot.proc.fd, MsgType::kJobAssign,
                  encode_job_assign(assign));
    } catch (const std::exception&) {
      worker_died(slot);  // requeues the job we just marked in-flight
    }
  }

  void worker_died(Slot& slot) {
    if (slot.proc.fd < 0) return;
    ::close(slot.proc.fd);
    slot.proc.fd = -1;
    reap_worker(slot.proc.pid);
    --live_;

    if (slot.job >= 0) {
      const std::size_t index = static_cast<std::size_t>(slot.job);
      slot.job = -1;
      ++attempts_[index];
      if (!stopping_ && attempts_[index] >= options_.max_attempts) {
        abort_run("job '" + jobs_[index].key + "' crashed its worker " +
                  std::to_string(attempts_[index]) +
                  " times — aborting (results so far are resumable)");
      }
      // Requeue at the front with the job's original seed counter: the
      // retry recomputes bit-identical records, so the merged output does
      // not depend on the crash at all.
      queue_.push_front(index);
      if (!stopping_) ++summary_.requeues;
    } else if (!slot.handshaken) {
      // Death before Hello: exec failure or an incompatible binary. A
      // bounded budget stops a respawn storm when workers can never start.
      if (++prelaunch_deaths_ > options_.workers + 2) {
        abort_run(
            "workers keep exiting before the handshake — is the worker "
            "binary runnable?");
      }
    }

    if (!stopping_) {
      const std::size_t wanted =
          std::min(options_.workers, queue_.size() + in_flight());
      while (live_ < wanted) spawn_one();
    }
  }

  [[nodiscard]] std::size_t in_flight() const {
    std::size_t n = 0;
    for (const Slot& slot : slots_) {
      if (slot.proc.fd >= 0 && slot.job >= 0) ++n;
    }
    return n;
  }

  void handle_frame(Slot& slot, const Frame& frame) {
    switch (frame.type) {
      case MsgType::kHello: {
        const HelloMsg hello = decode_hello(frame.payload);
        const auto mismatch = validate_hello(
            hello, static_cast<std::uint32_t>(exp::kSweepSchemaVersion));
        if (mismatch) abort_run(*mismatch);
        slot.handshaken = true;
        try {
          write_frame(slot.proc.fd, MsgType::kHelloAck, encode_hello_ack());
        } catch (const std::exception&) {
          worker_died(slot);
          return;
        }
        dispatch(slot);
        return;
      }
      case MsgType::kJobResult: {
        const JobResultMsg result = decode_job_result(frame.payload);
        if (slot.job < 0 ||
            jobs_[static_cast<std::size_t>(slot.job)].key != result.key) {
          abort_run("protocol violation: result for '" + result.key +
                    "' does not match the worker's assignment");
        }
        const std::size_t index = static_cast<std::size_t>(slot.job);
        slot.job = -1;
        DistJobResult done;
        done.job = &jobs_[index];
        done.record_line = result.record_line;
        done.seconds = result.seconds;
        done.shards = static_cast<std::size_t>(result.shards);
        done.shard_size = static_cast<std::size_t>(result.shard_size);
        done.worker = slot.id;
        done.attempts = attempts_[index] + 1;
        summary_.policy_seconds[jobs_[index].policy].add(result.seconds);
        if (options_.on_result) options_.on_result(done);
        summary_.results.emplace(jobs_[index].key, std::move(done));
        dispatch(slot);
        return;
      }
      case MsgType::kWorkerError: {
        const WorkerErrorMsg error = decode_worker_error(frame.payload);
        abort_run("worker failed on job '" + error.key +
                  "': " + error.message);
      }
      default:
        abort_run("protocol violation: unexpected frame type " +
                  std::to_string(static_cast<int>(frame.type)) +
                  " from a worker");
    }
  }

  void poll_once() {
    std::vector<pollfd> fds;
    std::vector<std::size_t> owners;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].proc.fd < 0) continue;
      fds.push_back(pollfd{slots_[i].proc.fd, POLLIN, 0});
      owners.push_back(i);
    }
    if (fds.empty()) return;
    // Finite timeout so should_stop (a signal flag) is noticed even while
    // every worker is deep in a long job.
    const int ready = ::poll(fds.data(), fds.size(), 200);
    if (ready < 0) {
      if (errno == EINTR) return;  // signal → should_stop check next round
      abort_run(std::string("poll failed: ") + std::strerror(errno));
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      Slot& slot = slots_[owners[i]];
      if (slot.proc.fd < 0) continue;  // died while handling a sibling
      read_ready(slot);
    }
  }

  void read_ready(Slot& slot) {
    char buf[65536];
    const ssize_t n = ::read(slot.proc.fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) return;
      worker_died(slot);
      return;
    }
    if (n == 0) {
      worker_died(slot);
      return;
    }
    try {
      slot.decoder.feed(buf, static_cast<std::size_t>(n));
      while (true) {
        const auto frame = slot.decoder.next();
        if (!frame) break;
        handle_frame(slot, *frame);
        if (slot.proc.fd < 0) break;
      }
    } catch (const std::invalid_argument& e) {
      abort_run(std::string("malformed frame from worker: ") + e.what());
    }
  }

  const std::vector<exp::SweepJob>& jobs_;
  const CoordinatorOptions& options_;
  std::vector<std::size_t> attempts_;
  std::deque<std::size_t> queue_;
  std::deque<Slot> slots_;
  DistSweepSummary summary_;
  std::size_t queued_ = 0;
  std::size_t live_ = 0;
  std::size_t next_id_ = 0;
  std::size_t prelaunch_deaths_ = 0;
  bool stopping_ = false;
};

}  // namespace

DistSweepSummary run_distributed_sweep(const std::vector<exp::SweepJob>& jobs,
                                       const CoordinatorOptions& options,
                                       const std::set<std::string>& skip_keys) {
  if (options.worker_command.empty()) {
    throw std::invalid_argument("run_distributed_sweep: no worker command");
  }
  Coordinator coordinator(jobs, options, skip_keys);
  return coordinator.run();
}

}  // namespace ncb::dist
