#include "dist/coordinator.hpp"

#include <algorithm>
#include <deque>
#include <memory>
#include <stdexcept>

#include "dist/protocol.hpp"
#include "exp/emitters.hpp"
#include "net/transport.hpp"
#include "net/worker_pool.hpp"
#include "obs/metrics.hpp"

namespace ncb::dist {

namespace {

class Coordinator {
 public:
  Coordinator(const std::vector<exp::SweepJob>& jobs,
              const CoordinatorOptions& options,
              const std::set<std::string>& skip_keys,
              net::StreamTransport& transport)
      : jobs_(jobs), options_(options), attempts_(jobs.size(), 0),
        m_jobs_queued_(
            obs::MetricsRegistry::global().gauge("dist.jobs.queued")),
        m_jobs_completed_(
            obs::MetricsRegistry::global().counter("dist.jobs.completed")),
        m_jobs_requeued_(
            obs::MetricsRegistry::global().counter("dist.jobs.requeued")),
        pool_(pool_options(transport), pool_hooks()) {
    // The skip/max_jobs cut happens in expansion order FIRST — which jobs
    // run must not depend on the scheduling heuristic below, or --max-jobs
    // resume chains would compute different subsets per transport.
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      if (skip_keys.count(jobs_[i].key)) {
        ++summary_.skipped;
      } else if (options_.max_jobs != 0 && queued_ >= options_.max_jobs) {
        ++summary_.pending;
      } else {
        queue_.push_back(i);
        ++queued_;
      }
    }
    // Largest-first by the --dry-run slot estimate (replications ×
    // horizon). Stable, so equal-cost jobs keep expansion order. Merge is
    // in canonical expansion order regardless, so this affects makespan
    // only, never bytes.
    std::stable_sort(queue_.begin(), queue_.end(),
                     [this](std::size_t a, std::size_t b) {
                       return job_slots(a) > job_slots(b);
                     });
    m_jobs_queued_.set(static_cast<std::int64_t>(queue_.size()));
  }

  DistSweepSummary run() {
    if (queue_.empty()) {
      summary_.workers = pool_.summaries();
      return std::move(summary_);
    }
    if (pool_.can_spawn()) {
      const std::size_t fleet =
          std::max<std::size_t>(1, std::min(options_.workers, queue_.size()));
      pool_.spawn(fleet);
    }

    // Run until the fleet drains: on a spawning transport workers exist
    // from the start; on an accept transport the queue holds the loop open
    // while the first worker is still dialing in.
    while (pool_.live() > 0 ||
           (!stopping_ && (!queue_.empty() || in_flight() > 0))) {
      if (!stopping_ && options_.should_stop && options_.should_stop()) {
        stopping_ = true;
        // Idle workers have nothing to drain — release them now.
        for (net::PoolWorker& worker : pool_.workers()) {
          if (worker.peer.fd >= 0 && worker.admitted && worker.user_tag < 0) {
            pool_.send_shutdown(worker);
          }
        }
      }
      pool_.poll_once(200);
      maintain_fleet();
      // A requeue (worker lost) or a late admission may leave queued work
      // next to idle workers — hand it out every turn, and drain the fleet
      // once nothing is queued or in flight.
      for (net::PoolWorker& worker : pool_.workers()) dispatch(worker);
    }

    summary_.pending += queue_.size();
    summary_.interrupted = stopping_;
    summary_.workers = pool_.summaries();
    return std::move(summary_);
  }

 private:
  [[nodiscard]] net::WorkerPool::Options pool_options(
      net::StreamTransport& transport) const {
    net::WorkerPool::Options opts;
    opts.transport = &transport;
    opts.expected_schema =
        static_cast<std::uint32_t>(exp::kSweepSchemaVersion);
    // Spawned workers that cannot start is a broken binary — give up
    // after a respawn round. Accepted peers are out of our control, so a
    // noisy network gets a wider (but still bounded) budget.
    opts.admission_budget = transport.can_spawn() ? options_.workers + 2 : 32;
    return opts;
  }

  [[nodiscard]] net::WorkerPool::Hooks pool_hooks() {
    net::WorkerPool::Hooks hooks;
    hooks.on_admitted = [this](net::PoolWorker& worker) { dispatch(worker); };
    hooks.on_frame = [this](net::PoolWorker& worker, const Frame& frame) {
      handle_frame(worker, frame);
    };
    hooks.on_lost = [this](net::PoolWorker& worker) { worker_lost(worker); };
    return hooks;
  }

  [[nodiscard]] std::uint64_t job_slots(std::size_t index) const {
    return static_cast<std::uint64_t>(jobs_[index].config.replications) *
           static_cast<std::uint64_t>(jobs_[index].config.horizon);
  }

  [[nodiscard]] std::size_t in_flight() const {
    std::size_t n = 0;
    for (const net::PoolWorker& worker : pool_.workers()) {
      if (worker.peer.fd >= 0 && worker.user_tag >= 0) ++n;
    }
    return n;
  }

  /// Hands the next queued job to an idle, admitted worker — or a
  /// Shutdown when there is nothing left for it to do.
  void dispatch(net::PoolWorker& worker) {
    if (worker.peer.fd < 0 || !worker.admitted || worker.user_tag >= 0 ||
        worker.shutdown_sent) {
      return;
    }
    if (stopping_ || (queue_.empty() && in_flight() == 0)) {
      pool_.send_shutdown(worker);
      return;
    }
    // Queue momentarily empty but jobs are in flight: stay idle — a crash
    // could requeue one of them, and this worker is where it would land.
    if (queue_.empty()) return;
    const std::size_t index = queue_.front();
    queue_.pop_front();
    m_jobs_queued_.set(static_cast<std::int64_t>(queue_.size()));
    worker.user_tag = static_cast<std::ptrdiff_t>(index);
    JobAssignMsg assign;
    assign.attempt = static_cast<std::uint32_t>(attempts_[index] + 1);
    assign.checkpoints = options_.checkpoints;
    assign.shard_size = options_.shard_size;
    assign.job = jobs_[index];
    // A failed send releases the worker, which requeues via on_lost.
    pool_.send(worker, MsgType::kJobAssign, encode_job_assign(assign));
  }

  void worker_lost(net::PoolWorker& worker) {
    if (worker.user_tag < 0) return;
    const std::size_t index = static_cast<std::size_t>(worker.user_tag);
    ++attempts_[index];
    if (!stopping_ && attempts_[index] >= options_.max_attempts) {
      throw std::runtime_error(
          "job '" + jobs_[index].key + "' crashed its worker " +
          std::to_string(attempts_[index]) +
          " times — aborting (results so far are resumable)");
    }
    // Requeue at the front with the job's original seed counter: the
    // retry recomputes bit-identical records, so the merged output does
    // not depend on the crash at all.
    queue_.push_front(index);
    m_jobs_queued_.set(static_cast<std::int64_t>(queue_.size()));
    if (!stopping_) {
      ++summary_.requeues;
      m_jobs_requeued_.inc();
    }
  }

  void maintain_fleet() {
    if (stopping_ || !pool_.can_spawn()) return;
    const std::size_t wanted =
        std::min(options_.workers, queue_.size() + in_flight());
    while (pool_.live() < wanted) pool_.spawn(1);
  }

  void handle_frame(net::PoolWorker& worker, const Frame& frame) {
    switch (frame.type) {
      case MsgType::kJobResult: {
        const JobResultMsg result = decode_job_result(frame.payload);
        if (worker.user_tag < 0 ||
            jobs_[static_cast<std::size_t>(worker.user_tag)].key !=
                result.key) {
          throw std::runtime_error("protocol violation: result for '" +
                                   result.key +
                                   "' does not match the worker's assignment");
        }
        const std::size_t index = static_cast<std::size_t>(worker.user_tag);
        worker.user_tag = -1;
        ++worker.jobs_done;
        m_jobs_completed_.inc();
        DistJobResult done;
        done.job = &jobs_[index];
        done.record_line = result.record_line;
        done.seconds = result.seconds;
        done.shards = static_cast<std::size_t>(result.shards);
        done.shard_size = static_cast<std::size_t>(result.shard_size);
        done.worker = worker.id;
        done.attempts = attempts_[index] + 1;
        summary_.policy_seconds[jobs_[index].policy].add(result.seconds);
        if (options_.on_result) options_.on_result(done);
        summary_.results.emplace(jobs_[index].key, std::move(done));
        dispatch(worker);
        return;
      }
      case MsgType::kWorkerError: {
        const WorkerErrorMsg error = decode_worker_error(frame.payload);
        throw std::runtime_error("worker failed on job '" + error.key +
                                 "': " + error.message);
      }
      default:
        throw std::runtime_error("protocol violation: unexpected frame type " +
                                 frame_type_label(static_cast<std::uint8_t>(
                                     frame.type)) +
                                 " from a worker");
    }
  }

  const std::vector<exp::SweepJob>& jobs_;
  const CoordinatorOptions& options_;
  std::vector<std::size_t> attempts_;
  std::deque<std::size_t> queue_;
  DistSweepSummary summary_;
  std::size_t queued_ = 0;
  bool stopping_ = false;
  // Registry mirrors (global registry: the sweep CLI snapshots it).
  obs::Gauge& m_jobs_queued_;
  obs::Counter& m_jobs_completed_;
  obs::Counter& m_jobs_requeued_;
  // Last member: its destructor (which releases every peer) runs first on
  // any exit path, including the throws above.
  net::WorkerPool pool_;
};

}  // namespace

DistSweepSummary run_distributed_sweep(const std::vector<exp::SweepJob>& jobs,
                                       const CoordinatorOptions& options,
                                       const std::set<std::string>& skip_keys) {
  if (options.transport == nullptr && options.worker_command.empty()) {
    throw std::invalid_argument("run_distributed_sweep: no worker command");
  }
  std::unique_ptr<net::ProcessTransport> owned;
  net::StreamTransport* transport = options.transport;
  if (transport == nullptr) {
    owned = std::make_unique<net::ProcessTransport>(options.worker_command);
    transport = owned.get();
  }
  Coordinator coordinator(jobs, options, skip_keys, *transport);
  return coordinator.run();
}

}  // namespace ncb::dist
