// The coordinator end of the dispatch protocol: expand-once, pull-based
// job dispatch over a fleet of workers, with crash requeue. Workers arrive
// through a net::StreamTransport — forked local processes or TCP peers
// dialing in from other machines — and the coordinator treats both
// identically once admitted (see net/worker_pool.hpp).
//
// Dispatch is demand-driven (the idle worker gets the next job), so fast
// workers naturally take more of the grid — work stealing without a shared
// queue. Jobs are handed out largest-first (by replications × horizon, the
// --dry-run slot estimate): on a heterogeneous fleet the long poles start
// early and the stragglers at the end are cheap, shortening the makespan.
// Determinism is never entrusted to scheduling: every job's replications
// derive counter-based seeds from the job's own spec coordinates, so a job
// computes the same bytes on any worker and any attempt, and the caller
// merges record lines in canonical expansion order — dispatch order, like
// completion order, never shows in the output. A worker lost mid-job
// (crash, SIGKILL, dropped connection) has its job requeued at the front
// with its original seed counter; on a spawning transport a replacement
// process is started — the merged output is byte-identical to an
// undisturbed run.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "exp/sweep_spec.hpp"
#include "net/worker_pool.hpp"
#include "util/running_stat.hpp"

namespace ncb::dist {

/// One job completed by a worker. `record_line` is the deterministic
/// artifact; everything else is execution metadata for stdout only.
struct DistJobResult {
  const exp::SweepJob* job = nullptr;  ///< Into the jobs vector passed in.
  std::string record_line;
  double seconds = 0.0;
  std::size_t shards = 0;
  std::size_t shard_size = 0;
  std::size_t worker = 0;    ///< Worker slot that ran it (display only).
  std::size_t attempts = 1;  ///< 1 + crash requeues.
};

struct CoordinatorOptions {
  /// Worker process count (capped at the eligible job count). Ignored on
  /// an accept-based transport, where the fleet is whoever connects.
  std::size_t workers = 2;
  /// argv to exec for each worker; spawn_worker appends `--worker-fd <n>`.
  /// Ignored when `transport` is set.
  std::vector<std::string> worker_command;
  /// Where worker streams come from. Null → an internal ProcessTransport
  /// built from `worker_command` (the single-machine fork/exec path).
  /// The byte-identical-output guarantee holds across transports: jobs
  /// derive counter-based seeds from their spec coordinates and results
  /// merge in canonical expansion order, so WHERE a job ran never shows.
  net::StreamTransport* transport = nullptr;
  /// Per-job checkpoint count (SweepSpec::checkpoints).
  std::size_t checkpoints = 30;
  /// Shard-size override forwarded to workers (0 = horizon-aware auto).
  std::size_t shard_size = 0;
  /// Dispatch at most this many jobs (0 = all); the rest report pending.
  std::size_t max_jobs = 0;
  /// A job that crashes its worker this many times aborts the sweep —
  /// the crash is then the job's fault, not a lost worker's.
  std::size_t max_attempts = 3;
  /// Streaming callback in completion order (NOT expansion order — merge
  /// deterministically from `results` afterwards).
  std::function<void(const DistJobResult&)> on_result;
  /// Cooperative stop (e.g. a SIGINT flag): no new assignments, in-flight
  /// jobs drain and still count as done, the rest report pending.
  std::function<bool()> should_stop;
};

struct DistSweepSummary {
  std::map<std::string, DistJobResult> results;  ///< By job key.
  std::size_t skipped = 0;   ///< Jobs satisfied by skip_keys.
  std::size_t pending = 0;   ///< Jobs cut by max_jobs or should_stop.
  std::size_t requeues = 0;  ///< Crash-requeued assignments.
  bool interrupted = false;  ///< should_stop fired mid-sweep.
  /// Worker wall-clock seconds per policy spec (display only).
  std::map<std::string, RunningStat> policy_seconds;
  /// Per-worker accounting (jobs, bytes, wall time) in admission order.
  std::vector<net::WorkerSummary> workers;
};

/// Runs `jobs` minus `skip_keys` across worker processes and collects one
/// record line per job. Throws std::runtime_error when a worker reports a
/// job error, a job exhausts max_attempts, or the fleet dies during
/// handshake; workers are killed and reaped before the throw.
[[nodiscard]] DistSweepSummary run_distributed_sweep(
    const std::vector<exp::SweepJob>& jobs, const CoordinatorOptions& options,
    const std::set<std::string>& skip_keys = {});

}  // namespace ncb::dist
