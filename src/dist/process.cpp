#include "dist/process.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace ncb::dist {

std::string self_exe_path(const std::string& argv0) {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n > 0) {
    buf[n] = '\0';
    return std::string(buf);
  }
  return argv0;
}

WorkerProcess spawn_worker(const std::vector<std::string>& command) {
  if (command.empty()) {
    throw std::runtime_error("spawn_worker: empty command");
  }
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw std::runtime_error(std::string("socketpair failed: ") +
                             std::strerror(errno));
  }
  // Build the child argv BEFORE forking: the caller may have live threads
  // (shard pools), and allocating after fork can deadlock on a malloc lock
  // a peer thread held at fork time. The fd number is known pre-fork.
  std::vector<std::string> args = command;
  args.push_back("--worker-fd");
  args.push_back(std::to_string(sv[1]));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& arg : args) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child: keep only the worker end, exec ourselves in worker mode.
    // Only async-signal-safe calls happen between fork and exec.
    ::close(sv[0]);
    ::execv(argv[0], argv.data());
    // Exec failed; 127 is the conventional "command not runnable" code.
    ::_exit(127);
  }
  ::close(sv[1]);
  ::fcntl(sv[0], F_SETFD, FD_CLOEXEC);
  return WorkerProcess{pid, sv[0]};
}

int reap_worker(pid_t pid) {
  if (pid <= 0) return 0;
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0) {
    if (errno != EINTR) return 0;
  }
  return status;
}

void kill_worker(pid_t pid, int signal) {
  if (pid > 0) ::kill(pid, signal);
}

}  // namespace ncb::dist
