// Local worker process management for the dispatch layer: socketpair +
// fork + exec of the coordinator's own binary in `--worker-fd` mode, plus
// reaping. Only this file touches process-creation syscalls, so a remote
// transport (ssh, container exec) slots in by replacing spawn_worker.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace ncb::dist {

/// A spawned worker: its pid and the coordinator's end of the socketpair.
struct WorkerProcess {
  pid_t pid = -1;
  int fd = -1;
};

/// Path of the running executable (/proc/self/exe when resolvable,
/// `argv0` otherwise) — what the coordinator re-execs as a worker.
[[nodiscard]] std::string self_exe_path(const std::string& argv0);

/// Forks and execs `command` with `--worker-fd <n>` appended, where n is
/// the worker's end of a fresh AF_UNIX stream socketpair. The returned fd
/// is close-on-exec in the coordinator, so later workers do not inherit
/// their siblings' channels. Throws std::runtime_error on syscall failure.
[[nodiscard]] WorkerProcess spawn_worker(
    const std::vector<std::string>& command);

/// Blocking waitpid. Returns the raw wait status (0 when the pid was
/// already reaped or invalid).
int reap_worker(pid_t pid);

/// Best-effort signal delivery (no-op for pid <= 0).
void kill_worker(pid_t pid, int signal);

}  // namespace ncb::dist
