#include "dist/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace ncb::dist {

// ------------------------------------------------------------ payloads ---

void WireWriter::put_u8(std::uint8_t v) {
  buffer_.push_back(static_cast<char>(v));
}

void WireWriter::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::put_double(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v, "IEEE-754 double expected");
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(bits);
}

void WireWriter::put_string(const std::string& s) {
  if (s.size() > kMaxFramePayload) {
    throw std::invalid_argument("wire: string exceeds frame limit");
  }
  put_u32(static_cast<std::uint32_t>(s.size()));
  buffer_.append(s);
}

namespace {

[[noreturn]] void truncated(const char* what) {
  throw std::invalid_argument(std::string("wire: truncated payload (") + what +
                              ")");
}

}  // namespace

std::uint8_t WireReader::get_u8() {
  if (at_ + 1 > payload_.size()) truncated("u8");
  return static_cast<std::uint8_t>(payload_[at_++]);
}

std::uint32_t WireReader::get_u32() {
  if (at_ + 4 > payload_.size()) truncated("u32");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(payload_[at_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  at_ += 4;
  return v;
}

std::uint64_t WireReader::get_u64() {
  if (at_ + 8 > payload_.size()) truncated("u64");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(payload_[at_ + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  at_ += 8;
  return v;
}

double WireReader::get_double() {
  const std::uint64_t bits = get_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string WireReader::get_string() {
  const std::uint32_t size = get_u32();
  if (size > kMaxFramePayload || at_ + size > payload_.size()) {
    truncated("string");
  }
  std::string out = payload_.substr(at_, size);
  at_ += size;
  return out;
}

void WireReader::finish() const {
  if (at_ != payload_.size()) {
    throw std::invalid_argument("wire: trailing bytes after message");
  }
}

const char* frame_type_name(MsgType type) noexcept {
  switch (type) {
    case MsgType::kHello:
      return "Hello";
    case MsgType::kHelloAck:
      return "HelloAck";
    case MsgType::kJobAssign:
      return "JobAssign";
    case MsgType::kJobResult:
      return "JobResult";
    case MsgType::kWorkerError:
      return "WorkerError";
    case MsgType::kShutdown:
      return "Shutdown";
    case MsgType::kDecideRequest:
      return "DecideRequest";
    case MsgType::kDecideReply:
      return "DecideReply";
    case MsgType::kFeedback:
      return "Feedback";
    case MsgType::kWorkerInfo:
      return "WorkerInfo";
    case MsgType::kReplayInit:
      return "ReplayInit";
    case MsgType::kReplayEvents:
      return "ReplayEvents";
    case MsgType::kReplayAssign:
      return "ReplayAssign";
    case MsgType::kReplayResult:
      return "ReplayResult";
    case MsgType::kStatsRequest:
      return "StatsRequest";
    case MsgType::kStatsReply:
      return "StatsReply";
  }
  return "unknown";
}

std::string frame_type_label(std::uint8_t raw_type) {
  return std::string(frame_type_name(static_cast<MsgType>(raw_type))) + " (" +
         std::to_string(raw_type) + ")";
}

std::string encode_hello(const HelloMsg& msg) {
  WireWriter out;
  out.put_u32(msg.magic);
  out.put_u32(msg.protocol_version);
  out.put_u32(msg.schema);
  return out.take();
}

HelloMsg decode_hello(const std::string& payload) {
  WireReader in(payload);
  HelloMsg msg;
  msg.magic = in.get_u32();
  msg.protocol_version = in.get_u32();
  msg.schema = in.get_u32();
  in.finish();
  return msg;
}

std::optional<std::string> validate_hello(const HelloMsg& msg,
                                          std::uint32_t expected_schema) {
  if (msg.magic != kProtocolMagic) {
    return "handshake: bad magic 0x" + std::to_string(msg.magic) +
           " (peer does not speak the ncb protocol)";
  }
  if (msg.protocol_version != kProtocolVersion) {
    return "handshake: protocol version mismatch (peer v" +
           std::to_string(msg.protocol_version) + ", expected v" +
           std::to_string(kProtocolVersion) + ")";
  }
  if (msg.schema != expected_schema) {
    return "handshake: schema mismatch (peer schema " +
           std::to_string(msg.schema) + ", expected schema " +
           std::to_string(expected_schema) + ")";
  }
  return std::nullopt;
}

std::string encode_hello_ack() {
  WireWriter out;
  out.put_u32(kProtocolVersion);
  return out.take();
}

void decode_hello_ack(const std::string& payload) {
  WireReader in(payload);
  const std::uint32_t version = in.get_u32();
  in.finish();
  if (version != kProtocolVersion) {
    throw std::invalid_argument(
        "handshake: coordinator protocol version mismatch (coordinator v" +
        std::to_string(version) + ", worker v" +
        std::to_string(kProtocolVersion) + ")");
  }
}

std::string encode_job_assign(const JobAssignMsg& msg) {
  WireWriter out;
  out.put_u32(msg.attempt);
  out.put_u64(msg.checkpoints);
  out.put_u64(msg.shard_size);
  out.put_u64(msg.job.index);
  out.put_string(msg.job.key);
  out.put_string(msg.job.policy);
  out.put_string(exp::scenario_token(msg.job.scenario));
  const ExperimentConfig& config = msg.job.config;
  out.put_string(exp::family_token(config.graph_family));
  out.put_u64(config.num_arms);
  out.put_double(config.edge_probability);
  out.put_u64(config.family_param);
  out.put_u64(static_cast<std::uint64_t>(config.horizon));
  out.put_u64(config.replications);
  out.put_u64(config.seed);
  out.put_u64(config.strategy_size);
  out.put_u8(config.exact_size_strategies ? 1 : 0);
  return out.take();
}

JobAssignMsg decode_job_assign(const std::string& payload) {
  WireReader in(payload);
  JobAssignMsg msg;
  msg.attempt = in.get_u32();
  msg.checkpoints = in.get_u64();
  msg.shard_size = in.get_u64();
  msg.job.index = static_cast<std::size_t>(in.get_u64());
  msg.job.key = in.get_string();
  msg.job.policy = in.get_string();
  msg.job.scenario = exp::parse_scenario(in.get_string());
  ExperimentConfig& config = msg.job.config;
  config.graph_family = exp::parse_family(in.get_string());
  config.num_arms = static_cast<std::size_t>(in.get_u64());
  config.edge_probability = in.get_double();
  config.family_param = static_cast<std::size_t>(in.get_u64());
  config.horizon = static_cast<TimeSlot>(in.get_u64());
  config.replications = static_cast<std::size_t>(in.get_u64());
  config.seed = in.get_u64();
  config.strategy_size = static_cast<std::size_t>(in.get_u64());
  config.exact_size_strategies = in.get_u8() != 0;
  config.name = msg.job.key;  // mirrors SweepSpec::expand
  in.finish();
  return msg;
}

std::string encode_job_result(const JobResultMsg& msg) {
  WireWriter out;
  out.put_string(msg.key);
  out.put_string(msg.record_line);
  out.put_double(msg.seconds);
  out.put_u64(msg.shards);
  out.put_u64(msg.shard_size);
  return out.take();
}

JobResultMsg decode_job_result(const std::string& payload) {
  WireReader in(payload);
  JobResultMsg msg;
  msg.key = in.get_string();
  msg.record_line = in.get_string();
  msg.seconds = in.get_double();
  msg.shards = in.get_u64();
  msg.shard_size = in.get_u64();
  in.finish();
  return msg;
}

std::string encode_worker_error(const WorkerErrorMsg& msg) {
  WireWriter out;
  out.put_string(msg.key);
  out.put_string(msg.message);
  return out.take();
}

WorkerErrorMsg decode_worker_error(const std::string& payload) {
  WireReader in(payload);
  WorkerErrorMsg msg;
  msg.key = in.get_string();
  msg.message = in.get_string();
  in.finish();
  return msg;
}

std::string encode_worker_info(const WorkerInfoMsg& msg) {
  WireWriter out;
  out.put_string(msg.host);
  out.put_u64(msg.pid);
  out.put_u64(msg.threads);
  return out.take();
}

WorkerInfoMsg decode_worker_info(const std::string& payload) {
  WireReader in(payload);
  WorkerInfoMsg msg;
  msg.host = in.get_string();
  msg.pid = in.get_u64();
  msg.threads = in.get_u64();
  in.finish();
  return msg;
}

std::string encode_decide_request(const DecideRequestMsg& msg) {
  WireWriter out;
  out.put_u64(msg.request_id);
  out.put_u64(msg.slot);
  out.put_string(msg.user_key);
  return out.take();
}

DecideRequestMsg decode_decide_request(const std::string& payload) {
  WireReader in(payload);
  DecideRequestMsg msg;
  msg.request_id = in.get_u64();
  msg.slot = in.get_u64();
  msg.user_key = in.get_string();
  in.finish();
  return msg;
}

std::string encode_decide_reply(const DecideReplyMsg& msg) {
  WireWriter out;
  out.put_u64(msg.request_id);
  out.put_u64(msg.slot);
  out.put_u64(msg.decision_id);
  out.put_u32(msg.action);
  out.put_double(msg.propensity);
  return out.take();
}

DecideReplyMsg decode_decide_reply(const std::string& payload) {
  WireReader in(payload);
  DecideReplyMsg msg;
  msg.request_id = in.get_u64();
  msg.slot = in.get_u64();
  msg.decision_id = in.get_u64();
  msg.action = in.get_u32();
  msg.propensity = in.get_double();
  in.finish();
  return msg;
}

std::string encode_feedback(const FeedbackMsg& msg) {
  WireWriter out;
  out.put_u64(msg.decision_id);
  out.put_double(msg.reward);
  return out.take();
}

FeedbackMsg decode_feedback(const std::string& payload) {
  WireReader in(payload);
  FeedbackMsg msg;
  msg.decision_id = in.get_u64();
  msg.reward = in.get_double();
  in.finish();
  return msg;
}

std::string encode_stats_reply(const StatsReplyMsg& msg) {
  WireWriter out;
  out.put_u32(static_cast<std::uint32_t>(msg.entries.size()));
  for (const StatsEntry& entry : msg.entries) {
    out.put_u8(entry.kind);
    out.put_string(entry.name);
    out.put_u64(entry.value);
  }
  return out.take();
}

StatsReplyMsg decode_stats_reply(const std::string& payload) {
  WireReader in(payload);
  StatsReplyMsg msg;
  const std::uint32_t count = in.get_u32();
  msg.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    StatsEntry entry;
    entry.kind = in.get_u8();
    entry.name = in.get_string();
    entry.value = in.get_u64();
    msg.entries.push_back(std::move(entry));
  }
  in.finish();
  return msg;
}

// ------------------------------------------------------------- framing ---

namespace {

constexpr std::size_t kFrameHeaderBytes = 5;  // u32 length + u8 type.

bool valid_type(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(MsgType::kHello) &&
         type <= static_cast<std::uint8_t>(MsgType::kStatsReply);
}

/// Parses a frame header; throws on an unusable length or type.
void check_header(std::uint32_t length, std::uint8_t type) {
  if (length > kMaxFramePayload) {
    throw std::invalid_argument("frame: oversized payload length " +
                                std::to_string(length) + " for " +
                                frame_type_label(type) + " frame");
  }
  if (!valid_type(type)) {
    throw std::invalid_argument("frame: unknown message type " +
                                frame_type_label(type));
  }
}

}  // namespace

void FrameDecoder::feed(const char* data, std::size_t size) {
  // Compact lazily so repeated small feeds stay amortized O(n).
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

std::optional<Frame> FrameDecoder::next() {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return std::nullopt;
  const char* head = buffer_.data() + consumed_;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(static_cast<unsigned char>(head[i]))
              << (8 * i);
  }
  const std::uint8_t type = static_cast<unsigned char>(head[4]);
  check_header(length, type);
  if (available < kFrameHeaderBytes + length) return std::nullopt;
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.assign(head + kFrameHeaderBytes, length);
  consumed_ += kFrameHeaderBytes + length;
  return frame;
}

namespace {

/// send() on sockets so a vanished peer surfaces as EPIPE instead of
/// SIGPIPE; plain write() for pipe-based transports.
ssize_t write_some(int fd, const char* data, std::size_t size) {
  const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
  if (n >= 0 || errno != ENOTSOCK) return n;
  return ::write(fd, data, size);
}

}  // namespace

void append_frame(std::string& out, MsgType type, const std::string& payload) {
  if (payload.size() > kMaxFramePayload) {
    throw std::runtime_error("frame: payload exceeds limit for " +
                             frame_type_label(static_cast<std::uint8_t>(type)) +
                             " frame");
  }
  out.reserve(out.size() + kFrameHeaderBytes + payload.size());
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
  }
  out.push_back(static_cast<char>(type));
  out.append(payload);
}

void write_frame(int fd, MsgType type, const std::string& payload) {
  std::string wire;
  append_frame(wire, type, payload);

  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = write_some(fd, wire.data() + sent, wire.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string detail =
          std::string("frame write failed (") + frame_type_name(type) +
          "): " + std::strerror(errno);
      if (errno == EPIPE || errno == ECONNRESET) {
        throw PeerClosedError(detail);
      }
      throw std::runtime_error(detail);
    }
    sent += static_cast<std::size_t>(n);
  }
}

namespace {

/// Reads exactly `size` bytes. Returns false only on EOF with zero bytes
/// read; throws on mid-buffer EOF or I/O errors. A connection reset counts
/// as EOF — a peer that died with data in flight is still just "gone".
bool read_exact(int fd, char* out, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, out + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != ECONNRESET) {
        throw std::runtime_error(std::string("frame read failed: ") +
                                 std::strerror(errno));
      }
    }
    if (n <= 0) {
      if (got == 0) return false;
      throw std::runtime_error("frame read failed: EOF mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::optional<Frame> read_frame(int fd) {
  char header[kFrameHeaderBytes];
  if (!read_exact(fd, header, sizeof header)) return std::nullopt;
  std::uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<std::uint32_t>(static_cast<unsigned char>(header[i]))
              << (8 * i);
  }
  const std::uint8_t type = static_cast<unsigned char>(header[4]);
  check_header(length, type);
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(length);
  if (length > 0 && !read_exact(fd, frame.payload.data(), length)) {
    throw std::runtime_error(std::string("frame read failed: EOF before ") +
                             frame_type_name(frame.type) + " payload");
  }
  return frame;
}

}  // namespace ncb::dist
