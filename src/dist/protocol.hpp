// Wire protocol for the distributed sweep dispatch layer.
//
// Everything between a coordinator and a worker travels as length-prefixed
// frames over a byte stream (a socketpair today; the framing never assumes
// more than an ordered stream, so any future transport — TCP, ssh pipes —
// reuses it unchanged):
//
//     u32 payload-length (LE) | u8 message-type | payload bytes
//
// The first frame in each direction is a versioned handshake (Hello /
// HelloAck); mismatched protocol or sweep-schema versions abort the run
// with a clear error instead of misinterpreting bytes. Payloads are packed
// with WireWriter/WireReader (fixed-width LE integers, bit-cast doubles,
// u32-length-prefixed strings); every decoder validates lengths, so
// truncated or oversized frames are rejected, never trusted.
//
// Determinism note: a JobAssign carries the job's original spec coordinates
// (including its seed), and replications derive counter-based seeds from
// those — so a job produces bit-identical results on any worker, on any
// attempt, which is what lets a crash-requeued job merge byte-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "exp/sweep_spec.hpp"

namespace ncb::dist {

/// The peer disappeared (EPIPE/ECONNRESET on write). Distinct from other
/// I/O failures so a worker can treat a vanished coordinator as a clean
/// shutdown in every race ordering.
class PeerClosedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// First payload word of a Hello frame; guards against a non-worker process
/// accidentally connected to the coordinator fd.
inline constexpr std::uint32_t kProtocolMagic = 0x4e434250;  // "NCBP"
/// Bump on any framing or payload layout change.
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Upper bound on a frame payload; a corrupted length prefix fails fast
/// instead of attempting a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,        ///< worker → coordinator: magic + versions.
  kHelloAck = 2,     ///< coordinator → worker: protocol version echo.
  kJobAssign = 3,    ///< coordinator → worker: one SweepJob + run options.
  kJobResult = 4,    ///< worker → coordinator: rendered job record.
  kWorkerError = 5,  ///< worker → coordinator: fatal job/protocol error.
  kShutdown = 6,     ///< coordinator → worker: drain and exit 0.
};

struct Frame {
  MsgType type = MsgType::kShutdown;
  std::string payload;
};

// ------------------------------------------------------------ payloads ---

/// Little-endian payload packer. Strings are u32-length-prefixed.
class WireWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_double(double v);  ///< IEEE-754 bit pattern as u64 (exact).
  void put_string(const std::string& s);

  [[nodiscard]] std::string take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked payload unpacker; throws std::invalid_argument on any
/// truncation or over-long string, and finish() rejects trailing bytes.
class WireReader {
 public:
  explicit WireReader(const std::string& payload) : payload_(payload) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] double get_double();
  [[nodiscard]] std::string get_string();
  /// Throws when decoded messages leave unread payload behind.
  void finish() const;

 private:
  const std::string& payload_;
  std::size_t at_ = 0;
};

struct HelloMsg {
  std::uint32_t magic = kProtocolMagic;
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint32_t sweep_schema = 0;  ///< exp::kSweepSchemaVersion of the worker.
};

struct JobAssignMsg {
  std::uint32_t attempt = 1;    ///< 1-based; > 1 means crash-requeued.
  std::uint64_t checkpoints = 0;
  std::uint64_t shard_size = 0;
  exp::SweepJob job;
};

struct JobResultMsg {
  std::string key;
  std::string record_line;  ///< render_job_json output (deterministic bytes).
  double seconds = 0.0;
  std::uint64_t shards = 0;
  std::uint64_t shard_size = 0;
};

struct WorkerErrorMsg {
  std::string key;  ///< Empty when not tied to a job.
  std::string message;
};

[[nodiscard]] std::string encode_hello(const HelloMsg& msg);
[[nodiscard]] HelloMsg decode_hello(const std::string& payload);
/// Empty optional when the hello is acceptable; otherwise a human-readable
/// mismatch description (magic / protocol version / sweep schema).
[[nodiscard]] std::optional<std::string> validate_hello(
    const HelloMsg& msg, std::uint32_t expected_schema);

[[nodiscard]] std::string encode_hello_ack();
/// Throws std::invalid_argument on a version mismatch.
void decode_hello_ack(const std::string& payload);

[[nodiscard]] std::string encode_job_assign(const JobAssignMsg& msg);
[[nodiscard]] JobAssignMsg decode_job_assign(const std::string& payload);

[[nodiscard]] std::string encode_job_result(const JobResultMsg& msg);
[[nodiscard]] JobResultMsg decode_job_result(const std::string& payload);

[[nodiscard]] std::string encode_worker_error(const WorkerErrorMsg& msg);
[[nodiscard]] WorkerErrorMsg decode_worker_error(const std::string& payload);

// ------------------------------------------------------------- framing ---

/// Incremental frame assembler for the coordinator's poll loop: feed()
/// whatever recv() produced, then drain next() until it returns nullopt.
/// Throws std::invalid_argument on an oversized length prefix or an unknown
/// message type (the stream is unrecoverable after either).
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t size);
  [[nodiscard]] std::optional<Frame> next();

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
};

/// Blocking frame write, restarted across EINTR/short writes. Uses
/// send(MSG_NOSIGNAL) on sockets (a dead peer yields EPIPE, not SIGPIPE)
/// and write() on other fds. Throws std::runtime_error on I/O failure.
void write_frame(int fd, MsgType type, const std::string& payload);

/// Blocking frame read. Returns nullopt on clean EOF at a frame boundary;
/// throws std::runtime_error on EOF mid-frame or I/O errors and
/// std::invalid_argument on oversized frames or unknown types.
[[nodiscard]] std::optional<Frame> read_frame(int fd);

}  // namespace ncb::dist
