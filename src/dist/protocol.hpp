// Wire protocol shared by the distributed sweep dispatch layer and the
// online decision service (src/serve/).
//
// Everything between two peers travels as length-prefixed frames over a
// byte stream (a socketpair or AF_UNIX connection today; the framing never
// assumes more than an ordered stream, so any future transport — TCP, ssh
// pipes — reuses it unchanged):
//
//     u32 payload-length (LE) | u8 message-type | payload bytes
//
// The first frame in each direction is a versioned handshake (Hello /
// HelloAck); mismatched protocol or application-schema versions abort the
// run with a clear error instead of misinterpreting bytes. The schema word
// of the Hello is application-defined: sweep workers send the sweep output
// schema, serve clients send the serve wire schema. Payloads are packed
// with WireWriter/WireReader (fixed-width LE integers, bit-cast doubles,
// u32-length-prefixed strings); every decoder validates lengths, so
// truncated or oversized frames are rejected, never trusted.
//
// Determinism note: a JobAssign carries the job's original spec coordinates
// (including its seed), and replications derive counter-based seeds from
// those — so a job produces bit-identical results on any worker, on any
// attempt, which is what lets a crash-requeued job merge byte-identically.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/sweep_spec.hpp"

namespace ncb::dist {

/// The peer disappeared (EPIPE/ECONNRESET on write). Distinct from other
/// I/O failures so a worker can treat a vanished coordinator as a clean
/// shutdown in every race ordering.
class PeerClosedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// First payload word of a Hello frame; guards against a non-worker process
/// accidentally connected to the coordinator fd.
inline constexpr std::uint32_t kProtocolMagic = 0x4e434250;  // "NCBP"
/// Bump on any framing or payload layout change.
/// v2: serve frame types (DecideRequest / DecideReply / Feedback).
/// v3: WorkerInfo admission frame + distributed-replay frame types.
/// v4: StatsRequest / StatsReply live-metrics frames.
inline constexpr std::uint32_t kProtocolVersion = 4;
/// Upper bound on a frame payload; a corrupted length prefix fails fast
/// instead of attempting a multi-gigabyte allocation.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;

enum class MsgType : std::uint8_t {
  kHello = 1,          ///< client/worker → server: magic + versions.
  kHelloAck = 2,       ///< server → client/worker: protocol version echo.
  kJobAssign = 3,      ///< coordinator → worker: one SweepJob + run options.
  kJobResult = 4,      ///< worker → coordinator: rendered job record.
  kWorkerError = 5,    ///< worker → coordinator: fatal job/protocol error.
  kShutdown = 6,       ///< coordinator → worker: drain and exit 0.
  kDecideRequest = 7,  ///< serve client → server: one decision request.
  kDecideReply = 8,    ///< server → serve client: action + propensity.
  kFeedback = 9,       ///< serve client → server: reward join (no reply).
  kWorkerInfo = 10,    ///< worker → coordinator: identity after Hello.
  kReplayInit = 11,    ///< replay coordinator → worker: config + model.
  kReplayEvents = 12,  ///< replay coordinator → worker: one log chunk.
  kReplayAssign = 13,  ///< replay coordinator → worker: one candidate.
  kReplayResult = 14,  ///< replay worker → coordinator: estimator state.
  kStatsRequest = 15,  ///< serve client → server: metrics poll (no payload).
  kStatsReply = 16,    ///< server → serve client: flattened registry stats.
};

/// Stable display name of a message type ("Hello", "DecideReply", ...);
/// "unknown" for values outside the enum.
[[nodiscard]] const char* frame_type_name(MsgType type) noexcept;

/// Name plus the numeric value, e.g. "DecideReply (8)" or "unknown (42)" —
/// what the framing layer puts in error messages.
[[nodiscard]] std::string frame_type_label(std::uint8_t raw_type);

struct Frame {
  MsgType type = MsgType::kShutdown;
  std::string payload;
};

// ------------------------------------------------------------ payloads ---

/// Little-endian payload packer. Strings are u32-length-prefixed.
class WireWriter {
 public:
  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_double(double v);  ///< IEEE-754 bit pattern as u64 (exact).
  void put_string(const std::string& s);

  /// Bytes packed so far (for callers batching payloads up to a budget).
  [[nodiscard]] std::size_t size() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::string take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

/// Bounds-checked payload unpacker; throws std::invalid_argument on any
/// truncation or over-long string, and finish() rejects trailing bytes.
class WireReader {
 public:
  explicit WireReader(const std::string& payload) : payload_(payload) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] double get_double();
  [[nodiscard]] std::string get_string();
  /// Throws when decoded messages leave unread payload behind.
  void finish() const;

 private:
  const std::string& payload_;
  std::size_t at_ = 0;
};

struct HelloMsg {
  std::uint32_t magic = kProtocolMagic;
  std::uint32_t protocol_version = kProtocolVersion;
  /// Application schema word: exp::kSweepSchemaVersion for sweep workers,
  /// kServeWireSchema for serve clients.
  std::uint32_t schema = 0;
};

struct JobAssignMsg {
  std::uint32_t attempt = 1;    ///< 1-based; > 1 means crash-requeued.
  std::uint64_t checkpoints = 0;
  std::uint64_t shard_size = 0;
  exp::SweepJob job;
};

struct JobResultMsg {
  std::string key;
  std::string record_line;  ///< render_job_json output (deterministic bytes).
  double seconds = 0.0;
  std::uint64_t shards = 0;
  std::uint64_t shard_size = 0;
};

struct WorkerErrorMsg {
  std::string key;  ///< Empty when not tied to a job.
  std::string message;
};

/// Worker self-identification, sent immediately after Hello. Admission is
/// gated on receiving it: a peer that never identifies is never dispatched
/// to. `threads` lets the coordinator report fleet capacity.
struct WorkerInfoMsg {
  std::string host;
  std::uint64_t pid = 0;
  std::uint64_t threads = 0;
};

[[nodiscard]] std::string encode_hello(const HelloMsg& msg);
[[nodiscard]] HelloMsg decode_hello(const std::string& payload);
/// Empty optional when the hello is acceptable; otherwise a human-readable
/// mismatch description (magic / protocol version / sweep schema).
[[nodiscard]] std::optional<std::string> validate_hello(
    const HelloMsg& msg, std::uint32_t expected_schema);

[[nodiscard]] std::string encode_hello_ack();
/// Throws std::invalid_argument on a version mismatch.
void decode_hello_ack(const std::string& payload);

[[nodiscard]] std::string encode_job_assign(const JobAssignMsg& msg);
[[nodiscard]] JobAssignMsg decode_job_assign(const std::string& payload);

[[nodiscard]] std::string encode_job_result(const JobResultMsg& msg);
[[nodiscard]] JobResultMsg decode_job_result(const std::string& payload);

[[nodiscard]] std::string encode_worker_error(const WorkerErrorMsg& msg);
[[nodiscard]] WorkerErrorMsg decode_worker_error(const std::string& payload);

[[nodiscard]] std::string encode_worker_info(const WorkerInfoMsg& msg);
[[nodiscard]] WorkerInfoMsg decode_worker_info(const std::string& payload);

// ------------------------------------------------- serve message types ---

/// Serve wire schema (the Hello schema word of a serve client). Bump when
/// the decide/reply/feedback payloads or their semantics change.
inline constexpr std::uint32_t kServeWireSchema = 1;

struct DecideRequestMsg {
  std::uint64_t request_id = 0;  ///< Client-chosen token, echoed verbatim.
  std::uint64_t slot = 0;        ///< Client round tag, echoed verbatim.
  std::string user_key;          ///< Keys the per-user exploration stream.
};

struct DecideReplyMsg {
  std::uint64_t request_id = 0;  ///< Echo of the request.
  std::uint64_t slot = 0;        ///< Echo of the request.
  std::uint64_t decision_id = 0; ///< Server-assigned join key for Feedback.
  std::uint32_t action = 0;      ///< Chosen arm.
  double propensity = 0.0;       ///< P(action) under the logging policy.
};

struct FeedbackMsg {
  std::uint64_t decision_id = 0;
  double reward = 0.0;
};

[[nodiscard]] std::string encode_decide_request(const DecideRequestMsg& msg);
[[nodiscard]] DecideRequestMsg decode_decide_request(
    const std::string& payload);

[[nodiscard]] std::string encode_decide_reply(const DecideReplyMsg& msg);
[[nodiscard]] DecideReplyMsg decode_decide_reply(const std::string& payload);

[[nodiscard]] std::string encode_feedback(const FeedbackMsg& msg);
[[nodiscard]] FeedbackMsg decode_feedback(const std::string& payload);

/// One flattened metric in a StatsReply. `kind` mirrors the obs layer's
/// StatEntry kinds: 0 counter, 1 gauge (value is an int64 bit pattern),
/// 2 histogram-derived scalar (name carries a .count/.max/.p50/... suffix).
/// Kept as a plain wire struct so the protocol layer stays independent of
/// src/obs/ — the server maps between the two.
struct StatsEntry {
  static constexpr std::uint8_t kCounter = 0;
  static constexpr std::uint8_t kGauge = 1;
  static constexpr std::uint8_t kHistogram = 2;
  std::uint8_t kind = 0;
  std::string name;
  std::uint64_t value = 0;
};

/// StatsRequest carries no payload; the reply is the full registry,
/// flattened. Binary (not JSON) on purpose: a poller like ncb_stats needs
/// no JSON parser, and the server pays one pass over the registry.
struct StatsReplyMsg {
  std::vector<StatsEntry> entries;
};

[[nodiscard]] std::string encode_stats_reply(const StatsReplyMsg& msg);
[[nodiscard]] StatsReplyMsg decode_stats_reply(const std::string& payload);

// ------------------------------------------------------------- framing ---

/// Incremental frame assembler for the coordinator's poll loop: feed()
/// whatever recv() produced, then drain next() until it returns nullopt.
/// Throws std::invalid_argument on an oversized length prefix or an unknown
/// message type (the stream is unrecoverable after either).
class FrameDecoder {
 public:
  void feed(const char* data, std::size_t size);
  [[nodiscard]] std::optional<Frame> next();

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
};

/// Appends one framed message (header + payload) to `out`. The buffered
/// counterpart of write_frame for reactor loops that coalesce replies into
/// one per-connection output buffer.
void append_frame(std::string& out, MsgType type, const std::string& payload);

/// Blocking frame write, restarted across EINTR/short writes. Uses
/// send(MSG_NOSIGNAL) on sockets (a dead peer yields EPIPE, not SIGPIPE)
/// and write() on other fds. Throws std::runtime_error on I/O failure;
/// error messages name the frame type being written.
void write_frame(int fd, MsgType type, const std::string& payload);

/// Blocking frame read. Returns nullopt on clean EOF at a frame boundary;
/// throws std::runtime_error on EOF mid-frame or I/O errors and
/// std::invalid_argument on oversized frames or unknown types.
[[nodiscard]] std::optional<Frame> read_frame(int fd);

}  // namespace ncb::dist
