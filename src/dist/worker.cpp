#include "dist/worker.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <iostream>
#include <optional>
#include <thread>

#include "dist/protocol.hpp"
#include "exp/emitters.hpp"
#include "exp/sweep_runner.hpp"
#include "sim/thread_pool.hpp"

namespace ncb::dist {

namespace {

/// See the crash-injection note in worker.hpp.
void maybe_inject_crash(const JobAssignMsg& msg) {
  const char* kill_key = std::getenv("NCB_DIST_KILL_KEY");
  if (kill_key != nullptr && msg.attempt == 1 && msg.job.key == kill_key) {
    ::raise(SIGKILL);
  }
}

}  // namespace

int worker_handshake(int fd, std::uint32_t schema, std::size_t threads,
                     const std::string& who) {
  HelloMsg hello;
  hello.schema = schema;
  WorkerInfoMsg info;
  char hostname[256] = {0};
  if (::gethostname(hostname, sizeof hostname - 1) == 0) info.host = hostname;
  info.pid = static_cast<std::uint64_t>(::getpid());
  info.threads = threads != 0
                     ? threads
                     : std::max(1u, std::thread::hardware_concurrency());
  try {
    write_frame(fd, MsgType::kHello, encode_hello(hello));
    write_frame(fd, MsgType::kWorkerInfo, encode_worker_info(info));
    const std::optional<Frame> ack = read_frame(fd);
    if (!ack) return 1;  // coordinator vanished before the handshake
    if (ack->type != MsgType::kHelloAck) {
      std::cerr << who << ": expected HelloAck, got type "
                << static_cast<int>(ack->type) << '\n';
      return 2;
    }
    decode_hello_ack(ack->payload);
  } catch (const PeerClosedError&) {
    return 1;  // coordinator vanished mid-handshake — nothing was lost
  } catch (const std::exception& e) {
    std::cerr << who << ": handshake failed: " << e.what() << '\n';
    return 2;
  }
  return 0;
}

int run_worker(const WorkerOptions& options) {
  ::signal(SIGINT, SIG_IGN);  // the coordinator owns interrupt handling

  switch (worker_handshake(options.fd,
                           static_cast<std::uint32_t>(exp::kSweepSchemaVersion),
                           options.threads, "ncb_sweep worker")) {
    case 0:
      break;
    case 1:
      return 0;
    default:
      return 2;
  }

  ThreadPool pool(options.threads);
  exp::InstanceCache cache;  // reused across this worker's assignments
  while (true) {
    std::optional<Frame> frame;
    try {
      frame = read_frame(options.fd);
    } catch (const std::exception& e) {
      std::cerr << "ncb_sweep worker: read failed: " << e.what() << '\n';
      return 2;
    }
    if (!frame || frame->type == MsgType::kShutdown) return 0;
    if (frame->type != MsgType::kJobAssign) {
      std::cerr << "ncb_sweep worker: unexpected frame type "
                << static_cast<int>(frame->type) << '\n';
      return 2;
    }

    JobAssignMsg assign;
    std::string error;
    try {
      assign = decode_job_assign(frame->payload);
      maybe_inject_crash(assign);

      exp::SweepRunOptions run_options;
      run_options.pool = &pool;
      run_options.shard_size = static_cast<std::size_t>(assign.shard_size);
      run_options.instance_cache = &cache;
      const exp::JobOutcome outcome = exp::run_sweep_job(
          assign.job, static_cast<std::size_t>(assign.checkpoints),
          run_options);

      JobResultMsg result;
      result.key = assign.job.key;
      result.record_line = exp::render_job_json(
          exp::JobRecord::from(outcome.job, outcome.aggregate));
      result.seconds = outcome.seconds;
      result.shards = outcome.shards;
      result.shard_size = outcome.shard_size;
      write_frame(options.fd, MsgType::kJobResult, encode_job_result(result));
      continue;
    } catch (const PeerClosedError&) {
      return 0;  // coordinator gone; it will requeue the job elsewhere
    } catch (const std::exception& e) {
      error = e.what();
    }

    // A failed job (unknown policy, bad config, ...) is fatal for the whole
    // sweep — report it so the coordinator aborts with the real message
    // instead of requeueing a job that can never succeed.
    try {
      WorkerErrorMsg report;
      report.key = assign.job.key;
      report.message = error;
      write_frame(options.fd, MsgType::kWorkerError,
                  encode_worker_error(report));
    } catch (const std::exception&) {
      // Coordinator already gone; the exit code still says "error".
    }
    return 1;
  }
}

}  // namespace ncb::dist
