// The worker end of the dispatch protocol: handshake, then a job loop that
// runs each assigned SweepJob through the in-process sweep engine and ships
// the rendered record back. The loop is transport-agnostic — it only ever
// sees a connected stream fd — so the same worker serves a future remote
// transport unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace ncb::dist {

/// Worker side of the admission handshake shared by every worker kind
/// (sweep jobs, replay candidates): sends Hello carrying `schema`, then a
/// WorkerInfo identity frame (hostname, pid, resolved thread count), then
/// waits for HelloAck. Returns 0 when admitted, 1 when the coordinator
/// vanished before admission (a clean no-work exit), 2 on a version or
/// protocol mismatch (diagnostics go to stderr prefixed with `who`).
[[nodiscard]] int worker_handshake(int fd, std::uint32_t schema,
                                   std::size_t threads,
                                   const std::string& who);

struct WorkerOptions {
  int fd = -1;            ///< Connected stream to the coordinator.
  std::size_t threads = 0;  ///< Shard pool size (0 = hardware concurrency).
};

/// Runs the worker loop until Shutdown or coordinator EOF. Returns a process
/// exit code: 0 on a clean drain, 2 on handshake/protocol failure, 1 after
/// reporting a job error.
///
/// Signals: SIGINT is ignored — a ^C lands on the whole foreground process
/// group, and the coordinator (which did not ignore it) drives the graceful
/// stop: workers finish their in-flight job, deliver it, and get a Shutdown.
///
/// Crash injection (tests/CI only): when the environment variable
/// NCB_DIST_KILL_KEY equals the assigned job's key and the assignment is the
/// job's first attempt, the worker raises SIGKILL instead of running it —
/// a deterministic stand-in for a worker lost mid-job, exercising the
/// coordinator's requeue path.
[[nodiscard]] int run_worker(const WorkerOptions& options);

}  // namespace ncb::dist
