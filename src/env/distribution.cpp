#include "env/distribution.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/math.hpp"

namespace ncb {
namespace {

void require_01(double v, const char* what) {
  if (v < 0.0 || v > 1.0 || std::isnan(v)) {
    throw std::invalid_argument(std::string(what) + " must lie in [0,1]");
  }
}

double phi(double x) { return std::exp(-0.5 * x * x) / std::sqrt(2.0 * M_PI); }
double Phi(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

BernoulliDist::BernoulliDist(double p) : p_(p) { require_01(p, "Bernoulli p"); }

double BernoulliDist::sample(Xoshiro256& rng) const {
  return rng.bernoulli(p_) ? 1.0 : 0.0;
}

DistributionPtr BernoulliDist::clone() const {
  return std::make_unique<BernoulliDist>(*this);
}

std::string BernoulliDist::name() const {
  std::ostringstream out;
  out << "Bernoulli(" << p_ << ")";
  return out.str();
}

BetaDist::BetaDist(double a, double b) : a_(a), b_(b) {
  if (a <= 0.0 || b <= 0.0) {
    throw std::invalid_argument("Beta parameters must be positive");
  }
}

double BetaDist::sample(Xoshiro256& rng) const { return rng.beta(a_, b_); }

DistributionPtr BetaDist::clone() const {
  return std::make_unique<BetaDist>(*this);
}

std::string BetaDist::name() const {
  std::ostringstream out;
  out << "Beta(" << a_ << "," << b_ << ")";
  return out.str();
}

UniformDist::UniformDist(double lo, double hi) : lo_(lo), hi_(hi) {
  require_01(lo, "Uniform lo");
  require_01(hi, "Uniform hi");
  if (lo > hi) throw std::invalid_argument("Uniform: lo > hi");
}

double UniformDist::sample(Xoshiro256& rng) const {
  return rng.uniform(lo_, hi_);
}

DistributionPtr UniformDist::clone() const {
  return std::make_unique<UniformDist>(*this);
}

std::string UniformDist::name() const {
  std::ostringstream out;
  out << "Uniform(" << lo_ << "," << hi_ << ")";
  return out.str();
}

ClippedGaussianDist::ClippedGaussianDist(double mu, double sigma)
    : mu_(mu), sigma_(sigma) {
  if (sigma <= 0.0) throw std::invalid_argument("ClippedGaussian: sigma <= 0");
  // E[clip(X,0,1)] = 0*P(X<0) + 1*P(X>1) + E[X; 0<=X<=1]
  const double a = (0.0 - mu) / sigma;
  const double b = (1.0 - mu) / sigma;
  const double mass_mid = Phi(b) - Phi(a);
  const double mid_mean = mu * mass_mid - sigma * (phi(b) - phi(a));
  clipped_mean_ = (1.0 - Phi(b)) + mid_mean;
}

double ClippedGaussianDist::sample(Xoshiro256& rng) const {
  return clamp01(rng.gaussian(mu_, sigma_));
}

DistributionPtr ClippedGaussianDist::clone() const {
  return std::make_unique<ClippedGaussianDist>(*this);
}

std::string ClippedGaussianDist::name() const {
  std::ostringstream out;
  out << "ClippedGaussian(" << mu_ << "," << sigma_ << ")";
  return out.str();
}

ConstantDist::ConstantDist(double value) : value_(value) {
  require_01(value, "Constant value");
}

double ConstantDist::sample(Xoshiro256& /*rng*/) const { return value_; }

DistributionPtr ConstantDist::clone() const {
  return std::make_unique<ConstantDist>(*this);
}

std::string ConstantDist::name() const {
  std::ostringstream out;
  out << "Constant(" << value_ << ")";
  return out.str();
}

}  // namespace ncb
