// Reward distributions with support in [0, 1] (paper §II assumes all P_i
// have support in [0,1]; every concrete distribution here enforces that).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ncb {

/// Abstract i.i.d. reward distribution of one arm.
class Distribution {
 public:
  virtual ~Distribution() = default;

  /// Draws one sample; always in [0, 1].
  [[nodiscard]] virtual double sample(Xoshiro256& rng) const = 0;

  /// Exact mean μ of the distribution.
  [[nodiscard]] virtual double mean() const noexcept = 0;

  /// Deep copy.
  [[nodiscard]] virtual std::unique_ptr<Distribution> clone() const = 0;

  /// Human-readable description, e.g. "Bernoulli(0.42)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Machine-readable type tag for serialization, e.g. "bernoulli".
  [[nodiscard]] virtual std::string kind() const = 0;

  /// Constructor parameters in declaration order (full precision).
  [[nodiscard]] virtual std::vector<double> params() const = 0;
};

using DistributionPtr = std::unique_ptr<Distribution>;

/// Bernoulli(p): reward 1 w.p. p, else 0. The paper's simulation default.
class BernoulliDist final : public Distribution {
 public:
  explicit BernoulliDist(double p);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  [[nodiscard]] double mean() const noexcept override { return p_; }
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string kind() const override { return "bernoulli"; }
  [[nodiscard]] std::vector<double> params() const override { return {p_}; }

 private:
  double p_;
};

/// Beta(a, b), naturally supported on [0, 1].
class BetaDist final : public Distribution {
 public:
  BetaDist(double a, double b);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  [[nodiscard]] double mean() const noexcept override { return a_ / (a_ + b_); }
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string kind() const override { return "beta"; }
  [[nodiscard]] std::vector<double> params() const override { return {a_, b_}; }

 private:
  double a_, b_;
};

/// Uniform on [lo, hi] ⊆ [0, 1].
class UniformDist final : public Distribution {
 public:
  UniformDist(double lo, double hi);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  [[nodiscard]] double mean() const noexcept override { return 0.5 * (lo_ + hi_); }
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string kind() const override { return "uniform"; }
  [[nodiscard]] std::vector<double> params() const override { return {lo_, hi_}; }

 private:
  double lo_, hi_;
};

/// Gaussian(mu, sigma) with samples clipped into [0, 1]. The clipping biases
/// the mean slightly; `mean()` reports the exact clipped-Gaussian mean.
class ClippedGaussianDist final : public Distribution {
 public:
  ClippedGaussianDist(double mu, double sigma);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  [[nodiscard]] double mean() const noexcept override { return clipped_mean_; }
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string kind() const override { return "gaussian"; }
  [[nodiscard]] std::vector<double> params() const override { return {mu_, sigma_}; }

 private:
  double mu_, sigma_, clipped_mean_;
};

/// Degenerate distribution: always `value`. Useful in tests.
class ConstantDist final : public Distribution {
 public:
  explicit ConstantDist(double value);
  [[nodiscard]] double sample(Xoshiro256& rng) const override;
  [[nodiscard]] double mean() const noexcept override { return value_; }
  [[nodiscard]] DistributionPtr clone() const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::string kind() const override { return "constant"; }
  [[nodiscard]] std::vector<double> params() const override { return {value_}; }

 private:
  double value_;
};

}  // namespace ncb
