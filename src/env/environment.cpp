#include "env/environment.hpp"

namespace ncb {

Environment::Environment(BanditInstance instance, std::uint64_t seed)
    : Environment(std::make_shared<const BanditInstance>(std::move(instance)),
                  seed) {}

Environment::Environment(std::shared_ptr<const BanditInstance> instance,
                         std::uint64_t seed)
    : instance_(std::move(instance)),
      rng_(seed),
      rewards_(instance_->num_arms(), 0.0) {}

const std::vector<double>& Environment::advance() {
  for (std::size_t i = 0; i < rewards_.size(); ++i) {
    rewards_[i] = instance_->arm(static_cast<ArmId>(i)).sample(rng_);
  }
  ++slot_;
  return rewards_;
}

double Environment::strategy_reward(const ArmSet& strategy) const {
  double total = 0.0;
  for (const ArmId i : strategy) total += rewards_.at(static_cast<std::size_t>(i));
  return total;
}

double Environment::side_reward(ArmId arm) const {
  double total = 0.0;
  for (const ArmId j : graph().closed_neighborhood(arm)) {
    total += rewards_[static_cast<std::size_t>(j)];
  }
  return total;
}

double Environment::strategy_side_reward(const ArmSet& strategy) const {
  double total = 0.0;
  graph().strategy_neighborhood(strategy).for_each([&](ArmId j) {
    total += rewards_[static_cast<std::size_t>(j)];
  });
  return total;
}

}  // namespace ncb
