// The stochastic environment: draws the i.i.d. reward row X_{·,t} once per
// time slot. Policies never see this object directly — the simulation runner
// mediates feedback per scenario semantics, so a policy can only learn what
// its scenario legitimately observes.
#pragma once

#include <memory>
#include <vector>

#include "env/instance.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ncb {

class Environment {
 public:
  /// Takes the instance by value; the environment owns its RNG stream so
  /// replications with distinct seeds are independent.
  Environment(BanditInstance instance, std::uint64_t seed);

  /// Shares an immutable instance instead of copying it — replications of
  /// the same job differ only in their RNG stream, so the sweep engine
  /// reuses one generated graph/instance across all of them (and across
  /// jobs with identical instance coordinates). `instance` must be non-null.
  Environment(std::shared_ptr<const BanditInstance> instance,
              std::uint64_t seed);

  /// Advances to the next time slot and draws X_{i,t} for every arm.
  /// Returns the drawn row (valid until the next call).
  const std::vector<double>& advance();

  /// Current slot's reward row (last `advance()` result).
  [[nodiscard]] const std::vector<double>& rewards() const noexcept {
    return rewards_;
  }

  /// Number of completed `advance()` calls.
  [[nodiscard]] TimeSlot slots_drawn() const noexcept { return slot_; }

  [[nodiscard]] const BanditInstance& instance() const noexcept {
    return *instance_;
  }
  [[nodiscard]] const Graph& graph() const noexcept {
    return instance_->graph();
  }
  [[nodiscard]] std::size_t num_arms() const noexcept {
    return instance_->num_arms();
  }

  /// Realized direct reward of a strategy at the current slot: Σ_{i∈s} X_i.
  [[nodiscard]] double strategy_reward(const ArmSet& strategy) const;

  /// Realized side reward of an arm: B_i = Σ_{j∈N_i} X_j.
  [[nodiscard]] double side_reward(ArmId arm) const;

  /// Realized combinatorial side reward: CB_x = Σ_{j∈Y_x} X_j.
  [[nodiscard]] double strategy_side_reward(const ArmSet& strategy) const;

 private:
  std::shared_ptr<const BanditInstance> instance_;
  Xoshiro256 rng_;
  std::vector<double> rewards_;
  TimeSlot slot_ = 0;
};

}  // namespace ncb
