#include "env/instance.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ncb {

BanditInstance::BanditInstance(Graph graph, std::vector<DistributionPtr> arms)
    : graph_(std::move(graph)), arms_(std::move(arms)) {
  if (arms_.size() != graph_.num_vertices()) {
    throw std::invalid_argument(
        "BanditInstance: one distribution per vertex required");
  }
  for (const auto& a : arms_) {
    if (!a) throw std::invalid_argument("BanditInstance: null distribution");
  }
  if (arms_.empty()) {
    throw std::invalid_argument("BanditInstance: need at least one arm");
  }
  recompute();
}

BanditInstance::BanditInstance(const BanditInstance& other)
    : graph_(other.graph_),
      means_(other.means_),
      side_means_(other.side_means_),
      best_arm_(other.best_arm_),
      best_side_arm_(other.best_side_arm_) {
  arms_.reserve(other.arms_.size());
  for (const auto& a : other.arms_) arms_.push_back(a->clone());
}

BanditInstance& BanditInstance::operator=(const BanditInstance& other) {
  if (this == &other) return *this;
  BanditInstance copy(other);
  *this = std::move(copy);
  return *this;
}

void BanditInstance::recompute() {
  const std::size_t n = arms_.size();
  means_.resize(n);
  for (std::size_t i = 0; i < n; ++i) means_[i] = arms_[i]->mean();
  side_means_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const ArmId j : graph_.closed_neighborhood(static_cast<ArmId>(i))) {
      side_means_[i] += means_[static_cast<std::size_t>(j)];
    }
  }
  best_arm_ = static_cast<ArmId>(
      std::max_element(means_.begin(), means_.end()) - means_.begin());
  best_side_arm_ = static_cast<ArmId>(
      std::max_element(side_means_.begin(), side_means_.end()) -
      side_means_.begin());
}

double BanditInstance::strategy_mean(const ArmSet& strategy) const {
  double total = 0.0;
  for (const ArmId i : strategy) total += means_.at(static_cast<std::size_t>(i));
  return total;
}

double BanditInstance::strategy_side_reward_mean(const ArmSet& strategy) const {
  double total = 0.0;
  graph_.strategy_neighborhood(strategy).for_each([&](ArmId j) {
    total += means_[static_cast<std::size_t>(j)];
  });
  return total;
}

std::string BanditInstance::to_string() const {
  std::ostringstream out;
  out << "BanditInstance K=" << num_arms() << " best_arm=" << best_arm_
      << " (mu=" << best_mean() << ")\n";
  for (std::size_t i = 0; i < arms_.size(); ++i) {
    out << "  arm " << i << ": " << arms_[i]->name() << " u_i=" << side_means_[i]
        << '\n';
  }
  return out.str();
}

BanditInstance random_bernoulli_instance(Graph graph, Xoshiro256& rng,
                                         double mean_lo, double mean_hi) {
  std::vector<DistributionPtr> arms;
  arms.reserve(graph.num_vertices());
  for (std::size_t i = 0; i < graph.num_vertices(); ++i) {
    arms.push_back(
        std::make_unique<BernoulliDist>(rng.uniform(mean_lo, mean_hi)));
  }
  return BanditInstance(std::move(graph), std::move(arms));
}

BanditInstance bernoulli_instance(Graph graph,
                                  const std::vector<double>& means) {
  std::vector<DistributionPtr> arms;
  arms.reserve(means.size());
  for (const double mu : means) arms.push_back(std::make_unique<BernoulliDist>(mu));
  return BanditInstance(std::move(graph), std::move(arms));
}

BanditInstance random_beta_instance(Graph graph, Xoshiro256& rng) {
  std::vector<DistributionPtr> arms;
  arms.reserve(graph.num_vertices());
  for (std::size_t i = 0; i < graph.num_vertices(); ++i) {
    // Mean u in (0,1); pick a = 1+4u and b = a(1-u)/u so that a/(a+b) = u.
    const double u = std::clamp(rng.uniform(), 0.05, 0.95);
    const double a = 1.0 + 4.0 * u;
    const double b = a * (1.0 - u) / u;
    arms.push_back(std::make_unique<BetaDist>(a, b));
  }
  return BanditInstance(std::move(graph), std::move(arms));
}

}  // namespace ncb
