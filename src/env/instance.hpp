// A problem instance: relation graph + one reward distribution per arm.
//
// The instance knows all ground-truth quantities the regret definitions
// need: per-arm means μ_i, side-reward means u_i = Σ_{j∈N_i} μ_j (paper §V),
// and the per-semantics optimal values.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "env/distribution.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace ncb {

class BanditInstance {
 public:
  /// Takes ownership of one distribution per vertex of `graph`.
  BanditInstance(Graph graph, std::vector<DistributionPtr> arms);

  BanditInstance(const BanditInstance& other);
  BanditInstance& operator=(const BanditInstance& other);
  BanditInstance(BanditInstance&&) noexcept = default;
  BanditInstance& operator=(BanditInstance&&) noexcept = default;

  [[nodiscard]] std::size_t num_arms() const noexcept {
    return arms_.size();
  }
  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const Distribution& arm(ArmId i) const {
    return *arms_.at(static_cast<std::size_t>(i));
  }

  /// Per-arm means μ_i.
  [[nodiscard]] const std::vector<double>& means() const noexcept {
    return means_;
  }

  /// Side-reward means u_i = Σ_{j ∈ N_i} μ_j.
  [[nodiscard]] const std::vector<double>& side_reward_means() const noexcept {
    return side_means_;
  }

  /// Arm with the highest direct mean (ties → smallest id). SSO optimum.
  [[nodiscard]] ArmId best_arm() const noexcept { return best_arm_; }
  [[nodiscard]] double best_mean() const noexcept {
    return means_[static_cast<std::size_t>(best_arm_)];
  }

  /// Arm with the highest side-reward mean u_i. SSR optimum; the paper notes
  /// it "may differ from the optimal arm under side observation".
  [[nodiscard]] ArmId best_side_reward_arm() const noexcept {
    return best_side_arm_;
  }
  [[nodiscard]] double best_side_reward_mean() const noexcept {
    return side_means_[static_cast<std::size_t>(best_side_arm_)];
  }

  /// Direct mean of a strategy: λ_x = Σ_{i∈s_x} μ_i (CSO reward semantics).
  [[nodiscard]] double strategy_mean(const ArmSet& strategy) const;

  /// Side-reward mean of a strategy: σ_x = Σ_{i∈Y_x} μ_i (CSR semantics).
  [[nodiscard]] double strategy_side_reward_mean(const ArmSet& strategy) const;

  [[nodiscard]] std::string to_string() const;

 private:
  void recompute();

  Graph graph_;
  std::vector<DistributionPtr> arms_;
  std::vector<double> means_;
  std::vector<double> side_means_;
  ArmId best_arm_ = kNoArm;
  ArmId best_side_arm_ = kNoArm;
};

/// Builds the paper's §VII setting: Bernoulli arms with means drawn
/// uniformly from [mean_lo, mean_hi].
[[nodiscard]] BanditInstance random_bernoulli_instance(Graph graph,
                                                       Xoshiro256& rng,
                                                       double mean_lo = 0.0,
                                                       double mean_hi = 1.0);

/// Bernoulli instance with explicitly given means.
[[nodiscard]] BanditInstance bernoulli_instance(Graph graph,
                                                const std::vector<double>& means);

/// Beta(a_i, b_i) instance with means drawn uniformly: a = 1 + 4u, b chosen
/// so the mean is u. Exercises non-binary rewards in tests/ablation.
[[nodiscard]] BanditInstance random_beta_instance(Graph graph, Xoshiro256& rng);

}  // namespace ncb
