#include "env/io.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace ncb {
namespace {

/// Emits one "<kind> <params...>" line at full round-trip precision.
std::string distribution_line(const Distribution& dist) {
  std::ostringstream out;
  out << dist.kind();
  out.precision(17);
  for (const double p : dist.params()) out << ' ' << p;
  return out.str();
}

DistributionPtr parse_distribution(const std::string& line,
                                   std::size_t line_no) {
  std::istringstream fields(line);
  std::string kind;
  fields >> kind;
  const auto fail = [&](const char* what) -> DistributionPtr {
    throw std::invalid_argument("instance: " + std::string(what) +
                                " at line " + std::to_string(line_no));
  };
  if (kind == "bernoulli") {
    double p;
    if (!(fields >> p)) return fail("bernoulli needs p");
    return std::make_unique<BernoulliDist>(p);
  }
  if (kind == "beta") {
    double a, b;
    if (!(fields >> a >> b)) return fail("beta needs a b");
    return std::make_unique<BetaDist>(a, b);
  }
  if (kind == "uniform") {
    double lo, hi;
    if (!(fields >> lo >> hi)) return fail("uniform needs lo hi");
    return std::make_unique<UniformDist>(lo, hi);
  }
  if (kind == "gaussian") {
    double mu, sigma;
    if (!(fields >> mu >> sigma)) return fail("gaussian needs mu sigma");
    return std::make_unique<ClippedGaussianDist>(mu, sigma);
  }
  if (kind == "constant") {
    double v;
    if (!(fields >> v)) return fail("constant needs v");
    return std::make_unique<ConstantDist>(v);
  }
  return fail("unknown distribution kind");
}

/// Strips comments; returns false for effectively blank lines.
bool clean_line(std::string& line) {
  const auto hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  return line.find_first_not_of(" \t\r") != std::string::npos;
}

}  // namespace

std::string to_text(const BanditInstance& instance) {
  std::ostringstream out;
  out << "ncb-instance v1\n";
  const Graph& g = instance.graph();
  out << "graph " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges()) out << u << ' ' << v << '\n';
  out << "arms " << instance.num_arms() << '\n';
  for (std::size_t i = 0; i < instance.num_arms(); ++i) {
    out << distribution_line(instance.arm(static_cast<ArmId>(i))) << '\n';
  }
  return out.str();
}

BanditInstance read_instance(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  const auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (clean_line(line)) return true;
    }
    return false;
  };

  if (!next_line() || line.rfind("ncb-instance", 0) != 0) {
    throw std::invalid_argument("instance: missing 'ncb-instance' header");
  }
  if (!next_line()) throw std::invalid_argument("instance: missing graph line");
  std::size_t v = 0, e = 0;
  {
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag >> v >> e) || tag != "graph") {
      throw std::invalid_argument("instance: malformed graph line");
    }
  }
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < e; ++i) {
    if (!next_line()) throw std::invalid_argument("instance: truncated edges");
    std::istringstream fields(line);
    long a = 0, b = 0;
    if (!(fields >> a >> b)) {
      throw std::invalid_argument("instance: malformed edge at line " +
                                  std::to_string(line_no));
    }
    edges.emplace_back(static_cast<ArmId>(a), static_cast<ArmId>(b));
  }
  if (!next_line()) throw std::invalid_argument("instance: missing arms line");
  std::size_t k = 0;
  {
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag >> k) || tag != "arms") {
      throw std::invalid_argument("instance: malformed arms line");
    }
  }
  if (k != v) {
    throw std::invalid_argument("instance: arm count must match vertex count");
  }
  std::vector<DistributionPtr> arms;
  arms.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    if (!next_line()) throw std::invalid_argument("instance: truncated arms");
    arms.push_back(parse_distribution(line, line_no));
  }
  return BanditInstance(Graph(v, edges), std::move(arms));
}

BanditInstance parse_instance(const std::string& text) {
  std::istringstream in(text);
  return read_instance(in);
}

}  // namespace ncb
