// BanditInstance serialization: a text format capturing the relation graph
// and every arm's distribution, so experiment instances can be archived and
// replayed exactly.
//
// Format:
//   ncb-instance v1
//   graph <V> <E>
//   <u> <v>            (E edge lines)
//   arms <K>
//   <distribution>     (K lines: "bernoulli p" | "beta a b" |
//                       "uniform lo hi" | "gaussian mu sigma" |
//                       "constant v")
// Comments (# ...) and blank lines are ignored when parsing.
#pragma once

#include <iosfwd>
#include <string>

#include "env/instance.hpp"

namespace ncb {

/// Serializes the instance. Throws std::invalid_argument for distribution
/// types the format does not cover (none currently — all concrete types in
/// distribution.hpp are supported via name round-tripping).
[[nodiscard]] std::string to_text(const BanditInstance& instance);

/// Parses the text format; throws std::invalid_argument on malformed input.
[[nodiscard]] BanditInstance parse_instance(const std::string& text);

/// Stream variant of parse_instance.
[[nodiscard]] BanditInstance read_instance(std::istream& in);

}  // namespace ncb
