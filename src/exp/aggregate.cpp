#include "exp/aggregate.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ncb::exp {

std::vector<TimeSlot> checkpoint_grid(TimeSlot horizon, std::size_t count) {
  if (horizon <= 0) {
    throw std::invalid_argument("checkpoint_grid: horizon must be positive");
  }
  std::vector<TimeSlot> grid;
  if (count == 0 || static_cast<TimeSlot>(count) >= horizon) {
    grid.resize(static_cast<std::size_t>(horizon));
    std::iota(grid.begin(), grid.end(), TimeSlot{1});
    return grid;
  }
  if (count == 1) return {horizon};
  grid.reserve(count);
  const double log_h = std::log(static_cast<double>(horizon));
  for (std::size_t k = 0; k < count; ++k) {
    const double frac =
        static_cast<double>(k) / static_cast<double>(count - 1);
    auto t = static_cast<TimeSlot>(std::llround(std::exp(log_h * frac)));
    if (t < 1) t = 1;
    if (t > horizon) t = horizon;
    if (grid.empty() || t > grid.back()) grid.push_back(t);
  }
  // llround(exp(log_h)) is horizon up to rounding; pin the endpoint exactly.
  if (grid.back() != horizon) grid.push_back(horizon);
  return grid;
}

RepSample sample_run(const RunResult& run, const std::vector<TimeSlot>& grid) {
  RepSample sample;
  sample.per_slot.reserve(grid.size());
  sample.cumulative.reserve(grid.size());
  for (const TimeSlot t : grid) {
    const auto i = static_cast<std::size_t>(t - 1);
    if (i >= run.per_slot_regret.size()) {
      throw std::invalid_argument("sample_run: grid exceeds recorded series");
    }
    sample.per_slot.push_back(run.per_slot_regret[i]);
    sample.cumulative.push_back(run.cumulative_regret[i]);
  }
  sample.final_cumulative =
      run.cumulative_regret.empty() ? 0.0 : run.cumulative_regret.back();
  return sample;
}

void JobAggregate::add_rep(const RepSample& sample) {
  if (sample.per_slot.size() != grid_.size() ||
      sample.cumulative.size() != grid_.size()) {
    throw std::invalid_argument("JobAggregate: sample/grid length mismatch");
  }
  expected_.add_series(sample.per_slot);
  cumulative_.add_series(sample.cumulative);
  final_.add(sample.final_cumulative);
}

}  // namespace ncb::exp
