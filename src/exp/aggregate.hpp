// Streaming mergeable aggregates for the sweep engine.
//
// A replication's regret trajectory is sampled at a fixed checkpoint grid
// the moment the run finishes, then the trajectory is dropped — shards carry
// only O(reps × checkpoints) samples, never full horizon-length series. Job
// aggregation feeds the samples to Welford accumulators in global
// replication order (shards in index order, replications in order within a
// shard), so the aggregate is bit-identical for any thread count AND any
// shard size.
#pragma once

#include <vector>

#include "sim/runner.hpp"
#include "util/running_stat.hpp"

namespace ncb::exp {

/// Log-spaced time checkpoints in [1, horizon]: `count` geometrically spaced
/// slots (deduplicated, strictly increasing, always ending at `horizon`).
/// `count == 0` (or count >= horizon) yields the dense grid 1..horizon.
[[nodiscard]] std::vector<TimeSlot> checkpoint_grid(TimeSlot horizon,
                                                    std::size_t count);

/// One replication's regret curve compressed onto a checkpoint grid.
struct RepSample {
  std::vector<double> per_slot;    ///< Per-slot (expected) regret at grid[i].
  std::vector<double> cumulative;  ///< Accumulated regret at grid[i].
  double final_cumulative = 0.0;   ///< Accumulated regret at the horizon.
};

/// Samples a finished run at the grid slots. The run must have recorded its
/// series (RunnerOptions.record_series) over a horizon >= grid.back().
[[nodiscard]] RepSample sample_run(const RunResult& run,
                                   const std::vector<TimeSlot>& grid);

/// Everything one shard hands back to the job aggregator.
struct ShardSamples {
  std::vector<RepSample> reps;  ///< In replication order within the shard.
  double optimal_per_slot = 0.0;
};

/// Welford mean/variance of the regret curves at the checkpoint grid, plus
/// the final-cumulative scalar distribution. add_rep() must be called in
/// global replication order for bit-reproducible output.
class JobAggregate {
 public:
  JobAggregate() = default;
  explicit JobAggregate(std::vector<TimeSlot> grid)
      : grid_(std::move(grid)),
        expected_(grid_.size()),
        cumulative_(grid_.size()) {}

  void add_rep(const RepSample& sample);
  void set_optimal(double optimal_per_slot) noexcept {
    optimal_per_slot_ = optimal_per_slot;
  }

  [[nodiscard]] const std::vector<TimeSlot>& grid() const noexcept {
    return grid_;
  }
  [[nodiscard]] const SeriesStat& expected() const noexcept {
    return expected_;
  }
  [[nodiscard]] const SeriesStat& cumulative() const noexcept {
    return cumulative_;
  }
  [[nodiscard]] const RunningStat& final_cumulative() const noexcept {
    return final_;
  }
  [[nodiscard]] std::size_t replications() const noexcept {
    return final_.count();
  }
  [[nodiscard]] double optimal_per_slot() const noexcept {
    return optimal_per_slot_;
  }

 private:
  std::vector<TimeSlot> grid_;
  SeriesStat expected_;
  SeriesStat cumulative_;
  RunningStat final_;
  double optimal_per_slot_ = 0.0;
};

}  // namespace ncb::exp
