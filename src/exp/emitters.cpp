#include "exp/emitters.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ncb::exp {

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    // JSON has no inf/nan; the engine never produces them, but stay valid.
    return value > 0 ? "1e308" : (value < 0 ? "-1e308" : "0");
  }
  char buf[40];
  for (const int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

JobRecord JobRecord::from(const SweepJob& job, const JobAggregate& aggregate) {
  JobRecord record;
  record.key = job.key;
  record.policy = job.policy;
  record.scenario = scenario_token(job.scenario);
  record.graph = family_token(job.config.graph_family);
  record.arms = job.config.num_arms;
  record.p = job.config.edge_probability;
  record.family_param = job.config.family_param;
  record.horizon = job.config.horizon;
  record.replications = aggregate.replications();
  record.seed = job.config.seed;
  record.strategy_size =
      is_combinatorial(job.scenario) ? job.config.strategy_size : 0;
  record.optimal_per_slot = aggregate.optimal_per_slot();
  record.checkpoints = aggregate.grid();
  record.expected_mean = aggregate.expected().means();
  record.expected_sd = aggregate.expected().stddevs();
  record.cumulative_mean = aggregate.cumulative().means();
  record.cumulative_sd = aggregate.cumulative().stddevs();
  record.final_mean = aggregate.final_cumulative().mean();
  record.final_sd = aggregate.final_cumulative().stddev();
  record.final_min = aggregate.final_cumulative().min();
  record.final_max = aggregate.final_cumulative().max();
  return record;
}

namespace {

void append_array(std::ostringstream& out, const char* name,
                  const std::vector<double>& values) {
  out << ",\"" << name << "\":[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out << (i ? "," : "") << json_number(values[i]);
  }
  out << ']';
}

}  // namespace

std::string render_job_json(const JobRecord& record) {
  std::ostringstream out;
  out << "{\"key\":\"" << json_escape(record.key) << "\",\"policy\":\""
      << json_escape(record.policy) << "\",\"scenario\":\"" << record.scenario
      << "\",\"graph\":\"" << record.graph << "\",\"arms\":" << record.arms
      << ",\"p\":" << json_number(record.p)
      << ",\"family_param\":" << record.family_param
      << ",\"horizon\":" << record.horizon
      << ",\"replications\":" << record.replications
      << ",\"seed\":" << record.seed
      << ",\"strategy_size\":" << record.strategy_size
      << ",\"optimal_per_slot\":" << json_number(record.optimal_per_slot)
      << ",\"checkpoints\":[";
  for (std::size_t i = 0; i < record.checkpoints.size(); ++i) {
    out << (i ? "," : "") << record.checkpoints[i];
  }
  out << ']';
  append_array(out, "expected_mean", record.expected_mean);
  append_array(out, "expected_sd", record.expected_sd);
  append_array(out, "cumulative_mean", record.cumulative_mean);
  append_array(out, "cumulative_sd", record.cumulative_sd);
  out << ",\"final_mean\":" << json_number(record.final_mean)
      << ",\"final_sd\":" << json_number(record.final_sd)
      << ",\"final_min\":" << json_number(record.final_min)
      << ",\"final_max\":" << json_number(record.final_max) << '}';
  return out.str();
}

namespace {

/// Exact inverse of json_escape for a string literal whose opening quote
/// sits at line[at]. Returns false on malformed or unterminated input.
bool decode_json_string(const std::string& line, std::size_t at,
                        std::string& out) {
  if (at >= line.size() || line[at] != '"') return false;
  out.clear();
  for (std::size_t i = at + 1; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (i + 1 >= line.size()) return false;
    const char next = line[++i];
    switch (next) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'u': {
        if (i + 4 >= line.size()) return false;
        unsigned value = 0;
        for (int k = 1; k <= 4; ++k) {
          const char h = line[i + static_cast<std::size_t>(k)];
          value <<= 4;
          if (h >= '0' && h <= '9') {
            value |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            value |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            value |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        out += static_cast<char>(value);
        i += 4;
        break;
      }
      default: out += next;
    }
  }
  return false;
}

/// Cursor-free field extraction over one job line. Each helper finds
/// `"name":` anywhere in the line; fields are unique by construction.
class JsonFieldReader {
 public:
  explicit JsonFieldReader(const std::string& line) : line_(line) {}

  std::string get_string(const char* name) const {
    const std::size_t at = value_pos(name);
    std::string out;
    if (!decode_json_string(line_, at, out)) {
      fail(name, "expected a terminated string");
    }
    return out;
  }

  double get_number(const char* name) const {
    const std::size_t at = value_pos(name);
    std::size_t used = 0;
    const double v = std::stod(line_.substr(at, 64), &used);
    if (used == 0) fail(name, "expected number");
    return v;
  }

  /// Exact unsigned 64-bit parse — get_number would round seeds > 2^53.
  std::uint64_t get_u64(const char* name) const {
    const std::size_t at = value_pos(name);
    const std::string chunk = line_.substr(at, 32);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(chunk.c_str(), &end, 10);
    if (end == chunk.c_str()) fail(name, "expected integer");
    return v;
  }

  std::vector<TimeSlot> get_slot_array(const char* name) const {
    const std::size_t at = value_pos(name);
    if (line_[at] != '[') fail(name, "expected array");
    std::vector<TimeSlot> out;
    std::size_t i = at + 1;
    while (i < line_.size() && line_[i] != ']') {
      const std::string chunk = line_.substr(i, 32);
      char* end = nullptr;
      const long long v = std::strtoll(chunk.c_str(), &end, 10);
      if (end == chunk.c_str()) fail(name, "bad array element");
      out.push_back(static_cast<TimeSlot>(v));
      i += static_cast<std::size_t>(end - chunk.c_str());
      if (i < line_.size() && line_[i] == ',') ++i;
    }
    if (i >= line_.size()) fail(name, "unterminated array");
    return out;
  }

  std::vector<double> get_array(const char* name) const {
    const std::size_t at = value_pos(name);
    if (line_[at] != '[') fail(name, "expected array");
    std::vector<double> out;
    std::size_t i = at + 1;
    while (i < line_.size() && line_[i] != ']') {
      std::size_t used = 0;
      out.push_back(std::stod(line_.substr(i, 64), &used));
      if (used == 0) fail(name, "bad array element");
      i += used;
      if (i < line_.size() && line_[i] == ',') ++i;
    }
    if (i >= line_.size()) fail(name, "unterminated array");
    return out;
  }

 private:
  std::size_t value_pos(const char* name) const {
    const std::string needle = std::string("\"") + name + "\":";
    const std::size_t at = line_.find(needle);
    if (at == std::string::npos) fail(name, "field missing");
    return at + needle.size();
  }

  [[noreturn]] void fail(const char* name, const char* what) const {
    throw std::invalid_argument(std::string("sweep job record: field '") +
                                name + "': " + what);
  }

  const std::string& line_;
};

}  // namespace

JobRecord parse_job_json(const std::string& line) {
  const JsonFieldReader in(line);
  JobRecord record;
  record.key = in.get_string("key");
  record.policy = in.get_string("policy");
  record.scenario = in.get_string("scenario");
  record.graph = in.get_string("graph");
  record.arms = static_cast<std::size_t>(in.get_u64("arms"));
  record.p = in.get_number("p");
  record.family_param = static_cast<std::size_t>(in.get_u64("family_param"));
  record.horizon = static_cast<TimeSlot>(in.get_u64("horizon"));
  record.replications = static_cast<std::size_t>(in.get_u64("replications"));
  record.seed = in.get_u64("seed");
  record.strategy_size = static_cast<std::size_t>(in.get_u64("strategy_size"));
  record.optimal_per_slot = in.get_number("optimal_per_slot");
  record.checkpoints = in.get_slot_array("checkpoints");
  record.expected_mean = in.get_array("expected_mean");
  record.expected_sd = in.get_array("expected_sd");
  record.cumulative_mean = in.get_array("cumulative_mean");
  record.cumulative_sd = in.get_array("cumulative_sd");
  record.final_mean = in.get_number("final_mean");
  record.final_sd = in.get_number("final_sd");
  record.final_min = in.get_number("final_min");
  record.final_max = in.get_number("final_max");
  const std::size_t n = record.checkpoints.size();
  if (record.expected_mean.size() != n || record.expected_sd.size() != n ||
      record.cumulative_mean.size() != n ||
      record.cumulative_sd.size() != n) {
    throw std::invalid_argument(
        "sweep job record: series/checkpoint length mismatch");
  }
  return record;
}

std::string render_sweep_json_header(const SweepSpec& spec) {
  std::ostringstream out;
  out << "{\n\"schema\": " << kSweepSchemaVersion
      << ",\n\"engine\": \"ncb_sweep\",\n"
      << "\"spec\": " << spec.canonical() << ",\n\"jobs\": [\n";
  return out.str();
}

std::string render_sweep_json(const SweepSpec& spec,
                              const std::vector<std::string>& job_lines) {
  std::ostringstream out;
  out << render_sweep_json_header(spec);
  for (std::size_t i = 0; i < job_lines.size(); ++i) {
    out << job_lines[i] << (i + 1 < job_lines.size() ? ",\n" : "\n");
  }
  out << "]\n}\n";
  return out.str();
}

std::map<std::string, std::string> load_job_lines(const std::string& path) {
  std::map<std::string, std::string> by_key;
  std::ifstream in(path);
  if (!in) return by_key;
  std::string line;
  while (std::getline(in, line)) {
    // Job lines are the only lines starting with the key field.
    if (line.rfind("{\"key\":\"", 0) != 0) continue;
    if (!line.empty() && line.back() == ',') line.pop_back();
    if (line.empty() || line.back() != '}') continue;  // truncated write
    std::string key;
    if (!decode_json_string(line, 7, key)) continue;
    by_key.emplace(std::move(key), line);
  }
  return by_key;
}

std::string render_replay_json(const ReplayRecord& record) {
  std::ostringstream out;
  out << "{\"policy\":\"" << json_escape(record.policy)
      << "\",\"description\":\"" << json_escape(record.description)
      << "\",\"logging\":" << (record.logging ? "true" : "false")
      << ",\"epsilon\":" << json_number(record.epsilon)
      << ",\"seed\":" << record.seed
      << ",\"decisions\":" << record.decisions
      << ",\"events\":" << record.events << ",\"matched\":" << record.matched
      << ",\"ips_mean\":" << json_number(record.ips_mean)
      << ",\"ips_se\":" << json_number(record.ips_se)
      << ",\"snips\":" << json_number(record.snips)
      << ",\"dr_mean\":" << json_number(record.dr_mean)
      << ",\"dr_se\":" << json_number(record.dr_se)
      << ",\"ess\":" << json_number(record.ess)
      << ",\"max_weight\":" << json_number(record.max_weight) << '}';
  return out.str();
}

std::string render_replay_panel_json(const ReplayPanelMeta& meta,
                                     const std::vector<std::string>& lines) {
  std::ostringstream out;
  out << "{\n\"schema\": " << kReplaySchemaVersion
      << ",\n\"engine\": \"ncb_replay\",\n\"log\": {\"path\":\""
      << json_escape(meta.log_path) << "\",\"decisions\":" << meta.decisions
      << ",\"feedbacks\":" << meta.feedbacks << ",\"joined\":" << meta.joined
      << ",\"truncated_tail\":" << (meta.truncated_tail ? "true" : "false")
      << ",\"arms\":" << meta.arms << ",\"graph\":\""
      << json_escape(meta.graph)
      << "\",\"min_propensity\":" << json_number(meta.min_propensity)
      << ",\"empirical_mean\":" << json_number(meta.empirical_mean)
      << ",\"empirical_se\":" << json_number(meta.empirical_se)
      << "},\n\"policies\": [\n";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    out << lines[i] << (i + 1 < lines.size() ? ",\n" : "\n");
  }
  out << "]\n}\n";
  return out.str();
}

std::string render_sweep_csv(const std::vector<JobRecord>& records) {
  std::ostringstream out;
  out << "key,policy,scenario,graph,arms,p,family_param,horizon,replications,"
         "seed,strategy_size,optimal_per_slot,t,expected_mean,expected_sd,"
         "cumulative_mean,cumulative_sd,final_mean,final_sd\n";
  for (const JobRecord& r : records) {
    std::ostringstream prefix;
    prefix << '"' << r.key << "\",\"" << r.policy << "\"," << r.scenario << ','
           << r.graph << ',' << r.arms << ',' << json_number(r.p) << ','
           << r.family_param << ',' << r.horizon << ',' << r.replications
           << ',' << r.seed << ',' << r.strategy_size << ','
           << json_number(r.optimal_per_slot) << ',';
    for (std::size_t i = 0; i < r.checkpoints.size(); ++i) {
      out << prefix.str() << r.checkpoints[i] << ','
          << json_number(r.expected_mean[i]) << ','
          << json_number(r.expected_sd[i]) << ','
          << json_number(r.cumulative_mean[i]) << ','
          << json_number(r.cumulative_sd[i]) << ','
          << json_number(r.final_mean) << ',' << json_number(r.final_sd)
          << '\n';
    }
  }
  return out.str();
}

void write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open '" + tmp + "' for write");
    out << content;
    if (!out) throw std::runtime_error("write failed: '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("cannot rename '" + tmp + "' to '" + path + "'");
  }
}

}  // namespace ncb::exp
