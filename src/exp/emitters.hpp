// Schema-versioned sweep output: JSON (the resume-able primary artifact)
// and CSV (a long-format table for plotting).
//
// The JSON document is line-oriented on purpose: one self-contained job
// record per line inside the "jobs" array. --resume scans an existing
// (possibly truncated) file for job lines, keeps them verbatim, and runs
// only the missing grid points — so a resumed sweep's output is
// byte-identical to a single uninterrupted run. Job records carry no
// timing and all numbers print in shortest round-trip form, which makes
// the file bit-reproducible across thread counts and shard sizes.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/sweep_spec.hpp"

namespace ncb::exp {

/// Output schema version (bump on any field change, like BENCH_graph.json).
inline constexpr int kSweepSchemaVersion = 1;

/// Shortest decimal that round-trips to exactly `value` (tries %.15g, then
/// %.16g, %.17g). Deterministic, so emitted files are byte-comparable.
[[nodiscard]] std::string json_number(double value);

/// Escapes backslash, quote, and control characters for a JSON string.
[[nodiscard]] std::string json_escape(const std::string& text);

/// One job's deterministic output record — everything a figure needs, no
/// timing (wall-clock stays on stdout so files stay bit-reproducible).
struct JobRecord {
  std::string key;
  std::string policy;
  std::string scenario;  ///< scenario_token form.
  std::string graph;     ///< family_token form.
  std::size_t arms = 0;
  double p = 0.0;
  std::size_t family_param = 0;
  TimeSlot horizon = 0;
  std::size_t replications = 0;
  std::uint64_t seed = 0;
  std::size_t strategy_size = 0;  ///< 0 for single-play scenarios.
  double optimal_per_slot = 0.0;
  std::vector<TimeSlot> checkpoints;
  std::vector<double> expected_mean;
  std::vector<double> expected_sd;
  std::vector<double> cumulative_mean;
  std::vector<double> cumulative_sd;
  double final_mean = 0.0;
  double final_sd = 0.0;
  double final_min = 0.0;
  double final_max = 0.0;

  [[nodiscard]] static JobRecord from(const SweepJob& job,
                                      const JobAggregate& aggregate);
};

/// Renders one record as a single JSON object line (fixed field order).
[[nodiscard]] std::string render_job_json(const JobRecord& record);

/// Parses a line produced by render_job_json. Throws std::invalid_argument
/// on malformed input.
[[nodiscard]] JobRecord parse_job_json(const std::string& line);

/// Document prefix up to (and including) the opening of the "jobs" array.
/// Incremental checkpoint writers emit this once, then append one job line
/// (with a trailing comma) per finished job; load_job_lines tolerates the
/// missing footer and trailing commas such a file has after a crash.
[[nodiscard]] std::string render_sweep_json_header(const SweepSpec& spec);

/// Assembles the full document: schema + spec echo + one job per line.
[[nodiscard]] std::string render_sweep_json(
    const SweepSpec& spec, const std::vector<std::string>& job_lines);

/// Scans an existing sweep JSON (tolerating truncation) for job lines,
/// keyed by their "key" field. Returns empty when the file does not exist.
[[nodiscard]] std::map<std::string, std::string> load_job_lines(
    const std::string& path);

/// Replay panel output schema version (independent of the sweep schema;
/// bump on any field change).
inline constexpr int kReplaySchemaVersion = 1;

/// One candidate policy's offline-evaluation record — the replay
/// counterpart of JobRecord. Rendered one-per-line inside the panel's
/// "policies" array with the same json_number / json_escape conventions as
/// sweep job lines, so replay panels and sweep outputs merge into one
/// plotting pipeline (both are keyed by a "policy" spec string).
struct ReplayRecord {
  std::string policy;       ///< Candidate registry spec.
  std::string description;  ///< Built policy's describe().
  bool logging = false;     ///< True for the marked logging policy.
  double epsilon = 0.0;     ///< Engine-level exploration assumed.
  std::uint64_t seed = 0;
  std::uint64_t decisions = 0;
  std::uint64_t events = 0;   ///< Joined feedback events scored.
  std::uint64_t matched = 0;  ///< Sampled action == logged action.
  double ips_mean = 0.0;
  double ips_se = 0.0;
  double snips = 0.0;
  double dr_mean = 0.0;
  double dr_se = 0.0;
  double ess = 0.0;
  double max_weight = 0.0;
};

/// Log-level context echoed once per panel document.
struct ReplayPanelMeta {
  std::string log_path;
  std::uint64_t decisions = 0;
  std::uint64_t feedbacks = 0;
  std::uint64_t joined = 0;
  bool truncated_tail = false;
  std::size_t arms = 0;
  std::string graph;  ///< family_token form.
  double min_propensity = 0.0;
  double empirical_mean = 0.0;
  double empirical_se = 0.0;
};

/// Renders one candidate record as a single JSON object line (fixed field
/// order, shortest round-trip numbers — byte-reproducible).
[[nodiscard]] std::string render_replay_json(const ReplayRecord& record);

/// Assembles the full panel document: schema + log meta + one candidate
/// per line in the "policies" array.
[[nodiscard]] std::string render_replay_panel_json(
    const ReplayPanelMeta& meta, const std::vector<std::string>& lines);

/// Long-format CSV: one row per (job, checkpoint) plus the job's final
/// scalar columns repeated on each row.
[[nodiscard]] std::string render_sweep_csv(
    const std::vector<JobRecord>& records);

/// Writes `content` to `path` atomically enough for CI (temp + rename).
/// Throws std::runtime_error on I/O failure.
void write_file(const std::string& path, const std::string& content);

}  // namespace ncb::exp
