#include "exp/shard_scheduler.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace ncb::exp {

ShardPlan plan_shards(std::size_t replications, TimeSlot horizon,
                      std::size_t shard_size_override,
                      std::size_t target_slots_per_shard) {
  if (horizon <= 0) {
    throw std::invalid_argument("plan_shards: horizon must be positive");
  }
  ShardPlan plan;
  plan.replications = replications;
  if (shard_size_override > 0) {
    plan.shard_size = shard_size_override;
  } else {
    const std::size_t by_horizon =
        target_slots_per_shard / static_cast<std::size_t>(horizon);
    plan.shard_size = by_horizon == 0 ? 1 : by_horizon;
  }
  if (replications > 0 && plan.shard_size > replications) {
    plan.shard_size = replications;
  }
  return plan;
}

void for_each_shard(const ShardPlan& plan, ThreadPool* pool,
                    const std::function<void(std::size_t)>& fn) {
  const std::size_t shards = plan.num_shards();
  if (shards == 0) return;
  if (pool) {
    pool->submit_bulk(0, shards, fn);
    pool->wait_idle();
  } else {
    for (std::size_t s = 0; s < shards; ++s) fn(s);
  }
}

namespace {

void merge_part(ReplicatedResult& result, const ReplicatedResult& part) {
  if (part.replications == 0) return;
  result.per_slot_regret.merge(part.per_slot_regret);
  result.cumulative_regret.merge(part.cumulative_regret);
  result.per_slot_pseudo_regret.merge(part.per_slot_pseudo_regret);
  result.final_cumulative.merge(part.final_cumulative);
  result.optimal_per_slot = part.optimal_per_slot;
  result.replications += part.replications;
}

/// Shared shard→result reduction. `run_rep(r)` executes replication r and
/// must be thread-safe across distinct r. Shards merge *eagerly* but
/// strictly in shard-index order (a completed out-of-order shard parks in
/// `pending` until its turn), so the result is bit-identical to a
/// sequential run while peak memory stays at one accumulator plus the few
/// shards that finished ahead of their turn — not all shards at once.
template <typename RunRep>
ReplicatedResult run_sharded_impl(Scenario scenario,
                                  const ReplicationOptions& options,
                                  std::size_t shard_size_override,
                                  const RunRep& run_rep) {
  const ShardPlan plan =
      plan_shards(options.replications, options.runner.horizon,
                  shard_size_override);
  std::mutex merge_mutex;
  std::map<std::size_t, ReplicatedResult> pending;
  std::size_t next_to_merge = 0;
  ReplicatedResult result;
  result.scenario = scenario;

  for_each_shard(plan, options.pool, [&](std::size_t s) {
    ReplicatedResult part;
    part.scenario = scenario;
    for (std::size_t r = plan.shard_begin(s); r < plan.shard_end(s); ++r) {
      const RunResult run = run_rep(r);
      part.per_slot_regret.add_series(run.per_slot_regret);
      part.cumulative_regret.add_series(run.cumulative_regret);
      part.per_slot_pseudo_regret.add_series(run.per_slot_pseudo_regret);
      part.final_cumulative.add(run.cumulative_regret.back());
      part.optimal_per_slot = run.optimal_per_slot;
      ++part.replications;
    }
    const std::lock_guard<std::mutex> lock(merge_mutex);
    pending.emplace(s, std::move(part));
    for (auto it = pending.find(next_to_merge); it != pending.end();
         it = pending.find(next_to_merge)) {
      merge_part(result, it->second);
      pending.erase(it);
      ++next_to_merge;
    }
  });
  // for_each_shard blocked until every shard ran, so all shards merged.
  return result;
}

}  // namespace

ReplicatedResult run_sharded_single(const SinglePolicyFactory& make_policy,
                                    const BanditInstance& instance,
                                    Scenario scenario,
                                    const ReplicationOptions& options,
                                    std::size_t shard_size_override) {
  if (!make_policy) {
    throw std::invalid_argument("run_sharded_single: null factory");
  }
  // One shared copy up front; replications then share it instead of each
  // deep-copying the CSR graph into their Environment.
  const auto shared =
      std::make_shared<const BanditInstance>(instance);
  return run_sharded_impl(
      scenario, options, shard_size_override, [&](std::size_t r) {
        Environment env(shared, derive_seed_at(options.master_seed, 2 * r));
        const auto policy =
            make_policy(derive_seed_at(options.master_seed, 2 * r + 1));
        return run_single_play(*policy, env, scenario, options.runner);
      });
}

ReplicatedResult run_sharded_combinatorial(
    const CombinatorialPolicyFactory& make_policy,
    const BanditInstance& instance, const FeasibleSet& family,
    Scenario scenario, const ReplicationOptions& options,
    std::size_t shard_size_override) {
  if (!make_policy) {
    throw std::invalid_argument("run_sharded_combinatorial: null factory");
  }
  const auto shared =
      std::make_shared<const BanditInstance>(instance);
  return run_sharded_impl(
      scenario, options, shard_size_override, [&](std::size_t r) {
        Environment env(shared, derive_seed_at(options.master_seed, 2 * r));
        const auto policy =
            make_policy(derive_seed_at(options.master_seed, 2 * r + 1));
        return run_combinatorial(*policy, family, env, scenario,
                                 options.runner);
      });
}

}  // namespace ncb::exp
