// Deterministic shard scheduling for replication fan-out.
//
// A "shard" is a contiguous block of a job's replications that runs as one
// thread-pool task. Sharding is horizon-aware: long-horizon jobs get shards
// of one replication (maximum parallelism), short jobs get bigger shards so
// per-task overhead stays negligible. Every replication seeds its streams
// with counter-based derivation (util/rng.hpp derive_seed_at), and shard
// results merge in shard-index order, so a job's output is bit-identical for
// any thread count — including no pool at all — under a fixed shard plan.
#pragma once

#include <cstddef>
#include <functional>

#include "sim/replication.hpp"
#include "sim/thread_pool.hpp"

namespace ncb::exp {

/// Default work target per shard in simulated slots (shard replications ×
/// horizon). 16k slots splits a fig3-sized job (n = 10^4) into
/// one-replication shards while keeping tiny-horizon shards chunky.
inline constexpr std::size_t kDefaultSlotsPerShard = 16384;

/// A partition of `replications` into contiguous shards of `shard_size`
/// (the last shard may be short).
struct ShardPlan {
  std::size_t replications = 0;
  std::size_t shard_size = 1;

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shard_size == 0 ? 0
                           : (replications + shard_size - 1) / shard_size;
  }
  [[nodiscard]] std::size_t shard_begin(std::size_t shard) const noexcept {
    return shard * shard_size;
  }
  [[nodiscard]] std::size_t shard_end(std::size_t shard) const noexcept {
    const std::size_t end = (shard + 1) * shard_size;
    return end < replications ? end : replications;
  }
};

/// Horizon-aware shard sizing: shard_size ≈ target_slots / horizon, clamped
/// to [1, replications]. A non-zero `shard_size_override` wins outright.
[[nodiscard]] ShardPlan plan_shards(
    std::size_t replications, TimeSlot horizon,
    std::size_t shard_size_override = 0,
    std::size_t target_slots_per_shard = kDefaultSlotsPerShard);

/// Runs `fn(shard)` for every shard of the plan: bulk-enqueued on `pool`
/// (one lock, one wake-up) when non-null, inline in shard order otherwise.
/// Blocks until all shards finished; rethrows the first shard exception.
void for_each_shard(const ShardPlan& plan, ThreadPool* pool,
                    const std::function<void(std::size_t)>& fn);

/// Sharded replacement for run_replicated_single. Replications are split
/// per `plan_shards(options.replications, options.runner.horizon,
/// shard_size_override)`; each shard aggregates its replications in order
/// and shard aggregates merge in shard-index order, so the result does not
/// depend on options.pool (or its thread count) at all.
[[nodiscard]] ReplicatedResult run_sharded_single(
    const SinglePolicyFactory& make_policy, const BanditInstance& instance,
    Scenario scenario, const ReplicationOptions& options,
    std::size_t shard_size_override = 0);

/// Combinatorial counterpart; `family` must be built over the instance graph.
[[nodiscard]] ReplicatedResult run_sharded_combinatorial(
    const CombinatorialPolicyFactory& make_policy,
    const BanditInstance& instance, const FeasibleSet& family,
    Scenario scenario, const ReplicationOptions& options,
    std::size_t shard_size_override = 0);

}  // namespace ncb::exp
