#include "exp/sweep_runner.hpp"

#include <cstring>
#include <memory>
#include <sstream>
#include <utility>

#include "core/policy_factory.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ncb::exp {

namespace {

/// The instance-defining coordinates of a config (see InstanceCache docs).
/// p enters via its bit pattern so the key is exact, not formatted.
std::string instance_key(const ExperimentConfig& config, bool combinatorial) {
  std::uint64_t p_bits = 0;
  static_assert(sizeof p_bits == sizeof config.edge_probability);
  std::memcpy(&p_bits, &config.edge_probability, sizeof p_bits);
  std::ostringstream key;
  key << family_token(config.graph_family) << ':' << config.num_arms << ':'
      << p_bits << ':' << config.family_param << ':' << config.seed;
  if (combinatorial) {
    key << ":M" << config.strategy_size
        << (config.exact_size_strategies ? "e" : "");
  }
  return key.str();
}

}  // namespace

const InstanceCache::Entry& InstanceCache::get(const ExperimentConfig& config,
                                               bool combinatorial) {
  std::string key = instance_key(config, combinatorial);
  if (key == key_ && entry_.instance != nullptr) {
    ++hits_;
    return entry_;
  }
  ++misses_;
  entry_.instance = std::make_shared<const BanditInstance>(
      build_instance(config));
  entry_.family = combinatorial
                      ? build_family(config, entry_.instance->graph())
                      : nullptr;
  key_ = std::move(key);
  return entry_;
}

JobOutcome run_sweep_job(const SweepJob& job, std::size_t checkpoints,
                         const SweepRunOptions& options) {
  Timer timer;
  const ExperimentConfig& config = job.config;
  const std::vector<TimeSlot> grid =
      checkpoint_grid(config.horizon, checkpoints);
  const bool combinatorial = is_combinatorial(job.scenario);
  InstanceCache local_cache;
  InstanceCache& cache =
      options.instance_cache ? *options.instance_cache : local_cache;
  const InstanceCache::Entry& built = cache.get(config, combinatorial);
  const std::shared_ptr<const BanditInstance>& instance = built.instance;
  const std::shared_ptr<const FeasibleSet>& family = built.family;

  RunnerOptions runner;
  runner.horizon = config.horizon;

  const auto cancelled = [&options] {
    return options.should_stop && options.should_stop();
  };

  const ShardPlan plan =
      plan_shards(config.replications, config.horizon, options.shard_size);
  std::vector<ShardSamples> shards(plan.num_shards());
  for_each_shard(plan, options.pool, [&](std::size_t s) {
    // A cancelled shard stays empty; the job is then reported incomplete
    // and dropped, so partial aggregates never reach an emitter.
    if (cancelled()) return;
    ShardSamples out;
    out.reps.reserve(plan.shard_end(s) - plan.shard_begin(s));
    for (std::size_t r = plan.shard_begin(s); r < plan.shard_end(s); ++r) {
      Environment env(instance, derive_seed_at(config.seed, 2 * r));
      const std::uint64_t policy_seed = derive_seed_at(config.seed, 2 * r + 1);
      RunResult run;
      if (combinatorial) {
        const auto policy =
            make_combinatorial_policy(job.policy, family, policy_seed);
        run = run_combinatorial(*policy, *family, env, job.scenario, runner);
      } else {
        const auto policy =
            make_single_play_policy(job.policy, config.horizon, policy_seed);
        run = run_single_play(*policy, env, job.scenario, runner);
      }
      out.reps.push_back(sample_run(run, grid));
      out.optimal_per_slot = run.optimal_per_slot;
    }
    shards[s] = std::move(out);
  });

  JobOutcome outcome;
  outcome.job = job;
  outcome.aggregate = JobAggregate(grid);
  for (const ShardSamples& shard : shards) {
    for (const RepSample& rep : shard.reps) outcome.aggregate.add_rep(rep);
    if (!shard.reps.empty()) {
      outcome.aggregate.set_optimal(shard.optimal_per_slot);
    }
  }
  outcome.shards = plan.num_shards();
  outcome.shard_size = plan.shard_size;
  outcome.complete =
      outcome.aggregate.replications() == config.replications;
  outcome.seconds = timer.elapsed_seconds();
  return outcome;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepRunOptions& options,
                      const std::set<std::string>& skip_keys) {
  SweepRunOptions job_options = options;
  if (job_options.shard_size == 0) job_options.shard_size = spec.shard_size;
  InstanceCache sweep_cache;
  if (job_options.instance_cache == nullptr) {
    job_options.instance_cache = &sweep_cache;
  }

  SweepResult result;
  for (const SweepJob& job : spec.expand()) {
    if (skip_keys.count(job.key)) {
      ++result.skipped;
      continue;
    }
    if (result.interrupted ||
        (options.should_stop && options.should_stop())) {
      result.interrupted = true;
      ++result.pending;
      continue;
    }
    if (options.max_jobs != 0 && result.outcomes.size() >= options.max_jobs) {
      ++result.pending;
      continue;
    }
    JobOutcome outcome = run_sweep_job(job, spec.checkpoints, job_options);
    if (!outcome.complete) {
      result.interrupted = true;
      ++result.pending;
      continue;
    }
    result.policy_seconds[job.policy].add(outcome.seconds);
    if (options.on_job) options.on_job(outcome);
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace ncb::exp
