#include "exp/sweep_runner.hpp"

#include <memory>
#include <utility>

#include "core/policy_factory.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace ncb::exp {

JobOutcome run_sweep_job(const SweepJob& job, std::size_t checkpoints,
                         const SweepRunOptions& options) {
  Timer timer;
  const ExperimentConfig& config = job.config;
  const std::vector<TimeSlot> grid =
      checkpoint_grid(config.horizon, checkpoints);
  const BanditInstance instance = build_instance(config);
  const bool combinatorial = is_combinatorial(job.scenario);
  std::shared_ptr<const FeasibleSet> family;
  if (combinatorial) family = build_family(config, instance.graph());

  RunnerOptions runner;
  runner.horizon = config.horizon;

  const ShardPlan plan =
      plan_shards(config.replications, config.horizon, options.shard_size);
  std::vector<ShardSamples> shards(plan.num_shards());
  for_each_shard(plan, options.pool, [&](std::size_t s) {
    ShardSamples out;
    out.reps.reserve(plan.shard_end(s) - plan.shard_begin(s));
    for (std::size_t r = plan.shard_begin(s); r < plan.shard_end(s); ++r) {
      Environment env(instance, derive_seed_at(config.seed, 2 * r));
      const std::uint64_t policy_seed = derive_seed_at(config.seed, 2 * r + 1);
      RunResult run;
      if (combinatorial) {
        const auto policy =
            make_combinatorial_policy(job.policy, family, policy_seed);
        run = run_combinatorial(*policy, *family, env, job.scenario, runner);
      } else {
        const auto policy =
            make_single_play_policy(job.policy, config.horizon, policy_seed);
        run = run_single_play(*policy, env, job.scenario, runner);
      }
      out.reps.push_back(sample_run(run, grid));
      out.optimal_per_slot = run.optimal_per_slot;
    }
    shards[s] = std::move(out);
  });

  JobOutcome outcome;
  outcome.job = job;
  outcome.aggregate = JobAggregate(grid);
  for (const ShardSamples& shard : shards) {
    for (const RepSample& rep : shard.reps) outcome.aggregate.add_rep(rep);
    if (!shard.reps.empty()) {
      outcome.aggregate.set_optimal(shard.optimal_per_slot);
    }
  }
  outcome.shards = plan.num_shards();
  outcome.shard_size = plan.shard_size;
  outcome.seconds = timer.elapsed_seconds();
  return outcome;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepRunOptions& options,
                      const std::set<std::string>& skip_keys) {
  SweepRunOptions job_options = options;
  if (job_options.shard_size == 0) job_options.shard_size = spec.shard_size;

  SweepResult result;
  for (const SweepJob& job : spec.expand()) {
    if (skip_keys.count(job.key)) {
      ++result.skipped;
      continue;
    }
    if (options.max_jobs != 0 && result.outcomes.size() >= options.max_jobs) {
      ++result.pending;
      continue;
    }
    JobOutcome outcome = run_sweep_job(job, spec.checkpoints, job_options);
    result.policy_seconds[job.policy].add(outcome.seconds);
    if (options.on_job) options.on_job(outcome);
    result.outcomes.push_back(std::move(outcome));
  }
  return result;
}

}  // namespace ncb::exp
