// The sweep engine's execution layer: expand a SweepSpec, run each job's
// replications as fine-grained shards on a ThreadPool, and stream mergeable
// aggregates shard → job → sweep.
//
// Determinism contract: a job's aggregate (and therefore the emitted JSON)
// is bit-identical for any thread count and any shard size, because every
// replication draws counter-based seeds and samples merge in global
// replication order. Timing is collected separately and never enters the
// deterministic records.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/shard_scheduler.hpp"
#include "exp/sweep_spec.hpp"
#include "util/running_stat.hpp"

namespace ncb::exp {

/// One completed job plus its (non-deterministic) execution metadata.
struct JobOutcome {
  SweepJob job;
  JobAggregate aggregate;
  double seconds = 0.0;
  std::size_t shards = 0;
  std::size_t shard_size = 0;
  /// False when cancellation skipped shards; an incomplete aggregate must
  /// never be emitted (the job reruns from scratch on resume).
  bool complete = true;
};

/// Reuses the built instance (graph + arm distributions, and the strategy
/// family when combinatorial) across consecutive jobs whose instance
/// coordinates match — family, K, p, family-param, seed, and the family
/// fields. expand() puts the policy axis innermost, so a one-entry cache
/// removes every duplicate graph build in a grid; a distributed worker
/// keeps one across the jobs it is assigned. Not thread-safe: callers use
/// it from the job loop, never from shard tasks. Horizon and policy are
/// deliberately not part of the key — they do not affect the instance.
class InstanceCache {
 public:
  struct Entry {
    std::shared_ptr<const BanditInstance> instance;
    std::shared_ptr<const FeasibleSet> family;  ///< Null for single-play.
  };

  /// Returns the cached entry when `config` matches the previous call,
  /// rebuilding (and re-keying) otherwise.
  [[nodiscard]] const Entry& get(const ExperimentConfig& config,
                                 bool combinatorial);

  [[nodiscard]] std::size_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::size_t misses() const noexcept { return misses_; }

 private:
  std::string key_;
  Entry entry_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

struct SweepRunOptions {
  /// Worker pool; nullptr runs shards inline (identical results).
  ThreadPool* pool = nullptr;
  /// Shard-size override: 0 defers to the spec, which defers to the
  /// horizon-aware automatic size.
  std::size_t shard_size = 0;
  /// Stop after this many newly-run jobs (0 = run everything). The cut jobs
  /// are reported as `pending`, which is what --resume later picks up.
  std::size_t max_jobs = 0;
  /// Streaming per-job callback, invoked in expansion order as each job
  /// completes (progress lines, incremental emission, ...).
  std::function<void(const JobOutcome&)> on_job;
  /// Cooperative cancellation (e.g. a SIGINT flag). Checked before each job
  /// and before each shard, from worker threads too — must be thread-safe
  /// and cheap. Once it returns true the current job finishes incomplete
  /// (and is dropped) and the remaining jobs are reported pending, so an
  /// interrupted sweep's output stays valid for --resume.
  std::function<bool()> should_stop;
  /// Shared instance cache; nullptr gives each job a private one (still
  /// correct, no cross-job reuse).
  InstanceCache* instance_cache = nullptr;
};

struct SweepResult {
  std::vector<JobOutcome> outcomes;  ///< Newly-run jobs, expansion order.
  std::size_t skipped = 0;           ///< Jobs satisfied by `skip_keys`.
  std::size_t pending = 0;           ///< Jobs cut by max_jobs or should_stop.
  bool interrupted = false;          ///< should_stop fired mid-sweep.
  /// Wall-clock seconds per policy spec across this run's jobs.
  std::map<std::string, RunningStat> policy_seconds;
};

/// Runs one expanded job: builds the instance (and family when
/// combinatorial), shards its replications, and aggregates at the job's
/// checkpoint grid (`checkpoints` as in SweepSpec, 0 = dense).
[[nodiscard]] JobOutcome run_sweep_job(const SweepJob& job,
                                       std::size_t checkpoints,
                                       const SweepRunOptions& options);

/// Expands and runs the whole grid, skipping jobs whose key is in
/// `skip_keys` (the resume set).
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec,
                                    const SweepRunOptions& options,
                                    const std::set<std::string>& skip_keys = {});

}  // namespace ncb::exp
