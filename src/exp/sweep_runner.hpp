// The sweep engine's execution layer: expand a SweepSpec, run each job's
// replications as fine-grained shards on a ThreadPool, and stream mergeable
// aggregates shard → job → sweep.
//
// Determinism contract: a job's aggregate (and therefore the emitted JSON)
// is bit-identical for any thread count and any shard size, because every
// replication draws counter-based seeds and samples merge in global
// replication order. Timing is collected separately and never enters the
// deterministic records.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/shard_scheduler.hpp"
#include "exp/sweep_spec.hpp"
#include "util/running_stat.hpp"

namespace ncb::exp {

/// One completed job plus its (non-deterministic) execution metadata.
struct JobOutcome {
  SweepJob job;
  JobAggregate aggregate;
  double seconds = 0.0;
  std::size_t shards = 0;
  std::size_t shard_size = 0;
};

struct SweepRunOptions {
  /// Worker pool; nullptr runs shards inline (identical results).
  ThreadPool* pool = nullptr;
  /// Shard-size override: 0 defers to the spec, which defers to the
  /// horizon-aware automatic size.
  std::size_t shard_size = 0;
  /// Stop after this many newly-run jobs (0 = run everything). The cut jobs
  /// are reported as `pending`, which is what --resume later picks up.
  std::size_t max_jobs = 0;
  /// Streaming per-job callback, invoked in expansion order as each job
  /// completes (progress lines, incremental emission, ...).
  std::function<void(const JobOutcome&)> on_job;
};

struct SweepResult {
  std::vector<JobOutcome> outcomes;  ///< Newly-run jobs, expansion order.
  std::size_t skipped = 0;           ///< Jobs satisfied by `skip_keys`.
  std::size_t pending = 0;           ///< Jobs cut by max_jobs.
  /// Wall-clock seconds per policy spec across this run's jobs.
  std::map<std::string, RunningStat> policy_seconds;
};

/// Runs one expanded job: builds the instance (and family when
/// combinatorial), shards its replications, and aggregates at the job's
/// checkpoint grid (`checkpoints` as in SweepSpec, 0 = dense).
[[nodiscard]] JobOutcome run_sweep_job(const SweepJob& job,
                                       std::size_t checkpoints,
                                       const SweepRunOptions& options);

/// Expands and runs the whole grid, skipping jobs whose key is in
/// `skip_keys` (the resume set).
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec,
                                    const SweepRunOptions& options,
                                    const std::set<std::string>& skip_keys = {});

}  // namespace ncb::exp
