#include "exp/sweep_spec.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "exp/emitters.hpp"

namespace ncb::exp {
namespace {

constexpr struct {
  GraphFamily family;
  const char* token;
} kFamilyTokens[] = {
    {GraphFamily::kErdosRenyi, "er"},
    {GraphFamily::kComplete, "complete"},
    {GraphFamily::kEmpty, "empty"},
    {GraphFamily::kStar, "star"},
    {GraphFamily::kCycle, "cycle"},
    {GraphFamily::kDisjointCliques, "cliques"},
    {GraphFamily::kBarabasiAlbert, "ba"},
    {GraphFamily::kWattsStrogatz, "ws"},
};

/// Families whose construction reads edge_probability.
bool uses_p(GraphFamily family) {
  return family == GraphFamily::kErdosRenyi ||
         family == GraphFamily::kWattsStrogatz;
}

/// Families whose construction reads family_param.
bool uses_family_param(GraphFamily family) {
  return family == GraphFamily::kDisjointCliques ||
         family == GraphFamily::kBarabasiAlbert ||
         family == GraphFamily::kWattsStrogatz;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> items;
  std::string item;
  std::istringstream in(value);
  while (std::getline(in, item, ',')) {
    item = trim(item);
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::invalid_argument("sweep spec line " + std::to_string(line) +
                              ": " + what);
}

std::uint64_t parse_u64(const std::string& text, std::size_t line,
                        const char* key) {
  try {
    std::size_t used = 0;
    if (!text.empty() && text[0] == '-') throw std::invalid_argument("neg");
    const std::uint64_t v = std::stoull(text, &used);
    if (used != text.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    fail(line, std::string(key) + ": expected a non-negative integer, got '" +
                   text + "'");
  }
}

double parse_dbl(const std::string& text, std::size_t line, const char* key) {
  try {
    std::size_t used = 0;
    const double v = std::stod(text, &used);
    if (used != text.size()) throw std::invalid_argument("trailing");
    if (!std::isfinite(v)) throw std::invalid_argument("non-finite");
    return v;
  } catch (const std::exception&) {
    fail(line, std::string(key) + ": expected a finite number, got '" + text +
                   "'");
  }
}

bool parse_bool(const std::string& text, std::size_t line, const char* key) {
  if (text == "true" || text == "1" || text == "yes") return true;
  if (text == "false" || text == "0" || text == "no") return false;
  fail(line, std::string(key) + ": expected true/false, got '" + text + "'");
}

template <typename T, typename Fn>
std::vector<T> parse_list(const std::string& value, std::size_t line,
                          const char* key, const Fn& one) {
  std::vector<T> out;
  for (const std::string& item : split_list(value)) {
    out.push_back(one(item, line, key));
  }
  if (out.empty()) fail(line, std::string(key) + ": empty list");
  return out;
}

}  // namespace

const char* family_token(GraphFamily family) {
  for (const auto& entry : kFamilyTokens) {
    if (entry.family == family) return entry.token;
  }
  return "?";
}

GraphFamily parse_family(const std::string& token) {
  for (const auto& entry : kFamilyTokens) {
    if (token == entry.token) return entry.family;
  }
  throw std::invalid_argument(
      "unknown graph family '" + token +
      "' (use er|complete|empty|star|cycle|cliques|ba|ws)");
}

const char* scenario_token(Scenario scenario) {
  switch (scenario) {
    case Scenario::kSso: return "sso";
    case Scenario::kCso: return "cso";
    case Scenario::kSsr: return "ssr";
    case Scenario::kCsr: return "csr";
  }
  return "?";
}

Scenario parse_scenario(const std::string& token) {
  if (token == "sso") return Scenario::kSso;
  if (token == "cso") return Scenario::kCso;
  if (token == "ssr") return Scenario::kSsr;
  if (token == "csr") return Scenario::kCsr;
  throw std::invalid_argument("unknown scenario '" + token +
                              "' (use sso|cso|ssr|csr)");
}

SweepSpec SweepSpec::parse(std::istream& in) {
  SweepSpec spec;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (value.empty()) fail(line_no, key + ": empty value");

    const auto as_size = [&](const std::string& t, std::size_t l,
                             const char* k) {
      return static_cast<std::size_t>(parse_u64(t, l, k));
    };
    const auto as_slot = [&](const std::string& t, std::size_t l,
                             const char* k) {
      const std::uint64_t v = parse_u64(t, l, k);
      if (v == 0) fail(l, std::string(k) + ": must be positive");
      return static_cast<TimeSlot>(v);
    };

    if (key == "name") {
      spec.name = value;
    } else if (key == "scenario") {
      try {
        spec.scenario = parse_scenario(value);
      } catch (const std::invalid_argument& e) {
        fail(line_no, e.what());
      }
    } else if (key == "policies") {
      spec.policies = split_list(value);
      if (spec.policies.empty()) fail(line_no, "policies: empty list");
    } else if (key == "graphs") {
      spec.graphs.clear();
      for (const std::string& token : split_list(value)) {
        try {
          spec.graphs.push_back(parse_family(token));
        } catch (const std::invalid_argument& e) {
          fail(line_no, e.what());
        }
      }
      if (spec.graphs.empty()) fail(line_no, "graphs: empty list");
    } else if (key == "arms") {
      spec.arms = parse_list<std::size_t>(value, line_no, "arms", as_size);
    } else if (key == "p") {
      spec.edge_probabilities =
          parse_list<double>(value, line_no, "p", parse_dbl);
      for (const double p : spec.edge_probabilities) {
        if (!(p >= 0.0 && p <= 1.0)) fail(line_no, "p: outside [0, 1]");
      }
    } else if (key == "family-param" || key == "family-params") {
      spec.family_params =
          parse_list<std::size_t>(value, line_no, "family-param", as_size);
    } else if (key == "horizons" || key == "horizon") {
      spec.horizons = parse_list<TimeSlot>(value, line_no, "horizons", as_slot);
    } else if (key == "replications") {
      spec.replications = as_size(value, line_no, "replications");
      if (spec.replications == 0) fail(line_no, "replications: must be positive");
    } else if (key == "seed") {
      spec.seed = parse_u64(value, line_no, "seed");
    } else if (key == "checkpoints") {
      spec.checkpoints = as_size(value, line_no, "checkpoints");
    } else if (key == "strategy-size") {
      spec.strategy_size = as_size(value, line_no, "strategy-size");
      if (spec.strategy_size == 0) fail(line_no, "strategy-size: must be positive");
    } else if (key == "exact-size") {
      spec.exact_size_strategies = parse_bool(value, line_no, "exact-size");
    } else if (key == "shard-size") {
      spec.shard_size = as_size(value, line_no, "shard-size");
    } else {
      fail(line_no, "unknown key '" + key + "'");
    }
  }
  return spec;
}

SweepSpec SweepSpec::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("cannot open sweep spec '" + path + "'");
  }
  return parse(in);
}

std::vector<SweepJob> SweepSpec::expand() const {
  if (policies.empty()) {
    throw std::invalid_argument("SweepSpec: no policies");
  }
  if (graphs.empty() || arms.empty() || edge_probabilities.empty() ||
      family_params.empty() || horizons.empty()) {
    throw std::invalid_argument("SweepSpec: empty axis");
  }
  std::vector<SweepJob> jobs;
  for (const GraphFamily family : graphs) {
    // Collapse axes this family does not consume so the grid holds no
    // duplicate workloads.
    const std::size_t p_count = uses_p(family) ? edge_probabilities.size() : 1;
    const std::size_t fp_count =
        uses_family_param(family) ? family_params.size() : 1;
    for (const std::size_t k : arms) {
      for (std::size_t pi = 0; pi < p_count; ++pi) {
        for (std::size_t fi = 0; fi < fp_count; ++fi) {
          for (const TimeSlot horizon : horizons) {
            for (const std::string& policy : policies) {
              SweepJob job;
              job.index = jobs.size();
              job.policy = policy;
              job.scenario = scenario;
              job.config.graph_family = family;
              job.config.num_arms = k;
              job.config.horizon = horizon;
              job.config.replications = replications;
              job.config.seed = seed;
              job.config.strategy_size = strategy_size;
              job.config.exact_size_strategies = exact_size_strategies;
              std::string key = std::string(scenario_token(scenario)) + ":" +
                                policy + "@" + family_token(family) +
                                ",K=" + std::to_string(k);
              if (uses_p(family)) {
                job.config.edge_probability = edge_probabilities[pi];
                key += ",p=" + json_number(edge_probabilities[pi]);
              }
              if (uses_family_param(family)) {
                job.config.family_param = family_params[fi];
                key += ",fp=" + std::to_string(family_params[fi]);
              }
              key += ",n=" + std::to_string(horizon);
              if (is_combinatorial(scenario)) {
                key += ",M=" + std::to_string(strategy_size);
                if (exact_size_strategies) key += ",exact";
              }
              job.key = std::move(key);
              job.config.name = job.key;
              jobs.push_back(std::move(job));
            }
          }
        }
      }
    }
  }
  return jobs;
}

std::string SweepSpec::canonical() const {
  std::ostringstream out;
  out << "{\"name\":\"" << json_escape(name) << "\",\"scenario\":\""
      << scenario_token(scenario) << "\",\"policies\":[";
  for (std::size_t i = 0; i < policies.size(); ++i) {
    out << (i ? "," : "") << '"' << json_escape(policies[i]) << '"';
  }
  out << "],\"graphs\":[";
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    out << (i ? "," : "") << '"' << family_token(graphs[i]) << '"';
  }
  out << "],\"arms\":[";
  for (std::size_t i = 0; i < arms.size(); ++i) {
    out << (i ? "," : "") << arms[i];
  }
  out << "],\"p\":[";
  for (std::size_t i = 0; i < edge_probabilities.size(); ++i) {
    out << (i ? "," : "") << json_number(edge_probabilities[i]);
  }
  out << "],\"family_params\":[";
  for (std::size_t i = 0; i < family_params.size(); ++i) {
    out << (i ? "," : "") << family_params[i];
  }
  out << "],\"horizons\":[";
  for (std::size_t i = 0; i < horizons.size(); ++i) {
    out << (i ? "," : "") << horizons[i];
  }
  out << "],\"replications\":" << replications << ",\"seed\":" << seed
      << ",\"checkpoints\":" << checkpoints
      << ",\"strategy_size\":" << strategy_size << ",\"exact_size\":"
      << (exact_size_strategies ? "true" : "false")
      << ",\"shard_size\":" << shard_size << "}";
  return out.str();
}

}  // namespace ncb::exp
