// Declarative sweep grids over ExperimentConfig axes.
//
// A SweepSpec names a scenario, a set of policy registry specs, and lists of
// graph families / K / p / family-param / horizon values; expand() takes the
// cross product into a flat, deterministically-ordered job list. Axes a
// graph family does not consume (p for a complete graph, family-param for
// ER) are collapsed so the grid never contains duplicate workloads.
//
// Specs load from a small line-based text format (see SweepSpec::parse and
// README "Running sweeps"):
//
//     # fig3: MOSS vs DFL-SSO on the paper's ER graph
//     name = fig3
//     scenario = sso
//     policies = moss, dfl-sso
//     graphs = er
//     arms = 100
//     p = 0.3
//     horizons = 10000
//     replications = 20
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.hpp"

namespace ncb::exp {

/// Stable lowercase token for a graph family ("er", "complete", ...).
[[nodiscard]] const char* family_token(GraphFamily family);
/// Inverse of family_token; throws std::invalid_argument on unknown tokens.
[[nodiscard]] GraphFamily parse_family(const std::string& token);

/// Stable lowercase token for a scenario ("sso", "cso", "ssr", "csr").
[[nodiscard]] const char* scenario_token(Scenario scenario);
/// Inverse of scenario_token; throws std::invalid_argument on unknown tokens.
[[nodiscard]] Scenario parse_scenario(const std::string& token);

/// One expanded grid point: a concrete ExperimentConfig plus the policy to
/// run on it. `key` uniquely identifies the job inside its sweep and is the
/// resume unit of the emitters.
struct SweepJob {
  std::size_t index = 0;  ///< Position in expansion order.
  /// Self-describing grid coordinates, e.g.
  /// "sso:dfl-sso@er,K=100,p=0.3,n=10000" (combinatorial keys append
  /// ",M=<strategy-size>[,exact]"). Seed/replications/checkpoints are NOT
  /// part of the key; the resume path validates them from the stored
  /// record instead.
  std::string key;
  std::string policy;     ///< Policy registry spec string.
  Scenario scenario = Scenario::kSso;
  ExperimentConfig config;
};

struct SweepSpec {
  std::string name = "sweep";
  Scenario scenario = Scenario::kSso;
  std::vector<std::string> policies;
  std::vector<GraphFamily> graphs{GraphFamily::kErdosRenyi};
  std::vector<std::size_t> arms{100};
  std::vector<double> edge_probabilities{0.3};
  std::vector<std::size_t> family_params{4};
  std::vector<TimeSlot> horizons{10000};
  std::size_t replications = 20;
  std::uint64_t seed = 20170605;
  /// Log-spaced checkpoint count per curve; 0 records every slot.
  std::size_t checkpoints = 30;
  // Combinatorial-only:
  std::size_t strategy_size = 3;
  bool exact_size_strategies = false;
  /// Fixed shard size; 0 picks the horizon-aware size per job.
  std::size_t shard_size = 0;

  /// Parses the `key = value` spec format. Throws std::invalid_argument
  /// with a line number on unknown keys or malformed values.
  [[nodiscard]] static SweepSpec parse(std::istream& in);
  /// parse() over a file; throws std::invalid_argument when unreadable.
  [[nodiscard]] static SweepSpec parse_file(const std::string& path);

  /// Expands the grid into jobs (graphs → arms → p → family-param →
  /// horizons → policies, policies innermost). Throws on an empty policy
  /// list or empty axes.
  [[nodiscard]] std::vector<SweepJob> expand() const;

  /// One-line JSON echo of the spec (embedded in sweep output headers).
  [[nodiscard]] std::string canonical() const;
};

}  // namespace ncb::exp
