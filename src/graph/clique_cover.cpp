#include "graph/clique_cover.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ncb {
namespace {

/// Greedy cover following the given vertex order: each vertex joins the
/// first existing clique it is adjacent to in full, else starts a new one.
CliqueCover greedy_cover_in_order(const Graph& g,
                                  const std::vector<ArmId>& order) {
  CliqueCover cover;
  std::vector<Bitset64> clique_bits;  // parallel to cover
  for (const ArmId v : order) {
    bool placed = false;
    for (std::size_t c = 0; c < cover.size(); ++c) {
      // v must be adjacent to every member: clique_bits[c] ⊆ adj(v).
      if (clique_bits[c].is_subset_of(g.neighbors_bits(v))) {
        cover[c].push_back(v);
        clique_bits[c].set(static_cast<std::size_t>(v));
        placed = true;
        break;
      }
    }
    if (!placed) {
      cover.push_back({v});
      Bitset64 bits(g.num_vertices());
      bits.set(static_cast<std::size_t>(v));
      clique_bits.push_back(std::move(bits));
    }
  }
  for (auto& clique : cover) std::sort(clique.begin(), clique.end());
  return cover;
}

}  // namespace

CliqueCover greedy_clique_cover(const Graph& g) {
  std::vector<ArmId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&g](ArmId a, ArmId b) {
    const auto da = g.degree(a), db = g.degree(b);
    return da != db ? da > db : a < b;
  });
  return greedy_cover_in_order(g, order);
}

CliqueCover randomized_clique_cover(const Graph& g, int restarts,
                                    Xoshiro256& rng) {
  CliqueCover best = greedy_clique_cover(g);
  std::vector<ArmId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), 0);
  for (int r = 0; r < restarts; ++r) {
    shuffle(order, rng);
    CliqueCover candidate = greedy_cover_in_order(g, order);
    if (candidate.size() < best.size()) best = std::move(candidate);
  }
  return best;
}

namespace {

/// Tries to partition vertices of g into at most `k` cliques by
/// backtracking. `assignment[v]` is the clique id or -1.
bool try_cover(const Graph& g, std::size_t k, std::size_t v,
               std::vector<int>& assignment,
               std::vector<Bitset64>& clique_bits, std::size_t used) {
  if (v == g.num_vertices()) return true;
  const auto vid = static_cast<ArmId>(v);
  for (std::size_t c = 0; c < used; ++c) {
    if (clique_bits[c].is_subset_of(g.neighbors_bits(vid))) {
      assignment[v] = static_cast<int>(c);
      clique_bits[c].set(v);
      if (try_cover(g, k, v + 1, assignment, clique_bits, used)) return true;
      clique_bits[c].reset(v);
      assignment[v] = -1;
    }
  }
  if (used < k) {
    assignment[v] = static_cast<int>(used);
    clique_bits[used].set(v);
    if (try_cover(g, k, v + 1, assignment, clique_bits, used + 1)) return true;
    clique_bits[used].reset(v);
    assignment[v] = -1;
  }
  return false;
}

}  // namespace

CliqueCover exact_clique_cover(const Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return {};
  if (n > 24) {
    throw std::invalid_argument("exact_clique_cover: graph too large (>24)");
  }
  const CliqueCover greedy = greedy_clique_cover(g);
  for (std::size_t k = 1; k <= greedy.size(); ++k) {
    std::vector<int> assignment(n, -1);
    std::vector<Bitset64> clique_bits(k, Bitset64(n));
    if (try_cover(g, k, 0, assignment, clique_bits, 0)) {
      CliqueCover cover(k);
      for (std::size_t v = 0; v < n; ++v) {
        cover[static_cast<std::size_t>(assignment[v])].push_back(
            static_cast<ArmId>(v));
      }
      // Backtracking may leave trailing empty cliques unused; drop them.
      cover.erase(std::remove_if(cover.begin(), cover.end(),
                                 [](const ArmSet& c) { return c.empty(); }),
                  cover.end());
      return cover;
    }
  }
  return greedy;  // unreachable: greedy itself covers with greedy.size()
}

bool is_valid_clique_cover(const Graph& g, const CliqueCover& cover) {
  std::vector<bool> seen(g.num_vertices(), false);
  for (const auto& clique : cover) {
    if (clique.empty()) return false;
    if (!g.is_clique(clique)) return false;
    for (const ArmId v : clique) {
      if (v < 0 || static_cast<std::size_t>(v) >= g.num_vertices()) return false;
      if (seen[static_cast<std::size_t>(v)]) return false;
      seen[static_cast<std::size_t>(v)] = true;
    }
  }
  return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
}

}  // namespace ncb
