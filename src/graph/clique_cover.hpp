// Clique covers (paper §III, Theorem 1).
//
// The regret bound of DFL-SSO carries a 0.74·C·sqrt(n/K) term where C is the
// size of a clique cover of the thresholded subgraph H. Minimum clique cover
// is NP-hard; we provide the standard greedy (equivalent to greedy coloring
// of the complement), plus an exact branch-and-bound for small graphs used
// in tests and the A2 ablation.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ncb {

/// A clique cover: disjoint cliques whose union is all vertices.
using CliqueCover = std::vector<ArmSet>;

/// Greedy clique cover in a fixed vertex order (descending degree).
/// O(V * E). Every returned set is a clique; sets partition the vertices.
[[nodiscard]] CliqueCover greedy_clique_cover(const Graph& g);

/// Greedy clique cover with `restarts` random vertex orders, keeping the
/// smallest cover found.
[[nodiscard]] CliqueCover randomized_clique_cover(const Graph& g,
                                                  int restarts,
                                                  Xoshiro256& rng);

/// Exact minimum clique cover via exhaustive search on the complement's
/// chromatic number. Exponential; intended for |V| <= ~20 (tests only).
[[nodiscard]] CliqueCover exact_clique_cover(const Graph& g);

/// Validates that `cover` is a partition of V(g) into cliques.
[[nodiscard]] bool is_valid_clique_cover(const Graph& g,
                                         const CliqueCover& cover);

}  // namespace ncb
