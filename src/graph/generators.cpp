#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>

namespace ncb {

namespace {

Graph erdos_renyi_bernoulli(std::size_t n, double p, Xoshiro256& rng,
                            GraphStorage storage) {
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) {
        edges.emplace_back(static_cast<ArmId>(i), static_cast<ArmId>(j));
      }
    }
  }
  return Graph::from_unique_edges(n, edges, storage);
}

/// Batagelj–Brandes skip sampling: the strict upper triangle is a linear
/// index space of n(n-1)/2 pairs; between consecutive edges the number of
/// skipped non-edges is geometric, so the loop runs once per *edge*.
Graph erdos_renyi_geometric(std::size_t n, double p, Xoshiro256& rng,
                            GraphStorage storage) {
  if (n < 2 || p <= 0.0) return Graph(n, storage);
  if (p >= 1.0) return complete_graph(n);
  const std::uint64_t total =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  const double log_q = std::log1p(-p);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(
      static_cast<double>(total) * p * 1.05 + 16.0));
  std::uint64_t pos = 0;       // next candidate pair, linear index
  std::size_t row = 0;         // row `i` of the pair at row_start
  std::uint64_t row_start = 0; // linear index of pair (row, row+1)
  for (;;) {
    // Skip ~ Geometric(p) failures before the next edge; u in (0, 1].
    const double u = 1.0 - rng.uniform();
    const double skip = std::floor(std::log(u) / log_q);
    if (skip >= static_cast<double>(total - pos)) break;
    pos += static_cast<std::uint64_t>(skip);
    if (pos >= total) break;
    while (pos >= row_start + (n - 1 - row)) {
      row_start += n - 1 - row;
      ++row;
    }
    const std::size_t col = row + 1 + static_cast<std::size_t>(pos - row_start);
    edges.emplace_back(static_cast<ArmId>(row), static_cast<ArmId>(col));
    if (++pos >= total) break;
  }
  return Graph::from_unique_edges(n, edges, storage);
}

}  // namespace

Graph erdos_renyi(std::size_t n, double p, Xoshiro256& rng,
                  ErSampling sampling, GraphStorage storage) {
  // Negated comparison also rejects NaN (all NaN comparisons are false).
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("erdos_renyi: p outside [0,1]");
  }
  return sampling == ErSampling::kGeometric
             ? erdos_renyi_geometric(n, p, rng, storage)
             : erdos_renyi_bernoulli(n, p, rng, storage);
}

Graph complete_graph(std::size_t n) {
  std::vector<Edge> edges;
  edges.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      edges.emplace_back(static_cast<ArmId>(i), static_cast<ArmId>(j));
    }
  }
  return Graph::from_unique_edges(n, edges);
}

Graph empty_graph(std::size_t n) { return Graph(n); }

Graph star_graph(std::size_t n) {
  if (n == 0) throw std::invalid_argument("star_graph: n must be positive");
  std::vector<Edge> edges;
  for (std::size_t i = 1; i < n; ++i) {
    edges.emplace_back(0, static_cast<ArmId>(i));
  }
  return Graph::from_unique_edges(n, edges);
}

Graph path_graph(std::size_t n) {
  std::vector<Edge> edges;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    edges.emplace_back(static_cast<ArmId>(i), static_cast<ArmId>(i + 1));
  }
  return Graph::from_unique_edges(n, edges);
}

Graph cycle_graph(std::size_t n) {
  if (n < 3) throw std::invalid_argument("cycle_graph: need n >= 3");
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < n; ++i) {
    edges.emplace_back(static_cast<ArmId>(i), static_cast<ArmId>((i + 1) % n));
  }
  return Graph::from_unique_edges(n, edges);
}

Graph grid_graph(std::size_t rows, std::size_t cols) {
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<ArmId>(r * cols + c);
  };
  std::vector<Edge> edges;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph::from_unique_edges(rows * cols, edges);
}

Graph disjoint_cliques(std::size_t num_cliques, std::size_t clique_size) {
  std::vector<Edge> edges;
  for (std::size_t c = 0; c < num_cliques; ++c) {
    const std::size_t base = c * clique_size;
    for (std::size_t i = 0; i < clique_size; ++i) {
      for (std::size_t j = i + 1; j < clique_size; ++j) {
        edges.emplace_back(static_cast<ArmId>(base + i),
                           static_cast<ArmId>(base + j));
      }
    }
  }
  return Graph::from_unique_edges(num_cliques * clique_size, edges);
}

Graph barabasi_albert(std::size_t n, std::size_t attach_edges,
                      Xoshiro256& rng) {
  if (attach_edges == 0 || n < attach_edges) {
    throw std::invalid_argument("barabasi_albert: need n >= attach_edges >= 1");
  }
  std::vector<Edge> edges;
  // Repeated-vertex list: sampling uniformly from it is degree-proportional.
  std::vector<ArmId> targets;
  // Seed: clique on the first attach_edges vertices (or a single vertex).
  for (std::size_t i = 0; i < attach_edges; ++i) {
    for (std::size_t j = i + 1; j < attach_edges; ++j) {
      edges.emplace_back(static_cast<ArmId>(i), static_cast<ArmId>(j));
      targets.push_back(static_cast<ArmId>(i));
      targets.push_back(static_cast<ArmId>(j));
    }
    if (attach_edges == 1) targets.push_back(static_cast<ArmId>(i));
  }
  for (std::size_t v = attach_edges; v < n; ++v) {
    std::set<ArmId> chosen;
    while (chosen.size() < attach_edges) {
      ArmId t;
      if (targets.empty()) {
        t = static_cast<ArmId>(rng.uniform_int(v));
      } else {
        t = targets[rng.uniform_int(targets.size())];
      }
      if (static_cast<std::size_t>(t) < v) chosen.insert(t);
    }
    for (const ArmId t : chosen) {
      edges.emplace_back(static_cast<ArmId>(v), t);
      targets.push_back(static_cast<ArmId>(v));
      targets.push_back(t);
    }
  }
  return Graph::from_unique_edges(n, edges);
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                     Xoshiro256& rng) {
  if (n < 3 || k == 0 || 2 * k >= n) {
    throw std::invalid_argument("watts_strogatz: need n >= 3 and 0 < 2k < n");
  }
  std::set<Edge> edge_set;
  const auto norm = [](ArmId a, ArmId b) {
    return Edge{std::min(a, b), std::max(a, b)};
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 1; d <= k; ++d) {
      edge_set.insert(norm(static_cast<ArmId>(i),
                           static_cast<ArmId>((i + d) % n)));
    }
  }
  // Rewire each lattice edge (i, i+d) with probability beta.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 1; d <= k; ++d) {
      if (!rng.bernoulli(beta)) continue;
      const auto old_edge = norm(static_cast<ArmId>(i),
                                 static_cast<ArmId>((i + d) % n));
      if (!edge_set.count(old_edge)) continue;
      // Pick a new endpoint, avoiding self-loops and duplicates.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const auto j = static_cast<ArmId>(rng.uniform_int(n));
        if (static_cast<std::size_t>(j) == i) continue;
        const auto new_edge = norm(static_cast<ArmId>(i), j);
        if (edge_set.count(new_edge)) continue;
        edge_set.erase(old_edge);
        edge_set.insert(new_edge);
        break;
      }
    }
  }
  return Graph::from_unique_edges(
      n, std::vector<Edge>(edge_set.begin(), edge_set.end()));
}

}  // namespace ncb
