// Relation-graph generators.
//
// The paper's simulations use "uniformly and randomly connected" graphs
// (Erdős–Rényi) with p = 0.3 (sparse) and p = 0.6 (dense); the remaining
// families support the ablation benches and tests.
//
// Every generator emits each edge exactly once and constructs through the
// Graph::from_unique_edges fast path, so building a K = 10^4 instance is
// O(E) with no dedup pass.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace ncb {

/// How erdos_renyi draws its edges. Both produce G(n, p); they consume the
/// RNG stream differently, so the same seed yields different (equally valid)
/// graphs under each method.
enum class ErSampling {
  /// Geometric skip-sampling (Batagelj–Brandes): draws one geometric skip
  /// per *edge*, so generation is O(E) instead of O(K²) — at K = 10^4 and
  /// p = 0.002 that is ~10^5 draws instead of 5·10^7 Bernoulli trials.
  kGeometric,
  /// The legacy per-pair Bernoulli loop, kept for seed-compatibility with
  /// pre-existing experiment outputs and for cross-checking the skip path.
  kBernoulli,
};

/// Erdős–Rényi G(n, p): every pair connected independently w.p. p.
/// `storage` = kCsrOnly skips the Θ(n²/64) bitset rows for large-K runs.
[[nodiscard]] Graph erdos_renyi(std::size_t n, double p, Xoshiro256& rng,
                                ErSampling sampling = ErSampling::kGeometric,
                                GraphStorage storage = GraphStorage::kCsrAndBits);

/// Complete graph K_n (every pull observes everything).
[[nodiscard]] Graph complete_graph(std::size_t n);

/// Empty graph (no side bonus; all policies degenerate to their classical
/// counterparts).
[[nodiscard]] Graph empty_graph(std::size_t n);

/// Star: vertex 0 is the hub connected to all others.
[[nodiscard]] Graph star_graph(std::size_t n);

/// Path 0-1-2-...-(n-1). The paper's Fig. 2 uses the 4-vertex path.
[[nodiscard]] Graph path_graph(std::size_t n);

/// Cycle 0-1-...-(n-1)-0. Requires n >= 3.
[[nodiscard]] Graph cycle_graph(std::size_t n);

/// rows x cols grid with 4-neighborhood.
[[nodiscard]] Graph grid_graph(std::size_t rows, std::size_t cols);

/// Disjoint union of `num_cliques` cliques of size `clique_size` each.
/// Its minimum clique cover is exactly `num_cliques` — handy for testing the
/// Theorem 1 bound's C-dependence.
[[nodiscard]] Graph disjoint_cliques(std::size_t num_cliques,
                                     std::size_t clique_size);

/// Barabási–Albert preferential attachment: start from a clique of
/// `attach_edges` vertices, each new vertex attaches to `attach_edges`
/// distinct existing vertices with probability proportional to degree.
[[nodiscard]] Graph barabasi_albert(std::size_t n, std::size_t attach_edges,
                                    Xoshiro256& rng);

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side, each edge rewired with probability beta.
[[nodiscard]] Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                                   Xoshiro256& rng);

}  // namespace ncb
