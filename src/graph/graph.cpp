#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ncb {
namespace {

void validate_edges(std::size_t num_vertices, const std::vector<Edge>& edges) {
  for (const auto& [a, b] : edges) {
    if (a == b) throw std::invalid_argument("Graph: self-loop not allowed");
    if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= num_vertices ||
        static_cast<std::size_t>(b) >= num_vertices) {
      throw std::out_of_range("Graph: edge endpoint out of range");
    }
  }
}

}  // namespace

Graph::Graph(std::size_t num_vertices, GraphStorage storage)
    : num_vertices_(num_vertices), storage_(storage) {
  build_csr({}, /*dedup=*/false);
}

Graph::Graph(std::size_t num_vertices, const std::vector<Edge>& edges,
             GraphStorage storage)
    : num_vertices_(num_vertices), storage_(storage) {
  validate_edges(num_vertices_, edges);
  build_csr(edges, /*dedup=*/true);
}

Graph::Graph(std::size_t num_vertices, const std::vector<Edge>& edges,
             GraphStorage storage, UniqueEdgesTag)
    : num_vertices_(num_vertices), storage_(storage) {
  validate_edges(num_vertices_, edges);
  build_csr(edges, /*dedup=*/false);
#ifndef NDEBUG
  // The caller promised uniqueness; a duplicate would silently inflate
  // num_edges(). Rows are sorted, so duplicates are adjacent.
  for (std::size_t i = 0; i < num_vertices_; ++i) {
    for (std::size_t k = offsets_[i] + 1; k < offsets_[i + 1]; ++k) {
      assert(neighbors_[k] != neighbors_[k - 1] &&
             "from_unique_edges: duplicate edge");
    }
  }
#endif
}

Graph Graph::from_unique_edges(std::size_t num_vertices,
                               const std::vector<Edge>& edges,
                               GraphStorage storage) {
  return Graph(num_vertices, edges, storage, UniqueEdgesTag{});
}

void Graph::build_csr(const std::vector<Edge>& edges, bool dedup) {
  const std::size_t n = num_vertices_;
  words_per_row_ = (n + 63) / 64;
  // Pad each stored row to a whole cache line (8 words) so row starts keep
  // a uniform 64-byte-friendly alignment; the word-wise OR/AND kernels see
  // only the logical words_per_row_ words. Padding words stay zero.
  row_stride_ = (words_per_row_ + 7) & ~std::size_t{7};
  offsets_.assign(n + 1, 0);
  // Degree counts; each undirected edge contributes one entry per endpoint.
  for (const auto& [a, b] : edges) {
    ++offsets_[static_cast<std::size_t>(a) + 1];
    ++offsets_[static_cast<std::size_t>(b) + 1];
  }
  for (std::size_t i = 0; i < n; ++i) offsets_[i + 1] += offsets_[i];

  // Two-pass counting sort of the 2E directed entries — by destination,
  // then stably by source — so neighbors_ comes out grouped by row with
  // each row sorted ascending, in O(E + K) with no comparison sort. The
  // destination histogram equals the degree histogram (the directed pair
  // set is symmetric), so offsets_ doubles as both cursor seeds.
  const std::size_t entries = 2 * edges.size();
  std::vector<ArmId> by_dst_src(entries);
  std::vector<ArmId> by_dst_dst(entries);
  {
    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (const auto& [a, b] : edges) {
      std::size_t pos = cursor[static_cast<std::size_t>(b)]++;
      by_dst_src[pos] = a;
      by_dst_dst[pos] = b;
      pos = cursor[static_cast<std::size_t>(a)]++;
      by_dst_src[pos] = b;
      by_dst_dst[pos] = a;
    }
  }
  neighbors_.resize(entries);
  {
    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (std::size_t k = 0; k < entries; ++k) {
      neighbors_[cursor[static_cast<std::size_t>(by_dst_src[k])]++] =
          by_dst_dst[k];
    }
  }
  by_dst_src.clear();
  by_dst_src.shrink_to_fit();
  by_dst_dst.clear();
  by_dst_dst.shrink_to_fit();

  if (dedup) {
    // Duplicates (either orientation) are adjacent within a sorted row;
    // compact in place and rebuild the prefix sums.
    std::vector<std::size_t> new_offsets(n + 1, 0);
    std::size_t write = 0;
    for (std::size_t i = 0; i < n; ++i) {
      ArmId prev = kNoArm;
      for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
        const ArmId v = neighbors_[k];
        if (v == prev) continue;
        prev = v;
        neighbors_[write++] = v;
      }
      new_offsets[i + 1] = write;
    }
    neighbors_.resize(write);
    offsets_ = std::move(new_offsets);
  }
  num_edges_ = neighbors_.size() / 2;

  // Closed rows share the neighbor offsets: row i holds deg(i)+1 entries
  // starting at offsets_[i] + i, with i merged into sorted position.
  closed_.resize(neighbors_.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    const ArmId self = static_cast<ArmId>(i);
    const std::size_t begin = offsets_[i];
    const std::size_t end = offsets_[i + 1];
    std::size_t out = begin + i;
    std::size_t k = begin;
    while (k < end && neighbors_[k] < self) closed_[out++] = neighbors_[k++];
    closed_[out++] = self;
    while (k < end) closed_[out++] = neighbors_[k++];
  }

  // Flat bitset rows (adjacency, then adjacency ∪ {i}); skipped in
  // kCsrOnly mode, where they would cost Θ(K²/64) memory.
  if (storage_ == GraphStorage::kCsrOnly) {
    adj_words_.clear();
    closed_words_.clear();
    return;
  }
  adj_words_.assign(n * row_stride_, 0);
  closed_words_.assign(n * row_stride_, 0);
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t* adj_row = adj_words_.data() + i * row_stride_;
    for (std::size_t k = offsets_[i]; k < offsets_[i + 1]; ++k) {
      const auto j = static_cast<std::size_t>(neighbors_[k]);
      adj_row[j >> 6] |= (1ULL << (j & 63));
    }
    std::uint64_t* closed_row = closed_words_.data() + i * row_stride_;
    std::copy(adj_row, adj_row + words_per_row_, closed_row);
    closed_row[i >> 6] |= (1ULL << (i & 63));
  }
}

bool Graph::has_edge(ArmId u, ArmId v) const {
  if (!is_vertex(u) || !is_vertex(v) || u == v) return false;
  if (has_bitset_rows()) {
    return neighbors_bits(u).test(static_cast<std::size_t>(v));
  }
  // CSR-only: rows are sorted, so membership is a binary search.
  const ArmSpan row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (std::size_t i = 0; i < num_vertices_; ++i) {
    for (const ArmId j : neighbors(static_cast<ArmId>(i))) {
      if (static_cast<std::size_t>(j) > i) {
        out.emplace_back(static_cast<ArmId>(i), j);
      }
    }
  }
  return out;
}

Bitset64 Graph::strategy_neighborhood(const ArmSet& arms) const {
  Bitset64 acc(num_vertices_);
  for (const ArmId i : arms) {
    if (!is_vertex(i)) {
      throw std::out_of_range("strategy_neighborhood: arm out of range");
    }
    if (has_bitset_rows()) {
      acc |= closed_neighborhood_bits(i);
    } else {
      for (const ArmId j : closed_neighborhood(i)) {
        acc.set(static_cast<std::size_t>(j));
      }
    }
  }
  return acc;
}

ArmSet Graph::strategy_neighborhood_list(const ArmSet& arms) const {
  return strategy_neighborhood(arms).to_indices();
}

bool Graph::is_independent_set(const ArmSet& arms) const {
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (std::size_t b = a + 1; b < arms.size(); ++b) {
      if (has_edge(arms[a], arms[b])) return false;
    }
  }
  return true;
}

bool Graph::is_clique(const ArmSet& arms) const {
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (std::size_t b = a + 1; b < arms.size(); ++b) {
      if (!has_edge(arms[a], arms[b])) return false;
    }
  }
  return true;
}

Graph Graph::complement() const {
  const std::size_t n = num_vertices_;
  std::vector<Edge> edges_out;
  for (std::size_t i = 0; i < n; ++i) {
    // Walk the sorted neighbor row in step with j; works in both storage
    // modes without touching the bitset rows.
    const ArmSpan row = neighbors(static_cast<ArmId>(i));
    const ArmId* it = std::lower_bound(row.begin(), row.end(),
                                       static_cast<ArmId>(i + 1));
    for (std::size_t j = i + 1; j < n; ++j) {
      if (it != row.end() && static_cast<std::size_t>(*it) == j) {
        ++it;
        continue;
      }
      edges_out.emplace_back(static_cast<ArmId>(i), static_cast<ArmId>(j));
    }
  }
  return Graph(n, edges_out, storage_, UniqueEdgesTag{});
}

Graph Graph::induced_subgraph(const ArmSet& vertices,
                              ArmSet* original_ids) const {
  std::vector<ArmId> map_to_new(num_vertices_, kNoArm);
  for (std::size_t v = 0; v < vertices.size(); ++v) {
    const ArmId orig = vertices[v];
    if (!is_vertex(orig)) {
      throw std::out_of_range("induced_subgraph: vertex out of range");
    }
    if (map_to_new[static_cast<std::size_t>(orig)] != kNoArm) {
      throw std::invalid_argument("induced_subgraph: duplicate vertex");
    }
    map_to_new[static_cast<std::size_t>(orig)] = static_cast<ArmId>(v);
  }
  std::vector<Edge> sub_edges;
  for (std::size_t v = 0; v < vertices.size(); ++v) {
    for (const ArmId nb : neighbors(vertices[v])) {
      const ArmId mapped = map_to_new[static_cast<std::size_t>(nb)];
      if (mapped != kNoArm && mapped > static_cast<ArmId>(v)) {
        sub_edges.emplace_back(static_cast<ArmId>(v), mapped);
      }
    }
  }
  if (original_ids) *original_ids = vertices;
  return Graph(vertices.size(), sub_edges, storage_, UniqueEdgesTag{});
}

std::string Graph::to_string() const {
  std::ostringstream out;
  out << "Graph(V=" << num_vertices_ << ", E=" << num_edges_ << ")\n";
  for (std::size_t i = 0; i < num_vertices_; ++i) {
    out << "  " << i << ":";
    for (const ArmId j : neighbors(static_cast<ArmId>(i))) out << ' ' << j;
    out << '\n';
  }
  return out.str();
}

}  // namespace ncb
