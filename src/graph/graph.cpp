#include "graph/graph.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace ncb {

Graph::Graph(std::size_t num_vertices)
    : adjacency_(num_vertices) {
  build_derived();
}

Graph::Graph(std::size_t num_vertices, const std::vector<Edge>& edges)
    : adjacency_(num_vertices) {
  std::set<Edge> unique;
  for (const auto& [a, b] : edges) {
    if (a == b) throw std::invalid_argument("Graph: self-loop not allowed");
    if (a < 0 || b < 0 || static_cast<std::size_t>(a) >= num_vertices ||
        static_cast<std::size_t>(b) >= num_vertices) {
      throw std::out_of_range("Graph: edge endpoint out of range");
    }
    unique.emplace(std::min(a, b), std::max(a, b));
  }
  for (const auto& [a, b] : unique) {
    adjacency_[static_cast<std::size_t>(a)].push_back(b);
    adjacency_[static_cast<std::size_t>(b)].push_back(a);
  }
  num_edges_ = unique.size();
  for (auto& list : adjacency_) std::sort(list.begin(), list.end());
  build_derived();
}

void Graph::build_derived() {
  const std::size_t n = adjacency_.size();
  closed_.resize(n);
  adj_bits_.assign(n, Bitset64(n));
  closed_bits_.assign(n, Bitset64(n));
  for (std::size_t i = 0; i < n; ++i) {
    closed_[i] = adjacency_[i];
    closed_[i].push_back(static_cast<ArmId>(i));
    std::sort(closed_[i].begin(), closed_[i].end());
    for (const ArmId j : adjacency_[i]) adj_bits_[i].set(static_cast<std::size_t>(j));
    for (const ArmId j : closed_[i]) closed_bits_[i].set(static_cast<std::size_t>(j));
  }
}

bool Graph::has_edge(ArmId u, ArmId v) const {
  if (u < 0 || v < 0 || static_cast<std::size_t>(u) >= num_vertices() ||
      static_cast<std::size_t>(v) >= num_vertices() || u == v) {
    return false;
  }
  return adj_bits_[static_cast<std::size_t>(u)].test(static_cast<std::size_t>(v));
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (std::size_t i = 0; i < adjacency_.size(); ++i) {
    for (const ArmId j : adjacency_[i]) {
      if (static_cast<std::size_t>(j) > i) {
        out.emplace_back(static_cast<ArmId>(i), j);
      }
    }
  }
  return out;
}

Bitset64 Graph::strategy_neighborhood(const ArmSet& arms) const {
  Bitset64 acc(num_vertices());
  for (const ArmId i : arms) {
    acc |= closed_bits_.at(static_cast<std::size_t>(i));
  }
  return acc;
}

ArmSet Graph::strategy_neighborhood_list(const ArmSet& arms) const {
  return strategy_neighborhood(arms).to_indices();
}

bool Graph::is_independent_set(const ArmSet& arms) const {
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (std::size_t b = a + 1; b < arms.size(); ++b) {
      if (has_edge(arms[a], arms[b])) return false;
    }
  }
  return true;
}

bool Graph::is_clique(const ArmSet& arms) const {
  for (std::size_t a = 0; a < arms.size(); ++a) {
    for (std::size_t b = a + 1; b < arms.size(); ++b) {
      if (!has_edge(arms[a], arms[b])) return false;
    }
  }
  return true;
}

Graph Graph::complement() const {
  const std::size_t n = num_vertices();
  std::vector<Edge> edges_out;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (!adj_bits_[i].test(j)) {
        edges_out.emplace_back(static_cast<ArmId>(i), static_cast<ArmId>(j));
      }
    }
  }
  return Graph(n, edges_out);
}

Graph Graph::induced_subgraph(const ArmSet& vertices,
                              ArmSet* original_ids) const {
  std::vector<ArmId> map_to_new(num_vertices(), kNoArm);
  for (std::size_t v = 0; v < vertices.size(); ++v) {
    const ArmId orig = vertices[v];
    if (orig < 0 || static_cast<std::size_t>(orig) >= num_vertices()) {
      throw std::out_of_range("induced_subgraph: vertex out of range");
    }
    if (map_to_new[static_cast<std::size_t>(orig)] != kNoArm) {
      throw std::invalid_argument("induced_subgraph: duplicate vertex");
    }
    map_to_new[static_cast<std::size_t>(orig)] = static_cast<ArmId>(v);
  }
  std::vector<Edge> sub_edges;
  for (std::size_t v = 0; v < vertices.size(); ++v) {
    for (const ArmId nb : neighbors(vertices[v])) {
      const ArmId mapped = map_to_new[static_cast<std::size_t>(nb)];
      if (mapped != kNoArm && mapped > static_cast<ArmId>(v)) {
        sub_edges.emplace_back(static_cast<ArmId>(v), mapped);
      }
    }
  }
  if (original_ids) *original_ids = vertices;
  return Graph(vertices.size(), sub_edges);
}

std::string Graph::to_string() const {
  std::ostringstream out;
  out << "Graph(V=" << num_vertices() << ", E=" << num_edges_ << ")\n";
  for (std::size_t i = 0; i < adjacency_.size(); ++i) {
    out << "  " << i << ":";
    for (const ArmId j : adjacency_[i]) out << ' ' << j;
    out << '\n';
  }
  return out.str();
}

}  // namespace ncb
