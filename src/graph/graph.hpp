// Undirected relation graph over the K arms (paper §II).
//
// The graph is immutable after construction and stored in compressed
// sparse row (CSR) form: one `offsets_` prefix-sum array plus flat,
// per-row-sorted `neighbors_` / `closed_` index arrays, and one flat word
// array per bitset family (adjacency rows, closed rows). Neighborhood
// accessors return non-owning views — Span<ArmId> over the index arrays,
// BitRow over the word arrays — so the hot paths (the runner's per-slot
// closed-neighborhood walk, the index policies' neighbor scans, Y_x
// unions) iterate contiguous memory with no pointer chasing and no
// per-call allocation. Accessors use unchecked indexing; vertex validity
// is a debug-only assert (NDEBUG builds compile it out).
//
// The closed-neighborhood rows reuse the same offsets: row i of `closed_`
// holds deg(i)+1 entries starting at offsets_[i] + i (each row is its
// neighbor row with i merged in sorted position), so no second offset
// array is stored.
#pragma once

#include <cassert>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/bitset64.hpp"
#include "util/span.hpp"
#include "util/types.hpp"

namespace ncb {

/// An undirected edge as an (ordered) vertex pair.
using Edge = std::pair<ArmId, ArmId>;

/// Sorted view over a run of arm ids inside the graph's CSR storage.
using ArmSpan = Span<ArmId>;

/// Which representations a Graph materializes. The bitset rows cost
/// Θ(K²/64) memory (2.5 GB at K = 10⁵, far beyond RAM at 10⁶), so
/// large-K sweeps build CSR-only graphs: every span accessor and the
/// policies' hot paths work unchanged, has_edge falls back to binary
/// search, and only the explicit bit-row accessors are unavailable.
enum class GraphStorage {
  kCsrAndBits,  ///< CSR arrays + per-vertex bitset rows (default).
  kCsrOnly,     ///< CSR arrays only; O(K + E) memory for large K.
};

class Graph {
 public:
  /// Empty graph on `num_vertices` vertices.
  explicit Graph(std::size_t num_vertices,
                 GraphStorage storage = GraphStorage::kCsrAndBits);

  /// Graph from an explicit edge list. Self-loops are rejected; duplicate
  /// edges are deduplicated.
  Graph(std::size_t num_vertices, const std::vector<Edge>& edges,
        GraphStorage storage = GraphStorage::kCsrAndBits);

  /// O(E) fast path for generators: the caller guarantees `edges` contains
  /// no duplicates (in either orientation), so the dedup pass is skipped.
  /// Self-loops and out-of-range endpoints are still rejected; duplicate
  /// edges are a debug-only assert (and silently corrupt num_edges() in
  /// release builds).
  [[nodiscard]] static Graph from_unique_edges(
      std::size_t num_vertices, const std::vector<Edge>& edges,
      GraphStorage storage = GraphStorage::kCsrAndBits);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return num_vertices_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  [[nodiscard]] GraphStorage storage() const noexcept { return storage_; }
  /// True when the bitset rows were materialized (kCsrAndBits).
  [[nodiscard]] bool has_bitset_rows() const noexcept {
    return storage_ == GraphStorage::kCsrAndBits;
  }

  [[nodiscard]] bool has_edge(ArmId u, ArmId v) const;

  /// Open neighborhood N(i): neighbors of i, sorted, excluding i itself.
  [[nodiscard]] ArmSpan neighbors(ArmId i) const noexcept {
    assert(is_vertex(i));
    const auto u = static_cast<std::size_t>(i);
    return {neighbors_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  /// Closed neighborhood N_i = {i} ∪ N(i), sorted. The paper's side-bonus
  /// scope for arm i.
  [[nodiscard]] ArmSpan closed_neighborhood(ArmId i) const noexcept {
    assert(is_vertex(i));
    const auto u = static_cast<std::size_t>(i);
    return {closed_.data() + offsets_[u] + u, offsets_[u + 1] - offsets_[u] + 1};
  }

  /// Closed neighborhood as a bitset row (for unions: Y_x = OR of rows).
  /// Requires has_bitset_rows().
  [[nodiscard]] BitRow closed_neighborhood_bits(ArmId i) const noexcept {
    assert(is_vertex(i));
    assert(has_bitset_rows());
    return {closed_words_.data() + static_cast<std::size_t>(i) * row_stride_,
            words_per_row_, num_vertices_};
  }

  /// Open-neighborhood bitset row. Requires has_bitset_rows().
  [[nodiscard]] BitRow neighbors_bits(ArmId i) const noexcept {
    assert(is_vertex(i));
    assert(has_bitset_rows());
    return {adj_words_.data() + static_cast<std::size_t>(i) * row_stride_,
            words_per_row_, num_vertices_};
  }

  [[nodiscard]] std::size_t degree(ArmId i) const noexcept {
    assert(is_vertex(i));
    const auto u = static_cast<std::size_t>(i);
    return offsets_[u + 1] - offsets_[u];
  }

  /// All edges, each once, with first < second, sorted lexicographically.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Union of closed neighborhoods of `arms`: the paper's Y_x. Arms must be
  /// valid vertices. The OR runs directly over the flat closed-row words.
  [[nodiscard]] Bitset64 strategy_neighborhood(const ArmSet& arms) const;

  /// Same, as a sorted vertex list.
  [[nodiscard]] ArmSet strategy_neighborhood_list(const ArmSet& arms) const;

  /// True iff `arms` is an independent set of this graph.
  [[nodiscard]] bool is_independent_set(const ArmSet& arms) const;

  /// True iff `arms` induces a complete subgraph (a clique).
  [[nodiscard]] bool is_clique(const ArmSet& arms) const;

  /// Complement graph (same vertices; edge iff not present here).
  [[nodiscard]] Graph complement() const;

  /// Vertex-induced subgraph on `vertices` (need not be sorted). Vertex v of
  /// the subgraph corresponds to `vertices[v]` here; the mapping is returned
  /// through `original_ids` when non-null.
  [[nodiscard]] Graph induced_subgraph(const ArmSet& vertices,
                                       ArmSet* original_ids = nullptr) const;

  /// Human-readable adjacency dump (for examples and the Fig. 1/2 benches).
  [[nodiscard]] std::string to_string() const;

 private:
  struct UniqueEdgesTag {};
  Graph(std::size_t num_vertices, const std::vector<Edge>& edges,
        GraphStorage storage, UniqueEdgesTag);

  [[nodiscard]] bool is_vertex(ArmId i) const noexcept {
    return i >= 0 && static_cast<std::size_t>(i) < num_vertices_;
  }

  /// Builds every array from a validated edge list. `dedup` enables the
  /// duplicate-elimination pass of the general constructor.
  void build_csr(const std::vector<Edge>& edges, bool dedup);

  std::size_t num_vertices_ = 0;
  std::size_t num_edges_ = 0;
  GraphStorage storage_ = GraphStorage::kCsrAndBits;
  std::vector<std::size_t> offsets_;    ///< n+1 prefix sums of degrees.
  std::vector<ArmId> neighbors_;        ///< 2E entries, sorted per row.
  std::vector<ArmId> closed_;           ///< 2E+n entries, sorted per row.
  std::size_t words_per_row_ = 0;  ///< logical words: ceil(n / 64).
  std::size_t row_stride_ = 0;     ///< storage stride, cache-line padded.
  std::vector<std::uint64_t> adj_words_;     ///< n rows × row_stride_.
  std::vector<std::uint64_t> closed_words_;  ///< n rows × row_stride_.
};

}  // namespace ncb
