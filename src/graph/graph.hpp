// Undirected relation graph over the K arms (paper §II).
//
// The graph is immutable after construction. It stores both sorted adjacency
// lists (for iteration) and per-vertex bitset rows (for O(K/64) neighborhood
// unions, the core of the combinatorial-play machinery).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/bitset64.hpp"
#include "util/types.hpp"

namespace ncb {

/// An undirected edge as an (ordered) vertex pair.
using Edge = std::pair<ArmId, ArmId>;

class Graph {
 public:
  /// Empty graph on `num_vertices` vertices.
  explicit Graph(std::size_t num_vertices);

  /// Graph from an explicit edge list. Self-loops are rejected; duplicate
  /// edges are deduplicated.
  Graph(std::size_t num_vertices, const std::vector<Edge>& edges);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  [[nodiscard]] bool has_edge(ArmId u, ArmId v) const;

  /// Open neighborhood N(i): neighbors of i, sorted, excluding i itself.
  [[nodiscard]] const std::vector<ArmId>& neighbors(ArmId i) const {
    return adjacency_.at(static_cast<std::size_t>(i));
  }

  /// Closed neighborhood N_i = {i} ∪ N(i), sorted. The paper's side-bonus
  /// scope for arm i.
  [[nodiscard]] const std::vector<ArmId>& closed_neighborhood(ArmId i) const {
    return closed_.at(static_cast<std::size_t>(i));
  }

  /// Closed neighborhood as a bitset (for unions: Y_x = OR of rows).
  [[nodiscard]] const Bitset64& closed_neighborhood_bits(ArmId i) const {
    return closed_bits_.at(static_cast<std::size_t>(i));
  }

  /// Open-neighborhood bitset row.
  [[nodiscard]] const Bitset64& neighbors_bits(ArmId i) const {
    return adj_bits_.at(static_cast<std::size_t>(i));
  }

  [[nodiscard]] std::size_t degree(ArmId i) const {
    return adjacency_.at(static_cast<std::size_t>(i)).size();
  }

  /// All edges, each once, with first < second, sorted lexicographically.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Union of closed neighborhoods of `arms`: the paper's Y_x. Arms must be
  /// valid vertices.
  [[nodiscard]] Bitset64 strategy_neighborhood(const ArmSet& arms) const;

  /// Same, as a sorted vertex list.
  [[nodiscard]] ArmSet strategy_neighborhood_list(const ArmSet& arms) const;

  /// True iff `arms` is an independent set of this graph.
  [[nodiscard]] bool is_independent_set(const ArmSet& arms) const;

  /// True iff `arms` induces a complete subgraph (a clique).
  [[nodiscard]] bool is_clique(const ArmSet& arms) const;

  /// Complement graph (same vertices; edge iff not present here).
  [[nodiscard]] Graph complement() const;

  /// Vertex-induced subgraph on `vertices` (need not be sorted). Vertex v of
  /// the subgraph corresponds to `vertices[v]` here; the mapping is returned
  /// through `original_ids` when non-null.
  [[nodiscard]] Graph induced_subgraph(const ArmSet& vertices,
                                       ArmSet* original_ids = nullptr) const;

  /// Human-readable adjacency dump (for examples and the Fig. 1/2 benches).
  [[nodiscard]] std::string to_string() const;

 private:
  void build_derived();

  std::vector<std::vector<ArmId>> adjacency_;
  std::vector<std::vector<ArmId>> closed_;
  std::vector<Bitset64> adj_bits_;
  std::vector<Bitset64> closed_bits_;
  std::size_t num_edges_ = 0;
};

}  // namespace ncb
