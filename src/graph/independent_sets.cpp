#include "graph/independent_sets.hpp"

#include <algorithm>
#include <functional>

namespace ncb {
namespace {

void enumerate_rec(const Graph& g, std::size_t max_size, ArmId start,
                   ArmSet& current, const Bitset64& blocked,
                   std::vector<ArmSet>& out) {
  const auto n = static_cast<ArmId>(g.num_vertices());
  for (ArmId v = start; v < n; ++v) {
    if (blocked.test(static_cast<std::size_t>(v))) continue;
    current.push_back(v);
    out.push_back(current);
    if (max_size == 0 || current.size() < max_size) {
      Bitset64 next_blocked = blocked;
      next_blocked |= g.neighbors_bits(v);
      next_blocked.set(static_cast<std::size_t>(v));
      enumerate_rec(g, max_size, v + 1, current, next_blocked, out);
    }
    current.pop_back();
  }
}

}  // namespace

std::vector<ArmSet> enumerate_independent_sets(const Graph& g,
                                               std::size_t max_size) {
  std::vector<ArmSet> out;
  ArmSet current;
  enumerate_rec(g, max_size, 0, current, Bitset64(g.num_vertices()), out);
  std::sort(out.begin(), out.end(), [](const ArmSet& a, const ArmSet& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  return out;
}

namespace {

/// Bron–Kerbosch with pivoting over the *independence* relation:
/// two vertices are compatible iff NOT adjacent in g.
void bron_kerbosch(const Graph& g, Bitset64 r, Bitset64 p, Bitset64 x,
                   std::vector<ArmSet>& out) {
  if (p.none() && x.none()) {
    out.push_back(r.to_indices());
    return;
  }
  // Pivot: vertex of P ∪ X with the most "compatible" vertices in P.
  ArmId pivot = kNoArm;
  std::size_t best = 0;
  Bitset64 pux = p;
  pux |= x;
  pux.for_each([&](ArmId u) {
    Bitset64 compat = p;
    compat.and_not(g.neighbors_bits(u));  // non-neighbors of u within P
    compat.reset(static_cast<std::size_t>(u));
    const std::size_t cnt = compat.count();
    if (pivot == kNoArm || cnt > best) {
      pivot = u;
      best = cnt;
    }
  });
  // Candidates: P minus the pivot's compatible set = P ∩ (neighbors(pivot) ∪ {pivot}).
  Bitset64 candidates = p;
  if (pivot != kNoArm) {
    // Incompatible-with-pivot = adjacency; materialize the row view.
    Bitset64 compat(g.neighbors_bits(pivot));
    // Vertices NOT adjacent to pivot (other than pivot) can be skipped;
    // iterate only over P ∩ (adj(pivot) ∪ {pivot}).
    Bitset64 keep = compat;
    keep.set(static_cast<std::size_t>(pivot));
    candidates &= keep;
  }
  candidates.for_each([&](ArmId v) {
    Bitset64 nr = r;
    nr.set(static_cast<std::size_t>(v));
    // Compatible set of v: all vertices not adjacent to v, excluding v.
    Bitset64 np = p;
    np.and_not(g.neighbors_bits(v));
    np.reset(static_cast<std::size_t>(v));
    Bitset64 nx = x;
    nx.and_not(g.neighbors_bits(v));
    nx.reset(static_cast<std::size_t>(v));
    bron_kerbosch(g, nr, np, nx, out);
    p.reset(static_cast<std::size_t>(v));
    x.set(static_cast<std::size_t>(v));
  });
}

}  // namespace

std::vector<ArmSet> enumerate_maximal_independent_sets(const Graph& g) {
  const std::size_t n = g.num_vertices();
  Bitset64 p(n), r(n), x(n);
  for (std::size_t v = 0; v < n; ++v) p.set(v);
  std::vector<ArmSet> out;
  bron_kerbosch(g, r, p, x, out);
  std::sort(out.begin(), out.end(), [](const ArmSet& a, const ArmSet& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  return out;
}

ArmSet maximum_independent_set(const Graph& g) {
  std::vector<double> weights(g.num_vertices(), 1.0);
  return maximum_weight_independent_set(g, weights);
}

namespace {

void mwis_rec(const Graph& g, const std::vector<double>& weights,
              ArmId start, ArmSet& current, double current_weight,
              const Bitset64& blocked, double remaining_weight,
              ArmSet& best, double& best_weight) {
  if (current_weight > best_weight) {
    best_weight = current_weight;
    best = current;
  }
  if (current_weight + remaining_weight <= best_weight) return;  // prune
  const auto n = static_cast<ArmId>(g.num_vertices());
  double rem = remaining_weight;
  for (ArmId v = start; v < n; ++v) {
    const double w = weights[static_cast<std::size_t>(v)];
    if (blocked.test(static_cast<std::size_t>(v))) continue;
    if (current_weight + rem <= best_weight) return;
    current.push_back(v);
    Bitset64 next_blocked = blocked;
    next_blocked |= g.neighbors_bits(v);
    next_blocked.set(static_cast<std::size_t>(v));
    mwis_rec(g, weights, v + 1, current, current_weight + w, next_blocked,
             rem - w, best, best_weight);
    current.pop_back();
    rem -= w;
  }
}

}  // namespace

ArmSet maximum_weight_independent_set(const Graph& g,
                                      const std::vector<double>& weights) {
  double total = 0.0;
  for (const double w : weights) total += std::max(w, 0.0);
  ArmSet best, current;
  double best_weight = 0.0;
  mwis_rec(g, weights, 0, current, 0.0, Bitset64(g.num_vertices()), total,
           best, best_weight);
  return best;
}

}  // namespace ncb
