// Independent-set enumeration.
//
// The paper's Fig. 2 feasible strategy set is the family of (non-empty)
// independent sets of the relation graph (maximum-weight independent set
// with unknown stochastic weights). These helpers enumerate that family for
// the strategy module and compute maximum independent sets for tests.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace ncb {

/// All non-empty independent sets with at most `max_size` vertices
/// (max_size = 0 means no size limit). Sets are sorted internally and the
/// family is sorted lexicographically by (size, content) for determinism.
/// Exponential output; intended for small K.
[[nodiscard]] std::vector<ArmSet> enumerate_independent_sets(
    const Graph& g, std::size_t max_size = 0);

/// All *maximal* independent sets (Bron–Kerbosch with pivoting on the
/// complement-clique view).
[[nodiscard]] std::vector<ArmSet> enumerate_maximal_independent_sets(
    const Graph& g);

/// One maximum-cardinality independent set (exact, exponential).
[[nodiscard]] ArmSet maximum_independent_set(const Graph& g);

/// Maximum-weight independent set for given non-negative vertex weights
/// (exact branch and bound). Used as a combinatorial oracle in tests.
[[nodiscard]] ArmSet maximum_weight_independent_set(
    const Graph& g, const std::vector<double>& weights);

}  // namespace ncb
