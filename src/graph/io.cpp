#include "graph/io.hpp"

#include <sstream>
#include <stdexcept>

namespace ncb {

std::string to_edge_list(const Graph& g) {
  std::ostringstream out;
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges()) {
    out << u << ' ' << v << '\n';
  }
  return out.str();
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  std::size_t num_vertices = 0, num_edges = 0;
  bool have_header = false;
  std::vector<Edge> edges;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    if (!have_header) {
      if (!(fields >> num_vertices >> num_edges)) {
        if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
        throw std::invalid_argument("edge list: malformed header");
      }
      have_header = true;
      continue;
    }
    long u = 0, v = 0;
    if (!(fields >> u >> v)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      throw std::invalid_argument("edge list: malformed edge at line " +
                                  std::to_string(line_no));
    }
    edges.emplace_back(static_cast<ArmId>(u), static_cast<ArmId>(v));
  }
  if (!have_header) throw std::invalid_argument("edge list: missing header");
  if (edges.size() != num_edges) {
    throw std::invalid_argument("edge list: expected " +
                                std::to_string(num_edges) + " edges, got " +
                                std::to_string(edges.size()));
  }
  return Graph(num_vertices, edges);  // validates ranges / self-loops
}

Graph parse_edge_list(const std::string& text) {
  std::istringstream in(text);
  return read_edge_list(in);
}

std::string to_dot(const Graph& g, const std::string& name,
                   const std::vector<std::string>* labels) {
  if (labels && labels->size() != g.num_vertices()) {
    throw std::invalid_argument("to_dot: one label per vertex required");
  }
  std::ostringstream out;
  out << "graph " << name << " {\n";
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    out << "  " << v;
    if (labels) out << " [label=\"" << (*labels)[v] << "\"]";
    out << ";\n";
  }
  for (const auto& [u, v] : g.edges()) {
    out << "  " << u << " -- " << v << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace ncb
