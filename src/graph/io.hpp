// Graph serialization: a plain edge-list text format (round-trippable) and
// Graphviz DOT export for visualizing relation graphs and strategy graphs.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace ncb {

/// Edge-list text format:
///   line 1: "<num_vertices> <num_edges>"
///   one "u v" pair per following line (u < v)
/// Comments (# ...) and blank lines are ignored when parsing.
[[nodiscard]] std::string to_edge_list(const Graph& g);

/// Parses the edge-list format; throws std::invalid_argument on malformed
/// input (bad header, vertex out of range, self-loop, wrong edge count).
[[nodiscard]] Graph parse_edge_list(const std::string& text);

/// Reads an edge list from a stream (same format/errors as parse_edge_list).
[[nodiscard]] Graph read_edge_list(std::istream& in);

/// Graphviz DOT (undirected). `name` becomes the graph id; optional
/// per-vertex labels (defaults to the vertex index).
[[nodiscard]] std::string to_dot(const Graph& g,
                                 const std::string& name = "G",
                                 const std::vector<std::string>* labels = nullptr);

}  // namespace ncb
