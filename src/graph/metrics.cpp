#include "graph/metrics.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "graph/clique_cover.hpp"

namespace ncb {

std::vector<ArmSet> connected_components(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<bool> visited(n, false);
  std::vector<ArmSet> components;
  std::vector<ArmId> stack;
  for (std::size_t s = 0; s < n; ++s) {
    if (visited[s]) continue;
    ArmSet comp;
    stack.push_back(static_cast<ArmId>(s));
    visited[s] = true;
    while (!stack.empty()) {
      const ArmId v = stack.back();
      stack.pop_back();
      comp.push_back(v);
      for (const ArmId nb : g.neighbors(v)) {
        if (!visited[static_cast<std::size_t>(nb)]) {
          visited[static_cast<std::size_t>(nb)] = true;
          stack.push_back(nb);
        }
      }
    }
    std::sort(comp.begin(), comp.end());
    components.push_back(std::move(comp));
  }
  return components;
}

GraphMetrics compute_metrics(const Graph& g) {
  GraphMetrics m;
  m.num_vertices = g.num_vertices();
  m.num_edges = g.num_edges();
  if (m.num_vertices >= 2) {
    m.density = 2.0 * static_cast<double>(m.num_edges) /
                (static_cast<double>(m.num_vertices) *
                 static_cast<double>(m.num_vertices - 1));
  }
  if (m.num_vertices > 0) {
    m.min_degree = g.degree(0);
    for (std::size_t v = 0; v < m.num_vertices; ++v) {
      const std::size_t d = g.degree(static_cast<ArmId>(v));
      m.avg_degree += static_cast<double>(d);
      m.min_degree = std::min(m.min_degree, d);
      m.max_degree = std::max(m.max_degree, d);
    }
    m.avg_degree /= static_cast<double>(m.num_vertices);
  }
  m.num_components = connected_components(g).size();
  m.greedy_clique_cover_size = greedy_clique_cover(g).size();
  return m;
}

std::string GraphMetrics::to_string() const {
  std::ostringstream out;
  out << "V=" << num_vertices << " E=" << num_edges << " density=" << density
      << " deg[min/avg/max]=" << min_degree << '/' << avg_degree << '/'
      << max_degree << " components=" << num_components
      << " greedy_clique_cover=" << greedy_clique_cover_size;
  return out.str();
}

}  // namespace ncb
