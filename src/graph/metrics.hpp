// Descriptive graph statistics for experiment reporting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ncb {

struct GraphMetrics {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  double density = 0.0;       ///< 2E / (V(V-1)); 0 for V < 2.
  double avg_degree = 0.0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  std::size_t num_components = 0;
  std::size_t greedy_clique_cover_size = 0;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] GraphMetrics compute_metrics(const Graph& g);

/// Connected components; each component is a sorted vertex list, components
/// sorted by smallest member.
[[nodiscard]] std::vector<ArmSet> connected_components(const Graph& g);

}  // namespace ncb
