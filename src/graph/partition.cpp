#include "graph/partition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ncb {

double default_delta0(std::size_t num_arms, std::int64_t horizon,
                      double alpha) {
  if (num_arms == 0 || horizon <= 0) {
    throw std::invalid_argument("default_delta0: need arms > 0, horizon > 0");
  }
  return alpha * std::sqrt(static_cast<double>(num_arms) /
                           static_cast<double>(horizon));
}

std::vector<double> gaps_from_means(const std::vector<double>& means) {
  if (means.empty()) return {};
  const double best = *std::max_element(means.begin(), means.end());
  std::vector<double> gaps(means.size());
  for (std::size_t i = 0; i < means.size(); ++i) gaps[i] = best - means[i];
  return gaps;
}

ThresholdPartition threshold_partition(const Graph& g,
                                       const std::vector<double>& gaps,
                                       double delta0) {
  if (gaps.size() != g.num_vertices()) {
    throw std::invalid_argument("threshold_partition: gaps/vertices mismatch");
  }
  ThresholdPartition out{delta0, {}, {}, Graph(0), {}, {}};
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    if (gaps[i] <= delta0) {
      out.k1.push_back(static_cast<ArmId>(i));
    } else {
      out.k2.push_back(static_cast<ArmId>(i));
    }
  }
  out.subgraph_h = g.induced_subgraph(out.k2, &out.h_to_original);
  out.cover = greedy_clique_cover(out.subgraph_h);
  return out;
}

}  // namespace ncb
