// The Δ-threshold graph partition from the proof of Theorem 1 (paper Fig. 1).
//
// Arms with gap Δ_i ≤ δ0 form K1 and are removed; the vertex-induced
// subgraph H over K2 = {i : Δ_i > δ0} is covered by cliques. The theory
// module evaluates the Theorem 1 bound using |C(H)|; the fig1 bench prints
// the construction.
#pragma once

#include <vector>

#include "graph/clique_cover.hpp"
#include "graph/graph.hpp"

namespace ncb {

struct ThresholdPartition {
  double delta0 = 0.0;          ///< The split threshold δ0 = α·sqrt(K/n).
  ArmSet k1;                    ///< Arms with Δ_i ≤ δ0 (near-optimal).
  ArmSet k2;                    ///< Arms with Δ_i > δ0 (clearly suboptimal).
  Graph subgraph_h;             ///< Vertex-induced subgraph of G on k2.
  ArmSet h_to_original;         ///< Maps H's vertex v to its id in G.
  CliqueCover cover;            ///< Greedy clique cover of H (ids in H).

  /// Clique cover size C used in the Theorem 1 bound.
  [[nodiscard]] std::size_t clique_cover_size() const noexcept {
    return cover.size();
  }
};

/// Paper's default threshold δ0 = α·sqrt(K/n) with α = e (Theorem 1 proof).
[[nodiscard]] double default_delta0(std::size_t num_arms, std::int64_t horizon,
                                    double alpha = 2.718281828459045);

/// Computes gaps Δ_i = μ* − μ_i from means.
[[nodiscard]] std::vector<double> gaps_from_means(
    const std::vector<double>& means);

/// Builds the full partition: split by δ0, induce H, cover it greedily.
[[nodiscard]] ThresholdPartition threshold_partition(
    const Graph& g, const std::vector<double>& gaps, double delta0);

}  // namespace ncb
