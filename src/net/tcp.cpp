#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace ncb::net {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error(message);
}

void set_nonblocking(int fd, bool nonblocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail(std::string("fcntl(F_GETFL): ") + std::strerror(errno));
  const int wanted = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, wanted) < 0) {
    fail(std::string("fcntl(F_SETFL): ") + std::strerror(errno));
  }
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best effort: a transport that cannot set NODELAY still works, just
  // with Nagle latency on small frames.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// Resolves host:port to an IPv4 sockaddr. Numeric addresses and hostnames
/// both go through getaddrinfo; failures name the endpoint.
sockaddr_in resolve(const HostPort& address) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const std::string port = std::to_string(address.port);
  const int rc =
      ::getaddrinfo(address.host.c_str(), port.c_str(), &hints, &found);
  if (rc != 0) {
    fail("cannot resolve '" + format_host_port(address) +
         "': " + ::gai_strerror(rc));
  }
  sockaddr_in out{};
  std::memcpy(&out, found->ai_addr, sizeof out);
  ::freeaddrinfo(found);
  return out;
}

std::string peer_name(const sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = {0};
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip);
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

std::string format_host_port(const HostPort& address) {
  return address.host + ":" + std::to_string(address.port);
}

HostPort parse_host_port(const std::string& text, const std::string& flag) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    throw std::invalid_argument(flag + ": expected host:port, got '" + text +
                                "'");
  }
  HostPort out;
  out.host = text.substr(0, colon);
  const std::string port = text.substr(colon + 1);
  if (port.empty() ||
      port.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument(flag + ": port must be a decimal integer, "
                                       "got '" +
                                port + "' in '" + text + "'");
  }
  unsigned long value = 0;
  try {
    value = std::stoul(port);
  } catch (const std::exception&) {
    value = 65536;  // overflow → out-of-range error below
  }
  if (value > 65535) {
    throw std::invalid_argument(flag + ": port " + port +
                                " is out of range (0-65535)");
  }
  out.port = static_cast<std::uint16_t>(value);
  return out;
}

int tcp_connect(const HostPort& address, int timeout_ms) {
  const sockaddr_in target = resolve(address);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) fail(std::string("socket: ") + std::strerror(errno));

  try {
    set_nonblocking(fd, true);
    int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&target),
                       sizeof target);
    if (rc < 0 && errno != EINPROGRESS) {
      if (errno == ECONNREFUSED) {
        fail("connection refused by " + format_host_port(address) +
             " — is the coordinator listening?");
      }
      fail("connect to " + format_host_port(address) +
           " failed: " + std::strerror(errno));
    }
    if (rc < 0) {
      // In progress: wait for writability, then read the final status.
      pollfd waiter{fd, POLLOUT, 0};
      do {
        rc = ::poll(&waiter, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc == 0) {
        fail("connect to " + format_host_port(address) + " timed out after " +
             std::to_string(timeout_ms) + " ms");
      }
      if (rc < 0) fail(std::string("poll: ") + std::strerror(errno));
      int status = 0;
      socklen_t len = sizeof status;
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &status, &len) < 0) {
        fail(std::string("getsockopt(SO_ERROR): ") + std::strerror(errno));
      }
      if (status == ECONNREFUSED) {
        fail("connection refused by " + format_host_port(address) +
             " — is the coordinator listening?");
      }
      if (status != 0) {
        fail("connect to " + format_host_port(address) +
             " failed: " + std::strerror(status));
      }
    }
    set_nonblocking(fd, false);
    set_nodelay(fd);
    return fd;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

int tcp_connect_retry(const HostPort& address, int timeout_ms,
                      int retry_total_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(retry_total_ms);
  while (true) {
    try {
      return tcp_connect(address, timeout_ms);
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      const bool refused = what.find("refused") != std::string::npos;
      if (!refused || std::chrono::steady_clock::now() >= deadline) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
}

TcpListener::TcpListener(const HostPort& bind_address) {
  const sockaddr_in target = resolve(bind_address);
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) fail(std::string("socket: ") + std::strerror(errno));
  try {
    const int one = 1;
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one) < 0) {
      fail(std::string("setsockopt(SO_REUSEADDR): ") + std::strerror(errno));
    }
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&target),
               sizeof target) < 0) {
      if (errno == EADDRINUSE) {
        fail("address already in use: " + format_host_port(bind_address) +
             " — another coordinator (or a lingering socket) holds the port");
      }
      fail("bind " + format_host_port(bind_address) +
           " failed: " + std::strerror(errno));
    }
    if (::listen(fd_, 64) < 0) {
      fail(std::string("listen: ") + std::strerror(errno));
    }
    sockaddr_in actual{};
    socklen_t len = sizeof actual;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&actual), &len) < 0) {
      fail(std::string("getsockname: ") + std::strerror(errno));
    }
    bound_.host = bind_address.host;
    bound_.port = ntohs(actual.sin_port);
    set_nonblocking(fd_, true);
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<std::pair<int, std::string>> TcpListener::accept_pending() {
  std::vector<std::pair<int, std::string>> accepted;
  while (true) {
    sockaddr_in peer{};
    socklen_t len = sizeof peer;
    const int fd = ::accept4(fd_, reinterpret_cast<sockaddr*>(&peer), &len,
                             SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      fail(std::string("accept: ") + std::strerror(errno));
    }
    set_nodelay(fd);
    accepted.emplace_back(fd, peer_name(peer));
  }
  return accepted;
}

}  // namespace ncb::net
