// TCP plumbing for the multi-machine transport: host:port parsing with
// flag-named errors, nonblocking connect with a timeout, and a listening
// socket. Everything above this file only ever sees connected stream fds —
// the dist/protocol framing and the worker loops are transport-agnostic by
// construction, so this is the whole cost of going multi-machine.
//
// Error style: every failure names the endpoint (and, for parse errors,
// the CLI flag) so a misconfigured cluster run fails with "--listen: ..."
// or "connection refused by 10.0.0.7:9000", never a bare errno.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ncb::net {

struct HostPort {
  std::string host;
  std::uint16_t port = 0;  ///< 0 = let the kernel pick (listeners only).
};

/// Renders "host:port".
[[nodiscard]] std::string format_host_port(const HostPort& address);

/// Parses "host:port". `flag` names the CLI flag in error messages (e.g.
/// "--listen"), so validation failures are field-named. Throws
/// std::invalid_argument on a missing colon, empty host, or a port that is
/// not a decimal integer in [0, 65535].
[[nodiscard]] HostPort parse_host_port(const std::string& text,
                                       const std::string& flag);

/// Connects to `address` with a nonblocking connect bounded by
/// `timeout_ms`, then switches the socket back to blocking and sets
/// TCP_NODELAY (frames are latency-sensitive and already batched by the
/// callers). Throws std::runtime_error naming the endpoint on refused
/// connections, timeouts, and resolution failures.
[[nodiscard]] int tcp_connect(const HostPort& address, int timeout_ms);

/// tcp_connect that retries refused connections (the worker-starts-before-
/// the-coordinator race) until `retry_total_ms` has elapsed. Other errors
/// propagate immediately.
[[nodiscard]] int tcp_connect_retry(const HostPort& address, int timeout_ms,
                                    int retry_total_ms);

/// A nonblocking listening TCP socket with SO_REUSEADDR. Binding a port
/// that is already taken throws a named "address already in use" error
/// instead of a bare EADDRINUSE.
class TcpListener {
 public:
  explicit TcpListener(const HostPort& bind_address);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  /// The bound address; when the requested port was 0 this carries the
  /// kernel-assigned port (what a coordinator advertises to workers).
  [[nodiscard]] const HostPort& bound() const noexcept { return bound_; }

  /// Accepts every currently pending connection (the listener is
  /// nonblocking, so this drains and returns). Each accepted socket is
  /// blocking with TCP_NODELAY set; returns (fd, "ip:port") pairs.
  [[nodiscard]] std::vector<std::pair<int, std::string>> accept_pending();

 private:
  int fd_ = -1;
  HostPort bound_;
};

}  // namespace ncb::net
