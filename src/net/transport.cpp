#include "net/transport.hpp"

#include <signal.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

#include "dist/process.hpp"

namespace ncb::net {

Peer StreamTransport::spawn_peer() {
  throw std::logic_error("this transport cannot spawn peers");
}

std::vector<Peer> StreamTransport::accept_ready() {
  throw std::logic_error("this transport does not accept connections");
}

ProcessTransport::ProcessTransport(std::vector<std::string> worker_command)
    : worker_command_(std::move(worker_command)) {
  if (worker_command_.empty()) {
    throw std::invalid_argument("ProcessTransport: empty worker command");
  }
}

Peer ProcessTransport::spawn_peer() {
  const dist::WorkerProcess proc = dist::spawn_worker(worker_command_);
  Peer peer;
  peer.fd = proc.fd;
  peer.pid = proc.pid;
  peer.where = "process " + std::to_string(proc.pid);
  return peer;
}

void ProcessTransport::release_peer(Peer& peer) {
  if (peer.fd >= 0) {
    ::close(peer.fd);
    peer.fd = -1;
  }
  if (peer.pid > 0) {
    // SIGKILL is safe on an already-exited child: it stays a zombie (and
    // thus holds its pid) until the reap below.
    dist::kill_worker(peer.pid, SIGKILL);
    dist::reap_worker(peer.pid);
    peer.pid = -1;
  }
}

std::string ProcessTransport::describe() const {
  return "fork/exec of " + worker_command_.front();
}

TcpServerTransport::TcpServerTransport(const HostPort& bind_address)
    : listener_(bind_address) {}

std::vector<Peer> TcpServerTransport::accept_ready() {
  std::vector<Peer> peers;
  for (auto& [fd, name] : listener_.accept_pending()) {
    Peer peer;
    peer.fd = fd;
    peer.where = name;
    peers.push_back(std::move(peer));
  }
  return peers;
}

void TcpServerTransport::release_peer(Peer& peer) {
  if (peer.fd >= 0) {
    ::close(peer.fd);
    peer.fd = -1;
  }
}

std::string TcpServerTransport::describe() const {
  return "tcp " + format_host_port(listener_.bound());
}

}  // namespace ncb::net
