// StreamTransport: where worker connections come from. The dispatch layer
// (dist/ and replay/) speaks length-prefixed frames over a connected,
// ordered byte stream and never cares how that stream came to exist; this
// interface pins down the two ways one does:
//
//   ProcessTransport    fork+exec of our own binary over a socketpair —
//                       the single-machine path; the coordinator can mint
//                       peers on demand (can_spawn() == true).
//   TcpServerTransport  a listening TCP socket — workers on other machines
//                       dial in with --worker-connect; the coordinator
//                       admits whoever completes the handshake and cannot
//                       create peers itself.
//
// The asymmetry (spawn vs accept) is the whole interface: everything else
// about a peer — framing, handshake, job protocol, crash requeue — is
// byte-identical across transports, which is what the byte-identical
// output guarantee rides on.
#pragma once

#include <sys/types.h>

#include <memory>
#include <string>
#include <vector>

#include "net/tcp.hpp"

namespace ncb::net {

/// One connected worker stream. `pid` is set only for process-transport
/// peers (it is what release must reap); `where` is a human label for logs
/// ("process 12345" or "10.0.0.7:51324").
struct Peer {
  int fd = -1;
  pid_t pid = -1;
  std::string where;
};

class StreamTransport {
 public:
  virtual ~StreamTransport() = default;

  /// Listening fd to poll for inbound connections, or -1 when peers are
  /// spawned rather than accepted.
  [[nodiscard]] virtual int listen_fd() const noexcept { return -1; }
  /// Whether the coordinator can create peers on demand (process
  /// transport). When false, the fleet is whoever connects.
  [[nodiscard]] virtual bool can_spawn() const noexcept { return false; }
  /// Creates one peer (only when can_spawn()). Throws on failure.
  [[nodiscard]] virtual Peer spawn_peer();
  /// Drains pending inbound connections (only when listen_fd() >= 0).
  [[nodiscard]] virtual std::vector<Peer> accept_ready();
  /// Severs one peer: closes the fd and, for spawned peers, kills and
  /// reaps the process. Idempotent; `peer.fd` is -1 afterwards.
  virtual void release_peer(Peer& peer) = 0;
  /// Human description for logs ("fork/exec of <binary>" / "tcp <addr>").
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Spawns workers as child processes of this coordinator over AF_UNIX
/// socketpairs (the original src/dist/ path).
class ProcessTransport final : public StreamTransport {
 public:
  explicit ProcessTransport(std::vector<std::string> worker_command);

  [[nodiscard]] bool can_spawn() const noexcept override { return true; }
  [[nodiscard]] Peer spawn_peer() override;
  void release_peer(Peer& peer) override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::vector<std::string> worker_command_;
};

/// Accepts workers over a listening TCP socket. The coordinator never
/// spawns; remote `--worker-connect` processes dial in.
class TcpServerTransport final : public StreamTransport {
 public:
  explicit TcpServerTransport(const HostPort& bind_address);

  [[nodiscard]] int listen_fd() const noexcept override {
    return listener_.fd();
  }
  [[nodiscard]] std::vector<Peer> accept_ready() override;
  void release_peer(Peer& peer) override;
  [[nodiscard]] std::string describe() const override;

  /// Bound address (carries the kernel-assigned port for --listen host:0).
  [[nodiscard]] const HostPort& bound() const noexcept {
    return listener_.bound();
  }

 private:
  TcpListener listener_;
};

}  // namespace ncb::net
