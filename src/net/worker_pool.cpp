#include "net/worker_pool.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace ncb::net {

namespace {

/// Frame header bytes (u32 length + u8 type) for byte accounting.
constexpr std::uint64_t kFrameOverhead = 5;

obs::MetricsRegistry& pool_registry(const WorkerPool::Options& options) {
  return options.metrics != nullptr ? *options.metrics
                                    : obs::MetricsRegistry::global();
}

}  // namespace

WorkerPool::WorkerPool(const Options& options, Hooks hooks)
    : transport_(options.transport), options_(options),
      hooks_(std::move(hooks)), registry_(pool_registry(options)),
      m_admitted_(registry_.counter("dist.workers.admitted")),
      m_lost_(registry_.counter("dist.workers.lost")),
      m_rejected_(registry_.counter("dist.workers.rejected")),
      m_active_(registry_.gauge("dist.workers.active")),
      m_bytes_in_(registry_.counter("dist.bytes.in")),
      m_bytes_out_(registry_.counter("dist.bytes.out")) {
  if (transport_ == nullptr) {
    throw std::invalid_argument("WorkerPool: null transport");
  }
}

WorkerPool::~WorkerPool() {
  for (PoolWorker& worker : workers_) {
    if (worker.peer.fd >= 0) {
      transport_->release_peer(worker.peer);
      --live_;
      if (worker.admitted) m_active_.add(-1);  // keep the gauge true
    }
  }
}

void WorkerPool::spawn(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    PoolWorker worker;
    worker.peer = transport_->spawn_peer();
    workers_.push_back(std::move(worker));
    ++live_;
  }
}

void WorkerPool::admit_pending() {
  for (Peer& peer : transport_->accept_ready()) {
    PoolWorker worker;
    worker.peer = std::move(peer);
    workers_.push_back(std::move(worker));
    ++live_;
  }
}

void WorkerPool::update_worker_gauges(PoolWorker& worker) {
  if (worker.g_jobs_done == nullptr) return;
  worker.g_jobs_done->set(static_cast<std::int64_t>(worker.jobs_done));
  worker.g_bytes_in->set(static_cast<std::int64_t>(worker.bytes_in));
  worker.g_bytes_out->set(static_cast<std::int64_t>(worker.bytes_out));
  const double end = worker.peer.fd >= 0 ? clock_.elapsed_seconds()
                                         : worker.released_seconds;
  worker.g_uptime_ms->set(
      static_cast<std::int64_t>((end - worker.admitted_seconds) * 1000.0));
}

void WorkerPool::charge_admission_budget(const std::string& why) {
  m_rejected_.inc();
  if (++admission_failures_ > options_.admission_budget) {
    throw std::runtime_error(
        "worker admission failed " + std::to_string(admission_failures_) +
        " times (budget " + std::to_string(options_.admission_budget) +
        ") — last: " + why);
  }
}

void WorkerPool::worker_released(PoolWorker& worker) {
  if (worker.peer.fd < 0) return;
  const std::string where = worker.peer.where;
  transport_->release_peer(worker.peer);
  --live_;
  worker.released_seconds = clock_.elapsed_seconds();
  if (worker.admitted) {
    m_active_.add(-1);
    update_worker_gauges(worker);  // freeze the final per-worker figures
  }

  const bool clean = worker.shutdown_sent && worker.user_tag < 0;
  if (clean) return;
  worker.lost = true;
  if (!worker.admitted) {
    charge_admission_budget("peer " + where +
                            " disconnected before completing the handshake");
    return;
  }
  m_lost_.inc();
  worker.lost_in_flight = worker.user_tag >= 0;
  if (hooks_.on_lost) hooks_.on_lost(worker);
  worker.user_tag = -1;
}

void WorkerPool::send(PoolWorker& worker, dist::MsgType type,
                      const std::string& payload) {
  if (worker.peer.fd < 0) return;
  try {
    dist::write_frame(worker.peer.fd, type, payload);
    worker.bytes_out += kFrameOverhead + payload.size();
    m_bytes_out_.inc(kFrameOverhead + payload.size());
  } catch (const std::exception&) {
    worker_released(worker);
  }
}

void WorkerPool::send_shutdown(PoolWorker& worker) {
  if (worker.shutdown_sent || worker.peer.fd < 0) return;
  worker.shutdown_sent = true;
  send(worker, dist::MsgType::kShutdown, "");
}

void WorkerPool::handle_handshake_frame(PoolWorker& worker,
                                        const dist::Frame& frame) {
  // Pre-admission misbehavior is fatal on a spawn transport (our own
  // binary speaking the wrong schema means a build mismatch — say so) but
  // merely disqualifying on an accept transport (anything can dial a TCP
  // port; drop it and charge the budget).
  const bool accept_based = transport_->listen_fd() >= 0;
  std::string reject;
  if (!worker.hello_seen) {
    if (frame.type == dist::MsgType::kHello) {
      const dist::HelloMsg hello = dist::decode_hello(frame.payload);
      const auto mismatch =
          dist::validate_hello(hello, options_.expected_schema);
      if (!mismatch) {
        worker.hello_seen = true;
        return;
      }
      reject = *mismatch;
    } else {
      reject = "expected Hello, got " +
               std::string(dist::frame_type_name(frame.type));
    }
  } else {
    if (frame.type == dist::MsgType::kWorkerInfo) {
      const dist::WorkerInfoMsg info = dist::decode_worker_info(frame.payload);
      worker.host = info.host;
      worker.remote_pid = info.pid;
      worker.remote_threads = info.threads;
      send(worker, dist::MsgType::kHelloAck, dist::encode_hello_ack());
      if (worker.peer.fd < 0) return;  // ack write failed → released
      worker.id = next_id_++;
      worker.admitted = true;
      worker.admitted_seconds = clock_.elapsed_seconds();
      m_admitted_.inc();
      m_active_.add(1);
      const std::string prefix =
          "dist.worker." + std::to_string(worker.id) + ".";
      worker.g_jobs_done = &registry_.gauge(prefix + "jobs_done");
      worker.g_bytes_in = &registry_.gauge(prefix + "bytes_in");
      worker.g_bytes_out = &registry_.gauge(prefix + "bytes_out");
      worker.g_uptime_ms = &registry_.gauge(prefix + "uptime_ms");
      update_worker_gauges(worker);
      if (hooks_.on_admitted) hooks_.on_admitted(worker);
      return;
    }
    reject = "expected WorkerInfo, got " +
             std::string(dist::frame_type_name(frame.type));
  }

  if (!accept_based) throw std::runtime_error(reject);
  const std::string where = worker.peer.where;
  worker.shutdown_sent = true;  // suppress the loss path's budget charge
  worker.lost = true;
  transport_->release_peer(worker.peer);
  --live_;
  worker.released_seconds = clock_.elapsed_seconds();
  charge_admission_budget("peer " + where + " rejected: " + reject);
}

void WorkerPool::read_ready(PoolWorker& worker) {
  char buf[65536];
  const ssize_t n = ::read(worker.peer.fd, buf, sizeof buf);
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN) return;
    worker_released(worker);
    return;
  }
  if (n == 0) {
    worker_released(worker);
    return;
  }
  worker.bytes_in += static_cast<std::uint64_t>(n);
  m_bytes_in_.inc(static_cast<std::uint64_t>(n));
  try {
    worker.decoder.feed(buf, static_cast<std::size_t>(n));
    while (true) {
      const auto frame = worker.decoder.next();
      if (!frame) break;
      if (!worker.admitted) {
        handle_handshake_frame(worker, *frame);
      } else if (hooks_.on_frame) {
        hooks_.on_frame(worker, *frame);
      }
      if (worker.peer.fd < 0) break;  // released while handling
    }
  } catch (const std::invalid_argument& e) {
    if (!worker.admitted && transport_->listen_fd() >= 0) {
      const std::string where = worker.peer.where;
      worker.shutdown_sent = true;
      worker.lost = true;
      transport_->release_peer(worker.peer);
      --live_;
      worker.released_seconds = clock_.elapsed_seconds();
      charge_admission_budget("peer " + where +
                              " sent a malformed frame: " + e.what());
      return;
    }
    throw std::runtime_error(std::string("malformed frame from worker ") +
                             worker.peer.where + ": " + e.what());
  }
}

void WorkerPool::poll_once(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<std::ptrdiff_t> owners;  ///< -1 = the listener.
  const int listen_fd = transport_->listen_fd();
  if (listen_fd >= 0) {
    fds.push_back(pollfd{listen_fd, POLLIN, 0});
    owners.push_back(-1);
  }
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (workers_[i].peer.fd < 0) continue;
    fds.push_back(pollfd{workers_[i].peer.fd, POLLIN, 0});
    owners.push_back(static_cast<std::ptrdiff_t>(i));
  }
  if (fds.empty()) return;
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return;  // caller re-checks its stop flag
    throw std::runtime_error(std::string("poll failed: ") +
                             std::strerror(errno));
  }
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    if (owners[i] < 0) {
      admit_pending();
      continue;
    }
    PoolWorker& worker = workers_[static_cast<std::size_t>(owners[i])];
    if (worker.peer.fd < 0) continue;  // released while handling a sibling
    read_ready(worker);
  }
  // Refresh the live per-worker gauges once per turn so a mid-run stats
  // poll sees current jobs/bytes/uptime, not admission-time zeros.
  for (PoolWorker& worker : workers_) {
    if (worker.peer.fd >= 0 && worker.admitted) update_worker_gauges(worker);
  }
}

std::vector<WorkerSummary> WorkerPool::summaries() const {
  std::vector<WorkerSummary> out;
  for (const PoolWorker& worker : workers_) {
    if (!worker.admitted) continue;
    WorkerSummary summary;
    summary.id = worker.id;
    summary.where = worker.peer.where;
    summary.host = worker.host;
    summary.remote_pid = worker.remote_pid;
    summary.jobs_done = worker.jobs_done;
    summary.lost = worker.lost;
    summary.lost_in_flight = worker.lost_in_flight;
    const double end = worker.peer.fd >= 0 ? clock_.elapsed_seconds()
                                           : worker.released_seconds;
    summary.seconds = end - worker.admitted_seconds;
    summary.bytes_in = worker.bytes_in;
    summary.bytes_out = worker.bytes_out;
    out.push_back(std::move(summary));
  }
  // Admission order == id order by construction (ids are assigned from a
  // counter at admission), but workers_ is in connection order; sort so
  // the summary lines are stable.
  std::sort(out.begin(), out.end(),
            [](const WorkerSummary& a, const WorkerSummary& b) {
              return a.id < b.id;
            });
  return out;
}

}  // namespace ncb::net
