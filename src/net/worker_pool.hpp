// Transport-agnostic worker-pool lifecycle for coordinators.
//
// A coordinator (sweep dispatch, distributed replay) wants exactly three
// things from its fleet: admitted workers to hand frames to, frames back
// from them, and a notification when one is lost so in-flight work can be
// requeued. WorkerPool owns everything in between — spawning or accepting
// peers via a StreamTransport, the handshake-gated admission state machine
// (Hello → WorkerInfo → HelloAck), per-worker byte accounting, and
// releasing peers on loss or shutdown — so the two coordinators share one
// tested lifecycle instead of two poll loops.
//
// Admission is gated on a complete handshake: a connecting peer is not a
// worker until its Hello validates (magic, protocol version, application
// schema) AND it has identified itself with a WorkerInfo frame. Anything
// that dies, hangs up, or speaks the wrong schema before that point is
// dropped and counted against a bounded admission budget — on a TCP
// transport a port-scanner or a stale worker build cannot take down the
// run, but an endless stream of them cannot spin it forever either.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "dist/protocol.hpp"
#include "net/transport.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace ncb::net {

/// One peer the pool is tracking. Coordinators stash their scheduling
/// state in `user_tag` (an index into their own job table; -1 = idle) —
/// the pool never interprets it beyond "idle or not" for clean-release
/// accounting.
struct PoolWorker {
  Peer peer;
  dist::FrameDecoder decoder;
  std::size_t id = 0;       ///< Stable admission-order id (display).
  std::string host;         ///< Self-reported hostname (WorkerInfo).
  std::uint64_t remote_pid = 0;
  std::uint64_t remote_threads = 0;
  bool hello_seen = false;
  bool admitted = false;
  bool shutdown_sent = false;
  std::ptrdiff_t user_tag = -1;
  std::size_t jobs_done = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  double admitted_seconds = 0.0;  ///< Pool clock at admission.
  double released_seconds = 0.0;  ///< Pool clock at release (0 = live).
  bool lost = false;              ///< Released uncleanly.
  bool lost_in_flight = false;    ///< Lost while user_tag >= 0.
  // Per-worker registry gauges (dist.worker.<id>.*), resolved at admission
  // and refreshed every poll turn; null until the handshake completes.
  obs::Gauge* g_jobs_done = nullptr;
  obs::Gauge* g_bytes_in = nullptr;
  obs::Gauge* g_bytes_out = nullptr;
  obs::Gauge* g_uptime_ms = nullptr;
};

/// End-of-run per-worker accounting for the coordinator summary lines.
struct WorkerSummary {
  std::size_t id = 0;
  std::string where;
  std::string host;
  std::uint64_t remote_pid = 0;
  std::size_t jobs_done = 0;
  bool lost = false;
  bool lost_in_flight = false;
  double seconds = 0.0;  ///< Admission → release (or → now if live).
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class WorkerPool {
 public:
  struct Options {
    StreamTransport* transport = nullptr;
    /// Application schema word workers must present in their Hello.
    std::uint32_t expected_schema = 0;
    /// Peers may fail admission (die pre-handshake, bad Hello) at most
    /// this many times before poll_once throws — respawn-storm and
    /// junk-connection bound.
    std::size_t admission_budget = 8;
    /// Registry mirroring fleet health (dist.workers.*, dist.bytes.*,
    /// dist.worker.<id>.*); nullptr → obs::MetricsRegistry::global().
    obs::MetricsRegistry* metrics = nullptr;
  };

  struct Hooks {
    /// A worker completed the handshake and is ready for frames.
    std::function<void(PoolWorker&)> on_admitted;
    /// A post-admission frame arrived (anything but the handshake).
    std::function<void(PoolWorker&, const dist::Frame&)> on_frame;
    /// An admitted worker was lost uncleanly. Fired with `user_tag`
    /// still intact so the coordinator can requeue; the pool resets the
    /// tag afterwards.
    std::function<void(PoolWorker&)> on_lost;
  };

  WorkerPool(const Options& options, Hooks hooks);
  ~WorkerPool();

  /// Replaces the hooks — for callers whose hook lambdas need to capture
  /// the pool itself (construct with empty hooks, then install).
  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] bool can_spawn() const { return transport_->can_spawn(); }
  /// Spawns `count` peers (process transport only).
  void spawn(std::size_t count);

  /// One reactor turn: accept pending connections, poll every live fd
  /// plus the listener, read and decode, advance handshakes, deliver
  /// frames, handle losses. Throws std::runtime_error when the admission
  /// budget is exhausted or a worker reports a malformed frame.
  void poll_once(int timeout_ms);

  /// Frame write with byte accounting; a failed write releases the worker
  /// through the loss path (so on_lost may fire reentrantly).
  void send(PoolWorker& worker, dist::MsgType type,
            const std::string& payload);
  /// Sends Shutdown once; the worker is released cleanly when its stream
  /// reaches EOF afterwards.
  void send_shutdown(PoolWorker& worker);

  /// Live (connected, possibly not yet admitted) worker count.
  [[nodiscard]] std::size_t live() const noexcept { return live_; }
  /// Every worker ever tracked, including released ones (stable refs).
  [[nodiscard]] std::deque<PoolWorker>& workers() noexcept {
    return workers_;
  }
  [[nodiscard]] const std::deque<PoolWorker>& workers() const noexcept {
    return workers_;
  }
  /// Per-worker accounting in admission order (admitted workers only).
  [[nodiscard]] std::vector<WorkerSummary> summaries() const;

 private:
  void admit_pending();
  void read_ready(PoolWorker& worker);
  void handle_handshake_frame(PoolWorker& worker, const dist::Frame& frame);
  void worker_released(PoolWorker& worker);
  void charge_admission_budget(const std::string& why);
  void update_worker_gauges(PoolWorker& worker);

  StreamTransport* transport_;
  Options options_;
  Hooks hooks_;
  std::deque<PoolWorker> workers_;  ///< Deque: references stay valid.
  Timer clock_;
  std::size_t live_ = 0;
  std::size_t next_id_ = 0;
  std::size_t admission_failures_ = 0;

  // Registry mirrors (resolved once in the constructor).
  obs::MetricsRegistry& registry_;
  obs::Counter& m_admitted_;
  obs::Counter& m_lost_;
  obs::Counter& m_rejected_;
  obs::Gauge& m_active_;
  obs::Counter& m_bytes_in_;
  obs::Counter& m_bytes_out_;
};

}  // namespace ncb::net
