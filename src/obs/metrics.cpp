#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace ncb::obs {

HistogramStats Histogram::stats() const noexcept {
  // Copy the atomic buckets once, then derive everything from the copy so
  // count and quantiles describe the same set of events.
  std::array<std::uint64_t, LatencyHistogram::kNumBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  HistogramStats out;
  out.count = total;
  out.max = max_.load(std::memory_order_relaxed);
  if (total == 0) return out;

  const auto quantile = [&](double q) {
    // Nearest-rank over the bucket walk, exactly like
    // LatencyHistogram::quantile (same bucket math, same cap at max).
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(total) + 0.5);
    target = std::max<std::uint64_t>(1, std::min(target, total));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      seen += counts[i];
      if (seen >= target) {
        return std::min(LatencyHistogram::bucket_upper(i), out.max);
      }
    }
    return out.max;
  };
  out.p50 = quantile(0.50);
  out.p99 = quantile(0.99);
  out.p999 = quantile(0.999);
  return out;
}

namespace {

/// Metric names are [a-z0-9._-] by convention, but escape anyway so a
/// stray name can never produce an unparsable snapshot.
std::string json_string(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

/// Prometheus metric name: dots to underscores under the ncb_ namespace.
std::string prometheus_name(const std::string& name) {
  std::string out = "ncb_";
  for (const char c : name) out += c == '.' ? '_' : c;
  return out;
}

}  // namespace

std::string MetricsSnapshot::render_json() const {
  std::string out = "{\n \"schema\": " +
                    std::to_string(kMetricsSchemaVersion) +
                    ",\n \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  " + json_string(name) + ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n },\n";
  out += " \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  " + json_string(name) + ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n },\n";
  out += " \"histograms\": {";
  first = true;
  for (const auto& [name, stats] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  " + json_string(name) + ": {\"count\": " +
           std::to_string(stats.count) + ", \"max\": " +
           std::to_string(stats.max) + ", \"p50\": " +
           std::to_string(stats.p50) + ", \"p99\": " +
           std::to_string(stats.p99) + ", \"p999\": " +
           std::to_string(stats.p999) + "}";
  }
  out += first ? "}\n" : "\n }\n";
  out += "}\n";
  return out;
}

std::string MetricsSnapshot::render_prometheus() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, stats] : histograms) {
    const std::string metric = prometheus_name(name);
    out += "# TYPE " + metric + " summary\n";
    out += metric + "{quantile=\"0.5\"} " + std::to_string(stats.p50) + "\n";
    out += metric + "{quantile=\"0.99\"} " + std::to_string(stats.p99) + "\n";
    out += metric + "{quantile=\"0.999\"} " + std::to_string(stats.p999) +
           "\n";
    out += metric + "_count " + std::to_string(stats.count) + "\n";
    out += metric + "_max " + std::to_string(stats.max) + "\n";
  }
  return out;
}

std::vector<StatEntry> MetricsSnapshot::flatten() const {
  std::vector<StatEntry> out;
  out.reserve(counters.size() + gauges.size() + histograms.size() * 5);
  for (const auto& [name, value] : counters) {
    out.push_back({kStatCounter, name, value});
  }
  for (const auto& [name, value] : gauges) {
    out.push_back({kStatGauge, name, static_cast<std::uint64_t>(value)});
  }
  for (const auto& [name, stats] : histograms) {
    out.push_back({kStatHistogram, name + ".count", stats.count});
    out.push_back({kStatHistogram, name + ".max", stats.max});
    out.push_back({kStatHistogram, name + ".p50", stats.p50});
    out.push_back({kStatHistogram, name + ".p99", stats.p99});
    out.push_back({kStatHistogram, name + ".p999", stats.p999});
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace_back(name, histogram->stats());
  }
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace ncb::obs
