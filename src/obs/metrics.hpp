// Dependency-free metrics registry shared by every runtime layer.
//
// A MetricsRegistry is a named set of counters, gauges, and log-scale
// histograms. Registration (the name → instrument lookup) takes a mutex and
// is meant to happen once, at component construction; the returned
// references are stable for the registry's lifetime, so hot paths hold a
// `Counter&` and pay one relaxed atomic add per event — cheap enough for
// the serve reactor and the replay scoring loop. Names are hierarchical
// dotted paths ("serve.decide.latency_us", "dist.jobs.requeued"); the
// snapshot renderers sort by name, so output is deterministic.
//
// Histograms reuse util/histogram.hpp's bucket math (16 sub-buckets per
// power-of-two decade, ≤1/16 quantile overstatement) over an array of
// relaxed atomics, so record() is lock-free and a snapshot never blocks a
// recording thread.
//
// Telemetry observes, never perturbs: nothing here feeds back into any
// decision, and under the NCB_NO_METRICS build option every mutation
// (inc/set/add/record, ScopedTimer) compiles to a no-op while the types and
// the snapshot API keep their shape — call sites build unchanged and the
// serving/sweep/replay bytes are identical either way.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.hpp"

namespace ncb::obs {

/// Snapshot JSON schema version (bump on any field change).
inline constexpr int kMetricsSchemaVersion = 1;

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
#ifndef NCB_NO_METRICS
    value_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, live connections); may go negative
/// transiently, hence signed.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#ifndef NCB_NO_METRICS
    value_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void add(std::int64_t d) noexcept {
#ifndef NCB_NO_METRICS
    value_.fetch_add(d, std::memory_order_relaxed);
#else
    (void)d;
#endif
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Quantile summary of one histogram at snapshot time. Quantiles carry the
/// bucket granularity of util/histogram.hpp (overstated by at most 1/16).
struct HistogramStats {
  std::uint64_t count = 0;
  std::uint64_t max = 0;  ///< Exact largest recorded value.
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
};

/// Log-scale histogram over LatencyHistogram's fixed bucket layout, with
/// atomic buckets so record() is safe from any thread without a lock.
class Histogram {
 public:
  void record(std::uint64_t value) noexcept {
#ifndef NCB_NO_METRICS
    buckets_[LatencyHistogram::bucket_index(value)].fetch_add(
        1, std::memory_order_relaxed);
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
#else
    (void)value;
#endif
  }

  /// Consistent-enough view for monitoring: buckets are loaded relaxed, so
  /// a snapshot racing a record() may miss the in-flight event.
  [[nodiscard]] HistogramStats stats() const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, LatencyHistogram::kNumBuckets>
      buckets_{};
  std::atomic<std::uint64_t> max_{0};
};

/// Flattened scalar view of one snapshot entry — the wire shape of a
/// StatsReply. Histograms expand to five derived scalars
/// (name.count/.max/.p50/.p99/.p999).
struct StatEntry {
  /// 0 = counter (monotonic; rates are meaningful), 1 = gauge (value is an
  /// int64 bit pattern), 2 = histogram-derived scalar.
  std::uint8_t kind = 0;
  std::string name;
  std::uint64_t value = 0;
};

inline constexpr std::uint8_t kStatCounter = 0;
inline constexpr std::uint8_t kStatGauge = 1;
inline constexpr std::uint8_t kStatHistogram = 2;

/// Point-in-time copy of a registry, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramStats>> histograms;

  /// Schema-versioned JSON document (one metric per line, sorted names —
  /// byte-deterministic for equal values, following exp/emitters style).
  [[nodiscard]] std::string render_json() const;
  /// Prometheus text exposition: dots become underscores under an "ncb_"
  /// prefix; histograms render as summaries with quantile labels.
  [[nodiscard]] std::string render_prometheus() const;
  /// Scalar entries in render order: counters, gauges, then histogram
  /// derivatives — what a StatsReply carries.
  [[nodiscard]] std::vector<StatEntry> flatten() const;
};

class MetricsRegistry {
 public:
  /// Finds or creates the named instrument. The reference stays valid for
  /// the registry's lifetime; look up once and keep it.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Process-wide default registry. Components take an optional
  /// MetricsRegistry* and fall back to this, so tests can isolate exact
  /// counts by passing their own instance.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ncb::obs
