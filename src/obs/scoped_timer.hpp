// RAII span timer feeding an obs::Histogram in microseconds.
//
// Construct at the top of the measured scope; the destructor records the
// elapsed wall time. Under NCB_NO_METRICS the whole object is empty and
// every member function is a no-op, so a timer on a hot path costs nothing
// when telemetry is compiled out.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.hpp"

namespace ncb::obs {

class ScopedTimer {
 public:
#ifndef NCB_NO_METRICS
  explicit ScopedTimer(Histogram& histogram) noexcept
      : histogram_(&histogram),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
  }
#else
  explicit ScopedTimer(Histogram&) noexcept {}
#endif

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
#ifndef NCB_NO_METRICS
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
#endif
};

}  // namespace ncb::obs
