#include "replay/dispatch.hpp"

#include <signal.h>

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <iostream>
#include <optional>
#include <stdexcept>

#include "core/policy_registry.hpp"
#include "dist/protocol.hpp"
#include "dist/worker.hpp"
#include "exp/sweep_spec.hpp"
#include "obs/metrics.hpp"

namespace ncb::replay {

namespace {

using dist::Frame;
using dist::MsgType;
using dist::WireReader;
using dist::WireWriter;

/// Target encoded size of one ReplayEvents chunk. Well under the 16 MiB
/// frame cap with room for the longest plausible key; small enough that a
/// slow link shows steady progress instead of one giant stall.
constexpr std::size_t kChunkBytes = 1u << 20;

// ------------------------------------------------------ wire payloads ---
// All doubles travel as IEEE-754 bit patterns (WireWriter::put_double), so
// every numeric input to score_candidate reaches the worker exactly — the
// precondition for the byte-identical assembled panel.

struct ReplayInitMsg {
  double epsilon = 0.0;
  std::uint64_t seed = 0;
  std::int64_t horizon = 0;
  std::string family;  ///< exp::family_token of the graph family.
  std::uint64_t num_arms = 0;
  double edge_probability = 0.0;
  std::uint64_t family_param = 0;
  std::uint64_t graph_seed = 0;
  double model_arm_average = 0.0;
  std::vector<double> arm_model;
  std::uint32_t chunks = 0;        ///< ReplayEvents frames to expect.
  std::uint64_t total_records = 0; ///< Sum of chunk record counts.
};

std::string encode_replay_init(const ReplayInitMsg& msg) {
  WireWriter out;
  out.put_double(msg.epsilon);
  out.put_u64(msg.seed);
  out.put_u64(static_cast<std::uint64_t>(msg.horizon));
  out.put_string(msg.family);
  out.put_u64(msg.num_arms);
  out.put_double(msg.edge_probability);
  out.put_u64(msg.family_param);
  out.put_u64(msg.graph_seed);
  out.put_double(msg.model_arm_average);
  out.put_u64(msg.arm_model.size());
  for (double value : msg.arm_model) out.put_double(value);
  out.put_u32(msg.chunks);
  out.put_u64(msg.total_records);
  return out.take();
}

ReplayInitMsg decode_replay_init(const std::string& payload) {
  WireReader in(payload);
  ReplayInitMsg msg;
  msg.epsilon = in.get_double();
  msg.seed = in.get_u64();
  msg.horizon = static_cast<std::int64_t>(in.get_u64());
  msg.family = in.get_string();
  msg.num_arms = in.get_u64();
  msg.edge_probability = in.get_double();
  msg.family_param = in.get_u64();
  msg.graph_seed = in.get_u64();
  msg.model_arm_average = in.get_double();
  const std::uint64_t arms = in.get_u64();
  msg.arm_model.reserve(arms);
  for (std::uint64_t i = 0; i < arms; ++i) {
    msg.arm_model.push_back(in.get_double());
  }
  msg.chunks = in.get_u32();
  msg.total_records = in.get_u64();
  in.finish();
  return msg;
}

void encode_event_record(WireWriter& out, const serve::EventRecord& record) {
  const bool decision = record.type == serve::EventType::kDecision;
  out.put_u8(decision ? 1 : 2);
  out.put_u64(record.decision_id);
  if (decision) {
    out.put_string(record.key);
    out.put_u32(static_cast<std::uint32_t>(record.action));
    out.put_double(record.propensity);
  } else {
    out.put_double(record.reward);
  }
}

serve::EventRecord decode_event_record(WireReader& in) {
  serve::EventRecord record;
  const std::uint8_t type = in.get_u8();
  if (type != 1 && type != 2) {
    throw std::invalid_argument("replay events: unknown record type " +
                                std::to_string(type));
  }
  record.decision_id = in.get_u64();
  if (type == 1) {
    record.type = serve::EventType::kDecision;
    record.key = in.get_string();
    record.action = static_cast<ArmId>(in.get_u32());
    record.propensity = in.get_double();
  } else {
    record.type = serve::EventType::kFeedback;
    record.reward = in.get_double();
  }
  return record;
}

/// Splits the record stream into encoded ReplayEvents payloads of roughly
/// kChunkBytes each, preserving stream order across chunk boundaries.
/// Layout: u32 chunk_index | u32 count | count records.
std::vector<std::string> encode_event_chunks(
    const std::vector<serve::EventRecord>& records) {
  std::vector<std::string> chunks;
  std::size_t at = 0;
  while (at < records.size() || chunks.empty()) {
    WireWriter body;
    std::uint32_t count = 0;
    WireWriter header;
    // Records first (into `body`), then the final payload is assembled
    // with the known count.
    while (at < records.size()) {
      encode_event_record(body, records[at]);
      ++at;
      ++count;
      if (body.size() >= kChunkBytes) break;
    }
    header.put_u32(static_cast<std::uint32_t>(chunks.size()));
    header.put_u32(count);
    std::string payload = header.take();
    payload += body.take();
    chunks.push_back(std::move(payload));
  }
  return chunks;
}

std::vector<serve::EventRecord> decode_event_chunk(
    const std::string& payload, std::uint32_t expected_index) {
  WireReader in(payload);
  const std::uint32_t index = in.get_u32();
  if (index != expected_index) {
    throw std::invalid_argument(
        "replay events: chunk " + std::to_string(index) + " arrived where " +
        std::to_string(expected_index) + " was expected");
  }
  const std::uint32_t count = in.get_u32();
  std::vector<serve::EventRecord> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    records.push_back(decode_event_record(in));
  }
  in.finish();
  return records;
}

struct ReplayAssignMsg {
  std::uint32_t index = 0;    ///< Candidate index in the panel order.
  std::uint32_t attempt = 1;  ///< 1-based; > 1 means crash-requeued.
  std::string spec;
};

std::string encode_replay_assign(const ReplayAssignMsg& msg) {
  WireWriter out;
  out.put_u32(msg.index);
  out.put_u32(msg.attempt);
  out.put_string(msg.spec);
  return out.take();
}

ReplayAssignMsg decode_replay_assign(const std::string& payload) {
  WireReader in(payload);
  ReplayAssignMsg msg;
  msg.index = in.get_u32();
  msg.attempt = in.get_u32();
  msg.spec = in.get_string();
  in.finish();
  return msg;
}

void put_stat(WireWriter& out, const RunningStat& stat) {
  out.put_u64(stat.count());
  out.put_double(stat.mean());
  out.put_double(stat.m2());
  out.put_double(stat.min());
  out.put_double(stat.max());
}

RunningStat get_stat(WireReader& in) {
  const std::uint64_t count = in.get_u64();
  const double mean = in.get_double();
  const double m2 = in.get_double();
  const double min = in.get_double();
  const double max = in.get_double();
  return RunningStat::restore(static_cast<std::size_t>(count), mean, m2, min,
                              max);
}

struct ReplayResultMsg {
  std::uint32_t index = 0;
  CandidateSummary summary;  ///< Raw state only; display fields unset.
};

std::string encode_replay_result(const ReplayResultMsg& msg) {
  WireWriter out;
  out.put_u32(msg.index);
  out.put_string(msg.summary.spec);
  out.put_string(msg.summary.description);
  out.put_u64(msg.summary.decisions);
  out.put_u64(msg.summary.matched);
  put_stat(out, msg.summary.ips_stat);
  put_stat(out, msg.summary.dr_stat);
  out.put_double(msg.summary.weight_sum);
  out.put_double(msg.summary.weight_sq_sum);
  out.put_double(msg.summary.weighted_reward_sum);
  out.put_double(msg.summary.max_weight);
  return out.take();
}

ReplayResultMsg decode_replay_result(const std::string& payload) {
  WireReader in(payload);
  ReplayResultMsg msg;
  msg.index = in.get_u32();
  msg.summary.spec = in.get_string();
  msg.summary.description = in.get_string();
  msg.summary.decisions = in.get_u64();
  msg.summary.matched = in.get_u64();
  msg.summary.ips_stat = get_stat(in);
  msg.summary.dr_stat = get_stat(in);
  msg.summary.weight_sum = in.get_double();
  msg.summary.weight_sq_sum = in.get_double();
  msg.summary.weighted_reward_sum = in.get_double();
  msg.summary.max_weight = in.get_double();
  in.finish();
  return msg;
}

/// See the crash-injection note in dispatch.hpp.
void maybe_inject_crash(const ReplayAssignMsg& msg) {
  const char* kill_spec = std::getenv("NCB_REPLAY_KILL_SPEC");
  if (kill_spec != nullptr && msg.attempt == 1 && msg.spec == kill_spec) {
    ::raise(SIGKILL);
  }
}

}  // namespace

int run_replay_worker(const ReplayWorkerOptions& options) {
  ::signal(SIGINT, SIG_IGN);  // the coordinator owns interrupt handling

  switch (dist::worker_handshake(options.fd, kReplayWireSchema,
                                 options.threads, "ncb_replay worker")) {
    case 0:
      break;
    case 1:
      return 0;
    default:
      return 2;
  }

  // Phase 1: panel context, then the record stream, chunk by chunk in
  // order. Everything score_candidate reads comes from these frames.
  ReplayInitMsg init;
  std::vector<serve::EventRecord> records;
  try {
    std::optional<Frame> frame = dist::read_frame(options.fd);
    if (!frame || frame->type == MsgType::kShutdown) return 0;
    if (frame->type != MsgType::kReplayInit) {
      std::cerr << "ncb_replay worker: expected ReplayInit, got "
                << dist::frame_type_name(frame->type) << '\n';
      return 2;
    }
    init = decode_replay_init(frame->payload);
    records.reserve(static_cast<std::size_t>(init.total_records));
    for (std::uint32_t chunk = 0; chunk < init.chunks; ++chunk) {
      frame = dist::read_frame(options.fd);
      if (!frame) return 0;  // coordinator vanished — nothing was lost
      if (frame->type != MsgType::kReplayEvents) {
        std::cerr << "ncb_replay worker: expected ReplayEvents chunk "
                  << chunk << ", got " << dist::frame_type_name(frame->type)
                  << '\n';
        return 2;
      }
      for (serve::EventRecord& record :
           decode_event_chunk(frame->payload, chunk)) {
        records.push_back(std::move(record));
      }
    }
    if (records.size() != init.total_records) {
      std::cerr << "ncb_replay worker: received " << records.size()
                << " records, coordinator announced " << init.total_records
                << '\n';
      return 2;
    }
  } catch (const dist::PeerClosedError&) {
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "ncb_replay worker: stream setup failed: " << e.what()
              << '\n';
    return 2;
  }

  ExperimentConfig config;
  config.graph_family = exp::parse_family(init.family);
  config.num_arms = static_cast<std::size_t>(init.num_arms);
  config.edge_probability = init.edge_probability;
  config.family_param = static_cast<std::size_t>(init.family_param);
  config.seed = init.graph_seed;
  const Graph graph = build_graph(config);

  ReplayOptions replay_options;
  replay_options.epsilon = init.epsilon;
  replay_options.seed = init.seed;
  replay_options.horizon = static_cast<TimeSlot>(init.horizon);

  // Phase 2: candidate loop.
  while (true) {
    std::optional<Frame> frame;
    try {
      frame = dist::read_frame(options.fd);
    } catch (const std::exception& e) {
      std::cerr << "ncb_replay worker: read failed: " << e.what() << '\n';
      return 2;
    }
    if (!frame || frame->type == MsgType::kShutdown) return 0;
    if (frame->type != MsgType::kReplayAssign) {
      std::cerr << "ncb_replay worker: unexpected frame type "
                << dist::frame_type_name(frame->type) << '\n';
      return 2;
    }

    ReplayAssignMsg assign;
    std::string error;
    try {
      assign = decode_replay_assign(frame->payload);
      maybe_inject_crash(assign);

      ReplayResultMsg result;
      result.index = assign.index;
      result.summary = score_candidate(graph, records, assign.spec,
                                       replay_options, init.arm_model,
                                       init.model_arm_average);
      dist::write_frame(options.fd, MsgType::kReplayResult,
                        encode_replay_result(result));
      continue;
    } catch (const dist::PeerClosedError&) {
      return 0;  // coordinator gone; it will requeue the candidate
    } catch (const std::exception& e) {
      error = e.what();
    }

    // A candidate that cannot be scored (bad spec reaching this far, a
    // policy that throws) is fatal for the whole panel — report it so the
    // coordinator aborts with the real message.
    try {
      dist::WorkerErrorMsg report;
      report.key = assign.spec;
      report.message = error;
      dist::write_frame(options.fd, MsgType::kWorkerError,
                        dist::encode_worker_error(report));
    } catch (const std::exception&) {
      // Coordinator already gone; the exit code still says "error".
    }
    return 1;
  }
}

DistPanelSummary run_distributed_panel(const Graph& graph,
                                       const serve::EventLogScan& scan,
                                       const std::vector<std::string>& specs,
                                       const ReplayOptions& options,
                                       const ReplayDispatchOptions& dispatch) {
  if (dispatch.transport == nullptr) {
    throw std::invalid_argument("run_distributed_panel: no transport");
  }
  if (dispatch.graph_config == nullptr) {
    throw std::invalid_argument("run_distributed_panel: no graph config");
  }
  // Identical front-door validation to replay_panel.
  if (!(options.epsilon >= 0.0 && options.epsilon <= 1.0)) {
    throw std::invalid_argument("replay: epsilon must be in [0, 1]");
  }
  for (const std::string& spec : specs) {
    PolicyRegistry::instance().check_single_play(spec);
  }

  DistPanelSummary summary;
  summary.panel = panel_base(graph, scan);
  if (specs.empty()) return summary;

  // Pre-encode the per-worker setup once; every admitted (and readmitted)
  // worker gets the same bytes.
  ReplayInitMsg init;
  init.epsilon = options.epsilon;
  init.seed = options.seed;
  init.horizon = options.horizon;
  init.family = exp::family_token(dispatch.graph_config->graph_family);
  init.num_arms = dispatch.graph_config->num_arms;
  init.edge_probability = dispatch.graph_config->edge_probability;
  init.family_param = dispatch.graph_config->family_param;
  init.graph_seed = dispatch.graph_config->seed;
  init.model_arm_average = summary.panel.model_arm_average;
  init.arm_model = summary.panel.arm_model;
  const std::vector<std::string> chunks = encode_event_chunks(scan.records);
  init.chunks = static_cast<std::uint32_t>(chunks.size());
  init.total_records = scan.records.size();
  const std::string init_payload = encode_replay_init(init);

  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < specs.size(); ++i) queue.push_back(i);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  obs::Gauge& m_queued = registry.gauge("replay.candidates.queued");
  obs::Counter& m_requeued = registry.counter("replay.candidates.requeued");
  m_queued.set(static_cast<std::int64_t>(queue.size()));
  std::vector<std::size_t> attempts(specs.size(), 0);
  std::vector<CandidateSummary> done(specs.size());
  std::size_t completed = 0;

  net::WorkerPool::Options pool_options;
  pool_options.transport = dispatch.transport;
  pool_options.expected_schema = kReplayWireSchema;
  pool_options.admission_budget =
      dispatch.transport->can_spawn() ? dispatch.workers + 2 : 32;

  net::WorkerPool::Hooks hooks;
  // Declared before the pool so the lambdas outlive it on every path.
  auto assign_next = [&](net::WorkerPool& pool, net::PoolWorker& worker) {
    if (worker.peer.fd < 0 || !worker.admitted || worker.user_tag >= 0 ||
        worker.shutdown_sent) {
      return;
    }
    if (queue.empty()) {
      // Keep the worker idle while other candidates are in flight: a crash
      // would requeue one, and this worker is where it would land. Only a
      // fully drained run (nothing queued, nothing assigned) shuts it down.
      bool anything_assigned = false;
      for (const net::PoolWorker& other : pool.workers()) {
        if (other.peer.fd >= 0 && other.user_tag >= 0) {
          anything_assigned = true;
          break;
        }
      }
      if (!anything_assigned) pool.send_shutdown(worker);
      return;
    }
    const std::size_t index = queue.front();
    queue.pop_front();
    m_queued.set(static_cast<std::int64_t>(queue.size()));
    worker.user_tag = static_cast<std::ptrdiff_t>(index);
    ReplayAssignMsg assign;
    assign.index = static_cast<std::uint32_t>(index);
    assign.attempt = static_cast<std::uint32_t>(attempts[index] + 1);
    assign.spec = specs[index];
    pool.send(worker, MsgType::kReplayAssign, encode_replay_assign(assign));
  };

  net::WorkerPool pool(pool_options, net::WorkerPool::Hooks{});
  // Hooks reference the pool, so they are installed after construction via
  // the captured reference above; WorkerPool stores them by value.
  hooks.on_admitted = [&](net::PoolWorker& worker) {
    pool.send(worker, MsgType::kReplayInit, init_payload);
    for (const std::string& chunk : chunks) {
      if (worker.peer.fd < 0) return;
      pool.send(worker, MsgType::kReplayEvents, chunk);
    }
    assign_next(pool, worker);
  };
  hooks.on_frame = [&](net::PoolWorker& worker, const Frame& frame) {
    switch (frame.type) {
      case MsgType::kReplayResult: {
        ReplayResultMsg result = decode_replay_result(frame.payload);
        if (result.index >= specs.size() || worker.user_tag < 0 ||
            static_cast<std::uint32_t>(worker.user_tag) != result.index ||
            result.summary.spec != specs[result.index]) {
          throw std::runtime_error(
              "protocol violation: replay result for candidate " +
              std::to_string(result.index) +
              " does not match the worker's assignment");
        }
        worker.user_tag = -1;
        ++worker.jobs_done;
        done[result.index] = std::move(result.summary);
        ++completed;
        assign_next(pool, worker);
        return;
      }
      case MsgType::kWorkerError: {
        const dist::WorkerErrorMsg error =
            dist::decode_worker_error(frame.payload);
        throw std::runtime_error("replay worker failed on candidate '" +
                                 error.key + "': " + error.message);
      }
      default:
        throw std::runtime_error(
            "protocol violation: unexpected frame type " +
            dist::frame_type_label(static_cast<std::uint8_t>(frame.type)) +
            " from a replay worker");
    }
  };
  hooks.on_lost = [&](net::PoolWorker& worker) {
    if (worker.user_tag < 0) return;
    const std::size_t index = static_cast<std::size_t>(worker.user_tag);
    ++attempts[index];
    if (attempts[index] >= dispatch.max_attempts) {
      throw std::runtime_error("candidate '" + specs[index] +
                               "' crashed its worker " +
                               std::to_string(attempts[index]) +
                               " times — aborting");
    }
    // Requeue at the front: the retry recomputes the candidate from the
    // same shipped stream, so the assembled panel does not depend on the
    // crash at all.
    queue.push_front(index);
    m_queued.set(static_cast<std::int64_t>(queue.size()));
    ++summary.requeues;
    m_requeued.inc();
  };
  pool.set_hooks(std::move(hooks));

  if (pool.can_spawn()) {
    pool.spawn(std::max<std::size_t>(
        1, std::min(dispatch.workers, specs.size())));
  }

  auto in_flight = [&] {
    std::size_t n = 0;
    for (const net::PoolWorker& worker : pool.workers()) {
      if (worker.peer.fd >= 0 && worker.user_tag >= 0) ++n;
    }
    return n;
  };

  while (pool.live() > 0 || !queue.empty() || in_flight() > 0) {
    pool.poll_once(200);
    if (pool.can_spawn()) {
      const std::size_t wanted =
          std::min(dispatch.workers, queue.size() + in_flight());
      while (pool.live() < wanted) pool.spawn(1);
    }
    // A requeue or a late admission may leave queued candidates next to
    // idle workers — hand them out every turn, and drain the fleet once
    // nothing is queued or in flight.
    for (net::PoolWorker& worker : pool.workers()) assign_next(pool, worker);
  }
  if (completed != specs.size()) {
    throw std::runtime_error("distributed replay drained with " +
                             std::to_string(specs.size() - completed) +
                             " candidates unscored");
  }

  // Exact reduction: merge each worker's raw Welford state into an empty
  // accumulator (a bitwise copy — candidates arrive whole, so the merge's
  // exact-copy branch is the one taken), then derive the display figures
  // through the same finalize_candidate the local panel uses.
  summary.panel.candidates.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    CandidateSummary candidate = std::move(done[i]);
    RunningStat ips;
    ips.merge(candidate.ips_stat);
    candidate.ips_stat = ips;
    RunningStat dr;
    dr.merge(candidate.dr_stat);
    candidate.dr_stat = dr;
    finalize_candidate(candidate);
    summary.panel.candidates.push_back(std::move(candidate));
  }
  summary.workers = pool.summaries();
  return summary;
}

}  // namespace ncb::replay
