// Distributed replay: fan a candidate panel across workers over a
// net::StreamTransport, byte-identical to the single-process panel.
//
// Sharding is by CANDIDATE, not by log range: a candidate policy's state
// is sequential and history-dependent (the replay determinism contract
// mirrors serve::DecisionEngine's clock and per-key streams), so cutting
// the stream would change every estimate after the cut — and break the
// logging-identity pin. Candidates, on the other hand, never interact:
// replay_panel scores each one independently over the same stream. So the
// coordinator runs pass 1 (join + DR baseline + empirical stats) locally
// once, ships the record stream to every worker in decision-ordered
// chunks (bounded well under the frame cap), and assigns one candidate
// per idle worker. Workers run the exact score_candidate code path the
// local panel uses and ship back raw accumulator state — Welford
// (count, mean, m2, min, max) tuples and the weight sums, never derived
// figures — which the coordinator merges into empty accumulators (a
// bitwise copy, see RunningStat::merge) and finalizes through the same
// finalize_candidate the local panel calls. Every double on the wire is
// an exact IEEE-754 bit pattern, so the assembled panel is byte-identical
// to `--workers 0` for any worker count, transport, or mid-run crash
// (a lost worker's candidate is requeued and recomputed from scratch —
// same inputs, same bytes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "net/transport.hpp"
#include "net/worker_pool.hpp"
#include "replay/replay.hpp"
#include "serve/event_log.hpp"
#include "sim/experiment.hpp"

namespace ncb::replay {

/// Replay wire schema (the Hello schema word of a replay worker). Bump
/// when the ReplayInit/Events/Assign/Result payloads change.
inline constexpr std::uint32_t kReplayWireSchema = 1;

struct ReplayWorkerOptions {
  int fd = -1;              ///< Connected stream to the coordinator.
  std::size_t threads = 0;  ///< Reported in WorkerInfo (display only).
};

/// Runs the replay worker loop: handshake, receive the panel context
/// (ReplayInit) and the event stream (ReplayEvents chunks), then score
/// assigned candidates until Shutdown or coordinator EOF. Returns a
/// process exit code: 0 on a clean drain, 2 on handshake/protocol
/// failure, 1 after reporting a candidate error.
///
/// Crash injection (tests/CI only): when the environment variable
/// NCB_REPLAY_KILL_SPEC equals the assigned candidate spec and the
/// assignment is its first attempt, the worker raises SIGKILL — the
/// deterministic stand-in for a worker lost mid-candidate.
[[nodiscard]] int run_replay_worker(const ReplayWorkerOptions& options);

struct ReplayDispatchOptions {
  /// Where worker streams come from (required).
  net::StreamTransport* transport = nullptr;
  /// Fleet size on a spawning transport (capped at the candidate count);
  /// ignored on an accept transport.
  std::size_t workers = 2;
  /// A candidate that crashes its worker this many times aborts the run.
  std::size_t max_attempts = 3;
  /// Graph construction parameters to ship (family/arms/edge-prob/
  /// family-param/seed are read; required).
  const ExperimentConfig* graph_config = nullptr;
};

struct DistPanelSummary {
  PanelResult panel;
  std::size_t requeues = 0;  ///< Crash-requeued candidate assignments.
  /// Per-worker accounting (candidates, bytes, wall time).
  std::vector<net::WorkerSummary> workers;
};

/// Distributed replay_panel: identical validation, pass 1 local, one
/// candidate per worker assignment, byte-identical assembled panel.
/// Throws std::runtime_error when a worker reports a candidate error or a
/// candidate exhausts max_attempts.
[[nodiscard]] DistPanelSummary run_distributed_panel(
    const Graph& graph, const serve::EventLogScan& scan,
    const std::vector<std::string>& specs, const ReplayOptions& options,
    const ReplayDispatchOptions& dispatch);

}  // namespace ncb::replay
