// Streaming off-policy estimators over a propensity-logged event stream.
//
// Every joined event contributes one term per estimator; terms stream
// through Welford accumulators (util/running_stat.hpp) so a panel pass
// holds O(policies) state no matter how long the log is. For a candidate
// policy with action distribution q(a | key) evaluated against a logged
// (action a, propensity p, reward r):
//
//   weight   w      = q(a) / p                   (importance ratio)
//   IPS      term   = w * r                      (inverse propensity score)
//   SNIPS    value  = sum(w * r) / sum(w)        (self-normalized IPS)
//   DR       term   = E_q[m] + w * (r - m(a))    (doubly robust; m = per-arm
//                                                 empirical-mean baseline)
//   ESS             = sum(w)^2 / sum(w^2)        (effective sample size)
//
// When the candidate IS the logging policy replayed at matched seeds,
// q(a) == p bitwise on every event, so w == 1.0 exactly and the IPS
// accumulator sees the raw reward sequence — its mean and variance
// coincide with the log's empirical mean and variance to the last bit.
// That identity is the correctness pin CI asserts on every run.
#pragma once

#include <cstddef>
#include <vector>

#include "util/running_stat.hpp"
#include "util/types.hpp"

namespace ncb::replay {

/// Per-arm empirical-mean reward model fitted on the joined log — the
/// doubly-robust baseline. Arms the log never saw rewarded fall back to the
/// global empirical mean (an unseen arm is "average until proven
/// otherwise", which keeps the direct term finite and unbiased-ish).
class RewardModel {
 public:
  explicit RewardModel(std::size_t num_arms)
      : counts_(num_arms, 0), means_(num_arms, 0.0) {}

  /// Adds one joined (arm, reward) sample.
  void observe(ArmId arm, double reward) noexcept {
    const std::size_t i = static_cast<std::size_t>(arm);
    const double n = static_cast<double>(++counts_[i]);
    means_[i] += (reward - means_[i]) / n;
    global_.add(reward);
  }

  /// Model value m(arm): the arm's empirical mean, or the global empirical
  /// mean when the arm has no joined sample.
  [[nodiscard]] double value(ArmId arm) const noexcept {
    const std::size_t i = static_cast<std::size_t>(arm);
    return counts_[i] > 0 ? means_[i] : global_.mean();
  }

  /// Unweighted average of value(a) over all arms — the uniform component
  /// of the direct term E_q[m] under engine-level epsilon exploration.
  [[nodiscard]] double arm_average() const noexcept {
    if (counts_.empty()) return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      sum += counts_[i] > 0 ? means_[i] : global_.mean();
    }
    return sum / static_cast<double>(counts_.size());
  }

  [[nodiscard]] std::size_t num_arms() const noexcept { return counts_.size(); }
  [[nodiscard]] double global_mean() const noexcept { return global_.mean(); }
  [[nodiscard]] std::uint64_t samples(ArmId arm) const noexcept {
    return counts_[static_cast<std::size_t>(arm)];
  }

 private:
  std::vector<std::uint64_t> counts_;
  std::vector<double> means_;
  RunningStat global_;
};

/// Streaming accumulators for one candidate policy's panel entry.
class EstimatorAccumulator {
 public:
  /// Scores one joined event. `weight` is q(a)/p, `direct` is E_q[m] at the
  /// decision, `model_at_logged` is m(a) for the logged action.
  void add(double weight, double reward, double direct,
           double model_at_logged) noexcept {
    ips_.add(weight * reward);
    dr_.add(direct + weight * (reward - model_at_logged));
    weight_sum_ += weight;
    weight_sq_sum_ += weight * weight;
    weighted_reward_sum_ += weight * reward;
    if (weight > max_weight_) max_weight_ = weight;
  }

  [[nodiscard]] std::size_t events() const noexcept { return ips_.count(); }
  /// Welford stats over the per-event IPS terms w*r.
  [[nodiscard]] const RunningStat& ips() const noexcept { return ips_; }
  /// Welford stats over the per-event DR terms.
  [[nodiscard]] const RunningStat& dr() const noexcept { return dr_; }

  /// Self-normalized IPS: sum(w*r)/sum(w); 0 when no weight landed.
  [[nodiscard]] double snips() const noexcept {
    return weight_sum_ > 0.0 ? weighted_reward_sum_ / weight_sum_ : 0.0;
  }
  /// Kish effective sample size (sum w)^2 / sum w^2; 0 when empty.
  [[nodiscard]] double ess() const noexcept {
    return weight_sq_sum_ > 0.0 ? weight_sum_ * weight_sum_ / weight_sq_sum_
                                : 0.0;
  }
  [[nodiscard]] double weight_sum() const noexcept { return weight_sum_; }
  [[nodiscard]] double weight_sq_sum() const noexcept {
    return weight_sq_sum_;
  }
  [[nodiscard]] double weighted_reward_sum() const noexcept {
    return weighted_reward_sum_;
  }
  [[nodiscard]] double max_weight() const noexcept { return max_weight_; }

 private:
  RunningStat ips_;
  RunningStat dr_;
  double weight_sum_ = 0.0;
  double weight_sq_sum_ = 0.0;
  double weighted_reward_sum_ = 0.0;
  double max_weight_ = 0.0;
};

}  // namespace ncb::replay
