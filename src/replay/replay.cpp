#include "replay/replay.hpp"

#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/policy_registry.hpp"
#include "obs/metrics.hpp"
#include "serve/decision_engine.hpp"
#include "util/rng.hpp"

namespace ncb::replay {

namespace {

/// One candidate policy wrapped in serve::DecisionEngine's decide()/report()
/// semantics, minus the lock, the log, and the pending-id bookkeeping the
/// reactor needs. The replay determinism contract lives here: every line
/// that touches the policy clock, the exploration stream, or observe()
/// mirrors DecisionEngine exactly, so replaying the logging policy's spec
/// at the serving seed reproduces the served actions — and the logged
/// propensities — bit for bit.
class CandidateReplayer {
 public:
  CandidateReplayer(const Graph& graph, const std::string& spec,
                    const ReplayOptions& options)
      : num_arms_(graph.num_vertices()),
        epsilon_(options.epsilon),
        seed_(options.seed) {
    policy_ = PolicyRegistry::instance().make_single_play(
        spec, options.horizon, options.seed);
    policy_->reset(graph);
    description_ = policy_->describe();
  }

  struct Step {
    ArmId greedy = kNoArm;
    ArmId sampled = kNoArm;  ///< greedy + the per-key exploration draw.
    double q = 0.0;          ///< Candidate probability of the logged action.
  };

  /// Replays one decision record: advances the policy clock, runs select,
  /// draws the key's exploration stream, and prices the logged action.
  Step on_decision(const serve::EventRecord& record) {
    const std::uint64_t key_hash = serve::fnv1a_key(record.key);
    const TimeSlot t = ++t_;
    const ArmId greedy = policy_->select(t);

    const std::uint64_t key_index = per_key_count_[key_hash]++;
    ArmId sampled = greedy;
    if (epsilon_ > 0.0) {
      Xoshiro256 rng(derive_seed_at(seed_ ^ key_hash, key_index));
      if (rng.uniform() < epsilon_) {
        sampled = static_cast<ArmId>(rng.uniform_int(num_arms_));
      }
    }
    // Same expression the engine logs as propensity, evaluated at the
    // logged action: eps/K mass everywhere, plus (1-eps) on the greedy arm.
    double q = epsilon_ / static_cast<double>(num_arms_);
    if (record.action == greedy) q += 1.0 - epsilon_;

    pending_.emplace(record.decision_id,
                     Pending{record.action, greedy, q, sampled});
    return {greedy, sampled, q};
  }

  struct Joined {
    ArmId action = kNoArm;  ///< Logged action.
    ArmId greedy = kNoArm;  ///< Candidate greedy at decision time.
    double q = 0.0;
    bool matched = false;   ///< Sampled action == logged action.
  };

  /// Replays one feedback record. Feeds the *logged* action's reward to the
  /// policy at the current clock — exactly what DecisionEngine::report does
  /// online (the served action is the only one with a known reward).
  /// Returns false for an unknown or already-joined decision_id.
  bool on_feedback(const serve::EventRecord& record, Joined& out) {
    const auto it = pending_.find(record.decision_id);
    if (it == pending_.end()) return false;
    const Pending pending = it->second;
    pending_.erase(it);
    policy_->observe(pending.action, t_, {{pending.action, record.reward}});
    out.action = pending.action;
    out.greedy = pending.greedy;
    out.q = pending.q;
    out.matched = pending.sampled == pending.action;
    return true;
  }

  [[nodiscard]] const std::string& description() const noexcept {
    return description_;
  }

 private:
  struct Pending {
    ArmId action = kNoArm;
    ArmId greedy = kNoArm;
    double q = 0.0;
    ArmId sampled = kNoArm;
  };

  std::size_t num_arms_;
  double epsilon_;
  std::uint64_t seed_;
  std::unique_ptr<SinglePlayPolicy> policy_;
  std::string description_;
  TimeSlot t_ = 0;
  std::unordered_map<std::uint64_t, Pending> pending_;
  std::unordered_map<std::uint64_t, std::uint64_t> per_key_count_;
};

}  // namespace

PanelResult panel_base(const Graph& graph, const serve::EventLogScan& scan) {
  const std::size_t num_arms = graph.num_vertices();
  if (num_arms == 0) {
    throw std::invalid_argument("replay: empty graph");
  }

  PanelResult result;
  result.decisions = scan.decisions;
  result.feedbacks = scan.feedbacks;
  result.truncated_tail = scan.truncated_tail;

  // Join, DR baseline model, and join diagnostics.
  const serve::EventLogJoin join = serve::join_event_log(scan);
  result.joined = join.joined;
  result.orphan_feedbacks = join.orphan_feedbacks;
  result.duplicate_feedbacks = join.duplicate_feedbacks;
  result.min_propensity = join.min_propensity;
  RewardModel model(num_arms);
  for (const serve::JoinedEvent& event : join.events) {
    if (static_cast<std::size_t>(event.action) >= num_arms) {
      throw std::invalid_argument(
          "replay: logged action " + std::to_string(event.action) +
          " is outside the graph's " + std::to_string(num_arms) +
          " arms — graph flags must match the serving run");
    }
    if (event.has_reward) model.observe(event.action, event.reward);
  }
  result.arm_model.reserve(num_arms);
  for (std::size_t arm = 0; arm < num_arms; ++arm) {
    result.arm_model.push_back(model.value(static_cast<ArmId>(arm)));
  }
  result.model_arm_average = model.arm_average();

  // The log's own reward statistics, accumulated over joined feedbacks in
  // stream order — the exact sequence every candidate's IPS accumulator
  // sees, so the logging-policy identity holds bitwise. The open-set
  // membership test mirrors the keep-first emplace/erase the candidate
  // pass performs, so "joined" means the same events here and there.
  RunningStat empirical;
  std::unordered_set<std::uint64_t> open;
  for (const serve::EventRecord& record : scan.records) {
    if (record.type == serve::EventType::kDecision) {
      open.insert(record.decision_id);
    } else if (open.erase(record.decision_id) != 0) {
      empirical.add(record.reward);
    }
  }
  result.empirical_mean = empirical.mean();
  result.empirical_variance = empirical.variance();
  result.empirical_se = empirical.stderr_mean();
  return result;
}

CandidateSummary score_candidate(const Graph& graph,
                                 const std::vector<serve::EventRecord>& records,
                                 const std::string& spec,
                                 const ReplayOptions& options,
                                 const std::vector<double>& arm_model,
                                 double model_arm_average) {
  CandidateReplayer replayer(graph, spec, options);
  EstimatorAccumulator accumulator;
  CandidateSummary summary;
  summary.spec = spec;
  summary.description = replayer.description();

  /// Direct term E_q[m] at decision time, keyed by decision_id.
  std::unordered_map<std::uint64_t, double> direct;
  /// Logged propensity of each not-yet-joined decision.
  std::unordered_map<std::uint64_t, double> logged_propensity;

  const double uniform_direct = options.epsilon * model_arm_average;
  for (const serve::EventRecord& record : records) {
    if (record.type == serve::EventType::kDecision) {
      logged_propensity.emplace(record.decision_id, record.propensity);
      const CandidateReplayer::Step step = replayer.on_decision(record);
      ++summary.decisions;
      direct.emplace(record.decision_id,
                     uniform_direct + (1.0 - options.epsilon) *
                                          arm_model[static_cast<std::size_t>(
                                              step.greedy)]);
    } else {
      const auto propensity_it = logged_propensity.find(record.decision_id);
      if (propensity_it == logged_propensity.end()) {
        continue;  // orphan or duplicate feedback — counted in pass 1
      }
      const double propensity = propensity_it->second;
      logged_propensity.erase(propensity_it);
      CandidateReplayer::Joined joined;
      if (!replayer.on_feedback(record, joined)) continue;
      const auto direct_it = direct.find(record.decision_id);
      const double direct_term = direct_it->second;
      direct.erase(direct_it);
      const double weight = joined.q / propensity;
      accumulator.add(
          weight, record.reward, direct_term,
          arm_model[static_cast<std::size_t>(joined.action)]);
      if (joined.matched) ++summary.matched;
    }
  }

  summary.ips_stat = accumulator.ips();
  summary.dr_stat = accumulator.dr();
  summary.weight_sum = accumulator.weight_sum();
  summary.weight_sq_sum = accumulator.weight_sq_sum();
  summary.weighted_reward_sum = accumulator.weighted_reward_sum();
  summary.max_weight = accumulator.max_weight();
  // Bulk-increment outside the replay loop: one registry touch per
  // candidate, not per record.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  registry.counter("replay.events.scored").inc(summary.ips_stat.count());
  registry.counter("replay.candidates.scored").inc();
  return summary;
}

void finalize_candidate(CandidateSummary& summary) {
  summary.events = summary.ips_stat.count();
  summary.ips_mean = summary.ips_stat.mean();
  summary.ips_variance = summary.ips_stat.variance();
  summary.ips_se = summary.ips_stat.stderr_mean();
  summary.dr_mean = summary.dr_stat.mean();
  summary.dr_variance = summary.dr_stat.variance();
  summary.dr_se = summary.dr_stat.stderr_mean();
  summary.snips = summary.weight_sum > 0.0
                      ? summary.weighted_reward_sum / summary.weight_sum
                      : 0.0;
  summary.ess = summary.weight_sq_sum > 0.0
                    ? summary.weight_sum * summary.weight_sum /
                          summary.weight_sq_sum
                    : 0.0;
}

PanelResult replay_panel(const Graph& graph, const serve::EventLogScan& scan,
                         const std::vector<std::string>& specs,
                         const ReplayOptions& options) {
  if (!(options.epsilon >= 0.0 && options.epsilon <= 1.0)) {
    throw std::invalid_argument("replay: epsilon must be in [0, 1]");
  }
  // Reject every bad spec before touching the (possibly huge) log.
  for (const std::string& spec : specs) {
    PolicyRegistry::instance().check_single_play(spec);
  }

  PanelResult result = panel_base(graph, scan);
  result.candidates.reserve(specs.size());
  for (const std::string& spec : specs) {
    CandidateSummary summary =
        score_candidate(graph, scan.records, spec, options, result.arm_model,
                        result.model_arm_average);
    finalize_candidate(summary);
    result.candidates.push_back(std::move(summary));
  }
  return result;
}

}  // namespace ncb::replay
