// Counterfactual replay: price a panel of candidate policies on one
// logged traffic run, without re-serving.
//
// The serve event log carries exactly what off-policy evaluation needs —
// (decision_id, key, action, propensity) per decision and (decision_id,
// reward) per join — in the engine's global operation order (appends happen
// under the engine lock). replay_panel() walks that order once per panel:
//
//   pass 1  join decisions to rewards (serve::join_event_log), fit the
//           per-arm empirical-mean reward model (the DR baseline), and
//           accumulate the logging policy's own empirical reward stats;
//   pass 2  drive each candidate through the stream independently (the
//           candidates never interact, which is also what lets a
//           distributed panel assign candidates to workers). Each
//           candidate is a registry-built policy wrapped in the exact
//           decide()/report() semantics of serve::DecisionEngine — the
//           same policy clock, the same per-key counter-based exploration
//           streams (seed ^ fnv1a_key(key)), the same observe() call at
//           feedback time — so its state evolves as it would have online
//           and a replay is bit-identical across runs and machines.
//
// Each joined event scores the candidate through IPS / SNIPS / DR
// (replay/estimators.hpp) using the candidate's action *distribution*
// q(a | key) = eps/K + (1-eps)*1[a = greedy], the same expression the
// engine logs as propensity. Replaying the logging policy spec at matched
// seed/epsilon therefore reproduces q == p bitwise and the IPS estimate
// equals the log's empirical mean reward exactly — the identity CI pins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "replay/estimators.hpp"
#include "serve/event_log.hpp"
#include "util/types.hpp"

namespace ncb::replay {

struct ReplayOptions {
  /// Engine-level exploration rate assumed for every candidate (the
  /// epsilon the service would run them with). Must be in [0, 1].
  double epsilon = 0.05;
  /// Master seed for candidate policy streams and per-key exploration
  /// streams; match the serving seed to replay the logging policy exactly.
  std::uint64_t seed = 20170605;
  /// Horizon hint forwarded to policy builders (0 = anytime).
  TimeSlot horizon = 0;
};

/// One candidate's panel entry. Carries both the raw accumulator state
/// (the Welford stats and weight sums — what a distributed replay worker
/// ships over the wire) and the display estimates finalize_candidate()
/// derives from it, so local and sharded panels go through one code path.
struct CandidateSummary {
  std::string spec;         ///< Registry spec string, e.g. "ucb1".
  std::string description;  ///< Built policy's describe().
  std::uint64_t decisions = 0;  ///< Decision records replayed through it.
  std::uint64_t events = 0;     ///< Joined feedback events scored.
  /// Events where the candidate's own sampled action (policy greedy +
  /// per-key exploration draw) equals the logged action.
  std::uint64_t matched = 0;
  // Raw state (exact; wire-transportable).
  RunningStat ips_stat;  ///< Per-event IPS terms w*r.
  RunningStat dr_stat;   ///< Per-event DR terms.
  double weight_sum = 0.0;
  double weight_sq_sum = 0.0;
  double weighted_reward_sum = 0.0;
  double max_weight = 0.0;
  // Display estimates, derived by finalize_candidate().
  double ips_mean = 0.0;
  double ips_variance = 0.0;  ///< Sample variance of the per-event terms.
  double ips_se = 0.0;        ///< Standard error of ips_mean.
  double snips = 0.0;
  double dr_mean = 0.0;
  double dr_variance = 0.0;
  double dr_se = 0.0;
  double ess = 0.0;  ///< Kish effective sample size.
};

/// Whole-panel result: log/join diagnostics, the logging policy's own
/// empirical reward stats, the DR baseline model, and one summary per
/// candidate (in input order).
struct PanelResult {
  std::uint64_t decisions = 0;
  std::uint64_t feedbacks = 0;
  std::uint64_t joined = 0;
  std::uint64_t orphan_feedbacks = 0;
  std::uint64_t duplicate_feedbacks = 0;
  bool truncated_tail = false;
  /// Logged propensity floor: min over decisions (>= eps_log / K by the
  /// engine's construction).
  double min_propensity = 0.0;
  /// Empirical mean/variance of the logged rewards, accumulated in
  /// feedback order — the exact sequence every candidate's IPS
  /// accumulator sees, so the logging-policy identity holds bitwise.
  double empirical_mean = 0.0;
  double empirical_variance = 0.0;
  double empirical_se = 0.0;
  /// Per-arm empirical-mean reward model (DR baseline); index = ArmId.
  std::vector<double> arm_model;
  double model_arm_average = 0.0;
  std::vector<CandidateSummary> candidates;
};

/// Replays every candidate spec over the scanned log. Validates all specs
/// up front (PolicyRegistry::check_single_play). Throws
/// std::invalid_argument on an empty graph, epsilon outside [0, 1], a bad
/// spec, a logged action outside the graph's arm range (wrong graph
/// flags), or a non-positive logged propensity.
[[nodiscard]] PanelResult replay_panel(const Graph& graph,
                                       const serve::EventLogScan& scan,
                                       const std::vector<std::string>& specs,
                                       const ReplayOptions& options);

// The pieces replay_panel is made of, exposed for the distributed replay
// coordinator/worker (replay/dispatch.hpp): pass 1 runs once on the
// coordinator, score_candidate runs per candidate wherever that candidate
// was assigned, and finalize_candidate derives the display estimates from
// raw accumulator state — the one code path shared by local and sharded
// panels, which is what makes the sharded panel byte-identical.

/// Pass 1 alone: join diagnostics, the DR baseline model, and the log's
/// own empirical reward statistics — a PanelResult with no candidates.
/// Throws std::invalid_argument on an empty graph, an out-of-range logged
/// action, or a non-positive logged propensity.
[[nodiscard]] PanelResult panel_base(const Graph& graph,
                                     const serve::EventLogScan& scan);

/// Drives one candidate spec through the raw record stream and returns its
/// summary with the raw accumulator state filled in (display estimates
/// still zero — call finalize_candidate). `arm_model` and
/// `model_arm_average` are pass-1 outputs (PanelResult::arm_model /
/// model_arm_average). The arithmetic is operation-for-operation the one
/// the lockstep panel performs for that candidate, so the result is
/// bitwise identical wherever it runs.
[[nodiscard]] CandidateSummary score_candidate(
    const Graph& graph, const std::vector<serve::EventRecord>& records,
    const std::string& spec, const ReplayOptions& options,
    const std::vector<double>& arm_model, double model_arm_average);

/// Derives events/ips_*/snips/dr_*/ess from the summary's raw state.
void finalize_candidate(CandidateSummary& summary);

}  // namespace ncb::replay
