#include "serve/decision_engine.hpp"

#include <stdexcept>

#include "core/policy_registry.hpp"
#include "util/rng.hpp"

namespace ncb::serve {

std::uint64_t fnv1a_key(const std::string& key) noexcept {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

obs::MetricsRegistry& engine_registry(const EngineOptions& options) {
  return options.metrics != nullptr ? *options.metrics
                                    : obs::MetricsRegistry::global();
}

}  // namespace

DecisionEngine::DecisionEngine(Graph graph, const EngineOptions& options,
                               EventLog* log)
    : graph_(std::move(graph)),
      epsilon_(options.epsilon),
      seed_(options.seed),
      log_(log),
      m_decisions_(engine_registry(options).counter("serve.engine.decisions")),
      m_feedbacks_(engine_registry(options).counter("serve.engine.feedbacks")),
      m_unknown_(
          engine_registry(options).counter("serve.engine.unknown_feedbacks")),
      m_duplicates_(engine_registry(options).counter(
          "serve.engine.duplicate_feedbacks")) {
  if (graph_.num_vertices() == 0) {
    throw std::invalid_argument("decision engine: empty graph");
  }
  if (!(epsilon_ >= 0.0 && epsilon_ <= 1.0)) {
    throw std::invalid_argument("decision engine: epsilon must be in [0, 1]");
  }
  policy_ = PolicyRegistry::instance().make_single_play(
      options.policy_spec, options.horizon, seed_);
  policy_->reset(graph_);
  policy_description_ = policy_->describe();
}

Decision DecisionEngine::decide(const std::string& user_key,
                                std::uint64_t slot) {
  const std::uint64_t key_hash = fnv1a_key(user_key);
  std::lock_guard<std::mutex> lock(mutex_);
  const TimeSlot t = ++t_;  // global decision order drives the policy clock
  const ArmId greedy = policy_->select(t);

  // The exploration draw comes from the key's own counter-based stream, so
  // it is independent of which connection carried the request.
  const std::uint64_t key_index = per_key_count_[key_hash]++;
  const std::size_t num_arms = graph_.num_vertices();
  ArmId action = greedy;
  if (epsilon_ > 0.0) {
    Xoshiro256 rng(derive_seed_at(seed_ ^ key_hash, key_index));
    if (rng.uniform() < epsilon_) {
      action = static_cast<ArmId>(rng.uniform_int(num_arms));
    }
  }
  // Epsilon-greedy logging propensity: every arm gets eps/K from the
  // uniform branch; the greedy arm additionally gets the (1-eps) mass.
  double propensity = epsilon_ / static_cast<double>(num_arms);
  if (action == greedy) propensity += 1.0 - epsilon_;

  Decision decision;
  decision.decision_id = static_cast<std::uint64_t>(t);
  decision.slot = slot;
  decision.action = action;
  decision.propensity = propensity;
  pending_.emplace(decision.decision_id, action);
  if (log_ != nullptr) {
    log_->append_decision(decision.decision_id, user_key, action, propensity);
  }
  m_decisions_.inc();
  return decision;
}

bool DecisionEngine::report(std::uint64_t decision_id, double reward) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pending_.find(decision_id);
  if (it == pending_.end()) {
    // Issued-but-not-pending means the reward already arrived: a duplicate.
    // An id outside [1, t_] was never issued at all.
    if (decision_id >= 1 && decision_id <= static_cast<std::uint64_t>(t_)) {
      ++duplicate_feedbacks_;
      m_duplicates_.inc();
    } else {
      ++unknown_feedbacks_;
      m_unknown_.inc();
    }
    return false;
  }
  const ArmId played = it->second;
  // Bandit feedback only: the service observes the reward of the served
  // action, never side observations — the relation graph still shapes the
  // policy's index, just without N_i sharing.
  policy_->observe(played, t_, {{played, reward}});
  pending_.erase(it);
  ++feedbacks_;
  m_feedbacks_.inc();
  if (log_ != nullptr) log_->append_feedback(decision_id, reward);
  return true;
}

std::size_t DecisionEngine::num_arms() const noexcept {
  return graph_.num_vertices();
}

std::string DecisionEngine::describe() const {
  return policy_description_ + ", eps=" + std::to_string(epsilon_) + ", K=" +
         std::to_string(graph_.num_vertices());
}

std::uint64_t DecisionEngine::decisions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::uint64_t>(t_);
}

std::uint64_t DecisionEngine::feedbacks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return feedbacks_;
}

std::uint64_t DecisionEngine::unknown_feedbacks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unknown_feedbacks_;
}

std::uint64_t DecisionEngine::duplicate_feedbacks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return duplicate_feedbacks_;
}

std::size_t DecisionEngine::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

}  // namespace ncb::serve
