// The online decision engine: a registry-constructed policy + relation
// graph behind a thread-safe decide()/report() API.
//
// This is the explorer/recorder split of the MWT Decision Service
// (Agarwal et al.): decide() runs the learned policy, mixes in
// epsilon-greedy exploration, and returns the chosen action *with its
// propensity* — the probability the logging policy assigned to that action
// — so the event log supports counterfactual evaluation of other policies
// later. report() joins a reward back to its decision and feeds the policy
// online.
//
// Determinism contract: the exploration randomness for a user key's i-th
// request is drawn from a stream seeded with derive_seed_at(seed ⊕
// hash(key), i) — a per-key counter-based stream, never a shared RNG and
// never per-connection state. Decisions therefore depend only on the
// engine seed and the global order of decide()/report() calls (which
// drives the policy's learned state), not on which connection carried a
// request or how many clients are attached. Replaying the same request
// stream in the same order is bit-identical, however it is multiplexed.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/policy.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "serve/event_log.hpp"
#include "util/types.hpp"

namespace ncb::serve {

/// FNV-1a over a user key: stable across runs and platforms (unlike
/// std::hash). Both the live engine and the offline replayer seed a key's
/// exploration stream with derive_seed_at(seed ^ fnv1a_key(key), i), so the
/// hash is part of the determinism contract.
[[nodiscard]] std::uint64_t fnv1a_key(const std::string& key) noexcept;

struct EngineOptions {
  /// Policy registry spec, e.g. "dfl-sso" or "eps-greedy:eps=0.05".
  std::string policy_spec = "dfl-sso";
  /// Epsilon-greedy exploration mixed over the policy's choice: with
  /// probability epsilon the served action is uniform over all K arms.
  /// 0 disables exploration (propensity 1 on every decision).
  double epsilon = 0.05;
  /// Master seed: the policy's private stream and every per-key
  /// exploration stream derive from it.
  std::uint64_t seed = 20170605;
  /// Horizon hint forwarded to the policy builder (0 = anytime).
  TimeSlot horizon = 0;
  /// Registry mirroring the engine counters (serve.engine.*); nullptr →
  /// obs::MetricsRegistry::global(). Observability only — never feeds back
  /// into a decision.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One answered decision request.
struct Decision {
  std::uint64_t decision_id = 0;  ///< Join key for report(); also the slot.
  std::uint64_t slot = 0;         ///< Echo of the caller's slot tag.
  ArmId action = kNoArm;
  double propensity = 0.0;
};

class DecisionEngine {
 public:
  /// Builds the policy from the registry and resets it over `graph`.
  /// `log` may be null (serving without an event log); when set, every
  /// decide/report appends a record under the engine lock, so log order
  /// equals decision order. Throws std::invalid_argument on an unknown
  /// policy spec, an empty graph, or epsilon outside [0, 1].
  DecisionEngine(Graph graph, const EngineOptions& options,
                 EventLog* log = nullptr);

  /// Answers one request: runs the policy at the next time slot, applies
  /// the per-key exploration draw, logs and remembers the decision.
  [[nodiscard]] Decision decide(const std::string& user_key,
                                std::uint64_t slot = 0);

  /// Joins a reward to a decision and feeds the policy online. Returns
  /// false (and changes nothing) for an unknown or already-reported
  /// decision_id.
  bool report(std::uint64_t decision_id, double reward);

  [[nodiscard]] std::size_t num_arms() const noexcept;
  /// One-line summary for server startup logs.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] std::uint64_t decisions() const;
  [[nodiscard]] std::uint64_t feedbacks() const;
  /// report() calls naming a decision_id that was never issued.
  [[nodiscard]] std::uint64_t unknown_feedbacks() const;
  /// report() calls naming a decision that already received its reward —
  /// the join-health signal a lossy or retrying feedback path produces.
  [[nodiscard]] std::uint64_t duplicate_feedbacks() const;
  /// Decisions awaiting feedback.
  [[nodiscard]] std::size_t pending() const;

 private:
  Graph graph_;
  std::unique_ptr<SinglePlayPolicy> policy_;
  double epsilon_;
  std::uint64_t seed_;
  EventLog* log_;
  std::string policy_description_;

  mutable std::mutex mutex_;
  TimeSlot t_ = 0;  ///< Last issued slot == last decision_id.
  std::unordered_map<std::uint64_t, ArmId> pending_;
  std::unordered_map<std::uint64_t, std::uint64_t> per_key_count_;
  std::uint64_t feedbacks_ = 0;
  std::uint64_t unknown_feedbacks_ = 0;
  std::uint64_t duplicate_feedbacks_ = 0;

  // Registry mirrors of the counters above (references resolved once in
  // the constructor; increments are relaxed atomics on the hot path).
  obs::Counter& m_decisions_;
  obs::Counter& m_feedbacks_;
  obs::Counter& m_unknown_;
  obs::Counter& m_duplicates_;
};

}  // namespace ncb::serve
