#include "serve/event_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "dist/protocol.hpp"

namespace ncb::serve {

namespace {

constexpr std::size_t kHeaderBytes = 8;        // u32 magic + u32 version.
constexpr std::size_t kRecordHeaderBytes = 5;  // u32 length + u8 type.

/// Caps one record's payload; a corrupted length fails fast instead of
/// swallowing the rest of the file as "one record".
constexpr std::uint32_t kMaxRecordPayload = 1u << 20;

std::uint32_t read_u32_le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

obs::MetricsRegistry& log_registry(const EventLog::Options& options) {
  return options.metrics != nullptr ? *options.metrics
                                    : obs::MetricsRegistry::global();
}

}  // namespace

EventLog::EventLog(Options options)
    : options_(std::move(options)),
      m_records_(log_registry(options_).counter("serve.log.records")),
      m_flushes_(log_registry(options_).counter("serve.log.flushes")),
      m_flushed_bytes_(
          log_registry(options_).counter("serve.log.flushed_bytes")),
      m_flush_stalls_(
          log_registry(options_).counter("serve.log.flush_stalls")),
      m_write_failures_(
          log_registry(options_).counter("serve.log.write_failures")),
      m_buffered_bytes_(
          log_registry(options_).gauge("serve.log.buffered_bytes")) {
  if (options_.path.empty()) {
    throw std::runtime_error("event log: empty path");
  }
  fd_ = ::open(options_.path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    throw std::runtime_error("event log: cannot open '" + options_.path +
                             "': " + std::strerror(errno));
  }
  dist::WireWriter header;
  header.put_u32(kEventLogMagic);
  header.put_u32(kEventLogVersion);
  const std::string bytes = header.take();
  write_all(bytes);  // single-threaded here: the flusher starts below
  bytes_written_ = bytes.size();
  flusher_ = std::thread([this] { flusher_main(); });
}

EventLog::~EventLog() {
  try {
    close();
  } catch (const std::exception&) {
    // Destructor: the file keeps whatever prefix made it to disk; the
    // reader tolerates exactly that.
  }
}

void EventLog::append_decision(std::uint64_t decision_id,
                               const std::string& key, ArmId action,
                               double propensity) {
  dist::WireWriter payload;
  payload.put_u64(decision_id);
  payload.put_string(key);
  payload.put_u32(static_cast<std::uint32_t>(action));
  payload.put_double(propensity);
  append_record(EventType::kDecision, payload.take());
}

void EventLog::append_feedback(std::uint64_t decision_id, double reward) {
  dist::WireWriter payload;
  payload.put_u64(decision_id);
  payload.put_double(reward);
  append_record(EventType::kFeedback, payload.take());
}

void EventLog::append_record(EventType type, const std::string& payload) {
  if (payload.size() > kMaxRecordPayload) {
    throw std::invalid_argument("event log: record payload too large");
  }
  bool signal = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) throw std::logic_error("event log: append after close");
    const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
    for (int i = 0; i < 4; ++i) {
      active_.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
    }
    active_.push_back(static_cast<char>(type));
    active_.append(payload);
    ++records_;
    signal = active_.size() >= options_.flush_bytes;
    // A full buffer while the previous batch is still being written means
    // appends are outpacing the disk — the stall signal a saturated log
    // shows before it starts growing without bound.
    if (signal && write_in_progress_) m_flush_stalls_.inc();
    m_buffered_bytes_.set(static_cast<std::int64_t>(active_.size()));
  }
  m_records_.inc();
  if (signal) wake_flusher_.notify_one();
}

void EventLog::flush() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) throw std::logic_error("event log: flush after close");
  force_flush_ = true;
  wake_flusher_.notify_one();
  flush_done_.wait(lock,
                   [this] { return active_.empty() && !write_in_progress_; });
}

void EventLog::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_flusher_.notify_one();
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  // The flusher drains active_ before exiting, so everything appended
  // before close() is on disk here.
  closed_ = true;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t EventLog::records_appended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::uint64_t EventLog::bytes_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_written_;
}

std::uint64_t EventLog::flush_batches() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return flush_batches_;
}

bool EventLog::write_failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return write_failed_;
}

void EventLog::flusher_main() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    // Wake early for a full buffer, a forced flush, or shutdown; a timeout
    // with a small non-empty buffer is the age threshold firing (worst
    // case one extra wait of flush_ms for a just-appended record).
    wake_flusher_.wait_for(
        lock, std::chrono::milliseconds(options_.flush_ms), [this] {
          return stop_ || force_flush_ ||
                 active_.size() >= options_.flush_bytes;
        });
    if (active_.empty()) {
      force_flush_ = false;
      flush_done_.notify_all();
      if (stop_) break;
      continue;
    }
    writing_.clear();
    writing_.swap(active_);
    write_in_progress_ = true;
    m_buffered_bytes_.set(0);
    const bool already_failed = write_failed_;
    lock.unlock();
    bool wrote = true;
    try {
      write_all(writing_);
    } catch (const std::exception& e) {
      // An I/O failure (disk full, revoked mount) must not terminate the
      // process from a detached-ish thread: drop the batch, warn once, and
      // keep serving. The log simply ends at the last good record.
      wrote = false;
      if (!already_failed) {
        std::fprintf(stderr, "event log: %s — further records dropped\n",
                     e.what());
      }
    }
    lock.lock();
    write_in_progress_ = false;
    if (wrote) {
      bytes_written_ += writing_.size();
      ++flush_batches_;
      m_flushes_.inc();
      m_flushed_bytes_.inc(writing_.size());
    } else {
      write_failed_ = true;
      m_write_failures_.inc();
    }
    if (active_.empty()) force_flush_ = false;
    flush_done_.notify_all();
  }
}

void EventLog::write_all(const std::string& batch) {
  std::size_t written = 0;
  while (written < batch.size()) {
    const ssize_t n =
        ::write(fd_, batch.data() + written, batch.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("event log: write failed: " +
                               std::string(std::strerror(errno)));
    }
    written += static_cast<std::size_t>(n);
  }
}

EventLogScan read_event_log(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("event log: cannot read '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();

  EventLogScan scan;
  if (data.size() < kHeaderBytes) {
    scan.truncated_tail = true;  // not even a complete header
    return scan;
  }
  const std::uint32_t magic = read_u32_le(data.data());
  if (magic != kEventLogMagic) {
    throw std::invalid_argument("event log: bad magic in '" + path +
                                "' (not an ncb event log)");
  }
  scan.version = read_u32_le(data.data() + 4);
  if (scan.version != kEventLogVersion) {
    throw std::invalid_argument(
        "event log: unsupported version " + std::to_string(scan.version) +
        " (reader supports " + std::to_string(kEventLogVersion) + ")");
  }
  scan.valid_bytes = kHeaderBytes;

  std::set<std::uint64_t> decision_ids;
  std::size_t at = kHeaderBytes;
  while (true) {
    if (data.size() - at < kRecordHeaderBytes) {
      scan.truncated_tail = at != data.size();
      break;
    }
    const std::uint32_t length = read_u32_le(data.data() + at);
    const std::uint8_t raw_type =
        static_cast<unsigned char>(data[at + kRecordHeaderBytes - 1]);
    if (length > kMaxRecordPayload) {
      throw std::invalid_argument("event log: oversized record (" +
                                  std::to_string(length) + " bytes) at offset " +
                                  std::to_string(at));
    }
    if (raw_type != static_cast<std::uint8_t>(EventType::kDecision) &&
        raw_type != static_cast<std::uint8_t>(EventType::kFeedback)) {
      throw std::invalid_argument("event log: unknown record type " +
                                  std::to_string(raw_type) + " at offset " +
                                  std::to_string(at));
    }
    if (data.size() - at - kRecordHeaderBytes < length) {
      scan.truncated_tail = true;  // complete header, incomplete payload
      break;
    }
    const std::string payload = data.substr(at + kRecordHeaderBytes, length);
    dist::WireReader reader(payload);
    EventRecord record;
    record.type = static_cast<EventType>(raw_type);
    // A complete record that fails to decode is corruption, not truncation:
    // WireReader's invalid_argument propagates.
    if (record.type == EventType::kDecision) {
      record.decision_id = reader.get_u64();
      record.key = reader.get_string();
      record.action = static_cast<ArmId>(reader.get_u32());
      record.propensity = reader.get_double();
      reader.finish();
      ++scan.decisions;
      decision_ids.insert(record.decision_id);
    } else {
      record.decision_id = reader.get_u64();
      record.reward = reader.get_double();
      reader.finish();
      ++scan.feedbacks;
      if (decision_ids.count(record.decision_id)) ++scan.joined;
    }
    scan.records.push_back(std::move(record));
    at += kRecordHeaderBytes + length;
    scan.valid_bytes = at;
  }
  return scan;
}

EventLogJoin join_event_log(const EventLogScan& scan) {
  EventLogJoin join;
  join.min_propensity = std::numeric_limits<double>::infinity();
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(scan.decisions);
  for (const EventRecord& record : scan.records) {
    if (record.type == EventType::kDecision) {
      if (!(record.propensity > 0.0)) {
        throw std::invalid_argument(
            "event log: decision " + std::to_string(record.decision_id) +
            " has non-positive propensity " +
            std::to_string(record.propensity) +
            " — cannot importance-weight this log");
      }
      JoinedEvent event;
      event.decision_id = record.decision_id;
      event.key = record.key;
      event.action = record.action;
      event.propensity = record.propensity;
      by_id[record.decision_id] = join.events.size();
      join.events.push_back(std::move(event));
      ++join.decisions;
      if (record.propensity < join.min_propensity) {
        join.min_propensity = record.propensity;
      }
    } else {
      const auto it = by_id.find(record.decision_id);
      if (it == by_id.end()) {
        ++join.orphan_feedbacks;
        continue;
      }
      JoinedEvent& event = join.events[it->second];
      if (event.has_reward) {
        ++join.duplicate_feedbacks;
        continue;
      }
      event.reward = record.reward;
      event.has_reward = true;
      ++join.joined;
    }
  }
  return join;
}

}  // namespace ncb::serve
