// Append-only, schema-versioned binary event log for the decision service.
//
// The log is the durable source of truth for counterfactual evaluation
// (the MWT Decision Service model): every decision lands as a
// (decision_id, key, action, propensity) record, every reward join as a
// (decision_id, reward) record. Records reuse the dist/protocol wire
// codecs and the frame layout:
//
//     file   := header record*
//     header := u32 magic "NCBL" | u32 version
//     record := u32 payload-length (LE) | u8 record-type | payload
//
// Writer: a double-buffered batcher. Appends go into an in-memory buffer
// under a mutex and never wait on disk; a background flusher thread swaps
// the buffers and writes the full batch when the buffer reaches
// flush_bytes or has aged flush_ms. Each append is a complete record, and
// batches are written front-to-back, so the file's only possible damage
// mode — from SIGKILL or power loss mid-write — is an incomplete record at
// the tail. close() (and the destructor, and therefore a handled SIGTERM)
// drains everything appended so far, so a clean shutdown never loses or
// tears a record.
//
// Reader: scans the file and returns every complete record, tolerating a
// truncated tail exactly like the sweep --resume scanner tolerates a
// truncated checkpoint file: the complete prefix is recovered, the torn
// bytes are reported, and only structural corruption (bad magic, unknown
// record type, oversized length) throws.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/types.hpp"

namespace ncb::serve {

inline constexpr std::uint32_t kEventLogMagic = 0x4e43424c;  // "NCBL"
/// Bump on any header or record layout change.
inline constexpr std::uint32_t kEventLogVersion = 1;

enum class EventType : std::uint8_t {
  kDecision = 1,  ///< decision_id, user key, action, propensity.
  kFeedback = 2,  ///< decision_id, reward.
};

/// One decoded log record; decision-only fields are defaulted on feedback
/// records and vice versa.
struct EventRecord {
  EventType type = EventType::kDecision;
  std::uint64_t decision_id = 0;
  std::string key;
  ArmId action = kNoArm;
  double propensity = 0.0;
  double reward = 0.0;
};

class EventLog {
 public:
  struct Options {
    std::string path;
    /// Flush when the active buffer reaches this size...
    std::size_t flush_bytes = 256 * 1024;
    /// ...or when appended data has been buffered this long.
    int flush_ms = 50;
    /// Registry mirroring the flush-pipeline health metrics (serve.log.*);
    /// nullptr → obs::MetricsRegistry::global().
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Opens (truncating) `path`, writes the header, starts the flusher.
  /// Throws std::runtime_error when the file cannot be opened.
  explicit EventLog(Options options);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  void append_decision(std::uint64_t decision_id, const std::string& key,
                       ArmId action, double propensity);
  void append_feedback(std::uint64_t decision_id, double reward);

  /// Blocks until every record appended before the call is on disk (in the
  /// file-content sense: written, not fsynced).
  void flush();

  /// flush() + stop the flusher + close the fd. Idempotent; called by the
  /// destructor. Append/flush after close() throw std::logic_error.
  void close();

  [[nodiscard]] const std::string& path() const noexcept {
    return options_.path;
  }
  /// Records appended so far (buffered or written).
  [[nodiscard]] std::uint64_t records_appended() const;
  /// Bytes written to the file so far (including the header).
  [[nodiscard]] std::uint64_t bytes_written() const;
  /// Completed flusher write batches.
  [[nodiscard]] std::uint64_t flush_batches() const;
  /// True after any flusher write failed (those records were dropped).
  [[nodiscard]] bool write_failed() const;

 private:
  void append_record(EventType type, const std::string& payload);
  void flusher_main();
  /// Writes `batch` fully to fd_ (restarting across EINTR/short writes).
  void write_all(const std::string& batch);

  Options options_;
  int fd_ = -1;

  mutable std::mutex mutex_;
  std::condition_variable wake_flusher_;
  std::condition_variable flush_done_;
  std::string active_;   ///< Append side of the double buffer.
  std::string writing_;  ///< Flusher side; only the flusher touches it.
  bool closed_ = false;
  bool stop_ = false;
  bool force_flush_ = false;
  bool write_in_progress_ = false;
  bool write_failed_ = false;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t flush_batches_ = 0;

  // Registry mirrors (resolved once in the constructor).
  obs::Counter& m_records_;
  obs::Counter& m_flushes_;
  obs::Counter& m_flushed_bytes_;
  obs::Counter& m_flush_stalls_;
  obs::Counter& m_write_failures_;
  obs::Gauge& m_buffered_bytes_;

  std::thread flusher_;
};

/// Result of scanning a log file.
struct EventLogScan {
  std::uint32_t version = 0;
  std::vector<EventRecord> records;
  std::uint64_t decisions = 0;
  std::uint64_t feedbacks = 0;
  /// Feedback records whose decision_id matched an earlier decision record.
  std::uint64_t joined = 0;
  /// Byte length of the valid prefix (header + complete records).
  std::uint64_t valid_bytes = 0;
  /// True when the file ends in an incomplete header or record (the
  /// crash-tolerance case); the complete prefix is still returned.
  bool truncated_tail = false;
};

/// Scans `path`. Tolerates a truncated tail (see EventLogScan); throws
/// std::runtime_error when the file cannot be read and
/// std::invalid_argument on structural corruption (bad magic, wrong
/// version, unknown record type, oversized record, undecodable payload).
[[nodiscard]] EventLogScan read_event_log(const std::string& path);

/// One decision joined to its reward (when one arrived).
struct JoinedEvent {
  std::uint64_t decision_id = 0;
  std::string key;
  ArmId action = kNoArm;
  double propensity = 0.0;
  double reward = 0.0;
  bool has_reward = false;
};

/// A scanned log joined decision-to-reward, the input shape counterfactual
/// evaluation needs. `events` preserves decision order; the join stats
/// separate the engine-guaranteed cases (every feedback matches exactly one
/// earlier decision) from anything a torn or hand-edited log could hold.
struct EventLogJoin {
  std::vector<JoinedEvent> events;  ///< One entry per decision record.
  std::uint64_t decisions = 0;
  std::uint64_t joined = 0;
  /// Feedback records whose decision_id matched no earlier decision.
  std::uint64_t orphan_feedbacks = 0;
  /// Feedback records for a decision that already had a reward.
  std::uint64_t duplicate_feedbacks = 0;
  /// Smallest logged propensity (the epsilon/K exploration floor);
  /// +infinity when the log holds no decisions.
  double min_propensity = 0.0;
};

/// Joins a scan's feedback records to their decisions. Throws
/// std::invalid_argument when a decision record carries a non-positive
/// propensity (such a log cannot support importance weighting).
[[nodiscard]] EventLogJoin join_event_log(const EventLogScan& scan);

}  // namespace ncb::serve
