#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "dist/protocol.hpp"
#include "exp/emitters.hpp"
#include "obs/scoped_timer.hpp"

namespace ncb::serve {

namespace {

using Clock = std::chrono::steady_clock;

struct Conn {
  int fd = -1;
  dist::FrameDecoder decoder;
  std::string outbuf;      ///< Framed replies awaiting the socket.
  std::size_t sent = 0;    ///< Prefix of outbuf already written.
  bool handshaken = false;
};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error(std::string("serve: fcntl(O_NONBLOCK): ") +
                             std::strerror(errno));
  }
}

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    throw std::runtime_error("serve: socket path too long for AF_UNIX (" +
                             std::to_string(path.size()) + " bytes, max " +
                             std::to_string(sizeof addr.sun_path - 1) + ")");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve: socket: ") +
                             std::strerror(errno));
  }
  ::unlink(path.c_str());  // a stale socket file from a dead server
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    const int saved = errno;
    ::close(fd);
    throw std::runtime_error("serve: bind '" + path +
                             "': " + std::strerror(saved));
  }
  if (::listen(fd, backlog) < 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw std::runtime_error(std::string("serve: listen: ") +
                             std::strerror(saved));
  }
  set_nonblocking(fd);
  return fd;
}

class Reactor {
 public:
  Reactor(DecisionEngine& engine, const ServerOptions& options)
      : engine_(engine),
        options_(options),
        registry_(options.metrics != nullptr ? *options.metrics
                                             : obs::MetricsRegistry::global()),
        m_connections_(registry_.counter("serve.connections.accepted")),
        m_active_conns_(registry_.gauge("serve.connections.active")),
        m_decides_(registry_.counter("serve.decide.requests")),
        m_feedbacks_(registry_.counter("serve.feedback.frames")),
        m_protocol_errors_(registry_.counter("serve.protocol.errors")),
        m_stats_requests_(registry_.counter("serve.stats.requests")),
        m_decide_latency_(registry_.histogram("serve.decide.latency_us")),
        m_feedback_latency_(registry_.histogram("serve.feedback.latency_us")) {
    listen_fd_ = listen_unix(options_.socket_path, options_.backlog);
  }

  ~Reactor() {
    for (Conn& conn : conns_) {
      if (conn.fd >= 0) {
        ::close(conn.fd);
        m_active_conns_.add(-1);  // drained-away clients: keep the gauge true
      }
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      ::unlink(options_.socket_path.c_str());
    }
  }

  ServerStats run() {
    bool draining = false;
    Clock::time_point drain_deadline{};
    const bool periodic_metrics =
        !options_.metrics_out.empty() && options_.metrics_interval_ms > 0;
    Clock::time_point next_metrics =
        Clock::now() + std::chrono::milliseconds(options_.metrics_interval_ms);
    while (true) {
      if (!draining && options_.should_stop && options_.should_stop()) {
        draining = true;
        drain_deadline =
            Clock::now() + std::chrono::milliseconds(options_.drain_ms);
        ::close(listen_fd_);
        ::unlink(options_.socket_path.c_str());
        listen_fd_ = -1;
      }
      if (draining &&
          (conns_.empty() || Clock::now() >= drain_deadline)) {
        break;
      }
      int timeout_ms = draining ? remaining_ms(drain_deadline) : 200;
      if (periodic_metrics) {
        if (Clock::now() >= next_metrics) {
          write_metrics_snapshot();
          next_metrics =
              Clock::now() +
              std::chrono::milliseconds(options_.metrics_interval_ms);
        }
        timeout_ms = std::min(timeout_ms, remaining_ms(next_metrics));
      }
      poll_once(timeout_ms);
    }
    // Final snapshot: the post-drain totals a dashboard scrapes after the
    // server is gone.
    if (!options_.metrics_out.empty()) write_metrics_snapshot();
    return stats_;
  }

 private:
  static int remaining_ms(Clock::time_point deadline) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    return static_cast<int>(std::max<std::int64_t>(0, left.count()));
  }

  void poll_once(int timeout_ms) {
    fds_.clear();
    owners_.clear();
    if (listen_fd_ >= 0) {
      fds_.push_back(pollfd{listen_fd_, POLLIN, 0});
      owners_.push_back(SIZE_MAX);
    }
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      short events = POLLIN;
      if (conns_[i].sent < conns_[i].outbuf.size()) events |= POLLOUT;
      fds_.push_back(pollfd{conns_[i].fd, events, 0});
      owners_.push_back(i);
    }
    if (fds_.empty()) return;

    const int ready = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) return;  // signal → should_stop check next round
      throw std::runtime_error(std::string("serve: poll: ") +
                               std::strerror(errno));
    }
    for (std::size_t i = 0; i < fds_.size(); ++i) {
      if (fds_[i].revents == 0) continue;
      if (owners_[i] == SIZE_MAX) {
        accept_ready();
        continue;
      }
      Conn& conn = conns_[owners_[i]];
      if (conn.fd < 0) continue;
      if ((fds_[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        read_ready(conn);
      }
      if (conn.fd >= 0 && (fds_[i].revents & POLLOUT) != 0) {
        write_ready(conn);
      }
    }
    reap_closed();
  }

  void accept_ready() {
    while (true) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        if (errno == ECONNABORTED) continue;  // client gave up mid-accept
        throw std::runtime_error(std::string("serve: accept: ") +
                                 std::strerror(errno));
      }
      Conn conn;
      conn.fd = fd;
      conns_.push_back(std::move(conn));
      ++stats_.connections_accepted;
      m_connections_.inc();
      m_active_conns_.add(1);
    }
  }

  void read_ready(Conn& conn) {
    while (conn.fd >= 0) {
      char buf[65536];
      const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        drop(conn, nullptr);  // reset by peer: a departure, not a violation
        return;
      }
      if (n == 0) {
        drop(conn, nullptr);  // clean EOF
        return;
      }
      try {
        conn.decoder.feed(buf, static_cast<std::size_t>(n));
        while (conn.fd >= 0) {
          const auto frame = conn.decoder.next();
          if (!frame) break;
          handle_frame(conn, *frame);
        }
      } catch (const std::invalid_argument& e) {
        drop(conn, e.what());  // oversized/unknown frame: stream is garbage
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof buf) break;  // drained
    }
    // Push replies out eagerly instead of waiting one poll round for
    // POLLOUT — with closed-loop clients this halves per-request latency.
    if (conn.fd >= 0) write_ready(conn);
  }

  void handle_frame(Conn& conn, const dist::Frame& frame) {
    if (!conn.handshaken) {
      if (frame.type != dist::MsgType::kHello) {
        drop(conn, ("expected Hello, got " +
                    std::string(dist::frame_type_name(frame.type)))
                       .c_str());
        return;
      }
      const dist::HelloMsg hello = dist::decode_hello(frame.payload);
      const auto mismatch = dist::validate_hello(hello, dist::kServeWireSchema);
      if (mismatch) {
        drop(conn, mismatch->c_str());
        return;
      }
      conn.handshaken = true;
      dist::append_frame(conn.outbuf, dist::MsgType::kHelloAck,
                         dist::encode_hello_ack());
      return;
    }
    switch (frame.type) {
      case dist::MsgType::kDecideRequest: {
        const obs::ScopedTimer timer(m_decide_latency_);
        const dist::DecideRequestMsg request =
            dist::decode_decide_request(frame.payload);
        const Decision decision = engine_.decide(request.user_key, request.slot);
        dist::DecideReplyMsg reply;
        reply.request_id = request.request_id;
        reply.slot = request.slot;
        reply.decision_id = decision.decision_id;
        reply.action = static_cast<std::uint32_t>(decision.action);
        reply.propensity = decision.propensity;
        dist::append_frame(conn.outbuf, dist::MsgType::kDecideReply,
                           dist::encode_decide_reply(reply));
        ++stats_.decide_requests;
        m_decides_.inc();
        return;
      }
      case dist::MsgType::kFeedback: {
        const obs::ScopedTimer timer(m_feedback_latency_);
        const dist::FeedbackMsg feedback =
            dist::decode_feedback(frame.payload);
        engine_.report(feedback.decision_id, feedback.reward);
        ++stats_.feedback_frames;
        m_feedbacks_.inc();
        return;
      }
      case dist::MsgType::kStatsRequest: {
        // Metrics poll: reply from the registry alone — no engine call, no
        // log write, so polling mid-run cannot perturb serving.
        if (!frame.payload.empty()) {
          drop(conn, "StatsRequest with a payload");
          return;
        }
        m_stats_requests_.inc();
        dist::StatsReplyMsg reply;
        for (const obs::StatEntry& entry : registry_.snapshot().flatten()) {
          reply.entries.push_back({entry.kind, entry.name, entry.value});
        }
        dist::append_frame(conn.outbuf, dist::MsgType::kStatsReply,
                           dist::encode_stats_reply(reply));
        return;
      }
      default:
        drop(conn, ("unexpected " +
                    std::string(dist::frame_type_name(frame.type)) +
                    " frame from a serve client")
                       .c_str());
    }
  }

  void write_ready(Conn& conn) {
    while (conn.sent < conn.outbuf.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.outbuf.data() + conn.sent,
                 conn.outbuf.size() - conn.sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        drop(conn, nullptr);  // EPIPE/ECONNRESET: the client vanished
        return;
      }
      conn.sent += static_cast<std::size_t>(n);
    }
    conn.outbuf.clear();
    conn.sent = 0;
  }

  /// Closes the connection; a non-null reason is a protocol violation
  /// (counted and logged), null is a normal departure.
  void drop(Conn& conn, const char* reason) {
    if (reason != nullptr) {
      ++stats_.protocol_errors;
      m_protocol_errors_.inc();
      std::fprintf(stderr, "serve: dropping client: %s\n", reason);
    }
    ::close(conn.fd);
    conn.fd = -1;
    m_active_conns_.add(-1);
    need_reap_ = true;
  }

  void write_metrics_snapshot() noexcept {
    try {
      exp::write_file(options_.metrics_out,
                      registry_.snapshot().render_json());
    } catch (const std::exception& e) {
      // A bad snapshot path must not take down serving; say so once.
      if (!metrics_write_warned_) {
        metrics_write_warned_ = true;
        std::fprintf(stderr, "serve: metrics snapshot failed: %s\n", e.what());
      }
    }
  }

  void reap_closed() {
    if (!need_reap_) return;
    need_reap_ = false;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      if (conns_[i].fd < 0) continue;
      if (kept != i) conns_[kept] = std::move(conns_[i]);
      ++kept;
    }
    conns_.resize(kept);
  }

  DecisionEngine& engine_;
  const ServerOptions& options_;
  obs::MetricsRegistry& registry_;
  obs::Counter& m_connections_;
  obs::Gauge& m_active_conns_;
  obs::Counter& m_decides_;
  obs::Counter& m_feedbacks_;
  obs::Counter& m_protocol_errors_;
  obs::Counter& m_stats_requests_;
  obs::Histogram& m_decide_latency_;
  obs::Histogram& m_feedback_latency_;
  int listen_fd_ = -1;
  std::vector<Conn> conns_;
  std::vector<pollfd> fds_;        ///< Reused across rounds (no allocation).
  std::vector<std::size_t> owners_;
  ServerStats stats_;
  bool need_reap_ = false;
  bool metrics_write_warned_ = false;
};

}  // namespace

ServerStats run_server(DecisionEngine& engine, const ServerOptions& options) {
  if (options.socket_path.empty()) {
    throw std::invalid_argument("serve: empty socket path");
  }
  Reactor reactor(engine, options);
  return reactor.run();
}

}  // namespace ncb::serve
