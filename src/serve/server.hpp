// Poll-based multi-client reactor for the online decision service.
//
// One thread owns every connection: an AF_UNIX listening socket plus N
// accepted nonblocking clients multiplexed through poll(). Clients speak
// the dist/protocol length-prefixed framing — a versioned Hello/HelloAck
// handshake (schema word kServeWireSchema) followed by any interleaving of
// DecideRequest (answered with a DecideReply), Feedback (one-way), and
// StatsRequest (answered with a StatsReply holding the flattened metrics
// registry — a live server is queryable without disturbing traffic).
// Replies are appended to a per-connection output buffer and written
// eagerly; whatever the socket cannot take immediately is drained via
// POLLOUT, so one slow client never blocks the reactor.
//
// A client closing its socket at a frame boundary is a clean departure; a
// malformed frame, a handshake mismatch, or an unexpected type drops that
// connection (counted in ServerStats::protocol_errors) without disturbing
// the others. When `should_stop` trips (the SIGTERM flag), the server
// closes the listening socket, keeps serving already-connected clients for
// at most drain_ms, flushes what it can, and returns — so feedback already
// in flight still reaches the engine and the event log.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "obs/metrics.hpp"
#include "serve/decision_engine.hpp"

namespace ncb::serve {

struct ServerOptions {
  /// AF_UNIX socket path (bound fresh: a stale file is unlinked first).
  std::string socket_path;
  int backlog = 64;
  /// Polled between reactor rounds; true → drain and return.
  std::function<bool()> should_stop;
  /// Grace window after should_stop for in-flight client traffic.
  int drain_ms = 500;
  /// Registry mirroring the serve.* counters/histograms and answering
  /// StatsRequest frames; nullptr → obs::MetricsRegistry::global().
  obs::MetricsRegistry* metrics = nullptr;
  /// When non-empty, the registry snapshot is written here as JSON: once at
  /// shutdown, and additionally every metrics_interval_ms while serving
  /// (0 = final snapshot only). Write failures warn once and never disturb
  /// serving.
  std::string metrics_out;
  int metrics_interval_ms = 0;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t decide_requests = 0;
  std::uint64_t feedback_frames = 0;
  /// Connections dropped for handshake/framing/type violations.
  std::uint64_t protocol_errors = 0;
};

/// Runs the reactor until should_stop trips. Binds and listens inside the
/// call; throws std::runtime_error when the socket cannot be set up (path
/// too long for sun_path, bind/listen failure). The socket file is
/// unlinked on return.
[[nodiscard]] ServerStats run_server(DecisionEngine& engine,
                                     const ServerOptions& options);

}  // namespace ncb::serve
