#include "sim/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace ncb {

std::string RegretDecomposition::to_string(std::size_t top_k) const {
  std::ostringstream out;
  out << "arm,gap,plays,contribution\n";
  for (std::size_t i = 0; i < rows.size() && i < top_k; ++i) {
    out << rows[i].arm << ',' << rows[i].gap << ',' << rows[i].plays << ','
        << rows[i].contribution << '\n';
  }
  out << "total pseudo-regret: " << total << '\n';
  return out.str();
}

RegretDecomposition decompose_single_play(const RunResult& result,
                                          const BanditInstance& instance) {
  if (result.play_counts.size() != instance.num_arms()) {
    throw std::invalid_argument("decompose_single_play: size mismatch");
  }
  const bool side = result.scenario == Scenario::kSsr;
  const auto& values = side ? instance.side_reward_means() : instance.means();
  const double best = side ? instance.best_side_reward_mean()
                           : instance.best_mean();
  RegretDecomposition out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    ArmRegretRow row;
    row.arm = static_cast<ArmId>(i);
    row.gap = best - values[i];
    row.plays = result.play_counts[i];
    row.contribution = row.gap * static_cast<double>(row.plays);
    out.total += row.contribution;
    out.rows.push_back(row);
  }
  std::sort(out.rows.begin(), out.rows.end(),
            [](const ArmRegretRow& a, const ArmRegretRow& b) {
              return a.contribution > b.contribution;
            });
  return out;
}

RegretDecomposition decompose_combinatorial(const RunResult& result,
                                            const BanditInstance& instance,
                                            const FeasibleSet& family,
                                            Scenario scenario) {
  if (!is_combinatorial(scenario)) {
    throw std::invalid_argument(
        "decompose_combinatorial: combinatorial scenario required");
  }
  if (result.play_counts.size() != instance.num_arms()) {
    throw std::invalid_argument("decompose_combinatorial: size mismatch");
  }
  // Arm-level attribution: the best strategy's arms have gap 0; any other
  // arm i is charged the smallest strategy gap among strategies containing
  // i, normalized by strategy size. This mirrors the T̃ counters of the
  // Theorem 4 proof (each suboptimal play increments exactly one arm).
  const StrategyId best = optimal_strategy(instance, scenario, family);
  const double opt = scenario == Scenario::kCso
                         ? instance.strategy_mean(family.strategy(best))
                         : instance.strategy_side_reward_mean(
                               family.strategy(best));
  std::vector<double> min_gap(instance.num_arms(),
                              std::numeric_limits<double>::infinity());
  for (StrategyId x = 0; x < static_cast<StrategyId>(family.size()); ++x) {
    const auto& arms = family.strategy(x);
    const double value = scenario == Scenario::kCso
                             ? instance.strategy_mean(arms)
                             : instance.strategy_side_reward_mean(arms);
    const double gap = (opt - value) / static_cast<double>(arms.size());
    for (const ArmId i : arms) {
      min_gap[static_cast<std::size_t>(i)] =
          std::min(min_gap[static_cast<std::size_t>(i)], gap);
    }
  }
  RegretDecomposition out;
  for (std::size_t i = 0; i < instance.num_arms(); ++i) {
    ArmRegretRow row;
    row.arm = static_cast<ArmId>(i);
    row.gap = std::isfinite(min_gap[i]) ? min_gap[i] : 0.0;
    row.plays = result.play_counts[i];
    row.contribution = row.gap * static_cast<double>(row.plays);
    out.total += row.contribution;
    out.rows.push_back(row);
  }
  std::sort(out.rows.begin(), out.rows.end(),
            [](const ArmRegretRow& a, const ArmRegretRow& b) {
              return a.contribution > b.contribution;
            });
  return out;
}

}  // namespace ncb
