// Post-run regret analysis: decomposes the pseudo-regret of a finished run
// into per-arm contributions T_i(n)·Δ_i — the quantity the paper's proofs
// bound arm by arm (Eq. 8's clique regret is the clique-level rollup).
#pragma once

#include <string>
#include <vector>

#include "env/instance.hpp"
#include "sim/runner.hpp"
#include "strategy/feasible_set.hpp"

namespace ncb {

struct ArmRegretRow {
  ArmId arm = kNoArm;
  double gap = 0.0;               ///< Δ_i under the run's semantics.
  std::int64_t plays = 0;         ///< T_i(n).
  double contribution = 0.0;      ///< T_i(n) · Δ_i.
};

struct RegretDecomposition {
  std::vector<ArmRegretRow> rows;  ///< Sorted by contribution, descending.
  double total = 0.0;              ///< Σ contributions = pseudo-regret R̄_n.

  [[nodiscard]] std::string to_string(std::size_t top_k = 10) const;
};

/// Single-play decomposition. Gaps are μ*−μ_i (SSO) or u*−u_i (SSR).
[[nodiscard]] RegretDecomposition decompose_single_play(
    const RunResult& result, const BanditInstance& instance);

/// Combinatorial decomposition at arm granularity: each play of strategy x
/// charges Δ_x/|s_x| to every component arm (an attribution heuristic; the
/// total still equals the strategy-level pseudo-regret). `strategy_plays`
/// is reconstructed from play counts only when strategies are disjoint, so
/// this variant takes the per-slot trace instead: pass the same family and
/// re-derive gaps per strategy.
[[nodiscard]] RegretDecomposition decompose_combinatorial(
    const RunResult& result, const BanditInstance& instance,
    const FeasibleSet& family, Scenario scenario);

}  // namespace ncb
