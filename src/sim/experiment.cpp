#include "sim/experiment.hpp"

#include <sstream>
#include <stdexcept>

#include "core/policy_factory.hpp"
#include "exp/shard_scheduler.hpp"
#include "graph/generators.hpp"

namespace ncb {

std::string ExperimentConfig::describe() const {
  std::ostringstream out;
  out << name << ": K=" << num_arms << " n=" << horizon
      << " reps=" << replications << " seed=" << seed;
  switch (graph_family) {
    case GraphFamily::kErdosRenyi:
      out << " graph=ER(p=" << edge_probability << ")";
      break;
    case GraphFamily::kComplete: out << " graph=complete"; break;
    case GraphFamily::kEmpty: out << " graph=empty"; break;
    case GraphFamily::kStar: out << " graph=star"; break;
    case GraphFamily::kCycle: out << " graph=cycle"; break;
    case GraphFamily::kDisjointCliques:
      out << " graph=cliques(x" << family_param << ")";
      break;
    case GraphFamily::kBarabasiAlbert:
      out << " graph=BA(m=" << family_param << ")";
      break;
    case GraphFamily::kWattsStrogatz:
      out << " graph=WS(k=" << family_param << ",beta=" << edge_probability
          << ")";
      break;
  }
  return out.str();
}

Graph build_graph(const ExperimentConfig& config) {
  Xoshiro256 rng(config.seed ^ 0x6a09e667f3bcc908ULL);
  switch (config.graph_family) {
    case GraphFamily::kErdosRenyi:
      return erdos_renyi(config.num_arms, config.edge_probability, rng);
    case GraphFamily::kComplete:
      return complete_graph(config.num_arms);
    case GraphFamily::kEmpty:
      return empty_graph(config.num_arms);
    case GraphFamily::kStar:
      return star_graph(config.num_arms);
    case GraphFamily::kCycle:
      return cycle_graph(config.num_arms);
    case GraphFamily::kDisjointCliques: {
      if (config.family_param == 0 || config.num_arms % config.family_param) {
        throw std::invalid_argument("build_graph: cliques must divide K");
      }
      return disjoint_cliques(config.family_param,
                              config.num_arms / config.family_param);
    }
    case GraphFamily::kBarabasiAlbert:
      return barabasi_albert(config.num_arms, config.family_param, rng);
    case GraphFamily::kWattsStrogatz:
      return watts_strogatz(config.num_arms, config.family_param,
                            config.edge_probability, rng);
  }
  throw std::logic_error("build_graph: bad family");
}

BanditInstance build_instance(const ExperimentConfig& config) {
  Graph graph = build_graph(config);
  Xoshiro256 rng(config.seed ^ 0xbb67ae8584caa73bULL);
  return random_bernoulli_instance(std::move(graph), rng);
}

std::shared_ptr<const FeasibleSet> build_family(const ExperimentConfig& config,
                                                const Graph& graph) {
  auto shared_graph = std::make_shared<const Graph>(graph);
  return std::make_shared<const FeasibleSet>(make_subset_family(
      shared_graph, config.strategy_size, config.exact_size_strategies));
}

ReplicatedResult run_single_experiment(const ExperimentConfig& config,
                                       const std::string& policy_name,
                                       Scenario scenario, ThreadPool* pool) {
  const BanditInstance instance = build_instance(config);
  ReplicationOptions options;
  options.replications = config.replications;
  options.master_seed = config.seed;
  options.runner.horizon = config.horizon;
  options.pool = pool;
  // Sharded execution (exp/shard_scheduler.hpp): long horizons split into
  // one-replication shards so the pool never starves, and the result is
  // bit-identical whether `pool` is null, 1 thread, or 64.
  return exp::run_sharded_single(
      [&](std::uint64_t seed) {
        return make_single_play_policy(policy_name, config.horizon, seed);
      },
      instance, scenario, options);
}

ReplicatedResult run_combinatorial_experiment(const ExperimentConfig& config,
                                              const std::string& policy_name,
                                              Scenario scenario,
                                              ThreadPool* pool) {
  const BanditInstance instance = build_instance(config);
  const auto family = build_family(config, instance.graph());
  ReplicationOptions options;
  options.replications = config.replications;
  options.master_seed = config.seed;
  options.runner.horizon = config.horizon;
  options.pool = pool;
  return exp::run_sharded_combinatorial(
      [&](std::uint64_t seed) {
        return make_combinatorial_policy(policy_name, family, seed);
      },
      instance, *family, scenario, options);
}

ExperimentConfig fig3_config() {
  ExperimentConfig c;
  c.name = "fig3-sso";
  c.num_arms = 100;
  c.edge_probability = 0.3;
  c.horizon = 10000;
  return c;
}

ExperimentConfig fig5_config() {
  ExperimentConfig c;
  c.name = "fig5-ssr";
  c.num_arms = 100;
  c.edge_probability = 0.3;
  c.horizon = 10000;
  return c;
}

ExperimentConfig fig4_config(bool dense) {
  ExperimentConfig c;
  c.name = dense ? "fig4b-cso-dense" : "fig4a-cso-sparse";
  c.num_arms = 20;
  c.edge_probability = dense ? 0.6 : 0.3;
  c.horizon = 10000;
  c.strategy_size = 3;
  return c;
}

ExperimentConfig fig6_config() {
  ExperimentConfig c;
  c.name = "fig6-csr";
  c.num_arms = 20;
  c.edge_probability = 0.3;
  c.horizon = 10000;
  c.strategy_size = 3;
  return c;
}

}  // namespace ncb
