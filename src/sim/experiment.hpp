// Declarative experiment configurations matching the paper's §VII setups.
// The bench binaries and examples build on these so every figure's workload
// is constructed in exactly one place.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "env/instance.hpp"
#include "sim/replication.hpp"
#include "strategy/feasible_set.hpp"

namespace ncb {

/// Graph family selector for experiment configs.
enum class GraphFamily {
  kErdosRenyi,
  kComplete,
  kEmpty,
  kStar,
  kCycle,
  kDisjointCliques,
  kBarabasiAlbert,
  kWattsStrogatz,
};

struct ExperimentConfig {
  std::string name = "experiment";
  GraphFamily graph_family = GraphFamily::kErdosRenyi;
  std::size_t num_arms = 100;          ///< K.
  double edge_probability = 0.3;       ///< ER p; or WS beta.
  std::size_t family_param = 4;        ///< cliques count / BA attach / WS k.
  TimeSlot horizon = 10000;            ///< n.
  std::size_t replications = 20;
  std::uint64_t seed = 20170605;
  // Combinatorial-only:
  std::size_t strategy_size = 3;       ///< M.
  bool exact_size_strategies = false;  ///< |s| = M rather than |s| ≤ M.

  [[nodiscard]] std::string describe() const;
};

/// Deterministically builds the config's relation graph.
[[nodiscard]] Graph build_graph(const ExperimentConfig& config);

/// Builds the §VII instance: config's graph + Bernoulli arms with means
/// uniform in [0, 1] (drawn from the config seed).
[[nodiscard]] BanditInstance build_instance(const ExperimentConfig& config);

/// Builds the subset strategy family (|s| ≤ M or = M) over the given graph.
[[nodiscard]] std::shared_ptr<const FeasibleSet> build_family(
    const ExperimentConfig& config, const Graph& graph);

/// Runs one named single-play policy on the config's instance.
[[nodiscard]] ReplicatedResult run_single_experiment(
    const ExperimentConfig& config, const std::string& policy_name,
    Scenario scenario, ThreadPool* pool = nullptr);

/// Runs one named combinatorial policy on the config's instance.
[[nodiscard]] ReplicatedResult run_combinatorial_experiment(
    const ExperimentConfig& config, const std::string& policy_name,
    Scenario scenario, ThreadPool* pool = nullptr);

/// Paper §VII defaults: Fig. 3/5 use K = 100 arms, p = 0.3, n = 10000.
[[nodiscard]] ExperimentConfig fig3_config();
[[nodiscard]] ExperimentConfig fig5_config();
/// Fig. 4: combinatorial play; the paper leaves K/M unspecified — we use
/// K = 20, M = 3 (documented in EXPERIMENTS.md). `dense` picks p = 0.6.
[[nodiscard]] ExperimentConfig fig4_config(bool dense);
/// Fig. 6: combinatorial side reward, same K/M convention as Fig. 4.
[[nodiscard]] ExperimentConfig fig6_config();

}  // namespace ncb
