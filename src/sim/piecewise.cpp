#include "sim/piecewise.hpp"

#include <stdexcept>

namespace ncb {

PiecewiseInstance::PiecewiseInstance(std::vector<BanditInstance> phases,
                                     std::vector<TimeSlot> breakpoints)
    : phases_(std::move(phases)), breakpoints_(std::move(breakpoints)) {
  if (phases_.empty()) {
    throw std::invalid_argument("PiecewiseInstance: need at least one phase");
  }
  if (breakpoints_.size() + 1 != phases_.size()) {
    throw std::invalid_argument(
        "PiecewiseInstance: need exactly one breakpoint between phases");
  }
  for (std::size_t p = 1; p < breakpoints_.size(); ++p) {
    if (breakpoints_[p] <= breakpoints_[p - 1]) {
      throw std::invalid_argument(
          "PiecewiseInstance: breakpoints must be strictly increasing");
    }
  }
  if (!breakpoints_.empty() && breakpoints_.front() <= 0) {
    throw std::invalid_argument("PiecewiseInstance: breakpoints must be > 0");
  }
  for (const auto& phase : phases_) {
    if (phase.num_arms() != phases_.front().num_arms()) {
      throw std::invalid_argument(
          "PiecewiseInstance: phases must share the arm count");
    }
  }
}

std::size_t PiecewiseInstance::phase_index(TimeSlot t) const {
  std::size_t p = 0;
  while (p < breakpoints_.size() && t > breakpoints_[p]) ++p;
  return p;
}

const BanditInstance& PiecewiseInstance::phase_at(TimeSlot t) const {
  return phases_[phase_index(t)];
}

RunResult run_single_play_piecewise(SinglePlayPolicy& policy,
                                    const PiecewiseInstance& instance,
                                    Scenario scenario, TimeSlot horizon,
                                    std::uint64_t seed) {
  if (is_combinatorial(scenario)) {
    throw std::invalid_argument(
        "run_single_play_piecewise: single-play scenario required");
  }
  const Graph& graph = instance.graph();
  const std::size_t k = instance.num_arms();

  RunResult result;
  result.scenario = scenario;
  result.play_counts.assign(k, 0);
  policy.reset(graph);

  Xoshiro256 rng(seed);
  std::vector<double> rewards(k, 0.0);
  std::vector<Observation> observations;
  double cumulative = 0.0;

  for (TimeSlot t = 1; t <= horizon; ++t) {
    const BanditInstance& phase = instance.phase_at(t);
    const double opt = scenario == Scenario::kSso
                           ? phase.best_mean()
                           : phase.best_side_reward_mean();
    const ArmId played = policy.select(t);
    if (played < 0 || static_cast<std::size_t>(played) >= k) {
      throw std::out_of_range("piecewise: policy chose invalid arm");
    }
    for (std::size_t i = 0; i < k; ++i) {
      rewards[i] = phase.arm(static_cast<ArmId>(i)).sample(rng);
    }
    observations.clear();
    double side_sum = 0.0;
    for (const ArmId j : graph.closed_neighborhood(played)) {
      observations.push_back({j, rewards[static_cast<std::size_t>(j)]});
      side_sum += rewards[static_cast<std::size_t>(j)];
    }
    const double realized = scenario == Scenario::kSso
                                ? rewards[static_cast<std::size_t>(played)]
                                : side_sum;
    const double chosen_mean =
        scenario == Scenario::kSso
            ? phase.means()[static_cast<std::size_t>(played)]
            : phase.side_reward_means()[static_cast<std::size_t>(played)];
    policy.observe(played, t, observations);

    result.total_reward += realized;
    ++result.play_counts[static_cast<std::size_t>(played)];
    const double regret = opt - realized;
    cumulative += regret;
    result.per_slot_regret.push_back(regret);
    result.cumulative_regret.push_back(cumulative);
    result.per_slot_pseudo_regret.push_back(opt - chosen_mean);
  }
  // optimal_per_slot is phase-dependent; report the time average.
  double opt_total = 0.0;
  for (TimeSlot t = 1; t <= horizon; ++t) {
    const BanditInstance& phase = instance.phase_at(t);
    opt_total += scenario == Scenario::kSso ? phase.best_mean()
                                            : phase.best_side_reward_mean();
  }
  result.optimal_per_slot = opt_total / static_cast<double>(horizon);
  return result;
}

}  // namespace ncb
