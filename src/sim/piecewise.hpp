// Piecewise-stationary environments: arm means jump at breakpoints. Regret
// is measured against the *dynamic* oracle (the best arm of the current
// phase), which is what the sliding-window / discounted policies target.
#pragma once

#include <vector>

#include "core/policy.hpp"
#include "env/instance.hpp"
#include "sim/runner.hpp"

namespace ncb {

/// A sequence of phases over one relation graph. Phase p is active for
/// slots in (breakpoint[p-1], breakpoint[p]]; the last phase runs to the
/// horizon. All phases must share the same graph topology (vertex count).
class PiecewiseInstance {
 public:
  /// `breakpoints[p]` is the last slot of phase p (strictly increasing,
  /// one fewer entry than phases — the final phase is open-ended).
  PiecewiseInstance(std::vector<BanditInstance> phases,
                    std::vector<TimeSlot> breakpoints);

  [[nodiscard]] std::size_t num_phases() const noexcept {
    return phases_.size();
  }
  [[nodiscard]] std::size_t num_arms() const noexcept {
    return phases_.front().num_arms();
  }
  [[nodiscard]] const Graph& graph() const noexcept {
    return phases_.front().graph();
  }

  /// The instance active at slot t (1-based).
  [[nodiscard]] const BanditInstance& phase_at(TimeSlot t) const;

  /// Index of the phase active at slot t.
  [[nodiscard]] std::size_t phase_index(TimeSlot t) const;

 private:
  std::vector<BanditInstance> phases_;
  std::vector<TimeSlot> breakpoints_;
};

/// Runs one single-play replication against the piecewise environment.
/// Only kSso / kSsr semantics; regret is dynamic (per-phase optimum).
[[nodiscard]] RunResult run_single_play_piecewise(
    SinglePlayPolicy& policy, const PiecewiseInstance& instance,
    Scenario scenario, TimeSlot horizon, std::uint64_t seed);

}  // namespace ncb
