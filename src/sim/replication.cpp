#include "sim/replication.hpp"

#include <mutex>
#include <stdexcept>

#include "util/rng.hpp"

namespace ncb {

std::vector<double> ReplicatedResult::average_regret() const {
  std::vector<double> avg = cumulative_regret.means();
  for (std::size_t i = 0; i < avg.size(); ++i) {
    avg[i] /= static_cast<double>(i + 1);
  }
  return avg;
}

namespace {

/// Shared reduction state guarded by a mutex; replications merge into it.
struct Reduction {
  std::mutex mutex;
  ReplicatedResult result;
};

void reduce(Reduction& red, const RunResult& run) {
  const std::lock_guard<std::mutex> lock(red.mutex);
  red.result.per_slot_regret.add_series(run.per_slot_regret);
  red.result.cumulative_regret.add_series(run.cumulative_regret);
  red.result.per_slot_pseudo_regret.add_series(run.per_slot_pseudo_regret);
  red.result.final_cumulative.add(run.cumulative_regret.back());
  red.result.optimal_per_slot = run.optimal_per_slot;
  ++red.result.replications;
}

}  // namespace

ReplicatedResult run_replicated_single(const SinglePolicyFactory& make_policy,
                                       const BanditInstance& instance,
                                       Scenario scenario,
                                       const ReplicationOptions& options) {
  if (!make_policy) {
    throw std::invalid_argument("run_replicated_single: null factory");
  }
  // Two seeds per replication: environment stream, policy stream.
  const auto seeds = derive_seeds(options.master_seed, options.replications * 2);
  Reduction red;
  red.result.scenario = scenario;

  const auto one_rep = [&](std::size_t r) {
    Environment env(instance, seeds[2 * r]);
    const auto policy = make_policy(seeds[2 * r + 1]);
    const RunResult run =
        run_single_play(*policy, env, scenario, options.runner);
    reduce(red, run);
  };

  if (options.pool) {
    for (std::size_t r = 0; r < options.replications; ++r) {
      options.pool->submit([&, r] { one_rep(r); });
    }
    options.pool->wait_idle();
  } else {
    for (std::size_t r = 0; r < options.replications; ++r) one_rep(r);
  }
  return std::move(red.result);
}

ReplicatedResult run_replicated_combinatorial(
    const CombinatorialPolicyFactory& make_policy,
    const BanditInstance& instance, const FeasibleSet& family,
    Scenario scenario, const ReplicationOptions& options) {
  if (!make_policy) {
    throw std::invalid_argument("run_replicated_combinatorial: null factory");
  }
  const auto seeds = derive_seeds(options.master_seed, options.replications * 2);
  Reduction red;
  red.result.scenario = scenario;

  const auto one_rep = [&](std::size_t r) {
    Environment env(instance, seeds[2 * r]);
    const auto policy = make_policy(seeds[2 * r + 1]);
    const RunResult run =
        run_combinatorial(*policy, family, env, scenario, options.runner);
    reduce(red, run);
  };

  if (options.pool) {
    for (std::size_t r = 0; r < options.replications; ++r) {
      options.pool->submit([&, r] { one_rep(r); });
    }
    options.pool->wait_idle();
  } else {
    for (std::size_t r = 0; r < options.replications; ++r) one_rep(r);
  }
  return std::move(red.result);
}

}  // namespace ncb
