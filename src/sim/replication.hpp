// Multi-replication experiment driver.
//
// Each replication r gets an independent environment seed and policy seed
// derived from the master seed via SplitMix64, so results are bit-identical
// regardless of thread count or scheduling order. Series are aggregated per
// time slot with Welford accumulators.
#pragma once

#include <functional>
#include <memory>

#include "sim/runner.hpp"
#include "sim/thread_pool.hpp"
#include "util/running_stat.hpp"

namespace ncb {

/// Aggregated series over replications. Index i holds stats for slot i+1.
struct ReplicatedResult {
  Scenario scenario = Scenario::kSso;
  std::size_t replications = 0;
  SeriesStat per_slot_regret;
  SeriesStat cumulative_regret;
  SeriesStat per_slot_pseudo_regret;
  RunningStat final_cumulative;   ///< Cumulative regret at the horizon.
  double optimal_per_slot = 0.0;

  /// Mean expected (per-slot) regret series — what Figs. 3(a), 4, 5, 6 plot.
  [[nodiscard]] std::vector<double> expected_regret() const {
    return per_slot_regret.means();
  }
  /// Mean accumulated regret series — Fig. 3(b).
  [[nodiscard]] std::vector<double> accumulated_regret() const {
    return cumulative_regret.means();
  }
  /// Mean average regret R_t/t series (a smoother zero-regret diagnostic).
  [[nodiscard]] std::vector<double> average_regret() const;
};

/// Creates a fresh policy for one replication; `seed` is that replication's
/// policy seed.
using SinglePolicyFactory =
    std::function<std::unique_ptr<SinglePlayPolicy>(std::uint64_t seed)>;
using CombinatorialPolicyFactory =
    std::function<std::unique_ptr<CombinatorialPolicy>(std::uint64_t seed)>;

struct ReplicationOptions {
  std::size_t replications = 20;
  std::uint64_t master_seed = 20170605;  // ICDCS'17
  RunnerOptions runner;
  /// Worker pool to parallelize over; nullptr runs sequentially.
  ThreadPool* pool = nullptr;
};

/// Runs `options.replications` independent single-play simulations of the
/// instance and aggregates their regret series.
[[nodiscard]] ReplicatedResult run_replicated_single(
    const SinglePolicyFactory& make_policy, const BanditInstance& instance,
    Scenario scenario, const ReplicationOptions& options);

/// Combinatorial counterpart; `family` must be built over the instance graph.
[[nodiscard]] ReplicatedResult run_replicated_combinatorial(
    const CombinatorialPolicyFactory& make_policy,
    const BanditInstance& instance, const FeasibleSet& family,
    Scenario scenario, const ReplicationOptions& options);

}  // namespace ncb
