#include "sim/runner.hpp"

#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace ncb {
namespace {

/// Returns true when a side observation should be dropped. `keep_always`
/// marks arms whose rewards are part of the realized payout and therefore
/// always observed.
inline bool drop_observation(const RunnerOptions& options, Xoshiro256& rng,
                             bool keep_always) {
  if (keep_always || options.observation_drop_prob <= 0.0) return false;
  return rng.bernoulli(options.observation_drop_prob);
}

}  // namespace

void validate_runner_options(const RunnerOptions& options) {
  if (options.horizon <= 0) {
    throw std::invalid_argument(
        "RunnerOptions.horizon: must be positive (got " +
        std::to_string(options.horizon) + ")");
  }
  // The negated comparison also rejects NaN.
  if (!(options.observation_drop_prob >= 0.0 &&
        options.observation_drop_prob <= 1.0)) {
    throw std::invalid_argument(
        "RunnerOptions.observation_drop_prob: must be within [0, 1] (got " +
        std::to_string(options.observation_drop_prob) + ")");
  }
}

double optimal_value(const BanditInstance& instance, Scenario scenario,
                     const FeasibleSet* family) {
  switch (scenario) {
    case Scenario::kSso:
      return instance.best_mean();
    case Scenario::kSsr:
      return instance.best_side_reward_mean();
    case Scenario::kCso:
    case Scenario::kCsr: {
      if (!family) {
        throw std::invalid_argument("optimal_value: family required");
      }
      double best = -std::numeric_limits<double>::infinity();
      for (StrategyId x = 0; x < static_cast<StrategyId>(family->size()); ++x) {
        const double v = scenario == Scenario::kCso
                             ? instance.strategy_mean(family->strategy(x))
                             : instance.strategy_side_reward_mean(
                                   family->strategy(x));
        if (v > best) best = v;
      }
      return best;
    }
  }
  throw std::logic_error("optimal_value: bad scenario");
}

StrategyId optimal_strategy(const BanditInstance& instance, Scenario scenario,
                            const FeasibleSet& family) {
  if (!is_combinatorial(scenario)) {
    throw std::invalid_argument("optimal_strategy: combinatorial scenario required");
  }
  StrategyId best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (StrategyId x = 0; x < static_cast<StrategyId>(family.size()); ++x) {
    const double v = scenario == Scenario::kCso
                         ? instance.strategy_mean(family.strategy(x))
                         : instance.strategy_side_reward_mean(family.strategy(x));
    if (v > best_value) {
      best_value = v;
      best = x;
    }
  }
  return best;
}

RunResult run_single_play(SinglePlayPolicy& policy, Environment& env,
                          Scenario scenario, const RunnerOptions& options) {
  if (is_combinatorial(scenario)) {
    throw std::invalid_argument("run_single_play: single-play scenario required");
  }
  validate_runner_options(options);
  const BanditInstance& instance = env.instance();
  const Graph& graph = instance.graph();
  const std::size_t k = instance.num_arms();

  RunResult result;
  result.scenario = scenario;
  result.optimal_per_slot = optimal_value(instance, scenario);
  result.play_counts.assign(k, 0);
  if (options.record_series) {
    result.per_slot_regret.reserve(static_cast<std::size_t>(options.horizon));
    result.cumulative_regret.reserve(static_cast<std::size_t>(options.horizon));
    result.per_slot_pseudo_regret.reserve(static_cast<std::size_t>(options.horizon));
  }

  policy.reset(graph);
  // Slot-reused feedback buffer: reserved once, refilled in place every
  // slot, delivered as one batched span — the hot loop never allocates.
  ObservationBatch batch;
  batch.reserve(k);
  Xoshiro256 drop_rng(options.drop_seed);
  double cumulative = 0.0;

  for (TimeSlot t = 1; t <= options.horizon; ++t) {
    const ArmId played = policy.select(t);
    if (played < 0 || static_cast<std::size_t>(played) >= k) {
      throw std::out_of_range("run_single_play: policy chose invalid arm");
    }
    const auto& rewards = env.advance();

    // Side observation scope: the closed neighborhood of the played arm.
    // Under SSR the whole neighborhood payout is received, so nothing can
    // be dropped; under SSO only the played arm's sample is guaranteed.
    batch.clear();
    for (const ArmId j : graph.closed_neighborhood(played)) {
      const bool keep_always = j == played || scenario == Scenario::kSsr;
      if (drop_observation(options, drop_rng, keep_always)) continue;
      batch.add(j, rewards[static_cast<std::size_t>(j)]);
    }

    const double realized =
        scenario == Scenario::kSso ? rewards[static_cast<std::size_t>(played)]
                                   : env.side_reward(played);
    const double chosen_mean =
        scenario == Scenario::kSso
            ? instance.means()[static_cast<std::size_t>(played)]
            : instance.side_reward_means()[static_cast<std::size_t>(played)];

    policy.observe(played, t, batch.span());

    result.total_reward += realized;
    ++result.play_counts[static_cast<std::size_t>(played)];
    const double regret = result.optimal_per_slot - realized;
    cumulative += regret;
    if (options.record_series) {
      result.per_slot_regret.push_back(regret);
      result.cumulative_regret.push_back(cumulative);
      result.per_slot_pseudo_regret.push_back(result.optimal_per_slot -
                                              chosen_mean);
    }
  }
  if (!options.record_series) {
    result.cumulative_regret.push_back(cumulative);
  }
  return result;
}

RunResult run_combinatorial(CombinatorialPolicy& policy,
                            const FeasibleSet& family, Environment& env,
                            Scenario scenario, const RunnerOptions& options) {
  if (!is_combinatorial(scenario)) {
    throw std::invalid_argument("run_combinatorial: combinatorial scenario required");
  }
  validate_runner_options(options);
  const BanditInstance& instance = env.instance();
  const std::size_t k = instance.num_arms();
  if (family.graph().num_vertices() != k) {
    throw std::invalid_argument("run_combinatorial: family/instance graph mismatch");
  }

  RunResult result;
  result.scenario = scenario;
  result.optimal_per_slot = optimal_value(instance, scenario, &family);
  result.play_counts.assign(k, 0);
  if (options.record_series) {
    result.per_slot_regret.reserve(static_cast<std::size_t>(options.horizon));
    result.cumulative_regret.reserve(static_cast<std::size_t>(options.horizon));
    result.per_slot_pseudo_regret.reserve(static_cast<std::size_t>(options.horizon));
  }

  policy.reset();
  // Slot-reused feedback buffer (see run_single_play).
  ObservationBatch batch;
  batch.reserve(k);
  Xoshiro256 drop_rng(options.drop_seed);
  double cumulative = 0.0;

  for (TimeSlot t = 1; t <= options.horizon; ++t) {
    const StrategyId played = policy.select(t);
    if (played < 0 || static_cast<std::size_t>(played) >= family.size()) {
      throw std::out_of_range("run_combinatorial: policy chose invalid strategy");
    }
    const auto& rewards = env.advance();
    const ArmSet& arms = family.strategy(played);

    // Observation scope: Y_x, the union of closed neighborhoods. Component
    // arms always report (their rewards are received); under CSR the whole
    // of Y_x is part of the payout, so nothing can be dropped.
    batch.clear();
    for (const ArmId j : family.neighborhood(played)) {
      const bool keep_always =
          scenario == Scenario::kCsr ||
          family.strategy_bits(played).test(static_cast<std::size_t>(j));
      if (drop_observation(options, drop_rng, keep_always)) continue;
      batch.add(j, rewards[static_cast<std::size_t>(j)]);
    }

    double realized = 0.0;
    double chosen_mean = 0.0;
    if (scenario == Scenario::kCso) {
      realized = env.strategy_reward(arms);
      chosen_mean = instance.strategy_mean(arms);
    } else {
      realized = env.strategy_side_reward(arms);
      chosen_mean = instance.strategy_side_reward_mean(arms);
    }

    policy.observe(played, t, batch.span());

    result.total_reward += realized;
    for (const ArmId i : arms) ++result.play_counts[static_cast<std::size_t>(i)];
    const double regret = result.optimal_per_slot - realized;
    cumulative += regret;
    if (options.record_series) {
      result.per_slot_regret.push_back(regret);
      result.cumulative_regret.push_back(cumulative);
      result.per_slot_pseudo_regret.push_back(result.optimal_per_slot -
                                              chosen_mean);
    }
  }
  if (!options.record_series) {
    result.cumulative_regret.push_back(cumulative);
  }
  return result;
}

}  // namespace ncb
