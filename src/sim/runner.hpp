// Single-replication simulation: policy × environment × scenario × horizon.
//
// The runner is the only component that touches both the environment's
// ground truth and the policy; it computes the scenario's reward, builds the
// legitimate observation set, and tracks the paper's regret definitions
// (Eqs. 1–4): realized regret (optimal expected reward minus realized
// reward, what the paper plots) and pseudo-regret (optimal mean minus the
// chosen action's mean).
#pragma once

#include <memory>
#include <vector>

#include "core/policy.hpp"
#include "env/environment.hpp"
#include "sim/semantics.hpp"
#include "strategy/feasible_set.hpp"
#include "util/types.hpp"

namespace ncb {

struct RunResult {
  Scenario scenario = Scenario::kSso;
  /// Realized regret per slot: opt − received reward (may be negative on a
  /// lucky draw; Fig. 4(b)'s dips below zero are exactly this effect).
  std::vector<double> per_slot_regret;
  /// Prefix sums of per_slot_regret (paper's "accumulated regret").
  std::vector<double> cumulative_regret;
  /// Pseudo-regret per slot: opt mean − chosen action's mean (≥ 0 always).
  std::vector<double> per_slot_pseudo_regret;
  /// How often each arm was *played* (component arms for combinatorial).
  std::vector<std::int64_t> play_counts;
  double total_reward = 0.0;
  double optimal_per_slot = 0.0;  ///< μ*, u*, λ*, or σ* per scenario.

  /// Average regret over time R_n/n at the final slot.
  [[nodiscard]] double final_average_regret() const {
    return cumulative_regret.empty()
               ? 0.0
               : cumulative_regret.back() /
                     static_cast<double>(cumulative_regret.size());
  }
};

struct RunnerOptions {
  TimeSlot horizon = 10000;
  /// Record per-slot series (true for figures; false saves memory when only
  /// the final regret matters).
  bool record_series = true;
  /// Failure injection: each *side* observation (an arm other than the one
  /// played / outside the played strategy) is independently dropped with
  /// this probability — modeling friends who don't report feedback. The
  /// played arms' own rewards are always delivered.
  double observation_drop_prob = 0.0;
  /// Seed for the drop process (independent of the environment stream).
  std::uint64_t drop_seed = 0xd20bd20b;
};

/// Validates `options` at run entry. Throws std::invalid_argument naming
/// the offending field ("RunnerOptions.horizon: ...") when the horizon is
/// not positive or observation_drop_prob lies outside [0, 1].
void validate_runner_options(const RunnerOptions& options);

/// Runs a single-play scenario (kSso or kSsr). The policy is reset first.
[[nodiscard]] RunResult run_single_play(SinglePlayPolicy& policy,
                                        Environment& env, Scenario scenario,
                                        const RunnerOptions& options);

/// Runs a combinatorial scenario (kCso or kCsr) against `family`, which must
/// be built over the same graph as the environment's instance. The policy is
/// reset first.
[[nodiscard]] RunResult run_combinatorial(CombinatorialPolicy& policy,
                                          const FeasibleSet& family,
                                          Environment& env, Scenario scenario,
                                          const RunnerOptions& options);

/// Optimal expected per-slot reward for a scenario: μ* (SSO), u* (SSR),
/// λ* = max_x Σ_{i∈s_x} μ_i (CSO), σ* = max_x Σ_{i∈Y_x} μ_i (CSR).
[[nodiscard]] double optimal_value(const BanditInstance& instance,
                                   Scenario scenario,
                                   const FeasibleSet* family = nullptr);

/// Id of the optimal strategy under CSO/CSR semantics.
[[nodiscard]] StrategyId optimal_strategy(const BanditInstance& instance,
                                          Scenario scenario,
                                          const FeasibleSet& family);

}  // namespace ncb
