// Scenario tags for the four cases of §II.
#pragma once

#include <string>

namespace ncb {

enum class Scenario {
  kSso,  ///< Single-play, side observation (Eq. 1 regret).
  kCso,  ///< Combinatorial-play, side observation (Eq. 2).
  kSsr,  ///< Single-play, side reward (Eq. 3).
  kCsr,  ///< Combinatorial-play, side reward (Eq. 4).
};

[[nodiscard]] inline std::string scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kSso: return "SSO";
    case Scenario::kCso: return "CSO";
    case Scenario::kSsr: return "SSR";
    case Scenario::kCsr: return "CSR";
  }
  return "?";
}

[[nodiscard]] inline bool is_combinatorial(Scenario s) {
  return s == Scenario::kCso || s == Scenario::kCsr;
}

[[nodiscard]] inline bool is_side_reward(Scenario s) {
  return s == Scenario::kSsr || s == Scenario::kCsr;
}

}  // namespace ncb
