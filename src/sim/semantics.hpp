// Scenario tags for the four cases of §II.
//
// The definitions moved to core/scenario.hpp so the policy layer can name
// scenarios without depending on sim/; this header remains for the existing
// include sites.
#pragma once

#include "core/scenario.hpp"
