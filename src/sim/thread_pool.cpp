#include "sim/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <utility>
#include <stdexcept>

namespace ncb {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument("ThreadPool: null task");
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      throw std::logic_error("ThreadPool: submit after shutdown");
    }
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::submit_bulk(std::size_t first, std::size_t last,
                             std::function<void(std::size_t)> fn) {
  if (first >= last) return;
  if (!fn) throw std::invalid_argument("ThreadPool: null bulk task");
  const auto shared_fn =
      std::make_shared<const std::function<void(std::size_t)>>(std::move(fn));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (shutting_down_) {
      throw std::logic_error("ThreadPool: submit after shutdown");
    }
    for (std::size_t i = first; i < last; ++i) {
      queue_.push([shared_fn, i] { (*shared_fn)(i); });
      ++in_flight_;
    }
  }
  if (last - first == 1) {
    work_available_.notify_one();
  } else {
    work_available_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_) {
    const std::exception_ptr err = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr err;
    try {
      task();
    } catch (...) {
      err = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (err && !first_exception_) first_exception_ = err;
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace ncb
