// Fixed-size worker pool for running replications in parallel.
//
// Deliberately simple: a mutex-guarded queue and a condition variable
// (Core Guidelines CP.20/CP.42 style — RAII locks, cv waits with predicates).
// Tasks are type-erased std::function<void()>; wait_idle() blocks until all
// submitted tasks finished, so callers can reuse one pool across phases.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace ncb {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 → hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after shutdown started.
  void submit(std::function<void()> task);

  /// Enqueues `fn(i)` for every i in [first, last) under ONE lock acquisition
  /// with ONE wake-up, so schedulers submitting thousands of fine-grained
  /// shards do not serialize on per-task mutex churn. `fn` is shared across
  /// the queued tasks (workers invoke it concurrently with distinct indices).
  void submit_bulk(std::size_t first, std::size_t last,
                   std::function<void(std::size_t)> fn);

  /// Blocks until every submitted task has completed. If any task threw,
  /// the first captured exception is rethrown here (the remaining tasks
  /// still ran to completion).
  void wait_idle();

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size();
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_exception_;
};

}  // namespace ncb
