#include "strategy/feasible_set.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

#include "graph/independent_sets.hpp"

namespace ncb {

FeasibleSet::FeasibleSet(std::shared_ptr<const Graph> graph,
                         std::vector<ArmSet> strategies, FamilyKind kind)
    : graph_(std::move(graph)), strategies_(std::move(strategies)), kind_(kind) {
  if (!graph_) throw std::invalid_argument("FeasibleSet: null graph");
  if (strategies_.empty()) {
    throw std::invalid_argument("FeasibleSet: empty family");
  }
  const std::size_t n = graph_->num_vertices();
  std::set<ArmSet> seen;
  strategy_bits_.reserve(strategies_.size());
  neighborhood_bits_.reserve(strategies_.size());
  neighborhoods_.reserve(strategies_.size());
  for (const auto& s : strategies_) {
    if (s.empty()) throw std::invalid_argument("FeasibleSet: empty strategy");
    if (!std::is_sorted(s.begin(), s.end()) ||
        std::adjacent_find(s.begin(), s.end()) != s.end()) {
      throw std::invalid_argument("FeasibleSet: strategy not sorted/unique");
    }
    if (s.front() < 0 || static_cast<std::size_t>(s.back()) >= n) {
      throw std::out_of_range("FeasibleSet: arm id out of range");
    }
    if (!seen.insert(s).second) {
      throw std::invalid_argument("FeasibleSet: duplicate strategy");
    }
    Bitset64 bits(n);
    for (const ArmId i : s) bits.set(static_cast<std::size_t>(i));
    strategy_bits_.push_back(std::move(bits));
    Bitset64 nb = graph_->strategy_neighborhood(s);
    neighborhoods_.push_back(nb.to_indices());
    max_neighborhood_ = std::max(max_neighborhood_, nb.count());
    neighborhood_bits_.push_back(std::move(nb));
    max_strategy_ = std::max(max_strategy_, s.size());
  }
}

std::optional<StrategyId> FeasibleSet::find(const ArmSet& strategy) const {
  for (std::size_t x = 0; x < strategies_.size(); ++x) {
    if (strategies_[x] == strategy) return static_cast<StrategyId>(x);
  }
  return std::nullopt;
}

std::string FeasibleSet::to_string() const {
  std::ostringstream out;
  out << "FeasibleSet |F|=" << size() << " N=" << max_neighborhood_
      << " M=" << max_strategy_ << '\n';
  for (std::size_t x = 0; x < strategies_.size(); ++x) {
    out << "  s" << x << " = {";
    for (std::size_t i = 0; i < strategies_[x].size(); ++i) {
      if (i) out << ',';
      out << strategies_[x][i];
    }
    out << "}  Y = {";
    for (std::size_t i = 0; i < neighborhoods_[x].size(); ++i) {
      if (i) out << ',';
      out << neighborhoods_[x][i];
    }
    out << "}\n";
  }
  return out.str();
}

namespace {

void enumerate_subsets(std::size_t n, std::size_t m, bool exact, ArmId start,
                       ArmSet& current, std::vector<ArmSet>& out) {
  if (!current.empty() && (!exact || current.size() == m)) {
    out.push_back(current);
  }
  if (current.size() == m) return;
  for (ArmId v = start; v < static_cast<ArmId>(n); ++v) {
    current.push_back(v);
    enumerate_subsets(n, m, exact, v + 1, current, out);
    current.pop_back();
  }
}

}  // namespace

FeasibleSet make_subset_family(std::shared_ptr<const Graph> graph,
                               std::size_t m, bool exact) {
  if (!graph) throw std::invalid_argument("make_subset_family: null graph");
  if (m == 0 || m > graph->num_vertices()) {
    throw std::invalid_argument("make_subset_family: bad m");
  }
  std::vector<ArmSet> strategies;
  ArmSet current;
  enumerate_subsets(graph->num_vertices(), m, exact, 0, current, strategies);
  std::sort(strategies.begin(), strategies.end(),
            [](const ArmSet& a, const ArmSet& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  return FeasibleSet(std::move(graph), std::move(strategies),
                     exact ? FamilyKind::kExactMSubsets
                           : FamilyKind::kTopMSubsets);
}

FeasibleSet make_independent_set_family(std::shared_ptr<const Graph> graph,
                                        std::size_t max_size) {
  if (!graph) {
    throw std::invalid_argument("make_independent_set_family: null graph");
  }
  auto strategies = enumerate_independent_sets(*graph, max_size);
  return FeasibleSet(std::move(graph), std::move(strategies),
                     FamilyKind::kIndependentSets);
}

FeasibleSet make_explicit_family(std::shared_ptr<const Graph> graph,
                                 std::vector<ArmSet> strategies) {
  for (auto& s : strategies) std::sort(s.begin(), s.end());
  return FeasibleSet(std::move(graph), std::move(strategies),
                     FamilyKind::kExplicit);
}

namespace {

void enumerate_matroid(const std::vector<int>& groups,
                       const std::vector<std::size_t>& caps, ArmId start,
                       std::vector<std::size_t>& used, ArmSet& current,
                       std::vector<ArmSet>& out) {
  if (!current.empty()) out.push_back(current);
  for (ArmId v = start; v < static_cast<ArmId>(groups.size()); ++v) {
    const auto g = static_cast<std::size_t>(groups[static_cast<std::size_t>(v)]);
    if (used[g] >= caps[g]) continue;
    ++used[g];
    current.push_back(v);
    enumerate_matroid(groups, caps, v + 1, used, current, out);
    current.pop_back();
    --used[g];
  }
}

}  // namespace

FeasibleSet make_partition_matroid_family(std::shared_ptr<const Graph> graph,
                                          const std::vector<int>& groups,
                                          std::size_t capacity) {
  if (!graph) {
    throw std::invalid_argument("make_partition_matroid_family: null graph");
  }
  if (groups.size() != graph->num_vertices()) {
    throw std::invalid_argument(
        "make_partition_matroid_family: one group id per vertex required");
  }
  if (capacity == 0) {
    throw std::invalid_argument("make_partition_matroid_family: capacity 0");
  }
  int max_group = -1;
  for (const int g : groups) {
    if (g < 0) {
      throw std::invalid_argument(
          "make_partition_matroid_family: negative group id");
    }
    max_group = std::max(max_group, g);
  }
  const std::vector<std::size_t> caps(static_cast<std::size_t>(max_group) + 1,
                                      capacity);
  std::vector<std::size_t> used(caps.size(), 0);
  std::vector<ArmSet> strategies;
  ArmSet current;
  enumerate_matroid(groups, caps, 0, used, current, strategies);
  std::sort(strategies.begin(), strategies.end(),
            [](const ArmSet& a, const ArmSet& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  return FeasibleSet(std::move(graph), std::move(strategies),
                     FamilyKind::kPartitionMatroid);
}

}  // namespace ncb
