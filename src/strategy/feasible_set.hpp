// Feasible combinatorial strategy families F (paper §II, combinatorial-play).
//
// A FeasibleSet enumerates the strategies ("com-arms") s_1..s_|F| against a
// fixed relation graph and precomputes each strategy's observed set
// Y_x = ∪_{i∈s_x} N_i, which drives both reward semantics and the strategy
// relation graph construction of §IV.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/bitset64.hpp"
#include "util/types.hpp"

namespace ncb {

/// How the family was constructed; some oracles are only valid for
/// structured families.
enum class FamilyKind {
  kExplicit,          ///< Arbitrary enumerated list.
  kTopMSubsets,       ///< All non-empty subsets of size ≤ M.
  kExactMSubsets,     ///< All subsets of size exactly M.
  kIndependentSets,   ///< All non-empty independent sets (≤ max size).
  kPartitionMatroid,  ///< ≤ cap_g arms per group g (partition matroid).
};

class FeasibleSet {
 public:
  /// Validates and indexes `strategies` against `graph`. Each strategy must
  /// be non-empty, sorted, duplicate-free, and within vertex range; the
  /// family itself must be duplicate-free.
  FeasibleSet(std::shared_ptr<const Graph> graph,
              std::vector<ArmSet> strategies, FamilyKind kind);

  [[nodiscard]] std::size_t size() const noexcept { return strategies_.size(); }
  [[nodiscard]] FamilyKind kind() const noexcept { return kind_; }
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::shared_ptr<const Graph> graph_ptr() const noexcept {
    return graph_;
  }

  [[nodiscard]] const ArmSet& strategy(StrategyId x) const {
    return strategies_.at(static_cast<std::size_t>(x));
  }

  /// Component arms of x as a bitset.
  [[nodiscard]] const Bitset64& strategy_bits(StrategyId x) const {
    return strategy_bits_.at(static_cast<std::size_t>(x));
  }

  /// Y_x = ∪_{i∈s_x} N_i as a bitset.
  [[nodiscard]] const Bitset64& neighborhood_bits(StrategyId x) const {
    return neighborhood_bits_.at(static_cast<std::size_t>(x));
  }

  /// Y_x as a sorted vertex list.
  [[nodiscard]] const ArmSet& neighborhood(StrategyId x) const {
    return neighborhoods_.at(static_cast<std::size_t>(x));
  }

  /// Paper's N = max_x |Y_x|.
  [[nodiscard]] std::size_t max_neighborhood_size() const noexcept {
    return max_neighborhood_;
  }

  /// Largest strategy cardinality M.
  [[nodiscard]] std::size_t max_strategy_size() const noexcept {
    return max_strategy_;
  }

  /// Looks up a strategy (must be sorted); nullopt if absent.
  [[nodiscard]] std::optional<StrategyId> find(const ArmSet& strategy) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::shared_ptr<const Graph> graph_;
  std::vector<ArmSet> strategies_;
  std::vector<Bitset64> strategy_bits_;
  std::vector<Bitset64> neighborhood_bits_;
  std::vector<ArmSet> neighborhoods_;
  std::size_t max_neighborhood_ = 0;
  std::size_t max_strategy_ = 0;
  FamilyKind kind_;
};

/// All non-empty subsets with |s| ≤ m (`exact` = false) or |s| = m (`exact`
/// = true). This is the paper's online-advertising constraint ("play at most
/// m arms each slot"). Exponential in m; intended for moderate K.
[[nodiscard]] FeasibleSet make_subset_family(std::shared_ptr<const Graph> graph,
                                             std::size_t m, bool exact = false);

/// All non-empty independent sets of the graph with size ≤ max_size
/// (0 = unbounded): the paper's Fig. 2 family.
[[nodiscard]] FeasibleSet make_independent_set_family(
    std::shared_ptr<const Graph> graph, std::size_t max_size = 0);

/// Arbitrary explicit family.
[[nodiscard]] FeasibleSet make_explicit_family(
    std::shared_ptr<const Graph> graph, std::vector<ArmSet> strategies);

/// Partition-matroid family: arms are partitioned into groups
/// (`groups[i]` = group id of arm i, 0-based and contiguous) and a feasible
/// strategy takes at most `capacity` arms from each group (non-empty
/// overall). The paper's "arbitrary constraints" case — e.g. at most one ad
/// per product category. Exponential in the group count; enumerate only for
/// moderate instances.
[[nodiscard]] FeasibleSet make_partition_matroid_family(
    std::shared_ptr<const Graph> graph, const std::vector<int>& groups,
    std::size_t capacity = 1);

}  // namespace ncb
