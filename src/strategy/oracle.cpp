#include "strategy/oracle.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace ncb {

double coverage_value(const FeasibleSet& family, StrategyId x,
                      const std::vector<double>& scores) {
  double total = 0.0;
  family.neighborhood_bits(x).for_each(
      [&](ArmId i) { total += scores[static_cast<std::size_t>(i)]; });
  return total;
}

double modular_value(const FeasibleSet& family, StrategyId x,
                     const std::vector<double>& scores) {
  double total = 0.0;
  for (const ArmId i : family.strategy(x)) {
    total += scores[static_cast<std::size_t>(i)];
  }
  return total;
}

StrategyId ExactCoverageOracle::select(const FeasibleSet& family,
                                       const std::vector<double>& scores) const {
  if (scores.size() != family.graph().num_vertices()) {
    throw std::invalid_argument("ExactCoverageOracle: score size mismatch");
  }
  StrategyId best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (StrategyId x = 0; x < static_cast<StrategyId>(family.size()); ++x) {
    const double v = coverage_value(family, x, scores);
    if (v > best_value) {
      best_value = v;
      best = x;
    }
  }
  return best;
}

StrategyId GreedyCoverageOracle::select(const FeasibleSet& family,
                                        const std::vector<double>& scores) const {
  if (family.kind() != FamilyKind::kTopMSubsets &&
      family.kind() != FamilyKind::kExactMSubsets) {
    throw std::invalid_argument(
        "GreedyCoverageOracle: requires a subset (cardinality) family");
  }
  if (scores.size() != family.graph().num_vertices()) {
    throw std::invalid_argument("GreedyCoverageOracle: score size mismatch");
  }
  const Graph& g = family.graph();
  const std::size_t n = g.num_vertices();
  const std::size_t m = family.max_strategy_size();
  std::vector<double> gain_scores(n);
  for (std::size_t i = 0; i < n; ++i) gain_scores[i] = std::max(scores[i], 0.0);

  ArmSet chosen;
  Bitset64 covered(n);
  for (std::size_t round = 0; round < m; ++round) {
    ArmId best = kNoArm;
    double best_gain = 0.0;
    for (std::size_t cand = 0; cand < n; ++cand) {
      const auto c = static_cast<ArmId>(cand);
      if (std::find(chosen.begin(), chosen.end(), c) != chosen.end()) continue;
      double gain = 0.0;
      g.closed_neighborhood_bits(c).for_each([&](ArmId j) {
        if (!covered.test(static_cast<std::size_t>(j))) {
          gain += gain_scores[static_cast<std::size_t>(j)];
        }
      });
      if (best == kNoArm || gain > best_gain) {
        best = c;
        best_gain = gain;
      }
    }
    // For the ≤M family stop early once no candidate adds positive value
    // (adding more arms cannot help). The exact-M family must fill up.
    if (best == kNoArm) break;
    if (family.kind() == FamilyKind::kTopMSubsets && best_gain <= 0.0 &&
        !chosen.empty()) {
      break;
    }
    chosen.push_back(best);
    covered |= g.closed_neighborhood_bits(best);
  }
  std::sort(chosen.begin(), chosen.end());
  const auto id = family.find(chosen);
  if (!id) {
    throw std::logic_error("GreedyCoverageOracle: chosen set not in family");
  }
  return *id;
}

StrategyId argmax_modular(const FeasibleSet& family,
                          const std::vector<double>& scores) {
  if (scores.size() != family.graph().num_vertices()) {
    throw std::invalid_argument("argmax_modular: score size mismatch");
  }
  StrategyId best = 0;
  double best_value = -std::numeric_limits<double>::infinity();
  for (StrategyId x = 0; x < static_cast<StrategyId>(family.size()); ++x) {
    const double v = modular_value(family, x, scores);
    if (v > best_value) {
      best_value = v;
      best = x;
    }
  }
  return best;
}

}  // namespace ncb
