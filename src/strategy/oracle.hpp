// Combinatorial optimization oracles (paper §VI assumes "the combinatorial
// problem at each decision point can be solved optimally").
//
// DFL-CSR maximizes a *coverage* objective Σ_{i∈Y_x} w_i over F (the
// neighborhood union makes it submodular, not modular); CUCB-style baselines
// maximize the modular objective Σ_{i∈s_x} w_i. We provide exact
// enumeration oracles over an explicit FeasibleSet and a lazy-greedy
// (1-1/e)-approximate coverage oracle for cardinality-constrained families.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "strategy/feasible_set.hpp"
#include "util/types.hpp"

namespace ncb {

/// Argmax over F of the coverage objective Σ_{i ∈ Y_x} scores[i].
/// Ties break toward the smaller strategy id. `scores` may be any reals.
class CoverageOracle {
 public:
  virtual ~CoverageOracle() = default;

  /// Selects the (approximately) best strategy id for the given per-arm
  /// scores. `scores.size()` must equal the family's vertex count.
  [[nodiscard]] virtual StrategyId select(
      const FeasibleSet& family, const std::vector<double>& scores) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Exact enumeration: O(|F| · K/64) per call via bitset dot products.
class ExactCoverageOracle final : public CoverageOracle {
 public:
  [[nodiscard]] StrategyId select(
      const FeasibleSet& family,
      const std::vector<double>& scores) const override;
  [[nodiscard]] std::string name() const override { return "exact"; }
};

/// Lazy greedy on the submodular coverage function. Valid only for subset
/// families (kTopMSubsets / kExactMSubsets); guarantees (1 − 1/e)·OPT when
/// all scores are non-negative. Negative scores are clamped to 0 for the
/// marginal-gain computation (they can only reduce coverage value).
class GreedyCoverageOracle final : public CoverageOracle {
 public:
  [[nodiscard]] StrategyId select(
      const FeasibleSet& family,
      const std::vector<double>& scores) const override;
  [[nodiscard]] std::string name() const override { return "greedy"; }
};

/// Argmax over F of the modular objective Σ_{i ∈ s_x} scores[i] (exact
/// enumeration). Used by the CUCB baseline and DFL-CSO reward lookups.
[[nodiscard]] StrategyId argmax_modular(const FeasibleSet& family,
                                        const std::vector<double>& scores);

/// Coverage value Σ_{i∈Y_x} scores[i] of one strategy.
[[nodiscard]] double coverage_value(const FeasibleSet& family, StrategyId x,
                                    const std::vector<double>& scores);

/// Modular value Σ_{i∈s_x} scores[i] of one strategy.
[[nodiscard]] double modular_value(const FeasibleSet& family, StrategyId x,
                                   const std::vector<double>& scores);

}  // namespace ncb
