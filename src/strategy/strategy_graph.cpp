#include "strategy/strategy_graph.hpp"

namespace ncb {

Graph build_strategy_graph(const FeasibleSet& family) {
  const auto count = static_cast<StrategyId>(family.size());
  std::vector<Edge> links;
  for (StrategyId x = 0; x < count; ++x) {
    for (StrategyId y = x + 1; y < count; ++y) {
      const bool y_in_x =
          family.strategy_bits(y).is_subset_of(family.neighborhood_bits(x));
      const bool x_in_y =
          family.strategy_bits(x).is_subset_of(family.neighborhood_bits(y));
      if (y_in_x && x_in_y) links.emplace_back(x, y);
    }
  }
  return Graph(family.size(), links);
}

std::vector<StrategyId> observable_strategies(const FeasibleSet& family,
                                              StrategyId x) {
  std::vector<StrategyId> out;
  const Bitset64& observed = family.neighborhood_bits(x);
  for (StrategyId y = 0; y < static_cast<StrategyId>(family.size()); ++y) {
    if (family.strategy_bits(y).is_subset_of(observed)) out.push_back(y);
  }
  return out;
}

}  // namespace ncb
