// Strategy relation graph SG(F, L) — paper §IV, Fig. 2.
//
// Each feasible strategy ("com-arm") becomes a vertex; two distinct
// strategies s_x and s_y are linked iff each one's component arms lie inside
// the other's observed set: s_y ⊆ Y_x AND s_x ⊆ Y_y. Playing x then reveals
// the full reward of every SG-neighbor y (all of y's component arms are
// observed), which reduces CSO to SSO over SG.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "strategy/feasible_set.hpp"

namespace ncb {

/// Builds SG over `family`. Vertex x of the result corresponds to strategy
/// id x of the family.
[[nodiscard]] Graph build_strategy_graph(const FeasibleSet& family);

/// Strategies observable when x is played: every y (including x) with
/// s_y ⊆ Y_x. This is a superset of SG's closed neighborhood of x (SG
/// requires mutual containment). DFL-CSO can optionally exploit the full
/// observable set.
[[nodiscard]] std::vector<StrategyId> observable_strategies(
    const FeasibleSet& family, StrategyId x);

}  // namespace ncb
