#include "theory/bounds.hpp"

#include <cmath>

namespace ncb {
namespace {
constexpr double kE = 2.718281828459045;
constexpr double kPi = 3.141592653589793;
}  // namespace

double theorem1_bound(std::int64_t n, std::size_t k,
                      std::size_t clique_cover_size) {
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  return 15.94 * std::sqrt(dn * dk) +
         0.74 * static_cast<double>(clique_cover_size) * std::sqrt(dn / dk);
}

double theorem2_bound(std::int64_t n, std::size_t family_size,
                      std::size_t clique_cover_size) {
  return theorem1_bound(n, family_size, clique_cover_size);
}

double moss_comarm_bound(std::int64_t n, std::size_t family_size) {
  return 49.0 * std::sqrt(static_cast<double>(n) *
                          static_cast<double>(family_size));
}

double moss_bound(std::int64_t n, std::size_t k) {
  return 49.0 * std::sqrt(static_cast<double>(n) * static_cast<double>(k));
}

double theorem3_bound(std::int64_t n, std::size_t k) {
  const double dk = static_cast<double>(k);
  return 49.0 * dk * std::sqrt(static_cast<double>(n) * dk);
}

double theorem4_bound(std::int64_t n, std::size_t k,
                      std::size_t max_neighborhood) {
  const double dn = static_cast<double>(n);
  const double dk = static_cast<double>(k);
  const double dN = static_cast<double>(max_neighborhood);
  const double term1 = dN * dk;
  const double term2 =
      (std::sqrt(kE * dk) + 8.0 * (1.0 + dN) * dN * dN * dN) *
      std::pow(dn, 2.0 / 3.0);
  const double term3 = (1.0 + 4.0 * std::sqrt(dk) * dN * dN / kE) * dN * dN *
                       dk * std::pow(dn, 5.0 / 6.0);
  return term1 + term2 + term3;
}

double ucb1_bound(std::int64_t n, const double* gaps, std::size_t count) {
  double total = 0.0;
  const double ln_n = std::log(static_cast<double>(n));
  for (std::size_t i = 0; i < count; ++i) {
    if (gaps[i] <= 0.0) continue;
    total += 8.0 * ln_n / gaps[i] + (1.0 + kPi * kPi / 3.0) * gaps[i];
  }
  return total;
}

}  // namespace ncb
