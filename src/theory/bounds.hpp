// Closed-form regret bounds (Theorems 1–4) and the comparison constants the
// paper quotes. The theory bench prints these next to measured regret so
// EXPERIMENTS.md can record bound-vs-measured for every figure.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ncb {

/// Theorem 1 — DFL-SSO: R_n ≤ 15.94·sqrt(nK) + 0.74·C·sqrt(n/K), with C the
/// clique-cover size of the thresholded subgraph H.
[[nodiscard]] double theorem1_bound(std::int64_t n, std::size_t k,
                                    std::size_t clique_cover_size);

/// Theorem 2 — DFL-CSO: same form over com-arms,
/// R_n ≤ 15.94·sqrt(n|F|) + 0.74·C·sqrt(n/|F|).
[[nodiscard]] double theorem2_bound(std::int64_t n, std::size_t family_size,
                                    std::size_t clique_cover_size);

/// The traditional distribution-free bound 49·sqrt(n|F|) the paper quotes as
/// the comparison point for Theorem 2 (MOSS over |F| independent com-arms).
[[nodiscard]] double moss_comarm_bound(std::int64_t n, std::size_t family_size);

/// MOSS single-play bound 49·sqrt(nK) (Audibert–Bubeck), the Fig. 3 baseline.
[[nodiscard]] double moss_bound(std::int64_t n, std::size_t k);

/// Theorem 3 — DFL-SSR: R_n ≤ 49·K·sqrt(nK) (the [0,K] reward range scales
/// the normalized MOSS bound by K).
[[nodiscard]] double theorem3_bound(std::int64_t n, std::size_t k);

/// Theorem 4 — DFL-CSR:
/// R(n) ≤ NK + (sqrt(eK) + 8(1+N)N³)·n^{2/3} + (1 + 4·sqrt(K)·N²/e)·N²K·n^{5/6},
/// with N = max_x |Y_x|.
[[nodiscard]] double theorem4_bound(std::int64_t n, std::size_t k,
                                    std::size_t max_neighborhood);

/// UCB1's distribution-dependent bound Σ_{i≠*} 8 ln(n)/Δ_i + (1+π²/3)ΣΔ_i,
/// used in the baseline-panel bench. `gaps` are the positive Δ_i.
[[nodiscard]] double ucb1_bound(std::int64_t n, const double* gaps,
                                std::size_t count);

}  // namespace ncb
