#include "util/arg_parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace ncb {

ArgParse::ArgParse(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` if the next token is not itself a flag; else boolean.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[i + 1];
      ++i;
    } else {
      flags_[body] = "";
    }
  }
}

std::optional<std::string> ArgParse::raw(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

bool ArgParse::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string ArgParse::get_string(const std::string& name,
                                 const std::string& fallback) const {
  const auto v = raw(name);
  return v && !v->empty() ? *v : fallback;
}

std::int64_t ArgParse::get_int(const std::string& name,
                               std::int64_t fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  errno = 0;
  const std::int64_t parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0' || errno == ERANGE) {
    throw std::invalid_argument("--" + name + ": expected an integer, got '" +
                                *v + "'");
  }
  return parsed;
}

double ArgParse::get_double(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) return fallback;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(v->c_str(), &end);
  // ERANGE underflow still yields a usable (sub)normal value; only reject
  // overflow.
  const bool overflow =
      errno == ERANGE && (parsed == HUGE_VAL || parsed == -HUGE_VAL);
  if (end == v->c_str() || *end != '\0' || overflow) {
    throw std::invalid_argument("--" + name + ": expected a number, got '" +
                                *v + "'");
  }
  return parsed;
}

bool ArgParse::get_bool(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  if (v->empty() || *v == "true" || *v == "1" || *v == "yes") return true;
  return false;
}

}  // namespace ncb
