// Tiny command-line flag parser for the bench and example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--flag` forms.
// Unknown flags are collected so binaries can forward them (e.g. to
// google-benchmark).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ncb {

class ArgParse {
 public:
  ArgParse(int argc, const char* const* argv);

  /// True if `--name` was present (with or without value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  /// Returns `fallback` when the flag is absent or empty; throws
  /// std::invalid_argument when its value is not a number in range.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  /// Returns `fallback` when the flag is absent or empty; throws
  /// std::invalid_argument when its value is not a number in range.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace ncb
