// Reservoir argmax over a flat score array — the select hot path's scan.
//
// Semantics are pinned to the historical per-arm loop used by every index
// policy (and by epsilon-greedy's exploit step): walk scores in order,
// track the running maximum, and break ties among equal running maxima by
// reservoir sampling — the j-th element tied with the current maximum
// replaces it with probability 1/j, consuming exactly one uniform_int draw
// per tie. The RNG draw count and order are part of the reproducibility
// contract (sweep output is byte-identical across refactors), so any
// faster implementation must replay the draws of that exact loop.
//
// This implementation is block-vectorized: scores are scanned in fixed-size
// blocks; each block's maximum is reduced first with four independent,
// branch-free accumulator chains (compiles to pipelined maxsd/maxpd — no
// data-dependent branches), and blocks whose maximum stays strictly below
// the running maximum are skipped outright, since no element in them can
// update the maximum or tie with it. Only blocks that contain a potential
// update are re-walked with the exact historical loop, so the RNG sees the
// same draw sequence while the common case (steady state, distinct finite
// indices) runs at memory speed. NaN scores never win and never tie, same
// as the historical loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace ncb {

/// Running reservoir state, exposed so callers scanning in several chunks
/// (or mixing scanned and skipped regions) carry ties across chunks.
struct ArgmaxState {
  std::size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  std::size_t ties = 0;
  std::uint64_t draws = 0;  ///< uniform_int calls consumed by tie-breaking.
};

/// Folds scores[first, last) into `state` with the exact historical
/// reservoir loop (one uniform_int(ties) draw per running-max tie).
inline void reservoir_scan(const double* scores, std::size_t first,
                           std::size_t last, ArgmaxState& state,
                           Xoshiro256& rng) {
  for (std::size_t i = first; i < last; ++i) {
    const double s = scores[i];
    if (s > state.best_score) {
      state.best_score = s;
      state.best = i;
      state.ties = 1;
    } else if (s == state.best_score) {
      ++state.ties;
      ++state.draws;
      if (rng.uniform_int(state.ties) == 0) state.best = i;
    }
  }
}

/// Branch-free maximum of scores[first, last): four independent accumulator
/// chains, `m = s > m ? s : m` per lane (NaN loses). Used to prove a block
/// cannot touch the running maximum before paying for the exact scan.
inline double block_max(const double* scores, std::size_t first,
                        std::size_t last) noexcept {
  const double kNegInf = -std::numeric_limits<double>::infinity();
  double m0 = kNegInf, m1 = kNegInf, m2 = kNegInf, m3 = kNegInf;
  std::size_t i = first;
  for (; i + 4 <= last; i += 4) {
    const double s0 = scores[i], s1 = scores[i + 1];
    const double s2 = scores[i + 2], s3 = scores[i + 3];
    m0 = s0 > m0 ? s0 : m0;
    m1 = s1 > m1 ? s1 : m1;
    m2 = s2 > m2 ? s2 : m2;
    m3 = s3 > m3 ? s3 : m3;
  }
  for (; i < last; ++i) {
    const double s = scores[i];
    m0 = s > m0 ? s : m0;
  }
  m0 = m1 > m0 ? m1 : m0;
  m2 = m3 > m2 ? m3 : m2;
  return m2 > m0 ? m2 : m0;
}

/// Argmax of scores[0, n) with reservoir tie-breaking, block-skipping
/// regions that provably cannot update or tie the running maximum.
/// Returns the selected position; `draws_out` (optional) receives the
/// number of uniform_int draws consumed. Requires n > 0.
inline std::size_t reservoir_argmax(const double* scores, std::size_t n,
                                    Xoshiro256& rng,
                                    std::uint64_t* draws_out = nullptr) {
  constexpr std::size_t kBlock = 256;
  ArgmaxState state;
  for (std::size_t begin = 0; begin < n; begin += kBlock) {
    const std::size_t end = begin + kBlock < n ? begin + kBlock : n;
    // Skip iff every element is strictly below the running maximum; the
    // >= comparison keeps -inf/+inf plateaus and first-block semantics
    // exactly on the historical path (NaN-only blocks reduce to -inf and
    // are scanned only while best_score is still -inf, where the
    // historical loop also ignores them).
    if (block_max(scores, begin, end) >= state.best_score) {
      reservoir_scan(scores, begin, end, state, rng);
    }
  }
  if (draws_out != nullptr) *draws_out += state.draws;
  return state.best;
}

}  // namespace ncb
