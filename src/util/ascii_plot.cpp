#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace ncb {
namespace {

constexpr char kGlyphs[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

std::string format_tick(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%10.4g", v);
  return buf;
}

}  // namespace

std::vector<double> downsample(const std::vector<double>& values,
                               std::size_t max_points) {
  if (values.size() <= max_points || max_points == 0) return values;
  std::vector<double> out;
  out.reserve(max_points);
  const double stride =
      static_cast<double>(values.size()) / static_cast<double>(max_points);
  for (std::size_t i = 0; i < max_points; ++i) {
    const auto idx = static_cast<std::size_t>(std::floor(static_cast<double>(i) * stride));
    out.push_back(values[std::min(idx, values.size() - 1)]);
  }
  return out;
}

std::string render_plot(const std::vector<PlotSeries>& series,
                        const PlotOptions& options) {
  std::ostringstream out;
  if (!options.title.empty()) out << options.title << '\n';

  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();
  std::size_t max_len = 0;
  for (const auto& s : series) {
    for (const double v : s.values) {
      if (std::isfinite(v)) {
        ymin = std::min(ymin, v);
        ymax = std::max(ymax, v);
      }
    }
    max_len = std::max(max_len, s.values.size());
  }
  if (max_len == 0 || !std::isfinite(ymin)) {
    out << "(empty plot)\n";
    return out.str();
  }
  if (options.y_zero) {
    ymin = std::min(ymin, 0.0);
    ymax = std::max(ymax, 0.0);
  }
  if (ymax == ymin) ymax = ymin + 1.0;

  const int width = std::max(16, options.width);
  const int height = std::max(4, options.height);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % sizeof(kGlyphs)];
    const auto& vals = series[si].values;
    if (vals.empty()) continue;
    for (int col = 0; col < width; ++col) {
      // Map column -> value index (nearest sample).
      const double frac = width > 1 ? static_cast<double>(col) / (width - 1) : 0.0;
      const auto idx = static_cast<std::size_t>(
          std::llround(frac * static_cast<double>(vals.size() - 1)));
      const double v = vals[idx];
      if (!std::isfinite(v)) continue;
      const double norm = (v - ymin) / (ymax - ymin);
      int row = static_cast<int>(std::llround((1.0 - norm) * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = glyph;
    }
  }

  for (int row = 0; row < height; ++row) {
    const double v = ymax - (ymax - ymin) * static_cast<double>(row) / (height - 1);
    out << format_tick(v) << " |" << grid[static_cast<std::size_t>(row)] << '\n';
  }
  out << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(width), '-')
      << '\n';
  const double x_last = options.x_offset +
                        options.x_step * static_cast<double>(max_len ? max_len - 1 : 0);
  out << std::string(12, ' ') << options.x_label << ": " << options.x_offset
      << " .. " << x_last << '\n';
  bool named = false;
  for (std::size_t si = 0; si < series.size(); ++si) {
    if (series[si].name.empty()) continue;
    if (!named) {
      out << "  legend:";
      named = true;
    }
    out << "  [" << kGlyphs[si % sizeof(kGlyphs)] << "] " << series[si].name;
  }
  if (named) out << '\n';
  return out.str();
}

std::string render_plot(const std::vector<double>& values,
                        const PlotOptions& options) {
  return render_plot(std::vector<PlotSeries>{{"", values}}, options);
}

}  // namespace ncb
