// Terminal line plots. The bench harness prints each paper figure as an
// ASCII chart plus CSV rows, since the reproduction is headless.
#pragma once

#include <string>
#include <vector>

namespace ncb {

/// One named series of y-values (x is implicit: index * x_step + x_offset).
struct PlotSeries {
  std::string name;
  std::vector<double> values;
};

struct PlotOptions {
  int width = 72;      ///< Plot area width in characters.
  int height = 20;     ///< Plot area height in characters.
  double x_step = 1;   ///< x distance between consecutive values.
  double x_offset = 0; ///< x of the first value.
  std::string title;
  std::string x_label = "t";
  std::string y_label;
  bool y_zero = false; ///< Force the y-range to include 0.
};

/// Renders one or more series into a multi-line string. Each series gets its
/// own glyph (`*`, `o`, `+`, `x`, ...); a legend is appended.
[[nodiscard]] std::string render_plot(const std::vector<PlotSeries>& series,
                                      const PlotOptions& options = {});

/// Convenience: single unnamed series.
[[nodiscard]] std::string render_plot(const std::vector<double>& values,
                                      const PlotOptions& options = {});

/// Downsamples a long series to at most `max_points` points by striding.
[[nodiscard]] std::vector<double> downsample(const std::vector<double>& values,
                                             std::size_t max_points);

}  // namespace ncb
