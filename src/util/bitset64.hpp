// Fixed-capacity dynamic bitset backed by 64-bit words.
//
// Used for graph adjacency rows and neighborhood unions: `Y_x = ∪ N_i` is a
// word-wise OR, membership tests are O(1), popcount gives |Y_x|.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ncb {

class Bitset64 {
 public:
  Bitset64() = default;

  /// Creates a bitset holding `size` bits, all zero.
  explicit Bitset64(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void set(std::size_t i) noexcept { words_[i >> 6] |= (1ULL << (i & 63)); }
  void reset(std::size_t i) noexcept { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t total = 0;
    for (const auto w : words_) total += static_cast<std::size_t>(__builtin_popcountll(w));
    return total;
  }

  [[nodiscard]] bool any() const noexcept {
    for (const auto w : words_)
      if (w) return true;
    return false;
  }

  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// this |= other. Sizes must match.
  Bitset64& operator|=(const Bitset64& other) noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  /// this &= other. Sizes must match.
  Bitset64& operator&=(const Bitset64& other) noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  /// this &= ~other. Sizes must match.
  Bitset64& and_not(const Bitset64& other) noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
    return *this;
  }

  /// True iff every bit set in this is also set in `other`.
  [[nodiscard]] bool is_subset_of(const Bitset64& other) const noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & ~other.words_[i]) return false;
    }
    return true;
  }

  /// True iff the two bitsets share at least one set bit.
  [[nodiscard]] bool intersects(const Bitset64& other) const noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }

  friend bool operator==(const Bitset64& a, const Bitset64& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  /// Indices of set bits, ascending.
  [[nodiscard]] std::vector<std::int32_t> to_indices() const {
    std::vector<std::int32_t> out;
    out.reserve(count());
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int bit = __builtin_ctzll(w);
        out.push_back(static_cast<std::int32_t>(wi * 64 + static_cast<std::size_t>(bit)));
        w &= w - 1;
      }
    }
    return out;
  }

  /// Calls fn(index) for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int bit = __builtin_ctzll(w);
        fn(static_cast<std::int32_t>(wi * 64 + static_cast<std::size_t>(bit)));
        w &= w - 1;
      }
    }
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace ncb
