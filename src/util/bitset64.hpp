// Fixed-capacity dynamic bitset backed by 64-bit words, plus a non-owning
// row view (BitRow) over externally stored words.
//
// Used for graph adjacency rows and neighborhood unions: `Y_x = ∪ N_i` is a
// word-wise OR, membership tests are O(1), popcount gives |Y_x|. The graph
// stores all of its adjacency rows in one flat word array (CSR-style) and
// hands out BitRow views; Bitset64 remains the owning accumulator type and
// accepts BitRow operands in every word-wise operation.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ncb {

class Bitset64;

/// Non-owning read-only view of a bitset row: a word pointer into storage
/// owned elsewhere (the graph's flat row array, or a Bitset64). Cheap to
/// copy; invalidated with the underlying storage.
class BitRow {
 public:
  BitRow() = default;
  BitRow(const std::uint64_t* words, std::size_t num_words,
         std::size_t size_bits) noexcept
      : words_(words), num_words_(num_words), size_(size_bits) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t num_words() const noexcept { return num_words_; }
  [[nodiscard]] const std::uint64_t* words() const noexcept { return words_; }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  [[nodiscard]] std::size_t count() const noexcept {
    std::size_t total = 0;
    for (std::size_t w = 0; w < num_words_; ++w) {
      total += static_cast<std::size_t>(__builtin_popcountll(words_[w]));
    }
    return total;
  }

  [[nodiscard]] bool any() const noexcept {
    for (std::size_t w = 0; w < num_words_; ++w) {
      if (words_[w]) return true;
    }
    return false;
  }

  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// True iff every bit set in this row is also set in `other`.
  [[nodiscard]] bool is_subset_of(BitRow other) const noexcept {
    assert(num_words_ <= other.num_words_);
    for (std::size_t w = 0; w < num_words_; ++w) {
      if (words_[w] & ~other.words_[w]) return false;
    }
    return true;
  }

  [[nodiscard]] inline bool is_subset_of(const Bitset64& other) const noexcept;

  /// True iff the two rows share at least one set bit.
  [[nodiscard]] bool intersects(BitRow other) const noexcept {
    assert(num_words_ <= other.num_words_);
    for (std::size_t w = 0; w < num_words_; ++w) {
      if (words_[w] & other.words_[w]) return true;
    }
    return false;
  }

  friend bool operator==(BitRow a, BitRow b) noexcept {
    if (a.size_ != b.size_) return false;
    for (std::size_t w = 0; w < a.num_words_; ++w) {
      if (a.words_[w] != b.words_[w]) return false;
    }
    return true;
  }

  /// Indices of set bits, ascending.
  [[nodiscard]] std::vector<std::int32_t> to_indices() const {
    std::vector<std::int32_t> out;
    out.reserve(count());
    for_each([&out](std::int32_t i) { out.push_back(i); });
    return out;
  }

  /// Calls fn(index) for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t wi = 0; wi < num_words_; ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int bit = __builtin_ctzll(w);
        fn(static_cast<std::int32_t>(wi * 64 + static_cast<std::size_t>(bit)));
        w &= w - 1;
      }
    }
  }

 private:
  const std::uint64_t* words_ = nullptr;
  std::size_t num_words_ = 0;
  std::size_t size_ = 0;
};

class Bitset64 {
 public:
  Bitset64() = default;

  /// Creates a bitset holding `size` bits, all zero.
  explicit Bitset64(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  /// Materializes a row view into an owning bitset.
  explicit Bitset64(BitRow row)
      : size_(row.size()), words_(row.words(), row.words() + row.num_words()) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Read-only row view over this bitset's words.
  [[nodiscard]] BitRow row() const noexcept {
    return BitRow(words_.data(), words_.size(), size_);
  }

  void set(std::size_t i) noexcept { words_[i >> 6] |= (1ULL << (i & 63)); }
  void reset(std::size_t i) noexcept { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept { return row().count(); }

  [[nodiscard]] bool any() const noexcept { return row().any(); }

  [[nodiscard]] bool none() const noexcept { return !any(); }

  /// this |= other. Sizes must match.
  Bitset64& operator|=(const Bitset64& other) noexcept {
    return *this |= other.row();
  }

  Bitset64& operator|=(BitRow other) noexcept {
    assert(words_.size() <= other.num_words());
    const std::uint64_t* w = other.words();
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= w[i];
    return *this;
  }

  /// this &= other. Sizes must match.
  Bitset64& operator&=(const Bitset64& other) noexcept {
    return *this &= other.row();
  }

  Bitset64& operator&=(BitRow other) noexcept {
    assert(words_.size() <= other.num_words());
    const std::uint64_t* w = other.words();
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= w[i];
    return *this;
  }

  /// this &= ~other. Sizes must match.
  Bitset64& and_not(const Bitset64& other) noexcept {
    return and_not(other.row());
  }

  Bitset64& and_not(BitRow other) noexcept {
    assert(words_.size() <= other.num_words());
    const std::uint64_t* w = other.words();
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~w[i];
    return *this;
  }

  /// True iff every bit set in this is also set in `other`.
  [[nodiscard]] bool is_subset_of(const Bitset64& other) const noexcept {
    return row().is_subset_of(other.row());
  }

  [[nodiscard]] bool is_subset_of(BitRow other) const noexcept {
    return row().is_subset_of(other);
  }

  /// True iff the two bitsets share at least one set bit.
  [[nodiscard]] bool intersects(const Bitset64& other) const noexcept {
    return row().intersects(other.row());
  }

  [[nodiscard]] bool intersects(BitRow other) const noexcept {
    return row().intersects(other);
  }

  friend bool operator==(const Bitset64& a, const Bitset64& b) noexcept {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  friend bool operator==(const Bitset64& a, BitRow b) noexcept {
    return a.row() == b;
  }

  friend bool operator==(BitRow a, const Bitset64& b) noexcept {
    return a == b.row();
  }

  /// Indices of set bits, ascending.
  [[nodiscard]] std::vector<std::int32_t> to_indices() const {
    return row().to_indices();
  }

  /// Calls fn(index) for every set bit, ascending.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    row().for_each(static_cast<Fn&&>(fn));
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

inline bool BitRow::is_subset_of(const Bitset64& other) const noexcept {
  return is_subset_of(other.row());
}

}  // namespace ncb
