#include "util/csv.hpp"

#include <cmath>
#include <cstdio>

namespace ncb {

std::string CsvWriter::escape(const std::string& cell, char separator) {
  bool needs_quotes = false;
  for (const char c : cell) {
    if (c == separator || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::format(double value, int digits) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

void CsvWriter::write_cells(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) *out_ << separator_;
    *out_ << escape(cells[i], separator_);
  }
  *out_ << '\n';
  ++rows_;
}

void CsvWriter::header(const std::vector<std::string>& names) {
  write_cells(names);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  write_cells(cells);
}

void CsvWriter::row(const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (const double v : cells) text.push_back(format(v));
  write_cells(text);
}

void CsvWriter::row(const std::string& label, const std::vector<double>& cells) {
  std::vector<std::string> text;
  text.reserve(cells.size() + 1);
  text.push_back(label);
  for (const double v : cells) text.push_back(format(v));
  write_cells(text);
}

}  // namespace ncb
