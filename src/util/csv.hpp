// Minimal CSV writer used by the bench harness to emit the figure series.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace ncb {

/// Streams rows of a CSV table. Values containing separators or quotes are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out, char separator = ',')
      : out_(&out), separator_(separator) {}

  /// Writes a header row. Must be called before any data row (optional).
  void header(const std::vector<std::string>& names);

  /// Writes one row of string cells.
  void row(const std::vector<std::string>& cells);

  /// Writes one row of doubles with full round-trip precision.
  void row(const std::vector<double>& cells);

  /// Writes a labelled numeric row: first cell is `label`.
  void row(const std::string& label, const std::vector<double>& cells);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// Escapes a single cell per RFC 4180 for the given separator.
  static std::string escape(const std::string& cell, char separator = ',');

  /// Formats a double compactly with up to `digits` significant digits.
  static std::string format(double value, int digits = 10);

 private:
  void write_cells(const std::vector<std::string>& cells);

  std::ostream* out_;
  char separator_;
  std::size_t rows_ = 0;
};

}  // namespace ncb
