// Fixed-bucket log-scale latency histogram.
//
// record() is O(1) (a bit-scan plus one array increment, no allocation), so
// it is safe on a reactor hot path; quantile() walks the fixed bucket array.
// Values up to 15 land in exact unit buckets; larger values share a
// power-of-two decade split into 16 linear sub-buckets, so any reported
// quantile overstates the true value by at most 1/16 (~6.25%) of it —
// plenty for p50/p99/p999 latency reporting, in exchange for a histogram
// that is a flat 976-slot array that merges by addition.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

namespace ncb {

class LatencyHistogram {
 public:
  /// Sub-buckets per power-of-two decade; the relative error bound is
  /// 1/kSubBuckets.
  static constexpr std::size_t kSubBuckets = 16;
  /// Bucket count covering the full u64 range: exact buckets [0, 16) plus
  /// 60 decades (exponents 4..63) of 16 sub-buckets each.
  static constexpr std::size_t kNumBuckets = kSubBuckets + 60 * kSubBuckets;

  void record(std::uint64_t value_ns) noexcept {
    ++counts_[bucket_index(value_ns)];
    ++count_;
    max_ = std::max(max_, value_ns);
  }

  /// Adds another histogram's counts into this one (shard merging).
  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      counts_[i] += other.counts_[i];
    }
    count_ += other.count_;
    max_ = std::max(max_, other.max_);
  }

  void reset() noexcept {
    counts_.fill(0);
    count_ = 0;
    max_ = 0;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Exact largest recorded value (not bucket-rounded); 0 when empty.
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }

  /// Upper edge of the bucket holding the q-quantile (q clamped to [0, 1]),
  /// capped at max(). Returns 0 on an empty histogram. Never understates
  /// the true quantile, and overstates it by at most 1/kSubBuckets.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    q = std::min(1.0, std::max(0.0, q));
    // Nearest-rank: round(q * count), clamped into [1, count].
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5);
    target = std::max<std::uint64_t>(1, std::min(target, count_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
      seen += counts_[i];
      if (seen >= target) return std::min(bucket_upper(i), max_);
    }
    return max_;  // unreachable: counts_ sums to count_
  }

  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] std::uint64_t p999() const noexcept { return quantile(0.999); }

  /// Bucket mapping, exposed for tests: values < 16 map to themselves;
  /// larger values map by (floor(log2(v)), next-4-bits).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int exponent = 63 - __builtin_clzll(v);  // >= 4 here
    const std::uint64_t sub = (v >> (exponent - 4)) - kSubBuckets;  // [0, 16)
    return kSubBuckets * static_cast<std::size_t>(exponent - 3) +
           static_cast<std::size_t>(sub);
  }

  /// Largest value mapping into bucket `index` (inclusive upper edge).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t index) noexcept {
    if (index < kSubBuckets) return index;
    const int exponent = static_cast<int>(index / kSubBuckets) + 3;
    const std::uint64_t sub = index % kSubBuckets;
    const std::uint64_t lower = (kSubBuckets + sub) << (exponent - 4);
    const std::uint64_t width = std::uint64_t{1} << (exponent - 4);
    return lower + width - 1;
  }

 private:
  std::array<std::uint64_t, kNumBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace ncb
