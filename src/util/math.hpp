// Small numeric helpers shared by the index policies.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace ncb {

/// log⁺(x) = max(ln x, 0); the paper's `log+`. Returns 0 for x <= 1 and for
/// non-positive x (the index is then pure exploitation).
[[nodiscard]] inline double log_plus(double x) noexcept {
  if (x <= 1.0) return 0.0;
  return std::log(x);
}

/// The MOSS-style exploration width sqrt(log⁺(ratio)/count); +inf when the
/// arm has never been observed so it is explored first.
[[nodiscard]] inline double exploration_width(double ratio,
                                              double count) noexcept {
  if (count <= 0.0) return std::numeric_limits<double>::infinity();
  return std::sqrt(log_plus(ratio) / count);
}

/// Clamps x into [lo, hi].
[[nodiscard]] inline double clamp01(double x) noexcept {
  return std::clamp(x, 0.0, 1.0);
}

/// Approximate equality with absolute tolerance.
[[nodiscard]] inline bool almost_equal(double a, double b,
                                       double tol = 1e-12) noexcept {
  return std::fabs(a - b) <= tol;
}

}  // namespace ncb
