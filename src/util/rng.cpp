#include "util/rng.hpp"

#include <cmath>

namespace ncb {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 mixer(seed);
  for (auto& word : state_) word = mixer.next();
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Xoshiro256::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_int(std::uint64_t n) noexcept {
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (~n + 1) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Xoshiro256::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Xoshiro256::gaussian() noexcept {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Xoshiro256::gaussian(double mean, double stddev) noexcept {
  return mean + stddev * gaussian();
}

double Xoshiro256::gamma(double shape) noexcept {
  if (shape < 1.0) {
    // Boost to shape+1 and apply the standard correction.
    const double g = gamma(shape + 1.0);
    const double u = uniform();
    return g * std::pow(u > 0.0 ? u : 1e-300, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = gaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Xoshiro256::beta(double a, double b) noexcept {
  const double x = gamma(a);
  const double y = gamma(b);
  const double sum = x + y;
  return sum > 0.0 ? x / sum : 0.5;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t jump : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (jump & (1ULL << bit)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      (*this)();
    }
  }
  state_ = {s0, s1, s2, s3};
}

std::vector<std::uint64_t> derive_seeds(std::uint64_t master_seed,
                                        std::size_t count) {
  SplitMix64 mixer(master_seed);
  std::vector<std::uint64_t> seeds(count);
  for (auto& seed : seeds) seed = mixer.next();
  return seeds;
}

std::uint64_t derive_seed_at(std::uint64_t master_seed,
                             std::uint64_t index) noexcept {
  // SplitMix64's state after k draws is master + k * gamma, so the stream
  // supports random access: jump the state, then mix once.
  SplitMix64 mixer(master_seed + index * 0x9e3779b97f4a7c15ULL);
  return mixer.next();
}

}  // namespace ncb
