// Deterministic, splittable random number generation.
//
// The simulation engine runs many replications in parallel; each replication
// derives an independent stream from a master seed via SplitMix64 so results
// are reproducible regardless of thread scheduling.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace ncb {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used to seed Xoshiro streams
/// and to derive per-replication seeds from a master seed.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// Xoshiro256++ PRNG (Blackman & Vigna). Fast, 256-bit state, suitable for
/// Monte-Carlo simulation. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n) noexcept;

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal via Marsaglia polar method.
  double gaussian() noexcept;

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

  /// Gamma(shape, 1) via Marsaglia-Tsang; shape > 0.
  double gamma(double shape) noexcept;

  /// Beta(a, b) via two gamma draws; a, b > 0.
  double beta(double a, double b) noexcept;

  /// Equivalent of the long-jump function: advances the stream by 2^192
  /// draws, producing a non-overlapping substream.
  void long_jump() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Derives `count` independent 64-bit seeds from `master_seed`.
[[nodiscard]] std::vector<std::uint64_t> derive_seeds(std::uint64_t master_seed,
                                                      std::size_t count);

/// Counter-based access into the same stream: O(1) equivalent of
/// `derive_seeds(master_seed, index + 1)[index]`. Lets a shard seed its
/// replications without generating the whole seed prefix, so sharded and
/// sequential drivers draw bit-identical per-replication streams.
[[nodiscard]] std::uint64_t derive_seed_at(std::uint64_t master_seed,
                                           std::uint64_t index) noexcept;

/// Fisher-Yates shuffle of a vector using the given generator.
template <typename T>
void shuffle(std::vector<T>& v, Xoshiro256& rng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_int(i);
    std::swap(v[i - 1], v[j]);
  }
}

}  // namespace ncb
