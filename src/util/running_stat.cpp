#include "util/running_stat.hpp"

#include <cmath>
#include <stdexcept>

namespace ncb {

void RunningStat::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStat::stderr_mean() const noexcept {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStat::ci95_halfwidth() const noexcept {
  return 1.96 * stderr_mean();
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

RunningStat RunningStat::restore(std::size_t count, double mean, double m2,
                                 double min, double max) noexcept {
  RunningStat stat;
  stat.count_ = count;
  stat.mean_ = mean;
  stat.m2_ = m2;
  stat.min_ = min;
  stat.max_ = max;
  return stat;
}

void SeriesStat::add_series(const std::vector<double>& series) {
  if (stats_.empty()) stats_.resize(series.size());
  if (series.size() != stats_.size()) {
    throw std::invalid_argument("SeriesStat: series length mismatch");
  }
  for (std::size_t i = 0; i < series.size(); ++i) stats_[i].add(series[i]);
}

std::vector<double> SeriesStat::means() const {
  std::vector<double> out(stats_.size());
  for (std::size_t i = 0; i < stats_.size(); ++i) out[i] = stats_[i].mean();
  return out;
}

std::vector<double> SeriesStat::stddevs() const {
  std::vector<double> out(stats_.size());
  for (std::size_t i = 0; i < stats_.size(); ++i) out[i] = stats_[i].stddev();
  return out;
}

void SeriesStat::merge(const SeriesStat& other) {
  if (stats_.empty()) {
    stats_ = other.stats_;
    return;
  }
  if (other.stats_.empty()) return;
  if (other.stats_.size() != stats_.size()) {
    throw std::invalid_argument("SeriesStat: merge length mismatch");
  }
  for (std::size_t i = 0; i < stats_.size(); ++i) stats_[i].merge(other.stats_[i]);
}

}  // namespace ncb
