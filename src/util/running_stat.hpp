// Online statistics (Welford) and fixed-checkpoint time-series aggregation.
#pragma once

#include <cstddef>
#include <vector>

namespace ncb {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStat {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double stderr_mean() const noexcept;
  /// Half-width of the ~95% normal confidence interval for the mean.
  [[nodiscard]] double ci95_halfwidth() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Raw Welford second-moment sum — with count/mean/min/max, the complete
  /// internal state (what restore() accepts back).
  [[nodiscard]] double m2() const noexcept { return m2_; }

  /// Merges another accumulator into this one (parallel reduction). Merging
  /// into an empty accumulator is a bitwise copy of `other`, which is what
  /// lets a distributed reduction ship Welford state over the wire and
  /// reassemble it exactly.
  void merge(const RunningStat& other) noexcept;

  /// Rebuilds an accumulator from its exact internal state — the inverse of
  /// the count()/mean()/m2()/min()/max() accessors, for wire transport.
  [[nodiscard]] static RunningStat restore(std::size_t count, double mean,
                                           double m2, double min,
                                           double max) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A vector of RunningStat, one per time checkpoint. Each replication adds
/// its series; the aggregate exposes mean/σ per checkpoint.
class SeriesStat {
 public:
  SeriesStat() = default;
  explicit SeriesStat(std::size_t length) : stats_(length) {}

  /// Adds one replication's series; its length must match.
  void add_series(const std::vector<double>& series);

  [[nodiscard]] std::size_t length() const noexcept { return stats_.size(); }
  [[nodiscard]] const RunningStat& at(std::size_t i) const {
    return stats_.at(i);
  }
  [[nodiscard]] std::vector<double> means() const;
  [[nodiscard]] std::vector<double> stddevs() const;

  void merge(const SeriesStat& other);

 private:
  std::vector<RunningStat> stats_;
};

}  // namespace ncb
