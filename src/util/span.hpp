// Lightweight non-owning read-only view over a contiguous array (a
// pre-C++20 stand-in for std::span<const T>).
//
// The graph's CSR adjacency accessors return Span<ArmId> views into the
// flat neighbor arrays: callers iterate them exactly like the former
// `const std::vector<ArmId>&` results, but nothing is copied and the
// view is two words. Views are invalidated by destroying (or mutating)
// the underlying storage; Graph is immutable after construction, so its
// views live as long as the graph.
#pragma once

#include <cstddef>
#include <ostream>
#include <vector>

namespace ncb {

template <typename T>
class Span {
 public:
  using value_type = T;
  using const_iterator = const T*;
  using iterator = const T*;

  constexpr Span() noexcept = default;
  constexpr Span(const T* data, std::size_t size) noexcept
      : data_(data), size_(size) {}
  /// View over a whole vector (the storage must outlive the view).
  Span(const std::vector<T>& v) noexcept : data_(v.data()), size_(v.size()) {}

  [[nodiscard]] constexpr const T* data() const noexcept { return data_; }
  [[nodiscard]] constexpr std::size_t size() const noexcept { return size_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] constexpr const T* begin() const noexcept { return data_; }
  [[nodiscard]] constexpr const T* end() const noexcept { return data_ + size_; }

  constexpr const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  [[nodiscard]] constexpr const T& front() const noexcept { return data_[0]; }
  [[nodiscard]] constexpr const T& back() const noexcept { return data_[size_ - 1]; }

  /// Materializes the view (for callers that need ownership).
  [[nodiscard]] std::vector<T> to_vector() const { return {begin(), end()}; }

 private:
  const T* data_ = nullptr;
  std::size_t size_ = 0;
};

template <typename T>
[[nodiscard]] bool operator==(Span<T> a, Span<T> b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

template <typename T>
[[nodiscard]] bool operator!=(Span<T> a, Span<T> b) noexcept {
  return !(a == b);
}

template <typename T>
[[nodiscard]] bool operator==(Span<T> a, const std::vector<T>& b) noexcept {
  return a == Span<T>(b);
}

template <typename T>
[[nodiscard]] bool operator==(const std::vector<T>& a, Span<T> b) noexcept {
  return Span<T>(a) == b;
}

template <typename T>
[[nodiscard]] bool operator!=(Span<T> a, const std::vector<T>& b) noexcept {
  return !(a == b);
}

template <typename T>
[[nodiscard]] bool operator!=(const std::vector<T>& a, Span<T> b) noexcept {
  return !(a == b);
}

/// Readable gtest failure messages for EXPECT_EQ on spans.
template <typename T>
std::ostream& operator<<(std::ostream& out, Span<T> s) {
  out << '{';
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) out << ", ";
    out << s[i];
  }
  return out << '}';
}

}  // namespace ncb
