#include "util/svg_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

namespace ncb {
namespace {

constexpr const char* kPalette[] = {"#1f77b4", "#d62728", "#2ca02c",
                                    "#ff7f0e", "#9467bd", "#8c564b",
                                    "#e377c2", "#7f7f7f"};

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string escape_xml(const std::string& text) {
  std::string out;
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string render_svg(const std::vector<PlotSeries>& series,
                       const SvgOptions& options) {
  const int width = std::max(160, options.width);
  const int height = std::max(120, options.height);
  const double ml = 64, mr = 16, mt = options.title.empty() ? 16 : 36,
               mb = 44;
  const double plot_w = width - ml - mr;
  const double plot_h = height - mt - mb;

  double ymin = std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();
  std::size_t max_len = 0;
  for (const auto& s : series) {
    for (const double v : s.values) {
      if (std::isfinite(v)) {
        ymin = std::min(ymin, v);
        ymax = std::max(ymax, v);
      }
    }
    max_len = std::max(max_len, s.values.size());
  }

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << ' '
      << height << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  if (!options.title.empty()) {
    out << "<text x=\"" << width / 2 << "\" y=\"22\" text-anchor=\"middle\" "
           "font-family=\"sans-serif\" font-size=\"14\">"
        << escape_xml(options.title) << "</text>\n";
  }
  if (max_len == 0 || !std::isfinite(ymin)) {
    out << "<text x=\"" << width / 2 << "\" y=\"" << height / 2
        << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
           "font-size=\"12\">(no data)</text>\n</svg>\n";
    return out.str();
  }
  if (options.y_zero) {
    ymin = std::min(ymin, 0.0);
    ymax = std::max(ymax, 0.0);
  }
  if (ymax == ymin) ymax = ymin + 1.0;

  const double x_last =
      options.x_offset + options.x_step * static_cast<double>(max_len - 1);
  const auto sx = [&](double x) {
    const double span = std::max(x_last - options.x_offset, 1e-12);
    return ml + (x - options.x_offset) / span * plot_w;
  };
  const auto sy = [&](double y) {
    return mt + (ymax - y) / (ymax - ymin) * plot_h;
  };

  // Axes + gridlines with 5 y ticks and 5 x ticks.
  out << "<g font-family=\"sans-serif\" font-size=\"10\" fill=\"#444\">\n";
  for (int tick = 0; tick <= 4; ++tick) {
    const double yv = ymin + (ymax - ymin) * tick / 4.0;
    const double yp = sy(yv);
    out << "<line x1=\"" << fmt(ml) << "\" y1=\"" << fmt(yp) << "\" x2=\""
        << fmt(ml + plot_w) << "\" y2=\"" << fmt(yp)
        << "\" stroke=\"#ddd\"/>\n"
        << "<text x=\"" << fmt(ml - 6) << "\" y=\"" << fmt(yp + 3)
        << "\" text-anchor=\"end\">" << fmt(yv) << "</text>\n";
    const double xv = options.x_offset + (x_last - options.x_offset) * tick / 4.0;
    const double xp = sx(xv);
    out << "<text x=\"" << fmt(xp) << "\" y=\"" << fmt(mt + plot_h + 14)
        << "\" text-anchor=\"middle\">" << fmt(xv) << "</text>\n";
  }
  out << "<text x=\"" << fmt(ml + plot_w / 2) << "\" y=\""
      << fmt(mt + plot_h + 30) << "\" text-anchor=\"middle\">"
      << escape_xml(options.x_label) << "</text>\n";
  if (!options.y_label.empty()) {
    out << "<text x=\"14\" y=\"" << fmt(mt + plot_h / 2)
        << "\" text-anchor=\"middle\" transform=\"rotate(-90 14 "
        << fmt(mt + plot_h / 2) << ")\">" << escape_xml(options.y_label)
        << "</text>\n";
  }
  out << "</g>\n"
      << "<rect x=\"" << fmt(ml) << "\" y=\"" << fmt(mt) << "\" width=\""
      << fmt(plot_w) << "\" height=\"" << fmt(plot_h)
      << "\" fill=\"none\" stroke=\"#888\"/>\n";

  // Series polylines.
  for (std::size_t si = 0; si < series.size(); ++si) {
    const auto values = downsample(
        series[si].values, static_cast<std::size_t>(std::max(options.max_points, 2)));
    if (values.empty()) continue;
    const double stride =
        values.size() > 1
            ? (x_last - options.x_offset) / static_cast<double>(values.size() - 1)
            : 0.0;
    out << "<polyline fill=\"none\" stroke=\""
        << kPalette[si % (sizeof(kPalette) / sizeof(kPalette[0]))]
        << "\" stroke-width=\"1.5\" points=\"";
    bool first = true;
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (!std::isfinite(values[i])) continue;
      if (!first) out << ' ';
      out << fmt(sx(options.x_offset + stride * static_cast<double>(i))) << ','
          << fmt(sy(values[i]));
      first = false;
    }
    out << "\"/>\n";
  }

  // Legend.
  double ly = mt + 12;
  for (std::size_t si = 0; si < series.size(); ++si) {
    if (series[si].name.empty()) continue;
    const char* color = kPalette[si % (sizeof(kPalette) / sizeof(kPalette[0]))];
    out << "<line x1=\"" << fmt(ml + plot_w - 120) << "\" y1=\"" << fmt(ly - 3)
        << "\" x2=\"" << fmt(ml + plot_w - 100) << "\" y2=\"" << fmt(ly - 3)
        << "\" stroke=\"" << color << "\" stroke-width=\"2\"/>\n"
        << "<text x=\"" << fmt(ml + plot_w - 94) << "\" y=\"" << fmt(ly)
        << "\" font-family=\"sans-serif\" font-size=\"10\">"
        << escape_xml(series[si].name) << "</text>\n";
    ly += 14;
  }
  out << "</svg>\n";
  return out.str();
}

bool write_svg(const std::string& path, const std::vector<PlotSeries>& series,
               const SvgOptions& options) {
  std::ofstream out(path);
  if (!out) return false;
  out << render_svg(series, options);
  return static_cast<bool>(out);
}

}  // namespace ncb
