// SVG line charts. The figure benches can write each reproduced paper
// figure as a standalone .svg (in addition to CSV rows and the terminal
// ASCII rendering), so a headless run still produces viewable artifacts.
#pragma once

#include <string>
#include <vector>

#include "util/ascii_plot.hpp"  // PlotSeries

namespace ncb {

struct SvgOptions {
  int width = 640;    ///< Total image width in px.
  int height = 400;   ///< Total image height in px.
  std::string title;
  std::string x_label = "t";
  std::string y_label;
  double x_step = 1;    ///< x distance between consecutive samples.
  double x_offset = 0;  ///< x of the first sample.
  bool y_zero = false;  ///< Force the y-range to include 0.
  int max_points = 400; ///< Series longer than this are downsampled.
};

/// Renders the series as an SVG document (returned as a string).
/// Handles empty input and non-finite values gracefully.
[[nodiscard]] std::string render_svg(const std::vector<PlotSeries>& series,
                                     const SvgOptions& options = {});

/// Renders and writes to `path`; returns false on I/O failure.
bool write_svg(const std::string& path, const std::vector<PlotSeries>& series,
               const SvgOptions& options = {});

}  // namespace ncb
