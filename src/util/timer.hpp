// Wall-clock stopwatch for coarse experiment timing.
#pragma once

#include <chrono>

namespace ncb {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const noexcept {
    return elapsed_seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ncb
