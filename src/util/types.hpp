// Basic vocabulary types shared across the ncb library.
#pragma once

#include <cstdint>
#include <vector>

namespace ncb {

/// Index of an arm (vertex of the relation graph). Arms are 0-based.
using ArmId = std::int32_t;

/// Index of a combinatorial strategy ("com-arm") inside a feasible set F.
using StrategyId = std::int32_t;

/// Discrete time slot, 0-based. The paper's `t`.
using TimeSlot = std::int64_t;

/// A combinatorial strategy: a sorted set of distinct arms.
using ArmSet = std::vector<ArmId>;

/// Sentinel for "no arm".
inline constexpr ArmId kNoArm = -1;

/// Sentinel for "no strategy".
inline constexpr StrategyId kNoStrategy = -1;

}  // namespace ncb
