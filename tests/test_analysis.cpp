#include "sim/analysis.hpp"

#include <gtest/gtest.h>

#include "core/dfl_sso.hpp"
#include "core/random_policy.hpp"
#include "graph/generators.hpp"

namespace ncb {
namespace {

TEST(DecomposeSinglePlay, HandComputed) {
  const auto inst = bernoulli_instance(empty_graph(3), {0.9, 0.5, 0.7});
  RunResult result;
  result.scenario = Scenario::kSso;
  result.play_counts = {10, 4, 6};
  const auto d = decompose_single_play(result, inst);
  // Contributions: arm0: 0; arm1: 0.4*4 = 1.6; arm2: 0.2*6 = 1.2.
  EXPECT_NEAR(d.total, 2.8, 1e-9);
  ASSERT_EQ(d.rows.size(), 3u);
  EXPECT_EQ(d.rows[0].arm, 1);  // largest contribution first
  EXPECT_NEAR(d.rows[0].contribution, 1.6, 1e-9);
  EXPECT_EQ(d.rows[1].arm, 2);
  EXPECT_EQ(d.rows[2].arm, 0);
  EXPECT_DOUBLE_EQ(d.rows[2].contribution, 0.0);
}

TEST(DecomposeSinglePlay, SsrUsesSideGaps) {
  // Path 0-1-2: u = [mu0+mu1, mu0+mu1+mu2, mu1+mu2].
  const auto inst = bernoulli_instance(path_graph(3), {0.5, 0.2, 0.4});
  RunResult result;
  result.scenario = Scenario::kSsr;
  result.play_counts = {5, 5, 5};
  const auto d = decompose_single_play(result, inst);
  // u = [0.7, 1.1, 0.6]; gaps = [0.4, 0, 0.5]; total = 5*(0.4+0+0.5).
  EXPECT_NEAR(d.total, 4.5, 1e-9);
}

TEST(DecomposeSinglePlay, MatchesRunPseudoRegret) {
  Xoshiro256 rng(4);
  auto inst = random_bernoulli_instance(erdos_renyi(10, 0.3, rng), rng);
  Environment env(inst, 9);
  DflSso policy;
  RunnerOptions opts;
  opts.horizon = 500;
  const auto run = run_single_play(policy, env, Scenario::kSso, opts);
  const auto d = decompose_single_play(run, inst);
  double pseudo_total = 0.0;
  for (const double pr : run.per_slot_pseudo_regret) pseudo_total += pr;
  EXPECT_NEAR(d.total, pseudo_total, 1e-6);
}

TEST(DecomposeSinglePlay, SizeMismatchThrows) {
  const auto inst = bernoulli_instance(empty_graph(3), {0.9, 0.5, 0.7});
  RunResult result;
  result.play_counts = {1, 2};
  EXPECT_THROW((void)decompose_single_play(result, inst),
               std::invalid_argument);
}

TEST(DecomposeCombinatorial, BestStrategyArmsHaveZeroGap) {
  const auto inst = bernoulli_instance(path_graph(4), {0.1, 0.8, 0.3, 0.6});
  const auto family = std::make_shared<const FeasibleSet>(make_subset_family(
      std::make_shared<const Graph>(inst.graph()), 2));
  RunResult result;
  result.scenario = Scenario::kCso;
  result.play_counts = {3, 10, 2, 10};
  const auto d =
      decompose_combinatorial(result, inst, *family, Scenario::kCso);
  // Optimal CSO strategy is {1,3}; arms 1 and 3 must carry zero gap.
  for (const auto& row : d.rows) {
    if (row.arm == 1 || row.arm == 3) {
      EXPECT_DOUBLE_EQ(row.gap, 0.0);
    }
  }
  EXPECT_GT(d.total, 0.0);
}

TEST(DecomposeCombinatorial, WrongScenarioThrows) {
  const auto inst = bernoulli_instance(path_graph(3), {0.5, 0.5, 0.5});
  const auto family = std::make_shared<const FeasibleSet>(make_subset_family(
      std::make_shared<const Graph>(inst.graph()), 2));
  RunResult result;
  result.play_counts = {0, 0, 0};
  EXPECT_THROW(
      (void)decompose_combinatorial(result, inst, *family, Scenario::kSso),
      std::invalid_argument);
}

TEST(RegretDecomposition, ToStringTopK) {
  const auto inst = bernoulli_instance(empty_graph(3), {0.9, 0.5, 0.7});
  RunResult result;
  result.scenario = Scenario::kSso;
  result.play_counts = {10, 4, 6};
  const auto text = decompose_single_play(result, inst).to_string(2);
  EXPECT_NE(text.find("total pseudo-regret"), std::string::npos);
  // Only top 2 rows plus header plus total = rows limited.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

}  // namespace
}  // namespace ncb
