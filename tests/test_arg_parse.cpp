#include "util/arg_parse.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ncb {
namespace {

ArgParse parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv(args);
  return ArgParse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParse, EqualsForm) {
  const auto args = parse({"prog", "--horizon=5000", "--p=0.6"});
  EXPECT_EQ(args.get_int("horizon", 0), 5000);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.0), 0.6);
}

TEST(ArgParse, SpaceForm) {
  const auto args = parse({"prog", "--arms", "64"});
  EXPECT_EQ(args.get_int("arms", 0), 64);
}

TEST(ArgParse, BooleanFlag) {
  const auto args = parse({"prog", "--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_FALSE(args.get_bool("missing", false));
  EXPECT_TRUE(args.get_bool("missing", true));
}

TEST(ArgParse, ExplicitBooleanValues) {
  const auto args = parse({"prog", "--a=true", "--b=false", "--c=1", "--d=0"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(ArgParse, Fallbacks) {
  const auto args = parse({"prog"});
  EXPECT_EQ(args.get_int("n", 42), 42);
  EXPECT_EQ(args.get_string("name", "dfl"), "dfl");
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
}

TEST(ArgParse, PositionalArguments) {
  const auto args = parse({"prog", "input.txt", "--flag", "output.txt"});
  // "--flag output.txt" binds output.txt as the flag's value.
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.get_string("flag", ""), "output.txt");
}

TEST(ArgParse, ProgramName) {
  const auto args = parse({"bench_fig3"});
  EXPECT_EQ(args.program(), "bench_fig3");
}

TEST(ArgParse, LastValueWins) {
  const auto args = parse({"prog", "--n=1", "--n=2"});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

TEST(ArgParse, NonNumericIntThrows) {
  const auto args = parse({"prog", "--horizon", "abc"});
  EXPECT_THROW(static_cast<void>(args.get_int("horizon", 0)),
               std::invalid_argument);
}

TEST(ArgParse, TrailingGarbageIntThrows) {
  const auto args = parse({"prog", "--horizon=50x"});
  EXPECT_THROW(static_cast<void>(args.get_int("horizon", 0)),
               std::invalid_argument);
}

TEST(ArgParse, NonNumericDoubleThrows) {
  const auto args = parse({"prog", "--p=high"});
  EXPECT_THROW(static_cast<void>(args.get_double("p", 0.0)),
               std::invalid_argument);
}

TEST(ArgParse, OutOfRangeThrows) {
  const auto args =
      parse({"prog", "--horizon=99999999999999999999", "--p=1e999"});
  EXPECT_THROW(static_cast<void>(args.get_int("horizon", 0)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(args.get_double("p", 0.0)),
               std::invalid_argument);
}

TEST(ArgParse, SubnormalDoubleAccepted) {
  // strtod underflow sets ERANGE but returns the subnormal: still valid.
  const auto args = parse({"prog", "--p=1e-310"});
  const double p = args.get_double("p", 0.0);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1e-300);
}

}  // namespace
}  // namespace ncb
