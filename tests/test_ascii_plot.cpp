#include "util/ascii_plot.hpp"

#include <gtest/gtest.h>

namespace ncb {
namespace {

TEST(AsciiPlot, EmptyInputHandled) {
  const auto text = render_plot(std::vector<double>{});
  EXPECT_NE(text.find("(empty plot)"), std::string::npos);
}

TEST(AsciiPlot, SingleSeriesRenders) {
  std::vector<double> ramp;
  for (int i = 0; i < 100; ++i) ramp.push_back(i * 0.1);
  PlotOptions opts;
  opts.title = "ramp";
  const auto text = render_plot(ramp, opts);
  EXPECT_NE(text.find("ramp"), std::string::npos);
  EXPECT_NE(text.find('*'), std::string::npos);
}

TEST(AsciiPlot, MultiSeriesLegend) {
  const std::vector<PlotSeries> series{
      {"up", {0, 1, 2, 3}}, {"down", {3, 2, 1, 0}}};
  const auto text = render_plot(series);
  EXPECT_NE(text.find("legend"), std::string::npos);
  EXPECT_NE(text.find("up"), std::string::npos);
  EXPECT_NE(text.find("down"), std::string::npos);
  EXPECT_NE(text.find('o'), std::string::npos);
}

TEST(AsciiPlot, ConstantSeriesDoesNotDivideByZero) {
  const auto text = render_plot(std::vector<double>{2.0, 2.0, 2.0});
  EXPECT_FALSE(text.empty());
}

TEST(AsciiPlot, YZeroForcesZeroIntoRange) {
  PlotOptions opts;
  opts.y_zero = true;
  opts.height = 8;
  const auto text = render_plot(std::vector<double>{5.0, 6.0, 7.0}, opts);
  // Zero must appear on some axis tick.
  EXPECT_NE(text.find("0 |"), std::string::npos);
}

TEST(AsciiPlot, IgnoresNonFiniteValues) {
  std::vector<double> vals{1.0, std::numeric_limits<double>::quiet_NaN(), 3.0};
  const auto text = render_plot(vals);
  EXPECT_FALSE(text.empty());
}

TEST(Downsample, ShortSeriesUnchanged) {
  const std::vector<double> v{1, 2, 3};
  EXPECT_EQ(downsample(v, 10), v);
}

TEST(Downsample, ReducesToRequestedLength) {
  std::vector<double> v(1000);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  const auto d = downsample(v, 50);
  ASSERT_EQ(d.size(), 50u);
  EXPECT_DOUBLE_EQ(d.front(), 0.0);
  // Strided sampling keeps ordering.
  for (std::size_t i = 1; i < d.size(); ++i) EXPECT_GT(d[i], d[i - 1]);
}

TEST(Downsample, XAxisLabelsUseStep) {
  PlotOptions opts;
  opts.x_step = 10;
  opts.x_offset = 100;
  const auto text = render_plot(std::vector<double>{1, 2, 3, 4}, opts);
  EXPECT_NE(text.find("100"), std::string::npos);
  EXPECT_NE(text.find("130"), std::string::npos);
}

}  // namespace
}  // namespace ncb
