#include "util/bitset64.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ncb {
namespace {

TEST(Bitset64, StartsEmpty) {
  Bitset64 b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
}

TEST(Bitset64, SetTestReset) {
  Bitset64 b(100);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(Bitset64, ClearRemovesAll) {
  Bitset64 b(70);
  for (std::size_t i = 0; i < 70; i += 3) b.set(i);
  b.clear();
  EXPECT_TRUE(b.none());
}

TEST(Bitset64, OrUnion) {
  Bitset64 a(128), b(128);
  a.set(1);
  a.set(100);
  b.set(2);
  b.set(100);
  a |= b;
  EXPECT_TRUE(a.test(1));
  EXPECT_TRUE(a.test(2));
  EXPECT_TRUE(a.test(100));
  EXPECT_EQ(a.count(), 3u);
}

TEST(Bitset64, AndIntersection) {
  Bitset64 a(80), b(80);
  a.set(5);
  a.set(70);
  b.set(70);
  b.set(9);
  a &= b;
  EXPECT_EQ(a.count(), 1u);
  EXPECT_TRUE(a.test(70));
}

TEST(Bitset64, AndNot) {
  Bitset64 a(80), b(80);
  a.set(5);
  a.set(70);
  b.set(70);
  a.and_not(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_TRUE(a.test(5));
}

TEST(Bitset64, SubsetRelation) {
  Bitset64 small(100), big(100);
  small.set(10);
  small.set(80);
  big.set(10);
  big.set(80);
  big.set(90);
  EXPECT_TRUE(small.is_subset_of(big));
  EXPECT_FALSE(big.is_subset_of(small));
  EXPECT_TRUE(small.is_subset_of(small));
}

TEST(Bitset64, EmptyIsSubsetOfAnything) {
  Bitset64 empty(64), any(64);
  any.set(3);
  EXPECT_TRUE(empty.is_subset_of(any));
  EXPECT_TRUE(empty.is_subset_of(empty));
}

TEST(Bitset64, Intersects) {
  Bitset64 a(128), b(128), c(128);
  a.set(64);
  b.set(64);
  c.set(65);
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
}

TEST(Bitset64, Equality) {
  Bitset64 a(64), b(64), c(65);
  a.set(1);
  b.set(1);
  EXPECT_EQ(a, b);
  b.set(2);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Bitset64, ToIndicesAscending) {
  Bitset64 b(200);
  const std::vector<std::int32_t> expected{0, 63, 64, 127, 128, 199};
  for (const auto i : expected) b.set(static_cast<std::size_t>(i));
  EXPECT_EQ(b.to_indices(), expected);
}

TEST(Bitset64, ForEachVisitsAllSetBits) {
  Bitset64 b(150);
  std::vector<std::int32_t> expected;
  for (std::size_t i = 0; i < 150; i += 7) {
    b.set(i);
    expected.push_back(static_cast<std::int32_t>(i));
  }
  std::vector<std::int32_t> visited;
  b.for_each([&](std::int32_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, expected);
}

TEST(Bitset64, CountAcrossWordBoundaries) {
  Bitset64 b(256);
  for (std::size_t i = 0; i < 256; ++i) b.set(i);
  EXPECT_EQ(b.count(), 256u);
}

}  // namespace
}  // namespace ncb
