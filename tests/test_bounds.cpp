#include "theory/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ncb {
namespace {

TEST(Theorem1Bound, HandComputed) {
  // n = 10000, K = 100, C = 10:
  // 15.94·sqrt(1e6) + 0.74·10·sqrt(100) = 15940 + 74.
  EXPECT_NEAR(theorem1_bound(10000, 100, 10), 15940.0 + 74.0, 1e-9);
}

TEST(Theorem1Bound, GrowsSublinearlyInN) {
  const double r1 = theorem1_bound(10000, 100, 5);
  const double r4 = theorem1_bound(40000, 100, 5);
  // sqrt scaling: quadrupling n doubles the bound.
  EXPECT_NEAR(r4 / r1, 2.0, 1e-9);
}

TEST(Theorem1Bound, MonotoneInCliqueCover) {
  EXPECT_LT(theorem1_bound(10000, 100, 1), theorem1_bound(10000, 100, 50));
}

TEST(Theorem2Bound, SameFormOverComArms) {
  EXPECT_DOUBLE_EQ(theorem2_bound(5000, 1140, 30),
                   theorem1_bound(5000, 1140, 30));
}

TEST(MossBounds, PaperComparisonHolds) {
  // §IV: the Theorem 2 bound beats the traditional 49·sqrt(n|F|) once the
  // clique term is small relative to |F|.
  const std::int64_t n = 10000;
  const std::size_t f = 1140;
  EXPECT_LT(theorem2_bound(n, f, f / 10), moss_comarm_bound(n, f));
  EXPECT_NEAR(moss_bound(10000, 100), 49.0 * 1000.0, 1e-9);
}

TEST(Theorem3Bound, HandComputed) {
  // 49·K·sqrt(nK), K = 100, n = 10000 → 49·100·1000.
  EXPECT_NEAR(theorem3_bound(10000, 100), 49.0 * 100.0 * 1000.0, 1e-6);
}

TEST(Theorem4Bound, HandComputedSmallCase) {
  const std::int64_t n = 64;
  const std::size_t k = 4, N = 3;
  const double e = std::exp(1.0);
  const double expected = 3.0 * 4.0 +
                          (std::sqrt(e * 4.0) + 8.0 * 4.0 * 27.0) * 16.0 +
                          (1.0 + 4.0 * 2.0 * 9.0 / e) * 9.0 * 4.0 *
                              std::pow(64.0, 5.0 / 6.0);
  EXPECT_NEAR(theorem4_bound(n, k, N), expected, 1e-6);
}

TEST(Theorem4Bound, MonotoneInN) {
  EXPECT_LT(theorem4_bound(1000, 10, 4), theorem4_bound(100000, 10, 4));
}

TEST(Theorem4Bound, MonotoneInNeighborhoodSize) {
  EXPECT_LT(theorem4_bound(10000, 20, 3), theorem4_bound(10000, 20, 10));
}

TEST(Ucb1Bound, SumOverGaps) {
  const double gaps[] = {0.5, 0.25};
  const double ln_n = std::log(1000.0);
  const double expected = (8.0 * ln_n / 0.5 + (1 + M_PI * M_PI / 3) * 0.5) +
                          (8.0 * ln_n / 0.25 + (1 + M_PI * M_PI / 3) * 0.25);
  EXPECT_NEAR(ucb1_bound(1000, gaps, 2), expected, 1e-9);
}

TEST(Ucb1Bound, IgnoresZeroGaps) {
  const double gaps[] = {0.0, 0.5};
  const double only_second[] = {0.5};
  EXPECT_DOUBLE_EQ(ucb1_bound(100, gaps, 2), ucb1_bound(100, only_second, 1));
}

TEST(Ucb1Bound, BlowsUpAsGapShrinks) {
  // The distribution-dependent weakness DFL-SSO removes: Δ → 0 explodes.
  const double small[] = {1e-6};
  const double large[] = {0.5};
  EXPECT_GT(ucb1_bound(10000, small, 1), 100.0 * ucb1_bound(10000, large, 1));
}

}  // namespace
}  // namespace ncb
