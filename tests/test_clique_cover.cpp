#include "graph/clique_cover.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ncb {
namespace {

TEST(GreedyCliqueCover, CompleteGraphIsOneClique) {
  const Graph g = complete_graph(8);
  const auto cover = greedy_clique_cover(g);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].size(), 8u);
  EXPECT_TRUE(is_valid_clique_cover(g, cover));
}

TEST(GreedyCliqueCover, EmptyGraphNeedsAllSingletons) {
  const Graph g = empty_graph(6);
  const auto cover = greedy_clique_cover(g);
  EXPECT_EQ(cover.size(), 6u);
  EXPECT_TRUE(is_valid_clique_cover(g, cover));
}

TEST(GreedyCliqueCover, DisjointCliquesRecovered) {
  const Graph g = disjoint_cliques(4, 5);
  const auto cover = greedy_clique_cover(g);
  EXPECT_EQ(cover.size(), 4u);
  EXPECT_TRUE(is_valid_clique_cover(g, cover));
}

TEST(GreedyCliqueCover, ZeroVertexGraph) {
  const Graph g(0);
  EXPECT_TRUE(greedy_clique_cover(g).empty());
}

TEST(GreedyCliqueCover, PathNeedsAboutHalf) {
  const Graph g = path_graph(8);
  const auto cover = greedy_clique_cover(g);
  EXPECT_TRUE(is_valid_clique_cover(g, cover));
  // Path of 8: optimal clique cover is 4 edges; greedy gets ≤ 8.
  EXPECT_GE(cover.size(), 4u);
  EXPECT_LE(cover.size(), 8u);
}

TEST(ExactCliqueCover, PathOptimal) {
  const Graph g = path_graph(8);
  const auto cover = exact_clique_cover(g);
  EXPECT_TRUE(is_valid_clique_cover(g, cover));
  EXPECT_EQ(cover.size(), 4u);
}

TEST(ExactCliqueCover, CycleOddVsEven) {
  // Even cycle C6 covers with 3 edges; odd cycle C5 needs 3 (two edges + one
  // singleton).
  const auto even = exact_clique_cover(cycle_graph(6));
  EXPECT_EQ(even.size(), 3u);
  const auto odd = exact_clique_cover(cycle_graph(5));
  EXPECT_EQ(odd.size(), 3u);
}

TEST(ExactCliqueCover, NeverLargerThanGreedy) {
  Xoshiro256 rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = erdos_renyi(12, 0.5, rng);
    const auto exact = exact_clique_cover(g);
    const auto greedy = greedy_clique_cover(g);
    EXPECT_TRUE(is_valid_clique_cover(g, exact));
    EXPECT_LE(exact.size(), greedy.size());
  }
}

TEST(ExactCliqueCover, TooLargeThrows) {
  EXPECT_THROW(exact_clique_cover(empty_graph(30)), std::invalid_argument);
}

TEST(RandomizedCliqueCover, NeverWorseThanPlainGreedy) {
  Xoshiro256 rng(5);
  const Graph g = erdos_renyi(40, 0.5, rng);
  Xoshiro256 search_rng(9);
  const auto randomized = randomized_clique_cover(g, 20, search_rng);
  const auto greedy = greedy_clique_cover(g);
  EXPECT_TRUE(is_valid_clique_cover(g, randomized));
  EXPECT_LE(randomized.size(), greedy.size());
}

TEST(IsValidCliqueCover, RejectsBadCovers) {
  const Graph g = path_graph(4);
  // Not a clique: {0, 2} has no edge.
  EXPECT_FALSE(is_valid_clique_cover(g, {{0, 2}, {1}, {3}}));
  // Missing vertex 3.
  EXPECT_FALSE(is_valid_clique_cover(g, {{0, 1}, {2}}));
  // Duplicate vertex.
  EXPECT_FALSE(is_valid_clique_cover(g, {{0, 1}, {1, 2}, {3}}));
  // Empty clique.
  EXPECT_FALSE(is_valid_clique_cover(g, {{0, 1}, {2, 3}, {}}));
  // A correct one.
  EXPECT_TRUE(is_valid_clique_cover(g, {{0, 1}, {2, 3}}));
}

// Property sweep: greedy cover is always valid across random graphs, and
// denser graphs need (weakly) fewer cliques on average.
class CliqueCoverProperty
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(CliqueCoverProperty, GreedyAlwaysValid) {
  const auto [p, seed] = GetParam();
  Xoshiro256 rng(seed);
  const Graph g = erdos_renyi(50, p, rng);
  const auto cover = greedy_clique_cover(g);
  EXPECT_TRUE(is_valid_clique_cover(g, cover));
  EXPECT_GE(cover.size(), 1u);
  EXPECT_LE(cover.size(), 50u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CliqueCoverProperty,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
                       ::testing::Values(11u, 22u, 33u)));

TEST(CliqueCoverDensity, DenserGraphsSmallerCovers) {
  Xoshiro256 rng(64);
  double sparse_total = 0, dense_total = 0;
  for (int i = 0; i < 5; ++i) {
    sparse_total += static_cast<double>(
        greedy_clique_cover(erdos_renyi(60, 0.2, rng)).size());
    dense_total += static_cast<double>(
        greedy_clique_cover(erdos_renyi(60, 0.8, rng)).size());
  }
  EXPECT_LT(dense_total, sparse_total);
}

}  // namespace
}  // namespace ncb
