#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace ncb {
namespace {

TEST(CsvWriter, HeaderAndRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"t", "regret"});
  csv.row({1.0, 2.5});
  csv.row({2.0, 3.25});
  EXPECT_EQ(out.str(), "t,regret\n1,2.5\n2,3.25\n");
  EXPECT_EQ(csv.rows_written(), 3u);
}

TEST(CsvWriter, LabelledRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row("MOSS", {1.0, 2.0});
  EXPECT_EQ(out.str(), "MOSS,1,2\n");
}

TEST(CsvWriter, EscapesSeparator) {
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
}

TEST(CsvWriter, EscapesQuotes) {
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriter, EscapesNewlines) {
  EXPECT_EQ(CsvWriter::escape("a\nb"), "\"a\nb\"");
}

TEST(CsvWriter, CustomSeparator) {
  std::ostringstream out;
  CsvWriter csv(out, ';');
  csv.row(std::vector<std::string>{"a;b", "c"});
  EXPECT_EQ(out.str(), "\"a;b\";c\n");
}

TEST(CsvWriter, FormatsSpecials) {
  EXPECT_EQ(CsvWriter::format(std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(CsvWriter::format(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(CsvWriter::format(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST(CsvWriter, FormatRoundTripsIntegers) {
  EXPECT_EQ(CsvWriter::format(12345.0), "12345");
  EXPECT_EQ(CsvWriter::format(0.5), "0.5");
}

}  // namespace
}  // namespace ncb
