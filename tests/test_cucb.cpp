#include "core/cucb.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "strategy/oracle.hpp"
#include "util/rng.hpp"

namespace ncb {
namespace {

std::shared_ptr<const FeasibleSet> path_family(std::size_t n, std::size_t m) {
  return std::make_shared<const FeasibleSet>(
      make_subset_family(std::make_shared<const Graph>(path_graph(n)), m));
}

std::vector<Observation> family_obs(const FeasibleSet& f, StrategyId played,
                                    const std::vector<double>& values) {
  std::vector<Observation> out;
  for (const ArmId j : f.neighborhood(played)) {
    out.push_back({j, values[static_cast<std::size_t>(j)]});
  }
  return out;
}

TEST(Cucb, OnlyComponentArmsUpdate) {
  const auto family = path_family(4, 2);
  Cucb policy(family);
  const auto id = family->find({1});  // Y = {0,1,2} but only arm 1 counts
  ASSERT_TRUE(id.has_value());
  policy.observe(*id, 1, family_obs(*family, *id, {0.9, 0.5, 0.8, 0.7}));
  EXPECT_EQ(policy.play_count(0), 0);
  EXPECT_EQ(policy.play_count(1), 1);
  EXPECT_EQ(policy.play_count(2), 0);
}

TEST(Cucb, ArmIndexFormula) {
  const auto family = path_family(3, 1);
  Cucb policy(family);
  const auto id = family->find({0});
  ASSERT_TRUE(id.has_value());
  policy.observe(*id, 1, family_obs(*family, *id, {0.4, 0.0, 0.0}));
  const double expected = 0.4 + std::sqrt(1.5 * std::log(50.0) / 1.0);
  EXPECT_NEAR(policy.arm_index(0, 50), expected, 1e-12);
  EXPECT_DOUBLE_EQ(policy.arm_index(1, 50), 1e6);
}

TEST(Cucb, SelectsModularArgmax) {
  const auto family = path_family(4, 2);
  Cucb policy(family);
  Xoshiro256 rng(3);
  for (TimeSlot t = 1; t <= 30; ++t) {
    const StrategyId x = policy.select(t);
    std::vector<double> values(4);
    for (auto& v : values) v = rng.uniform();
    policy.observe(x, t, family_obs(*family, x, values));
  }
  const TimeSlot t = 31;
  std::vector<double> scores(4);
  for (ArmId i = 0; i < 4; ++i) scores[static_cast<std::size_t>(i)] = policy.arm_index(i, t);
  const StrategyId chosen = policy.select(t);
  double best = -1.0;
  for (StrategyId x = 0; x < static_cast<StrategyId>(family->size()); ++x) {
    best = std::max(best, modular_value(*family, x, scores));
  }
  EXPECT_NEAR(modular_value(*family, chosen, scores), best, 1e-9);
}

TEST(Cucb, ConvergesToBestModularStrategy) {
  const auto family = path_family(4, 2);
  const std::vector<double> means{0.1, 0.9, 0.2, 0.8};
  Cucb policy(family);
  Xoshiro256 rng(7);
  std::vector<std::int64_t> plays(family->size(), 0);
  for (TimeSlot t = 1; t <= 5000; ++t) {
    const StrategyId x = policy.select(t);
    ++plays[static_cast<std::size_t>(x)];
    std::vector<double> values(4);
    for (std::size_t i = 0; i < 4; ++i) {
      values[i] = rng.bernoulli(means[i]) ? 1.0 : 0.0;
    }
    policy.observe(x, t, family_obs(*family, x, values));
  }
  const auto best = family->find({1, 3});
  ASSERT_TRUE(best.has_value());
  EXPECT_GT(plays[static_cast<std::size_t>(*best)], 3000);
}

TEST(Cucb, ResetAndValidation) {
  const auto family = path_family(3, 1);
  Cucb policy(family);
  policy.observe(0, 1, family_obs(*family, 0, {0.5, 0.5, 0.5}));
  policy.reset();
  EXPECT_EQ(policy.play_count(0), 0);
  EXPECT_THROW(Cucb(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace ncb
