#include "core/dfl_cso.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "strategy/strategy_graph.hpp"
#include "util/rng.hpp"

namespace ncb {
namespace {

std::shared_ptr<const FeasibleSet> fig2_family() {
  return std::make_shared<const FeasibleSet>(make_independent_set_family(
      std::make_shared<const Graph>(path_graph(4))));
}

std::vector<Observation> family_obs(const FeasibleSet& f, StrategyId played,
                                    const std::vector<double>& values) {
  std::vector<Observation> out;
  for (const ArmId j : f.neighborhood(played)) {
    out.push_back({j, values[static_cast<std::size_t>(j)]});
  }
  return out;
}

TEST(DflCso, UpdateListsMatchSgClosedNeighborhoods) {
  const auto family = fig2_family();
  DflCso policy(family);
  const Graph sg = build_strategy_graph(*family);
  for (StrategyId x = 0; x < static_cast<StrategyId>(family->size()); ++x) {
    const auto& list = policy.update_list(x);
    const ArmSpan expected = sg.closed_neighborhood(x);
    ASSERT_EQ(list.size(), expected.size()) << "strategy " << x;
    for (std::size_t i = 0; i < list.size(); ++i) {
      EXPECT_EQ(list[i], static_cast<StrategyId>(expected[i]));
    }
  }
}

TEST(DflCso, ObservableScopeIsSuperset) {
  const auto family = fig2_family();
  DflCso faithful(family);
  DflCso observable(family,
                    DflCsoOptions{.scope = CsoUpdateScope::kAllObservable});
  for (StrategyId x = 0; x < static_cast<StrategyId>(family->size()); ++x) {
    const auto& small = faithful.update_list(x);
    const auto& big = observable.update_list(x);
    EXPECT_GE(big.size(), small.size());
    for (const StrategyId y : small) {
      EXPECT_NE(std::find(big.begin(), big.end(), y), big.end());
    }
  }
  EXPECT_EQ(observable.name(), "DFL-CSO(all-observable)");
}

TEST(DflCso, ObserveComputesStrategyRewards) {
  const auto family = fig2_family();
  DflCso policy(family);
  // Play s4 = {0,2} (Y = all arms): rewards 1,2,4,8 per arm.
  const auto id = family->find({0, 2});
  ASSERT_TRUE(id.has_value());
  policy.observe(*id, 1, family_obs(*family, *id, {1, 2, 4, 8}));
  // Every SG-closed-neighbor y of s4 gets R_y = sum of its component arms.
  for (const StrategyId y : policy.update_list(*id)) {
    double expected = 0.0;
    for (const ArmId a : family->strategy(y)) {
      expected += std::pow(2.0, static_cast<double>(a));
    }
    EXPECT_EQ(policy.observation_count(y), 1);
    EXPECT_DOUBLE_EQ(policy.empirical_mean(y), expected) << "strategy " << y;
  }
}

TEST(DflCso, UnupdatedStrategiesKeepInfiniteIndex) {
  const auto family = fig2_family();
  DflCso policy(family);
  const auto id = family->find({3});
  ASSERT_TRUE(id.has_value());
  policy.observe(*id, 1, family_obs(*family, *id, {0, 0, 0.5, 0.5}));
  // s0 = {0} is not observable from {3} (Y = {2,3}).
  const auto id0 = family->find({0});
  EXPECT_TRUE(std::isinf(policy.index(*id0, 2)));
}

TEST(DflCso, SelectPrefersUnobserved) {
  const auto family = fig2_family();
  DflCso policy(family);
  const auto first = policy.select(1);
  EXPECT_GE(first, 0);
  EXPECT_LT(first, static_cast<StrategyId>(family->size()));
}

TEST(DflCso, IndexUsesFamilySizeAsK) {
  const auto family = fig2_family();
  DflCso policy(family);
  const auto id = family->find({0});
  ASSERT_TRUE(id.has_value());
  policy.observe(*id, 1, family_obs(*family, *id, {1, 1, 0, 0}));
  // O = 1, mean = 1 (strategy {0} reward = arm0 = 1). ratio = t/(7·1).
  const TimeSlot t = 70;
  EXPECT_NEAR(policy.index(*id, t), 1.0 + std::sqrt(std::log(10.0)), 1e-12);
}

TEST(DflCso, ResetClearsStats) {
  const auto family = fig2_family();
  DflCso policy(family);
  policy.observe(0, 1, family_obs(*family, 0, {1, 1, 1, 1}));
  policy.reset();
  EXPECT_EQ(policy.observation_count(0), 0);
}

TEST(DflCso, ConvergesToBestStrategy) {
  // Means: arm1 = 0.9 best single... strategies are ISs of the path; the
  // best CSO strategy is {1,3}: λ = 0.9 + 0.8 = 1.7.
  const auto family = fig2_family();
  const std::vector<double> means{0.1, 0.9, 0.2, 0.8};
  DflCso policy(family);
  Xoshiro256 rng(3);
  std::vector<std::int64_t> plays(family->size(), 0);
  for (TimeSlot t = 1; t <= 5000; ++t) {
    const StrategyId x = policy.select(t);
    ++plays[static_cast<std::size_t>(x)];
    std::vector<double> values(4);
    for (std::size_t i = 0; i < 4; ++i) {
      values[i] = rng.bernoulli(means[i]) ? 1.0 : 0.0;
    }
    policy.observe(x, t, family_obs(*family, x, values));
  }
  const auto best = family->find({1, 3});
  ASSERT_TRUE(best.has_value());
  EXPECT_GT(plays[static_cast<std::size_t>(*best)], 3500);
}

TEST(DflCso, NullFamilyThrows) {
  EXPECT_THROW(DflCso(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace ncb
