#include "core/dfl_csr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace ncb {
namespace {

std::shared_ptr<const FeasibleSet> path_family(std::size_t n, std::size_t m) {
  return std::make_shared<const FeasibleSet>(
      make_subset_family(std::make_shared<const Graph>(path_graph(n)), m));
}

std::vector<Observation> family_obs(const FeasibleSet& f, StrategyId played,
                                    const std::vector<double>& values) {
  std::vector<Observation> out;
  for (const ArmId j : f.neighborhood(played)) {
    out.push_back({j, values[static_cast<std::size_t>(j)]});
  }
  return out;
}

TEST(DflCsr, UnobservedArmsGetSentinelScore) {
  const auto family = path_family(4, 2);
  DflCsr policy(family);
  EXPECT_DOUBLE_EQ(policy.arm_score(0, 1), 1e6);
}

TEST(DflCsr, ArmScoreFormulaHandComputed) {
  const auto family = path_family(4, 2);
  DflCsr policy(family);
  // Observe arm 1 once with value 0.5 (play {1}: Y = {0,1,2}).
  const auto id = family->find({1});
  ASSERT_TRUE(id.has_value());
  policy.observe(*id, 1, family_obs(*family, *id, {0.3, 0.5, 0.7, 0.0}));
  EXPECT_EQ(policy.observation_count(1), 1);
  EXPECT_DOUBLE_EQ(policy.empirical_mean(1), 0.5);
  // Score at t: X̄ + sqrt(max(ln(t^{2/3}/(K·O)),0)/O), K = 4, O = 1.
  const TimeSlot t = 1000;
  const double ratio = std::pow(1000.0, 2.0 / 3.0) / 4.0;
  EXPECT_NEAR(policy.arm_score(1, t), 0.5 + std::sqrt(std::log(ratio)), 1e-12);
}

TEST(DflCsr, LogClampedAtZero) {
  const auto family = path_family(4, 2);
  DflCsr policy(family);
  const auto id = family->find({1});
  ASSERT_TRUE(id.has_value());
  // Observe many times so t^{2/3}/(K·O) < 1 → width 0 → score = mean.
  for (TimeSlot t = 1; t <= 50; ++t) {
    policy.observe(*id, t, family_obs(*family, *id, {0.3, 0.5, 0.7, 0.0}));
  }
  EXPECT_DOUBLE_EQ(policy.arm_score(1, 2), 0.5);
}

TEST(DflCsr, ObserveUpdatesWholeNeighborhood) {
  const auto family = path_family(4, 2);
  DflCsr policy(family);
  const auto id = family->find({0, 3});  // Y = {0,1,2,3}
  ASSERT_TRUE(id.has_value());
  policy.observe(*id, 1, family_obs(*family, *id, {0.1, 0.2, 0.3, 0.4}));
  for (ArmId i = 0; i < 4; ++i) {
    EXPECT_EQ(policy.observation_count(i), 1);
  }
  EXPECT_DOUBLE_EQ(policy.empirical_mean(2), 0.3);
}

TEST(DflCsr, SelectConsistentWithExactOracleScores) {
  const auto family = path_family(5, 2);
  DflCsr policy(family);
  Xoshiro256 rng(9);
  // Warm up with random plays.
  for (TimeSlot t = 1; t <= 20; ++t) {
    const StrategyId x = policy.select(t);
    std::vector<double> values(5);
    for (auto& v : values) v = rng.uniform();
    policy.observe(x, t, family_obs(*family, x, values));
  }
  // Selection must maximize the coverage of the published arm scores.
  const TimeSlot t = 21;
  std::vector<double> scores(5);
  for (ArmId i = 0; i < 5; ++i) scores[static_cast<std::size_t>(i)] = policy.arm_score(i, t);
  const StrategyId chosen = policy.select(t);
  double best = -1.0;
  for (StrategyId x = 0; x < static_cast<StrategyId>(family->size()); ++x) {
    best = std::max(best, coverage_value(*family, x, scores));
  }
  EXPECT_NEAR(coverage_value(*family, chosen, scores), best, 1e-9);
}

TEST(DflCsr, GreedyOracleVariantRuns) {
  const auto family = path_family(6, 2);
  DflCsr policy(family, std::make_shared<const GreedyCoverageOracle>());
  EXPECT_EQ(policy.name(), "DFL-CSR(greedy)");
  Xoshiro256 rng(5);
  for (TimeSlot t = 1; t <= 50; ++t) {
    const StrategyId x = policy.select(t);
    ASSERT_GE(x, 0);
    ASSERT_LT(x, static_cast<StrategyId>(family->size()));
    std::vector<double> values(6);
    for (auto& v : values) v = rng.uniform();
    policy.observe(x, t, family_obs(*family, x, values));
  }
}

TEST(DflCsr, ConvergesToBestCoverageStrategy) {
  // Star graph, M = 1: strategy {0} (hub) covers every arm, σ = Σμ. It beats
  // any leaf strategy regardless of individual means.
  const auto family = std::make_shared<const FeasibleSet>(make_subset_family(
      std::make_shared<const Graph>(star_graph(5)), 1));
  DflCsr policy(family);
  const std::vector<double> means{0.1, 0.9, 0.8, 0.7, 0.6};
  Xoshiro256 rng(13);
  std::vector<std::int64_t> plays(family->size(), 0);
  for (TimeSlot t = 1; t <= 3000; ++t) {
    const StrategyId x = policy.select(t);
    ++plays[static_cast<std::size_t>(x)];
    std::vector<double> values(5);
    for (std::size_t i = 0; i < 5; ++i) {
      values[i] = rng.bernoulli(means[i]) ? 1.0 : 0.0;
    }
    policy.observe(x, t, family_obs(*family, x, values));
  }
  const auto hub = family->find({0});
  ASSERT_TRUE(hub.has_value());
  EXPECT_GT(plays[static_cast<std::size_t>(*hub)], 2000);
}

TEST(DflCsr, ResetClears) {
  const auto family = path_family(4, 2);
  DflCsr policy(family);
  policy.observe(0, 1, family_obs(*family, 0, {0.5, 0.5, 0.5, 0.5}));
  policy.reset();
  EXPECT_EQ(policy.observation_count(0), 0);
}

TEST(DflCsr, NullFamilyThrows) {
  EXPECT_THROW(DflCsr(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace ncb
