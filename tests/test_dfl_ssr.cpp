#include "core/dfl_ssr.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"

namespace ncb {
namespace {

std::vector<Observation> closed_obs(const Graph& g, ArmId played,
                                    const std::vector<double>& values) {
  std::vector<Observation> out;
  for (const ArmId j : g.closed_neighborhood(played)) {
    out.push_back({j, values[static_cast<std::size_t>(j)]});
  }
  return out;
}

TEST(DflSsr, ObCounterIsMinOverNeighborhood) {
  // Path 0-1-2: playing 0 observes {0,1}; playing 2 observes {1,2}.
  const Graph g = path_graph(3);
  DflSsr policy;
  policy.reset(g);
  policy.observe(0, 1, closed_obs(g, 0, {0.5, 0.5, 0.5}));
  // O = [1, 1, 0]. Ob_0 = min(O_0,O_1) = 1; Ob_1 = min over {0,1,2} = 0.
  EXPECT_EQ(policy.observation_count(0), 1);
  EXPECT_EQ(policy.observation_count(1), 1);
  EXPECT_EQ(policy.observation_count(2), 0);
  EXPECT_EQ(policy.side_observation_count(0), 1);
  EXPECT_EQ(policy.side_observation_count(1), 0);
  EXPECT_EQ(policy.side_observation_count(2), 0);

  policy.observe(2, 2, closed_obs(g, 2, {0.5, 0.5, 0.5}));
  // O = [1, 2, 1]. Ob_0 = 1, Ob_1 = 1, Ob_2 = 1.
  EXPECT_EQ(policy.side_observation_count(0), 1);
  EXPECT_EQ(policy.side_observation_count(1), 1);
  EXPECT_EQ(policy.side_observation_count(2), 1);
}

TEST(DflSsr, PairedEstimateMatchesHandComputation) {
  // Path 0-1: both arms always observed together, so pairing is direct.
  const Graph g = path_graph(2);
  DflSsr policy;
  policy.reset(g);
  policy.observe(0, 1, {{0, 0.2}, {1, 0.4}});
  policy.observe(0, 2, {{0, 0.6}, {1, 0.8}});
  // Ob_0 = 2; paired sums: (0.2+0.4) and (0.6+0.8); mean = 1.0.
  EXPECT_EQ(policy.side_observation_count(0), 2);
  EXPECT_NEAR(policy.side_reward_estimate(0), 1.0, 1e-12);
}

TEST(DflSsr, PairedEstimateUsesOnlyFirstObSamples) {
  // Path 0-1-2: arm 1 accumulates more observations than arm 2; the paired
  // estimator for arm 2 must use only the first Ob_2 samples of arm 1.
  const Graph g = path_graph(3);
  DflSsr policy;
  policy.reset(g);
  // Play 0 twice: arm0, arm1 observed with values below.
  policy.observe(0, 1, {{0, 0.0}, {1, 1.0}});
  policy.observe(0, 2, {{0, 0.0}, {1, 0.0}});
  // Play 2 once: arms 1, 2 observed (third observation of arm 1).
  policy.observe(2, 3, {{1, 0.0}, {2, 0.5}});
  // For arm 2: N_2 = {1, 2}; Ob_2 = min(3, 1) = 1. Paired sample m=1 pairs
  // arm 1's FIRST observation (1.0) with arm 2's first (0.5): estimate 1.5.
  EXPECT_EQ(policy.side_observation_count(2), 1);
  EXPECT_NEAR(policy.side_reward_estimate(2), 1.5, 1e-12);
}

TEST(DflSsr, MeanSumEstimateUsesAllSamples) {
  const Graph g = path_graph(3);
  DflSsr policy(DflSsrOptions{.estimator = SsrEstimator::kMeanSum});
  policy.reset(g);
  policy.observe(0, 1, {{0, 0.0}, {1, 1.0}});
  policy.observe(0, 2, {{0, 0.0}, {1, 0.0}});
  policy.observe(2, 3, {{1, 0.0}, {2, 0.5}});
  // Arm 2 estimate = X̄_1 + X̄_2 = (1/3) + 0.5.
  EXPECT_NEAR(policy.side_reward_estimate(2), 1.0 / 3.0 + 0.5, 1e-12);
  EXPECT_EQ(policy.name(), "DFL-SSR(mean-sum)");
}

TEST(DflSsr, IndexInfiniteUntilWholeNeighborhoodObserved) {
  const Graph g = path_graph(3);
  DflSsr policy;
  policy.reset(g);
  policy.observe(0, 1, closed_obs(g, 0, {0.5, 0.5, 0.5}));
  // Arm 1's neighborhood includes the still-unobserved arm 2.
  EXPECT_TRUE(std::isinf(policy.index(1, 2)));
  EXPECT_FALSE(std::isinf(policy.index(0, 2)));
}

TEST(DflSsr, SelectPrefersInfiniteIndex) {
  const Graph g = path_graph(3);
  DflSsr policy;
  policy.reset(g);
  policy.observe(0, 1, closed_obs(g, 0, {0.9, 0.9, 0.9}));
  // Arms 1 and 2 still have Ob = 0 → infinite index → must be selected.
  const ArmId next = policy.select(2);
  EXPECT_TRUE(next == 1 || next == 2);
}

TEST(DflSsr, ConvergesToBestSideRewardArm) {
  // Star graph: hub 0 has u_0 = sum of all means — play counts should
  // concentrate on the hub even though leaf 1 has the best direct mean.
  const Graph g = star_graph(4);
  const std::vector<double> means{0.2, 0.9, 0.6, 0.5};
  DflSsr policy;
  policy.reset(g);
  Xoshiro256 rng(5);
  std::vector<std::int64_t> plays(4, 0);
  for (TimeSlot t = 1; t <= 4000; ++t) {
    const ArmId a = policy.select(t);
    ++plays[static_cast<std::size_t>(a)];
    std::vector<double> values(4);
    for (std::size_t i = 0; i < 4; ++i) values[i] = rng.bernoulli(means[i]) ? 1.0 : 0.0;
    policy.observe(a, t, closed_obs(g, a, values));
  }
  // Hub u_0 = 2.2 vs leaves u_i ≤ 1.1: the hub must dominate.
  EXPECT_GT(plays[0], 3000);
}

TEST(DflSsr, ResetClearsHistories) {
  const Graph g = path_graph(2);
  DflSsr policy;
  policy.reset(g);
  policy.observe(0, 1, {{0, 0.5}, {1, 0.5}});
  policy.reset(g);
  EXPECT_EQ(policy.observation_count(0), 0);
  EXPECT_EQ(policy.side_observation_count(0), 0);
  EXPECT_DOUBLE_EQ(policy.side_reward_estimate(0), 0.0);
}

TEST(DflSsr, PairedAndMeanSumAgreeWhenSynchronized) {
  // Complete graph: every play observes every arm, so the paired prefix and
  // the global mean coincide.
  const Graph g = complete_graph(3);
  DflSsr paired;
  DflSsr meansum(DflSsrOptions{.estimator = SsrEstimator::kMeanSum});
  paired.reset(g);
  meansum.reset(g);
  Xoshiro256 rng(11);
  for (TimeSlot t = 1; t <= 50; ++t) {
    std::vector<Observation> obs;
    for (ArmId i = 0; i < 3; ++i) obs.push_back({i, rng.uniform()});
    paired.observe(0, t, obs);
    meansum.observe(0, t, obs);
  }
  for (ArmId i = 0; i < 3; ++i) {
    EXPECT_NEAR(paired.side_reward_estimate(i),
                meansum.side_reward_estimate(i), 1e-9);
  }
}

}  // namespace
}  // namespace ncb
