// Dispatch layer (src/dist/): wire-format round-trips, frame decoding
// against truncated/oversized/garbage input, versioned-handshake rejection,
// and the worker loop driven in-process over a socketpair — including the
// determinism contract that a job's record line is byte-identical whether
// rendered by a worker or by the in-process engine, on any attempt.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <random>
#include <stdexcept>
#include <string>
#include <thread>

#include "dist/protocol.hpp"
#include "dist/worker.hpp"
#include "exp/emitters.hpp"
#include "exp/sweep_runner.hpp"

namespace ncb::dist {
namespace {

exp::SweepJob make_test_job() {
  exp::SweepJob job;
  job.index = 3;
  job.key = "sso:ucb1@er,K=12,p=0.3,n=60";
  job.policy = "ucb1";
  job.scenario = Scenario::kSso;
  job.config.name = job.key;
  job.config.graph_family = GraphFamily::kErdosRenyi;
  job.config.num_arms = 12;
  job.config.edge_probability = 0.3;
  job.config.family_param = 4;
  job.config.horizon = 60;
  job.config.replications = 3;
  job.config.seed = 20170605;
  job.config.strategy_size = 3;
  job.config.exact_size_strategies = false;
  return job;
}

// ---------------------------------------------------------------- wire ---

TEST(Wire, ScalarAndStringRoundTrip) {
  WireWriter out;
  out.put_u8(0xab);
  out.put_u32(0xdeadbeefu);
  out.put_u64(0x0123456789abcdefULL);
  out.put_double(-1234.5678);
  out.put_string("hello \"quoted\", commas, \n newline");
  out.put_string("");
  const std::string payload = out.take();

  WireReader in(payload);
  EXPECT_EQ(in.get_u8(), 0xab);
  EXPECT_EQ(in.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(in.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(in.get_double(), -1234.5678);
  EXPECT_EQ(in.get_string(), "hello \"quoted\", commas, \n newline");
  EXPECT_EQ(in.get_string(), "");
  in.finish();
}

TEST(Wire, DoubleBitPatternIsExact) {
  // Shortest-round-trip formatting is not involved: the bit pattern rides.
  const double tricky = 0.1 + 0.2;
  WireWriter out;
  out.put_double(tricky);
  const std::string payload = out.take();
  WireReader in(payload);
  EXPECT_EQ(in.get_double(), tricky);
}

TEST(Wire, TruncatedPayloadThrows) {
  WireWriter out;
  out.put_u64(42);
  const std::string payload = out.take();
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::string partial = payload.substr(0, cut);
    WireReader in(partial);
    EXPECT_THROW((void)in.get_u64(), std::invalid_argument) << cut;
  }
}

TEST(Wire, StringLengthBeyondPayloadThrows) {
  WireWriter out;
  out.put_u32(1000);  // claims 1000 bytes, none follow
  const std::string payload = out.take();
  WireReader in(payload);
  EXPECT_THROW((void)in.get_string(), std::invalid_argument);
}

TEST(Wire, TrailingBytesRejectedByFinish) {
  WireWriter out;
  out.put_u32(7);
  out.put_u8(9);
  const std::string payload = out.take();
  WireReader in(payload);
  EXPECT_EQ(in.get_u32(), 7u);
  EXPECT_THROW(in.finish(), std::invalid_argument);
}

// ------------------------------------------------------------ messages ---

TEST(Messages, HelloRoundTripAndValidation) {
  HelloMsg hello;
  hello.schema = static_cast<std::uint32_t>(exp::kSweepSchemaVersion);
  const HelloMsg decoded = decode_hello(encode_hello(hello));
  EXPECT_EQ(decoded.magic, kProtocolMagic);
  EXPECT_EQ(decoded.protocol_version, kProtocolVersion);
  EXPECT_EQ(decoded.schema, hello.schema);
  EXPECT_FALSE(validate_hello(decoded, hello.schema).has_value());
}

TEST(Messages, ValidateHelloRejectsEveryMismatch) {
  HelloMsg hello;
  hello.schema = static_cast<std::uint32_t>(exp::kSweepSchemaVersion);

  HelloMsg bad_magic = hello;
  bad_magic.magic = 0x12345678;
  const auto magic_error = validate_hello(bad_magic, hello.schema);
  ASSERT_TRUE(magic_error.has_value());
  EXPECT_NE(magic_error->find("magic"), std::string::npos);

  HelloMsg bad_version = hello;
  bad_version.protocol_version = kProtocolVersion + 1;
  const auto version_error = validate_hello(bad_version, hello.schema);
  ASSERT_TRUE(version_error.has_value());
  EXPECT_NE(version_error->find("protocol version mismatch"),
            std::string::npos);

  const auto schema_error = validate_hello(hello, hello.schema + 1);
  ASSERT_TRUE(schema_error.has_value());
  EXPECT_NE(schema_error->find("schema mismatch"), std::string::npos);
}

TEST(Messages, HelloAckVersionMismatchThrows) {
  WireWriter out;
  out.put_u32(kProtocolVersion + 7);
  EXPECT_THROW(decode_hello_ack(out.take()), std::invalid_argument);
  EXPECT_NO_THROW(decode_hello_ack(encode_hello_ack()));
}

TEST(Messages, JobAssignRoundTripsEveryField) {
  JobAssignMsg msg;
  msg.attempt = 2;
  msg.checkpoints = 17;
  msg.shard_size = 5;
  msg.job = make_test_job();
  msg.job.scenario = Scenario::kCso;
  msg.job.config.exact_size_strategies = true;
  msg.job.config.seed = 0xfedcba9876543210ULL;  // > 2^53: must stay exact

  const JobAssignMsg decoded = decode_job_assign(encode_job_assign(msg));
  EXPECT_EQ(decoded.attempt, 2u);
  EXPECT_EQ(decoded.checkpoints, 17u);
  EXPECT_EQ(decoded.shard_size, 5u);
  EXPECT_EQ(decoded.job.index, msg.job.index);
  EXPECT_EQ(decoded.job.key, msg.job.key);
  EXPECT_EQ(decoded.job.policy, msg.job.policy);
  EXPECT_EQ(decoded.job.scenario, Scenario::kCso);
  EXPECT_EQ(decoded.job.config.graph_family, GraphFamily::kErdosRenyi);
  EXPECT_EQ(decoded.job.config.num_arms, 12u);
  EXPECT_EQ(decoded.job.config.edge_probability, 0.3);
  EXPECT_EQ(decoded.job.config.family_param, 4u);
  EXPECT_EQ(decoded.job.config.horizon, 60);
  EXPECT_EQ(decoded.job.config.replications, 3u);
  EXPECT_EQ(decoded.job.config.seed, 0xfedcba9876543210ULL);
  EXPECT_EQ(decoded.job.config.strategy_size, 3u);
  EXPECT_TRUE(decoded.job.config.exact_size_strategies);
  EXPECT_EQ(decoded.job.config.name, msg.job.key);
}

TEST(Messages, JobResultAndWorkerErrorRoundTrip) {
  JobResultMsg result;
  result.key = "some:key";
  result.record_line = "{\"key\":\"some:key\",...}";
  result.seconds = 1.25;
  result.shards = 7;
  result.shard_size = 2;
  const JobResultMsg decoded = decode_job_result(encode_job_result(result));
  EXPECT_EQ(decoded.key, result.key);
  EXPECT_EQ(decoded.record_line, result.record_line);
  EXPECT_EQ(decoded.seconds, 1.25);
  EXPECT_EQ(decoded.shards, 7u);
  EXPECT_EQ(decoded.shard_size, 2u);

  WorkerErrorMsg error;
  error.key = "k";
  error.message = "unknown policy 'nope'";
  const WorkerErrorMsg decoded_error =
      decode_worker_error(encode_worker_error(error));
  EXPECT_EQ(decoded_error.key, "k");
  EXPECT_EQ(decoded_error.message, "unknown policy 'nope'");
}

// ------------------------------------------------------------- framing ---

std::string frame_bytes(MsgType type, const std::string& payload) {
  std::string wire;
  const std::uint32_t length = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((length >> (8 * i)) & 0xff));
  }
  wire.push_back(static_cast<char>(type));
  wire.append(payload);
  return wire;
}

TEST(FrameDecoder, ReassemblesByteAtATime) {
  const std::string wire = frame_bytes(MsgType::kJobResult, "payload-bytes");
  FrameDecoder decoder;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.feed(&wire[i], 1);
    EXPECT_FALSE(decoder.next().has_value()) << "at byte " << i;
  }
  decoder.feed(&wire[wire.size() - 1], 1);
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kJobResult);
  EXPECT_EQ(frame->payload, "payload-bytes");
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FrameDecoder, DrainsMultipleFramesFromOneFeed) {
  const std::string wire = frame_bytes(MsgType::kHello, "a") +
                           frame_bytes(MsgType::kShutdown, "") +
                           frame_bytes(MsgType::kJobAssign, "bb");
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  const auto first = decoder.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, MsgType::kHello);
  const auto second = decoder.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->type, MsgType::kShutdown);
  EXPECT_TRUE(second->payload.empty());
  const auto third = decoder.next();
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->payload, "bb");
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(FrameDecoder, RejectsOversizedLengthPrefix) {
  std::string wire = frame_bytes(MsgType::kHello, "");
  const std::uint32_t huge = kMaxFramePayload + 1;
  for (int i = 0; i < 4; ++i) {
    wire[static_cast<std::size_t>(i)] =
        static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  EXPECT_THROW((void)decoder.next(), std::invalid_argument);
}

TEST(FrameDecoder, RejectsUnknownMessageType) {
  std::string wire = frame_bytes(MsgType::kHello, "x");
  wire[4] = static_cast<char>(0x7f);
  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  EXPECT_THROW((void)decoder.next(), std::invalid_argument);
}

TEST(FrameDecoder, GarbageFuzzNeverCrashes) {
  // Random bytes must only ever yield frames, "need more", or a clean
  // invalid_argument — never UB. Seeded, so failures reproduce.
  std::mt19937 rng(20170605);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder decoder;
    std::string junk(64, '\0');
    for (char& c : junk) c = static_cast<char>(byte(rng));
    try {
      decoder.feed(junk.data(), junk.size());
      for (int i = 0; i < 16; ++i) {
        if (!decoder.next().has_value()) break;
      }
    } catch (const std::invalid_argument&) {
      // Expected for most corrupt streams.
    }
  }
}

TEST(FrameIo, RoundTripsOverAPipeAndSignalsCleanEof) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  write_frame(fds[1], MsgType::kWorkerError, "oops");
  const auto frame = read_frame(fds[0]);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MsgType::kWorkerError);
  EXPECT_EQ(frame->payload, "oops");
  ::close(fds[1]);
  EXPECT_FALSE(read_frame(fds[0]).has_value());  // EOF at a frame boundary
  ::close(fds[0]);
}

TEST(FrameIo, EofMidFrameThrows) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string wire = frame_bytes(MsgType::kJobResult, "truncated!");
  const std::string partial = wire.substr(0, wire.size() - 3);
  ASSERT_EQ(::write(fds[1], partial.data(), partial.size()),
            static_cast<ssize_t>(partial.size()));
  ::close(fds[1]);
  EXPECT_THROW((void)read_frame(fds[0]), std::runtime_error);
  ::close(fds[0]);
}

// ----------------------------------------------- worker loop, in-thread ---

struct WorkerHarness {
  int coordinator_fd = -1;
  std::thread thread;
  int exit_code = -1;

  explicit WorkerHarness(std::size_t threads = 1) {
    int sv[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    coordinator_fd = sv[0];
    const int worker_fd = sv[1];
    thread = std::thread([this, worker_fd, threads] {
      WorkerOptions options;
      options.fd = worker_fd;
      options.threads = threads;
      exit_code = run_worker(options);
      ::close(worker_fd);
    });
  }

  ~WorkerHarness() {
    if (coordinator_fd >= 0) ::close(coordinator_fd);
    if (thread.joinable()) thread.join();
  }

  /// Completes the coordinator side of the handshake: Hello, then the
  /// WorkerInfo identity frame, then the ack that admits the worker.
  void accept() {
    const auto hello = read_frame(coordinator_fd);
    ASSERT_TRUE(hello.has_value());
    ASSERT_EQ(hello->type, MsgType::kHello);
    const HelloMsg msg = decode_hello(hello->payload);
    ASSERT_FALSE(validate_hello(
                     msg, static_cast<std::uint32_t>(exp::kSweepSchemaVersion))
                     .has_value());
    const auto info = read_frame(coordinator_fd);
    ASSERT_TRUE(info.has_value());
    ASSERT_EQ(info->type, MsgType::kWorkerInfo);
    const WorkerInfoMsg identity = decode_worker_info(info->payload);
    EXPECT_FALSE(identity.host.empty());
    EXPECT_GT(identity.pid, 0u);
    EXPECT_GT(identity.threads, 0u);
    write_frame(coordinator_fd, MsgType::kHelloAck, encode_hello_ack());
  }

  void finish() {
    write_frame(coordinator_fd, MsgType::kShutdown, "");
    thread.join();
    ::close(coordinator_fd);
    coordinator_fd = -1;
  }
};

TEST(WorkerLoop, RunsJobsAndMatchesInProcessBytesOnAnyAttempt) {
  const exp::SweepJob job = make_test_job();
  const std::size_t checkpoints = 8;

  // In-process reference rendering of the same job.
  exp::SweepRunOptions reference_options;
  const exp::JobOutcome reference =
      exp::run_sweep_job(job, checkpoints, reference_options);
  const std::string expected = exp::render_job_json(
      exp::JobRecord::from(reference.job, reference.aggregate));

  WorkerHarness harness;
  harness.accept();
  for (const std::uint32_t attempt : {1u, 2u, 3u}) {
    JobAssignMsg assign;
    assign.attempt = attempt;
    assign.checkpoints = checkpoints;
    assign.shard_size = attempt;  // shard size must not change the bytes
    assign.job = job;
    write_frame(harness.coordinator_fd, MsgType::kJobAssign,
                encode_job_assign(assign));
    const auto reply = read_frame(harness.coordinator_fd);
    ASSERT_TRUE(reply.has_value());
    ASSERT_EQ(reply->type, MsgType::kJobResult);
    const JobResultMsg result = decode_job_result(reply->payload);
    EXPECT_EQ(result.key, job.key);
    EXPECT_EQ(result.record_line, expected) << "attempt " << attempt;
  }
  harness.finish();
  EXPECT_EQ(harness.exit_code, 0);
}

TEST(WorkerLoop, ReportsJobErrorsInsteadOfCrashing) {
  WorkerHarness harness;
  harness.accept();
  JobAssignMsg assign;
  assign.checkpoints = 4;
  assign.job = make_test_job();
  assign.job.policy = "definitely-not-a-policy";
  write_frame(harness.coordinator_fd, MsgType::kJobAssign,
              encode_job_assign(assign));
  const auto reply = read_frame(harness.coordinator_fd);
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(reply->type, MsgType::kWorkerError);
  const WorkerErrorMsg error = decode_worker_error(reply->payload);
  EXPECT_EQ(error.key, assign.job.key);
  EXPECT_FALSE(error.message.empty());
  harness.thread.join();
  EXPECT_EQ(harness.exit_code, 1);
}

TEST(WorkerLoop, RejectsCoordinatorVersionMismatch) {
  WorkerHarness harness;
  const auto hello = read_frame(harness.coordinator_fd);
  ASSERT_TRUE(hello.has_value());
  ASSERT_EQ(hello->type, MsgType::kHello);
  WireWriter bad_ack;
  bad_ack.put_u32(kProtocolVersion + 1);
  write_frame(harness.coordinator_fd, MsgType::kHelloAck, bad_ack.take());
  harness.thread.join();
  EXPECT_EQ(harness.exit_code, 2);
}

TEST(WorkerLoop, ExitsCleanlyWhenCoordinatorVanishesBeforeHandshake) {
  WorkerHarness harness;
  ::close(harness.coordinator_fd);
  harness.coordinator_fd = -1;
  harness.thread.join();
  EXPECT_EQ(harness.exit_code, 0);
}

}  // namespace
}  // namespace ncb::dist
