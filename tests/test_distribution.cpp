#include "env/distribution.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace ncb {
namespace {

TEST(Bernoulli, SamplesAreBinary) {
  BernoulliDist d(0.4);
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = d.sample(rng);
    EXPECT_TRUE(x == 0.0 || x == 1.0);
  }
}

TEST(Bernoulli, EmpiricalMeanMatches) {
  BernoulliDist d(0.7);
  Xoshiro256 rng(2);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, 0.7, 0.01);
  EXPECT_DOUBLE_EQ(d.mean(), 0.7);
}

TEST(Bernoulli, RejectsOutOfRange) {
  EXPECT_THROW(BernoulliDist(-0.1), std::invalid_argument);
  EXPECT_THROW(BernoulliDist(1.1), std::invalid_argument);
  EXPECT_NO_THROW(BernoulliDist(0.0));
  EXPECT_NO_THROW(BernoulliDist(1.0));
}

TEST(Bernoulli, NameAndClone) {
  BernoulliDist d(0.25);
  EXPECT_EQ(d.name(), "Bernoulli(0.25)");
  const auto copy = d.clone();
  EXPECT_DOUBLE_EQ(copy->mean(), 0.25);
}

TEST(Beta, MeanFormula) {
  BetaDist d(2.0, 6.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.25);
}

TEST(Beta, SupportAndEmpiricalMean) {
  BetaDist d(3.0, 2.0);
  Xoshiro256 rng(3);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 0.6, 0.01);
}

TEST(Beta, RejectsBadParams) {
  EXPECT_THROW(BetaDist(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(BetaDist(1.0, -2.0), std::invalid_argument);
}

TEST(Uniform, SupportAndMean) {
  UniformDist d(0.2, 0.8);
  EXPECT_DOUBLE_EQ(d.mean(), 0.5);
  Xoshiro256 rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 0.2);
    EXPECT_LT(x, 0.8);
  }
}

TEST(Uniform, Validation) {
  EXPECT_THROW(UniformDist(-0.1, 0.5), std::invalid_argument);
  EXPECT_THROW(UniformDist(0.0, 1.5), std::invalid_argument);
  EXPECT_THROW(UniformDist(0.8, 0.2), std::invalid_argument);
}

TEST(ClippedGaussian, SamplesClipped) {
  ClippedGaussianDist d(0.5, 2.0);  // wide sigma → clipping frequent
  Xoshiro256 rng(5);
  bool saw_zero = false, saw_one = false;
  for (int i = 0; i < 5000; ++i) {
    const double x = d.sample(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    if (x == 0.0) saw_zero = true;
    if (x == 1.0) saw_one = true;
  }
  EXPECT_TRUE(saw_zero);
  EXPECT_TRUE(saw_one);
}

TEST(ClippedGaussian, MeanAccountsForClipping) {
  ClippedGaussianDist d(0.5, 0.3);
  Xoshiro256 rng(6);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.mean(), 0.005);
  // Symmetric around 0.5, so the clipped mean stays 0.5.
  EXPECT_NEAR(d.mean(), 0.5, 1e-9);
}

TEST(ClippedGaussian, AsymmetricClippedMean) {
  // Mean near the upper boundary: clipping pulls the mean below mu.
  ClippedGaussianDist d(0.9, 0.3);
  EXPECT_LT(d.mean(), 0.9);
  Xoshiro256 rng(7);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.mean(), 0.005);
}

TEST(ClippedGaussian, RejectsBadSigma) {
  EXPECT_THROW(ClippedGaussianDist(0.5, 0.0), std::invalid_argument);
}

TEST(Constant, AlwaysSameValue) {
  ConstantDist d(0.42);
  Xoshiro256 rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 0.42);
  EXPECT_DOUBLE_EQ(d.mean(), 0.42);
  EXPECT_THROW(ConstantDist(1.5), std::invalid_argument);
}

// Parameterized support/mean contract over all distribution types.
class DistributionContract
    : public ::testing::TestWithParam<int> {
 protected:
  DistributionPtr make() const {
    switch (GetParam()) {
      case 0: return std::make_unique<BernoulliDist>(0.3);
      case 1: return std::make_unique<BetaDist>(2.0, 3.0);
      case 2: return std::make_unique<UniformDist>(0.1, 0.9);
      case 3: return std::make_unique<ClippedGaussianDist>(0.4, 0.2);
      default: return std::make_unique<ConstantDist>(0.6);
    }
  }
};

TEST_P(DistributionContract, SupportInUnitInterval) {
  const auto d = make();
  Xoshiro256 rng(42);
  for (int i = 0; i < 2000; ++i) {
    const double x = d->sample(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST_P(DistributionContract, EmpiricalMeanMatchesDeclared) {
  const auto d = make();
  Xoshiro256 rng(43);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += d->sample(rng);
  EXPECT_NEAR(sum / n, d->mean(), 0.01);
}

TEST_P(DistributionContract, CloneIsIndependentAndEqual) {
  const auto d = make();
  const auto copy = d->clone();
  EXPECT_DOUBLE_EQ(copy->mean(), d->mean());
  EXPECT_EQ(copy->name(), d->name());
}

INSTANTIATE_TEST_SUITE_P(AllTypes, DistributionContract,
                         ::testing::Range(0, 5));

}  // namespace
}  // namespace ncb
