#include "env/io.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ncb {
namespace {

TEST(InstanceIo, RoundTripBernoulli) {
  const auto inst = bernoulli_instance(path_graph(3), {0.1, 0.5, 0.9});
  const auto parsed = parse_instance(to_text(inst));
  EXPECT_EQ(parsed.num_arms(), 3u);
  EXPECT_EQ(parsed.means(), inst.means());
  EXPECT_EQ(parsed.graph().edges(), inst.graph().edges());
  EXPECT_EQ(parsed.best_arm(), inst.best_arm());
}

TEST(InstanceIo, RoundTripMixedDistributions) {
  std::vector<DistributionPtr> arms;
  arms.push_back(std::make_unique<BernoulliDist>(0.25));
  arms.push_back(std::make_unique<BetaDist>(2.0, 5.0));
  arms.push_back(std::make_unique<UniformDist>(0.1, 0.9));
  arms.push_back(std::make_unique<ClippedGaussianDist>(0.4, 0.2));
  arms.push_back(std::make_unique<ConstantDist>(0.6));
  const BanditInstance inst(cycle_graph(5), std::move(arms));
  const auto parsed = parse_instance(to_text(inst));
  ASSERT_EQ(parsed.num_arms(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(parsed.means()[i], inst.means()[i], 1e-9) << "arm " << i;
    EXPECT_EQ(parsed.arm(static_cast<ArmId>(i)).name(),
              inst.arm(static_cast<ArmId>(i)).name());
  }
}

TEST(InstanceIo, RoundTripRandomInstances) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 4; ++trial) {
    const auto inst = random_bernoulli_instance(erdos_renyi(15, 0.3, rng), rng);
    const auto parsed = parse_instance(to_text(inst));
    EXPECT_EQ(parsed.graph().edges(), inst.graph().edges());
    for (std::size_t i = 0; i < inst.num_arms(); ++i) {
      EXPECT_NEAR(parsed.means()[i], inst.means()[i], 1e-9);
    }
  }
}

TEST(InstanceIo, CommentsIgnored) {
  const auto inst = parse_instance(
      "# archived experiment\nncb-instance v1\ngraph 2 1\n0 1\narms 2\n"
      "bernoulli 0.5  # arm 0\nconstant 0.25\n");
  EXPECT_EQ(inst.num_arms(), 2u);
  EXPECT_DOUBLE_EQ(inst.means()[1], 0.25);
}

TEST(InstanceIo, MalformedInputsThrow) {
  EXPECT_THROW((void)parse_instance(""), std::invalid_argument);
  EXPECT_THROW((void)parse_instance("wrong header\n"), std::invalid_argument);
  EXPECT_THROW((void)parse_instance("ncb-instance v1\ngraph 2 1\n0 1\n"),
               std::invalid_argument);  // missing arms
  EXPECT_THROW(
      (void)parse_instance(
          "ncb-instance v1\ngraph 2 0\narms 3\nbernoulli 0.5\n"),
      std::invalid_argument);  // arm/vertex mismatch
  EXPECT_THROW(
      (void)parse_instance(
          "ncb-instance v1\ngraph 1 0\narms 1\nmystery 0.5\n"),
      std::invalid_argument);  // unknown kind
  EXPECT_THROW(
      (void)parse_instance("ncb-instance v1\ngraph 1 0\narms 1\nbernoulli\n"),
      std::invalid_argument);  // missing parameter
}

TEST(InstanceIo, DistributionValidationStillApplies) {
  EXPECT_THROW(
      (void)parse_instance(
          "ncb-instance v1\ngraph 1 0\narms 1\nbernoulli 1.5\n"),
      std::invalid_argument);
}

}  // namespace
}  // namespace ncb
