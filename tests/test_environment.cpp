#include "env/environment.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ncb {
namespace {

BanditInstance make_path_instance() {
  return bernoulli_instance(path_graph(4), {0.1, 0.8, 0.3, 0.6});
}

TEST(Environment, AdvanceDrawsEveryArm) {
  Environment env(make_path_instance(), 1);
  const auto& rewards = env.advance();
  EXPECT_EQ(rewards.size(), 4u);
  EXPECT_EQ(env.slots_drawn(), 1);
  for (const double r : rewards) EXPECT_TRUE(r == 0.0 || r == 1.0);
}

TEST(Environment, DeterministicGivenSeed) {
  Environment a(make_path_instance(), 99), b(make_path_instance(), 99);
  for (int t = 0; t < 200; ++t) EXPECT_EQ(a.advance(), b.advance());
}

TEST(Environment, DifferentSeedsDiffer) {
  Environment a(make_path_instance(), 1), b(make_path_instance(), 2);
  int diffs = 0;
  for (int t = 0; t < 100; ++t) {
    if (a.advance() != b.advance()) ++diffs;
  }
  EXPECT_GT(diffs, 0);
}

TEST(Environment, EmpiricalMeansConverge) {
  Environment env(make_path_instance(), 5);
  std::vector<double> sums(4, 0.0);
  const int n = 100000;
  for (int t = 0; t < n; ++t) {
    const auto& r = env.advance();
    for (std::size_t i = 0; i < 4; ++i) sums[i] += r[i];
  }
  const auto& means = env.instance().means();
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(sums[i] / n, means[i], 0.01) << "arm " << i;
  }
}

TEST(Environment, StrategyRewardIsComponentSum) {
  Environment env(make_path_instance(), 3);
  const auto& r = env.advance();
  EXPECT_DOUBLE_EQ(env.strategy_reward({0, 2}), r[0] + r[2]);
  EXPECT_DOUBLE_EQ(env.strategy_reward({1}), r[1]);
}

TEST(Environment, SideRewardIsClosedNeighborhoodSum) {
  Environment env(make_path_instance(), 4);
  const auto& r = env.advance();
  EXPECT_DOUBLE_EQ(env.side_reward(0), r[0] + r[1]);
  EXPECT_DOUBLE_EQ(env.side_reward(1), r[0] + r[1] + r[2]);
  EXPECT_DOUBLE_EQ(env.side_reward(3), r[2] + r[3]);
}

TEST(Environment, StrategySideRewardIsCoverageSum) {
  Environment env(make_path_instance(), 6);
  const auto& r = env.advance();
  // Y({0,2}) = {0,1,2,3}.
  EXPECT_DOUBLE_EQ(env.strategy_side_reward({0, 2}), r[0] + r[1] + r[2] + r[3]);
  // Y({3}) = {2,3}.
  EXPECT_DOUBLE_EQ(env.strategy_side_reward({3}), r[2] + r[3]);
}

TEST(Environment, RewardsAccessorMatchesLastAdvance) {
  Environment env(make_path_instance(), 7);
  const auto snapshot = env.advance();
  EXPECT_EQ(env.rewards(), snapshot);
}

TEST(Environment, CopiesInstance) {
  auto inst = make_path_instance();
  Environment env(inst, 8);
  EXPECT_EQ(env.num_arms(), 4u);
  EXPECT_EQ(env.instance().means(), inst.means());
}

}  // namespace
}  // namespace ncb
