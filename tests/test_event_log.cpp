// serve/event_log — write/read round trip, flush-by-size and flush-by-age,
// close semantics, and crash tolerance: a log truncated at EVERY byte
// offset must yield exactly its complete-record prefix.
#include "serve/event_log.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dist/protocol.hpp"

namespace fs = std::filesystem;

namespace ncb::serve {
namespace {

struct TempDir {
  fs::path path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "ncb_evlog_XXXXXX").string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ignored;
    fs::remove_all(path, ignored);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_bytes(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

/// Waits (bounded) for a background-flusher predicate to become true.
template <typename Pred>
bool eventually(Pred pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(EventLog, EmptyLogRoundTrips) {
  TempDir dir;
  const std::string path = dir.file("empty.ncbl");
  {
    EventLog log({path});
    log.close();
  }
  const EventLogScan scan = read_event_log(path);
  EXPECT_EQ(scan.version, kEventLogVersion);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.truncated_tail);
  EXPECT_EQ(scan.valid_bytes, 8u);
  EXPECT_EQ(fs::file_size(path), 8u);
}

TEST(EventLog, RoundTripPreservesOrderAndFields) {
  TempDir dir;
  const std::string path = dir.file("log.ncbl");
  {
    EventLog log({path});
    log.append_decision(1, "alice", 7, 0.95);
    log.append_decision(2, "bob", 0, 0.05);
    log.append_feedback(1, 0.5);
    log.append_decision(3, "", 42, 1.0);  // empty key is legal
    log.append_feedback(999, 1.0);        // never decided: counts, not joined
    EXPECT_EQ(log.records_appended(), 5u);
    log.close();
    EXPECT_FALSE(log.write_failed());
    EXPECT_EQ(log.bytes_written(), fs::file_size(path));
  }

  const EventLogScan scan = read_event_log(path);
  EXPECT_EQ(scan.version, kEventLogVersion);
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_EQ(scan.decisions, 3u);
  EXPECT_EQ(scan.feedbacks, 2u);
  EXPECT_EQ(scan.joined, 1u);
  EXPECT_FALSE(scan.truncated_tail);
  EXPECT_EQ(scan.valid_bytes, fs::file_size(path));

  EXPECT_EQ(scan.records[0].type, EventType::kDecision);
  EXPECT_EQ(scan.records[0].decision_id, 1u);
  EXPECT_EQ(scan.records[0].key, "alice");
  EXPECT_EQ(scan.records[0].action, 7);
  EXPECT_DOUBLE_EQ(scan.records[0].propensity, 0.95);

  EXPECT_EQ(scan.records[2].type, EventType::kFeedback);
  EXPECT_EQ(scan.records[2].decision_id, 1u);
  EXPECT_DOUBLE_EQ(scan.records[2].reward, 0.5);

  EXPECT_EQ(scan.records[3].key, "");
  EXPECT_EQ(scan.records[4].decision_id, 999u);
}

TEST(EventLog, FlushBySizeFiresBeforeClose) {
  TempDir dir;
  const std::string path = dir.file("size.ncbl");
  EventLog::Options options{path};
  options.flush_bytes = 64;        // a couple of records
  options.flush_ms = 60 * 1000;    // the age path must not be the trigger
  EventLog log(options);
  for (int i = 0; i < 50; ++i) {
    log.append_decision(static_cast<std::uint64_t>(i), "key", 1, 0.5);
  }
  EXPECT_TRUE(eventually([&] { return log.bytes_written() > 8; }))
      << "size-triggered flush never fired";
  EXPECT_GE(log.flush_batches(), 1u);
  log.close();
  EXPECT_EQ(read_event_log(path).records.size(), 50u);
}

TEST(EventLog, FlushByAgeFiresWithoutSizePressure) {
  TempDir dir;
  const std::string path = dir.file("age.ncbl");
  EventLog::Options options{path};
  options.flush_bytes = 1 << 30;  // size never triggers
  options.flush_ms = 10;
  EventLog log(options);
  log.append_decision(1, "lonely", 0, 1.0);
  EXPECT_TRUE(eventually([&] { return log.bytes_written() > 8; }))
      << "age-triggered flush never fired";
  // The record is readable while the log is still open.
  EXPECT_EQ(read_event_log(path).records.size(), 1u);
  log.close();
}

TEST(EventLog, ExplicitFlushIsOnDiskOnReturn) {
  TempDir dir;
  const std::string path = dir.file("flush.ncbl");
  EventLog::Options options{path};
  options.flush_bytes = 1 << 30;
  options.flush_ms = 60 * 1000;
  EventLog log(options);
  log.append_decision(1, "a", 0, 1.0);
  log.append_feedback(1, 0.0);
  log.flush();
  EXPECT_EQ(read_event_log(path).records.size(), 2u);
  log.close();
}

TEST(EventLog, CloseIsIdempotentAndAppendAfterCloseThrows) {
  TempDir dir;
  EventLog log({dir.file("closed.ncbl")});
  log.append_decision(1, "k", 0, 1.0);
  log.close();
  log.close();  // no-op
  EXPECT_THROW(log.append_decision(2, "k", 0, 1.0), std::logic_error);
  EXPECT_THROW(log.append_feedback(1, 0.0), std::logic_error);
  EXPECT_THROW(log.flush(), std::logic_error);
}

// The crash-tolerance contract: for ANY truncation point (SIGKILL or power
// loss can stop the file at any byte), the reader recovers exactly the
// complete-record prefix, flags the torn tail, and never throws.
TEST(EventLog, TruncationAtEveryByteOffsetYieldsCompletePrefix) {
  TempDir dir;
  const std::string path = dir.file("full.ncbl");
  {
    EventLog log({path});
    log.append_decision(1, "user-a", 3, 0.9);
    log.append_feedback(1, 1.0);
    log.append_decision(2, "user-with-a-longer-key", 11, 0.1);
    log.append_decision(3, "x", 0, 0.5);
    log.append_feedback(3, 0.0);
    log.close();
  }
  const std::string data = read_bytes(path);
  const EventLogScan full = read_event_log(path);
  ASSERT_EQ(full.records.size(), 5u);
  ASSERT_EQ(full.valid_bytes, data.size());

  // Record boundaries: the header end plus each record's end offset.
  std::vector<std::size_t> boundaries{8};
  {
    std::size_t at = 8;
    while (at < data.size()) {
      std::uint32_t length = 0;
      for (int i = 0; i < 4; ++i) {
        length |= static_cast<std::uint32_t>(
                      static_cast<unsigned char>(data[at + i]))
                  << (8 * i);
      }
      at += 5 + length;
      boundaries.push_back(at);
    }
    ASSERT_EQ(at, data.size());
  }

  const std::string cut_path = dir.file("cut.ncbl");
  for (std::size_t cut = 0; cut <= data.size(); ++cut) {
    write_bytes(cut_path, data.substr(0, cut));
    EventLogScan scan;
    ASSERT_NO_THROW(scan = read_event_log(cut_path)) << "cut=" << cut;

    std::size_t expected_records = 0;
    std::size_t expected_valid = 0;
    bool on_boundary = false;
    for (std::size_t b : boundaries) {
      if (b <= cut) {
        expected_valid = b;
        if (b > 8) ++expected_records;
        if (b == cut) on_boundary = true;
      }
    }
    EXPECT_EQ(scan.records.size(), expected_records) << "cut=" << cut;
    EXPECT_EQ(scan.valid_bytes, expected_valid) << "cut=" << cut;
    EXPECT_EQ(scan.truncated_tail, !on_boundary) << "cut=" << cut;
    if (expected_records > 0) {
      // The surviving prefix is bit-faithful, not just the right length.
      const EventRecord& last = scan.records.back();
      const EventRecord& ref = full.records[expected_records - 1];
      EXPECT_EQ(last.type, ref.type) << "cut=" << cut;
      EXPECT_EQ(last.decision_id, ref.decision_id) << "cut=" << cut;
      EXPECT_EQ(last.key, ref.key) << "cut=" << cut;
      EXPECT_EQ(last.action, ref.action) << "cut=" << cut;
    }
  }
}

TEST(EventLogReader, StructuralCorruptionThrows) {
  TempDir dir;
  const std::string path = dir.file("ok.ncbl");
  {
    EventLog log({path});
    log.append_decision(1, "k", 0, 1.0);
    log.close();
  }
  const std::string good = read_bytes(path);
  const std::string bad_path = dir.file("bad.ncbl");

  {  // Bad magic: not an event log at all.
    std::string bad = good;
    bad[0] = 'X';
    write_bytes(bad_path, bad);
    EXPECT_THROW((void)read_event_log(bad_path), std::invalid_argument);
  }
  {  // Unsupported version.
    std::string bad = good;
    bad[4] = 99;
    write_bytes(bad_path, bad);
    EXPECT_THROW((void)read_event_log(bad_path), std::invalid_argument);
  }
  {  // Unknown record type.
    std::string bad = good;
    bad[8 + 4] = 77;
    write_bytes(bad_path, bad);
    EXPECT_THROW((void)read_event_log(bad_path), std::invalid_argument);
  }
  {  // Oversized record length: corruption, not one huge record.
    std::string bad = good;
    bad[8] = '\xff';
    bad[9] = '\xff';
    bad[10] = '\xff';
    bad[11] = '\x7f';
    write_bytes(bad_path, bad);
    EXPECT_THROW((void)read_event_log(bad_path), std::invalid_argument);
  }
  {  // A complete record whose payload does not decode (short payload with
     // a consistent length header) is corruption, not truncation.
    dist::WireWriter header;
    header.put_u32(kEventLogMagic);
    header.put_u32(kEventLogVersion);
    std::string bad = header.take();
    bad.push_back(2);  // length = 2
    bad.push_back(0);
    bad.push_back(0);
    bad.push_back(0);
    bad.push_back(static_cast<char>(EventType::kDecision));
    bad.push_back('a');
    bad.push_back('b');
    write_bytes(bad_path, bad);
    EXPECT_THROW((void)read_event_log(bad_path), std::invalid_argument);
  }
  {  // Missing file.
    EXPECT_THROW((void)read_event_log(dir.file("nope.ncbl")),
                 std::runtime_error);
  }
}

TEST(EventLog, EmptyPathAndUnwritableDirectoryThrow) {
  EXPECT_THROW(EventLog({std::string()}), std::runtime_error);
  EXPECT_THROW(EventLog({"/nonexistent-dir-ncb/x.ncbl"}), std::runtime_error);
}

}  // namespace
}  // namespace ncb::serve
