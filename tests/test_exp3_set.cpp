#include "core/exp3_set.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ncb {
namespace {

std::vector<Observation> closed_obs(const Graph& g, ArmId played,
                                    const std::vector<double>& values) {
  std::vector<Observation> out;
  for (const ArmId j : g.closed_neighborhood(played)) {
    out.push_back({j, values[static_cast<std::size_t>(j)]});
  }
  return out;
}

TEST(Exp3Set, StartsUniform) {
  Exp3Set policy;
  policy.reset(empty_graph(4));
  (void)policy.select(1);
  for (ArmId i = 0; i < 4; ++i) {
    EXPECT_NEAR(policy.probability(i), 0.25, 1e-12);
  }
}

TEST(Exp3Set, ObservationProbabilitySumsNeighborhood) {
  const Graph g = star_graph(4);
  Exp3Set policy;
  policy.reset(g);
  (void)policy.select(1);
  // Uniform p = 1/4. Hub's q = p_0 + p_1 + p_2 + p_3 = 1.
  EXPECT_NEAR(policy.observation_probability(0), 1.0, 1e-9);
  // Leaf's q = p_leaf + p_hub = 1/2.
  EXPECT_NEAR(policy.observation_probability(1), 0.5, 1e-9);
}

TEST(Exp3Set, GoodArmGainsProbability) {
  const Graph g = empty_graph(3);
  Exp3Set policy(Exp3SetOptions{.eta = 0.1});
  policy.reset(g);
  for (TimeSlot t = 1; t <= 200; ++t) {
    const ArmId a = policy.select(t);
    std::vector<double> values{0.1, 0.9, 0.1};
    policy.observe(a, t, closed_obs(g, a, values));
  }
  (void)policy.select(201);
  EXPECT_GT(policy.probability(1), policy.probability(0));
  EXPECT_GT(policy.probability(1), policy.probability(2));
}

TEST(Exp3Set, SideObservationsUpdateAllRevealedArms) {
  // On the complete graph every slot reveals everything, so the good arm's
  // probability should rise quickly even when never played.
  const Graph g = complete_graph(3);
  Exp3Set policy(Exp3SetOptions{.eta = 0.2});
  policy.reset(g);
  for (TimeSlot t = 1; t <= 100; ++t) {
    const ArmId a = policy.select(t);
    std::vector<double> values{0.0, 0.0, 1.0};
    policy.observe(a, t, closed_obs(g, a, values));
  }
  (void)policy.select(101);
  EXPECT_GT(policy.probability(2), 0.8);
}

TEST(Exp3Set, ProbabilitiesRemainDistribution) {
  Xoshiro256 rng(3);
  const Graph g = erdos_renyi(8, 0.4, rng);
  Exp3Set policy;
  policy.reset(g);
  for (TimeSlot t = 1; t <= 300; ++t) {
    const ArmId a = policy.select(t);
    std::vector<double> values(8);
    for (auto& v : values) v = rng.uniform();
    policy.observe(a, t, closed_obs(g, a, values));
  }
  (void)policy.select(301);
  double total = 0.0;
  for (ArmId i = 0; i < 8; ++i) {
    EXPECT_GT(policy.probability(i), 0.0);
    total += policy.probability(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Exp3Set, Validation) {
  EXPECT_THROW(Exp3Set(Exp3SetOptions{.eta = 0.0}), std::invalid_argument);
  Exp3Set unreset;
  EXPECT_THROW((void)unreset.select(1), std::logic_error);
}

}  // namespace
}  // namespace ncb
