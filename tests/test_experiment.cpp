#include "sim/experiment.hpp"

#include <gtest/gtest.h>

namespace ncb {
namespace {

TEST(ExperimentConfig, DescribeMentionsKeyFields) {
  const auto c = fig3_config();
  const auto text = c.describe();
  EXPECT_NE(text.find("K=100"), std::string::npos);
  EXPECT_NE(text.find("n=10000"), std::string::npos);
  EXPECT_NE(text.find("ER(p=0.3)"), std::string::npos);
}

TEST(ExperimentConfig, FigureDefaultsMatchPaper) {
  EXPECT_EQ(fig3_config().num_arms, 100u);
  EXPECT_EQ(fig3_config().horizon, 10000);
  EXPECT_EQ(fig5_config().num_arms, 100u);
  EXPECT_DOUBLE_EQ(fig4_config(false).edge_probability, 0.3);
  EXPECT_DOUBLE_EQ(fig4_config(true).edge_probability, 0.6);
  EXPECT_EQ(fig4_config(false).strategy_size, 3u);
  EXPECT_EQ(fig6_config().horizon, 10000);
}

TEST(BuildGraph, DeterministicForFixedSeed) {
  const auto c = fig3_config();
  const Graph a = build_graph(c);
  const Graph b = build_graph(c);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_EQ(a.num_vertices(), 100u);
}

TEST(BuildGraph, AllFamiliesConstruct) {
  ExperimentConfig c;
  c.num_arms = 12;
  for (const auto fam :
       {GraphFamily::kErdosRenyi, GraphFamily::kComplete, GraphFamily::kEmpty,
        GraphFamily::kStar, GraphFamily::kCycle,
        GraphFamily::kDisjointCliques, GraphFamily::kBarabasiAlbert,
        GraphFamily::kWattsStrogatz}) {
    c.graph_family = fam;
    c.family_param = fam == GraphFamily::kWattsStrogatz ? 2 : 4;
    if (fam == GraphFamily::kWattsStrogatz) c.edge_probability = 0.2;
    const Graph g = build_graph(c);
    EXPECT_EQ(g.num_vertices(), 12u) << c.describe();
  }
}

TEST(BuildGraph, CliquesMustDivide) {
  ExperimentConfig c;
  c.graph_family = GraphFamily::kDisjointCliques;
  c.num_arms = 10;
  c.family_param = 3;
  EXPECT_THROW((void)build_graph(c), std::invalid_argument);
}

TEST(BuildInstance, MeansUniformAndDeterministic) {
  const auto c = fig3_config();
  const auto a = build_instance(c);
  const auto b = build_instance(c);
  EXPECT_EQ(a.means(), b.means());
  for (const double mu : a.means()) {
    EXPECT_GE(mu, 0.0);
    EXPECT_LE(mu, 1.0);
  }
}

TEST(BuildFamily, RespectsStrategySize) {
  auto c = fig4_config(false);
  c.num_arms = 8;
  const auto inst = build_instance(c);
  const auto family = build_family(c, inst.graph());
  EXPECT_EQ(family->max_strategy_size(), 3u);
  // |F| = C(8,1)+C(8,2)+C(8,3) = 8+28+56 = 92.
  EXPECT_EQ(family->size(), 92u);
}

TEST(RunSingleExperiment, SmallEndToEnd) {
  ExperimentConfig c;
  c.num_arms = 10;
  c.horizon = 300;
  c.replications = 3;
  const auto result = run_single_experiment(c, "dfl-sso", Scenario::kSso);
  EXPECT_EQ(result.replications, 3u);
  EXPECT_EQ(result.per_slot_regret.length(), 300u);
}

TEST(RunCombinatorialExperiment, SmallEndToEnd) {
  ExperimentConfig c;
  c.num_arms = 6;
  c.horizon = 200;
  c.replications = 2;
  c.strategy_size = 2;
  ThreadPool pool(2);
  const auto result =
      run_combinatorial_experiment(c, "dfl-cso", Scenario::kCso, &pool);
  EXPECT_EQ(result.replications, 2u);
  EXPECT_EQ(result.accumulated_regret().size(), 200u);
}

TEST(RunSingleExperiment, UnknownPolicyThrows) {
  ExperimentConfig c;
  c.num_arms = 4;
  c.horizon = 10;
  c.replications = 1;
  EXPECT_THROW((void)run_single_experiment(c, "bogus", Scenario::kSso),
               std::invalid_argument);
}

TEST(ScenarioNames, AllDistinct) {
  EXPECT_EQ(scenario_name(Scenario::kSso), "SSO");
  EXPECT_EQ(scenario_name(Scenario::kCso), "CSO");
  EXPECT_EQ(scenario_name(Scenario::kSsr), "SSR");
  EXPECT_EQ(scenario_name(Scenario::kCsr), "CSR");
  EXPECT_TRUE(is_combinatorial(Scenario::kCso));
  EXPECT_FALSE(is_combinatorial(Scenario::kSsr));
  EXPECT_TRUE(is_side_reward(Scenario::kCsr));
  EXPECT_FALSE(is_side_reward(Scenario::kSso));
}

}  // namespace
}  // namespace ncb
