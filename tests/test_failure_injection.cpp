// Failure injection: side observations dropped with probability p. The
// policies must degrade gracefully — never crash, never consume phantom
// data — and converge whenever the guaranteed (own-reward) feedback
// suffices.
#include <gtest/gtest.h>

#include "core/dfl_cso.hpp"
#include "core/dfl_sso.hpp"
#include "core/policy_factory.hpp"
#include "graph/generators.hpp"
#include "sim/runner.hpp"

namespace ncb {
namespace {

BanditInstance er_instance(std::size_t k, double p, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  return random_bernoulli_instance(erdos_renyi(k, p, rng), rng);
}

TEST(FailureInjection, FullDropReducesSsoToOwnFeedback) {
  // p = 1: only the played arm reports. DFL-SSO's observation counts must
  // equal its play counts.
  const auto inst = er_instance(8, 0.5, 3);
  Environment env(inst, 7);
  DflSso policy;
  RunnerOptions opts;
  opts.horizon = 300;
  opts.observation_drop_prob = 1.0;
  const auto result = run_single_play(policy, env, Scenario::kSso, opts);
  std::int64_t total_observations = 0;
  for (ArmId i = 0; i < 8; ++i) {
    total_observations += policy.observation_count(i);
    EXPECT_EQ(policy.observation_count(i), result.play_counts[i]) << i;
  }
  EXPECT_EQ(total_observations, 300);
}

TEST(FailureInjection, ZeroDropMatchesBaselineRun) {
  const auto inst = er_instance(10, 0.4, 5);
  RunnerOptions opts;
  opts.horizon = 400;
  Environment env_a(inst, 9);
  DflSso a(DflSsoOptions{.seed = 1});
  const auto clean = run_single_play(a, env_a, Scenario::kSso, opts);
  opts.observation_drop_prob = 0.0;
  Environment env_b(inst, 9);
  DflSso b(DflSsoOptions{.seed = 1});
  const auto with_flag = run_single_play(b, env_b, Scenario::kSso, opts);
  EXPECT_EQ(clean.cumulative_regret, with_flag.cumulative_regret);
}

TEST(FailureInjection, SsrNeverDropsPayoutObservations) {
  // Under SSR the neighborhood payout is received, so drops must not apply:
  // results are identical at any drop probability.
  const auto inst = er_instance(8, 0.5, 11);
  RunnerOptions opts;
  opts.horizon = 300;
  Environment env_a(inst, 13);
  auto a = make_single_play_policy("dfl-ssr", opts.horizon, 2);
  const auto clean = run_single_play(*a, env_a, Scenario::kSsr, opts);
  opts.observation_drop_prob = 0.9;
  Environment env_b(inst, 13);
  auto b = make_single_play_policy("dfl-ssr", opts.horizon, 2);
  const auto dropped = run_single_play(*b, env_b, Scenario::kSsr, opts);
  EXPECT_EQ(clean.cumulative_regret, dropped.cumulative_regret);
}

TEST(FailureInjection, DflSsoStillConvergesUnderHeavyDrops) {
  const auto inst = er_instance(10, 0.4, 17);
  Environment env(inst, 19);
  DflSso policy;
  RunnerOptions opts;
  opts.horizon = 4000;
  opts.observation_drop_prob = 0.8;
  const auto result = run_single_play(policy, env, Scenario::kSso, opts);
  // Average pseudo-regret over the last tenth must be well below the first.
  double head = 0.0, tail = 0.0;
  for (std::size_t i = 0; i < 400; ++i) {
    head += result.per_slot_pseudo_regret[i];
    tail += result.per_slot_pseudo_regret[result.per_slot_pseudo_regret.size() - 1 - i];
  }
  EXPECT_LT(tail, head);
}

TEST(FailureInjection, CsoSkipsIncompleteComArms) {
  // With all side observations dropped, com-arms can only be updated from
  // their own component arms — possible only when s_y ⊆ s_played, i.e. the
  // played strategy and its sub-strategies. No phantom updates.
  const auto graph = std::make_shared<const Graph>(path_graph(4));
  const auto family =
      std::make_shared<const FeasibleSet>(make_subset_family(graph, 2));
  const auto inst = bernoulli_instance(*graph, {0.2, 0.8, 0.4, 0.6});
  Environment env(inst, 23);
  DflCso policy(family);
  RunnerOptions opts;
  opts.horizon = 200;
  opts.observation_drop_prob = 1.0;
  const auto result =
      run_combinatorial(policy, *family, env, Scenario::kCso, opts);
  // Every strategy's observation count is at most the number of slots, and
  // the run completes with consistent accounting.
  std::int64_t total = 0;
  for (StrategyId x = 0; x < static_cast<StrategyId>(family->size()); ++x) {
    EXPECT_LE(policy.observation_count(x), 200);
    total += policy.observation_count(x);
  }
  EXPECT_GT(total, 0);
  EXPECT_EQ(result.cumulative_regret.size(), 200u);
}

TEST(FailureInjection, DropSeedReproducible) {
  const auto inst = er_instance(8, 0.4, 29);
  RunnerOptions opts;
  opts.horizon = 300;
  opts.observation_drop_prob = 0.5;
  opts.drop_seed = 99;
  Environment env_a(inst, 31);
  DflSso a(DflSsoOptions{.seed = 4});
  const auto r1 = run_single_play(a, env_a, Scenario::kSso, opts);
  Environment env_b(inst, 31);
  DflSso b(DflSsoOptions{.seed = 4});
  const auto r2 = run_single_play(b, env_b, Scenario::kSso, opts);
  EXPECT_EQ(r1.cumulative_regret, r2.cumulative_regret);
}

// Drop-rate sweep: every side-consuming policy survives every drop rate.
class DropSweep : public ::testing::TestWithParam<double> {};

TEST_P(DropSweep, PoliciesSurvive) {
  const auto inst = er_instance(8, 0.5, 37);
  RunnerOptions opts;
  opts.horizon = 200;
  opts.observation_drop_prob = GetParam();
  for (const char* name : {"dfl-sso", "ucb-n", "ucb-maxn", "exp3-set",
                           "thompson-side", "eps-greedy-side"}) {
    Environment env(inst, 41);
    auto policy = make_single_play_policy(name, opts.horizon, 6);
    const auto result = run_single_play(*policy, env, Scenario::kSso, opts);
    EXPECT_EQ(result.cumulative_regret.size(), 200u) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, DropSweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace ncb
