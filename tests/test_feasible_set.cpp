#include "strategy/feasible_set.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace ncb {
namespace {

std::shared_ptr<const Graph> shared_path(std::size_t n) {
  return std::make_shared<const Graph>(path_graph(n));
}

TEST(SubsetFamily, AtMostMCounts) {
  // K=5, M=2: 5 singletons + 10 pairs = 15.
  const auto f = make_subset_family(shared_path(5), 2);
  EXPECT_EQ(f.size(), 15u);
  EXPECT_EQ(f.kind(), FamilyKind::kTopMSubsets);
  EXPECT_EQ(f.max_strategy_size(), 2u);
}

TEST(SubsetFamily, ExactMCounts) {
  // K=5, M=2: exactly the 10 pairs.
  const auto f = make_subset_family(shared_path(5), 2, /*exact=*/true);
  EXPECT_EQ(f.size(), 10u);
  EXPECT_EQ(f.kind(), FamilyKind::kExactMSubsets);
  for (StrategyId x = 0; x < 10; ++x) {
    EXPECT_EQ(f.strategy(x).size(), 2u);
  }
}

TEST(SubsetFamily, RejectsBadM) {
  EXPECT_THROW(make_subset_family(shared_path(3), 0), std::invalid_argument);
  EXPECT_THROW(make_subset_family(shared_path(3), 4), std::invalid_argument);
}

TEST(SubsetFamily, StrategiesSortedBySizeThenLex) {
  const auto f = make_subset_family(shared_path(3), 2);
  EXPECT_EQ(f.strategy(0), (ArmSet{0}));
  EXPECT_EQ(f.strategy(1), (ArmSet{1}));
  EXPECT_EQ(f.strategy(2), (ArmSet{2}));
  EXPECT_EQ(f.strategy(3), (ArmSet{0, 1}));
  EXPECT_EQ(f.strategy(4), (ArmSet{0, 2}));
  EXPECT_EQ(f.strategy(5), (ArmSet{1, 2}));
}

TEST(IndependentSetFamily, MatchesPaperFig2) {
  const auto f = make_independent_set_family(shared_path(4));
  ASSERT_EQ(f.size(), 7u);
  EXPECT_EQ(f.kind(), FamilyKind::kIndependentSets);
  EXPECT_EQ(f.strategy(0), (ArmSet{0}));
  EXPECT_EQ(f.strategy(4), (ArmSet{0, 2}));
  EXPECT_EQ(f.strategy(5), (ArmSet{0, 3}));
  EXPECT_EQ(f.strategy(6), (ArmSet{1, 3}));
}

TEST(IndependentSetFamily, NeighborhoodsMatchPaperFig2) {
  // Y values from the paper (0-indexed): Y(s1)={0,1}, Y(s2)={0,1,2},
  // Y(s3)={1,2,3}, Y(s4)={2,3}, Y(s5)=Y(s6)=Y(s7)={0,1,2,3}.
  const auto f = make_independent_set_family(shared_path(4));
  EXPECT_EQ(f.neighborhood(0), (ArmSet{0, 1}));
  EXPECT_EQ(f.neighborhood(1), (ArmSet{0, 1, 2}));
  EXPECT_EQ(f.neighborhood(2), (ArmSet{1, 2, 3}));
  EXPECT_EQ(f.neighborhood(3), (ArmSet{2, 3}));
  EXPECT_EQ(f.neighborhood(4), (ArmSet{0, 1, 2, 3}));
  EXPECT_EQ(f.neighborhood(5), (ArmSet{0, 1, 2, 3}));
  EXPECT_EQ(f.neighborhood(6), (ArmSet{0, 1, 2, 3}));
  EXPECT_EQ(f.max_neighborhood_size(), 4u);
}

TEST(FeasibleSet, BitsAgreeWithLists) {
  const auto f = make_subset_family(shared_path(5), 3);
  for (StrategyId x = 0; x < static_cast<StrategyId>(f.size()); ++x) {
    EXPECT_EQ(f.strategy_bits(x).to_indices(),
              std::vector<std::int32_t>(f.strategy(x).begin(),
                                        f.strategy(x).end()));
    EXPECT_EQ(f.neighborhood_bits(x).to_indices(),
              std::vector<std::int32_t>(f.neighborhood(x).begin(),
                                        f.neighborhood(x).end()));
  }
}

TEST(FeasibleSet, StrategyIsSubsetOfItsNeighborhood) {
  const auto f = make_subset_family(shared_path(6), 2);
  for (StrategyId x = 0; x < static_cast<StrategyId>(f.size()); ++x) {
    EXPECT_TRUE(f.strategy_bits(x).is_subset_of(f.neighborhood_bits(x)));
  }
}

TEST(FeasibleSet, FindLocatesStrategies) {
  const auto f = make_subset_family(shared_path(4), 2);
  const auto id = f.find({1, 3});
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(f.strategy(*id), (ArmSet{1, 3}));
  EXPECT_FALSE(f.find({0, 1, 2}).has_value());
}

TEST(ExplicitFamily, SortsInput) {
  const auto f = make_explicit_family(shared_path(4), {{2, 0}, {3}});
  EXPECT_EQ(f.strategy(0), (ArmSet{0, 2}));
  EXPECT_EQ(f.strategy(1), (ArmSet{3}));
  EXPECT_EQ(f.kind(), FamilyKind::kExplicit);
}

TEST(ExplicitFamily, RejectsInvalid) {
  EXPECT_THROW(make_explicit_family(shared_path(3), {}),
               std::invalid_argument);
  EXPECT_THROW(make_explicit_family(shared_path(3), {{}}),
               std::invalid_argument);
  EXPECT_THROW(make_explicit_family(shared_path(3), {{0}, {0}}),
               std::invalid_argument);
  EXPECT_THROW(make_explicit_family(shared_path(3), {{5}}),
               std::out_of_range);
  EXPECT_THROW(make_explicit_family(shared_path(3), {{0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(make_explicit_family(nullptr, {{0}}), std::invalid_argument);
}

TEST(FeasibleSet, ToStringListsStrategies) {
  const auto f = make_independent_set_family(shared_path(4));
  const auto text = f.to_string();
  EXPECT_NE(text.find("|F|=7"), std::string::npos);
  EXPECT_NE(text.find("{0,2}"), std::string::npos);
}

TEST(FeasibleSet, MaxNeighborhoodOnEmptyGraph) {
  // No edges → Y_x = s_x, so N = M.
  const auto g = std::make_shared<const Graph>(empty_graph(6));
  const auto f = make_subset_family(g, 3);
  EXPECT_EQ(f.max_neighborhood_size(), 3u);
}

TEST(PartitionMatroidFamily, CapacityOnePerGroup) {
  // 4 arms in 2 groups of 2, capacity 1: feasible sets are non-empty sets
  // with at most one arm per group: 4 singletons + 4 cross pairs = 8.
  const auto f = make_partition_matroid_family(shared_path(4), {0, 0, 1, 1});
  EXPECT_EQ(f.size(), 8u);
  EXPECT_EQ(f.kind(), FamilyKind::kPartitionMatroid);
  EXPECT_FALSE(f.find({0, 1}).has_value());  // same group
  EXPECT_TRUE(f.find({0, 2}).has_value());
  EXPECT_TRUE(f.find({1, 3}).has_value());
}

TEST(PartitionMatroidFamily, CapacityTwoAllowsPairs) {
  const auto f =
      make_partition_matroid_family(shared_path(4), {0, 0, 1, 1}, 2);
  // All non-empty subsets are feasible (each group holds both its arms):
  // 2^4 - 1 = 15.
  EXPECT_EQ(f.size(), 15u);
}

TEST(PartitionMatroidFamily, SingleGroupIsTopCapacity) {
  const auto matroid =
      make_partition_matroid_family(shared_path(5), {0, 0, 0, 0, 0}, 2);
  const auto subsets = make_subset_family(shared_path(5), 2);
  EXPECT_EQ(matroid.size(), subsets.size());
}

TEST(PartitionMatroidFamily, Validation) {
  EXPECT_THROW(
      (void)make_partition_matroid_family(shared_path(3), {0, 1}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)make_partition_matroid_family(shared_path(3), {0, -1, 1}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)make_partition_matroid_family(shared_path(3), {0, 0, 1}, 0),
      std::invalid_argument);
  EXPECT_THROW((void)make_partition_matroid_family(nullptr, {0}),
               std::invalid_argument);
}

TEST(PartitionMatroidFamily, EveryStrategyRespectsCaps) {
  const std::vector<int> groups{0, 1, 2, 0, 1, 2, 0};
  const auto f = make_partition_matroid_family(shared_path(7), groups, 1);
  for (StrategyId x = 0; x < static_cast<StrategyId>(f.size()); ++x) {
    std::vector<int> used(3, 0);
    for (const ArmId i : f.strategy(x)) {
      ++used[static_cast<std::size_t>(groups[static_cast<std::size_t>(i)])];
    }
    for (const int u : used) EXPECT_LE(u, 1);
  }
}

// Property: subset family size equals sum of binomials for several (K, M).
class SubsetFamilySize
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(SubsetFamilySize, MatchesBinomialSum) {
  const auto [k, m] = GetParam();
  const auto f =
      make_subset_family(std::make_shared<const Graph>(empty_graph(k)), m);
  std::size_t expected = 0;
  // Sum of C(k, j) for j = 1..m.
  std::size_t binom = 1;
  for (std::size_t j = 1; j <= m; ++j) {
    binom = binom * (k - j + 1) / j;
    expected += binom;
  }
  EXPECT_EQ(f.size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SubsetFamilySize,
                         ::testing::Values(std::make_tuple(4u, 2u),
                                           std::make_tuple(6u, 3u),
                                           std::make_tuple(8u, 2u),
                                           std::make_tuple(10u, 4u),
                                           std::make_tuple(5u, 5u)));

}  // namespace
}  // namespace ncb
